#!/usr/bin/env python
"""Docs self-check: CLI surface vs documentation, plus snippet smoke tests.

Three checks over README.md and docs/*.md, run by the ``docs-check`` CI
job (and runnable locally with ``python tools/check_docs.py``):

1. **Command-line drift.** Every ``repro-datalog`` invocation inside a
   fenced code block must name a real verb, and every ``--flag`` it
   passes must be accepted by that verb — checked against the live
   ``repro.cli.build_parser()`` surface, i.e. exactly what
   ``repro-datalog <verb> --help`` prints.
2. **Verb coverage.** Every verb the CLI exposes must be demonstrated
   in at least one fenced command line across the scanned files.
3. **Snippet smoke tests.** Fenced ``bash`` blocks whose first line is
   ``# check-docs: smoke`` are executed in a fresh temporary directory
   (with a ``repro-datalog`` shim on PATH when the entry point is not
   installed) and must exit 0.

Exit status: 0 when everything passes, 1 otherwise; every finding is
printed as ``file:line: message``.
"""

from __future__ import annotations

import argparse
import os
import re
import shlex
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

import repro  # noqa: E402
from repro.cli import build_parser  # noqa: E402

SCANNED = ["README.md", *sorted(p.as_posix() for p in Path("docs").glob("*.md"))]
SMOKE_MARK = "# check-docs: smoke"


def cli_surface() -> dict[str, set[str]]:
    """Map each CLI verb to the option strings its subparser accepts."""
    parser = build_parser()
    surface: dict[str, set[str]] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for verb, sub in action.choices.items():
                surface[verb] = {
                    opt for a in sub._actions for opt in a.option_strings
                }
    return surface


def fenced_blocks(text: str):
    """Yield (start_line, info_string, [lines]) per fenced code block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^\s*```(\S*)\s*$", lines[i])
        if m:
            start, info, body = i + 1, m.group(1), []
            i += 1
            while i < len(lines) and not re.match(r"^\s*```\s*$", lines[i]):
                body.append(lines[i])
                i += 1
            yield start, info, body
        i += 1


def command_lines(body: list[str], start: int):
    """Yield (line_no, command) for repro-datalog invocations in a block.

    Handles ``$ `` prompts, backslash continuations, and trailing
    ``  # comment`` annotations.
    """
    i = 0
    while i < len(body):
        line = body[i].strip()
        while line.endswith("\\") and i + 1 < len(body):
            i += 1
            line = line[:-1].rstrip() + " " + body[i].strip()
        at = start + i + 1
        i += 1
        if line.startswith("$ "):
            line = line[2:]
        if not line.startswith("repro-datalog"):
            continue
        if " # " in line:
            line = line.split(" # ")[0]
        yield at, line.strip()


def check_commands(surface: dict[str, set[str]]) -> tuple[list[str], set[str]]:
    errors: list[str] = []
    used_verbs: set[str] = set()
    for rel in SCANNED:
        text = Path(rel).read_text()
        for start, _info, body in fenced_blocks(text):
            for line_no, command in command_lines(body, start):
                try:
                    tokens = shlex.split(command)
                except ValueError as exc:
                    errors.append(f"{rel}:{line_no}: unparseable command: {exc}")
                    continue
                if len(tokens) < 2:
                    continue
                verb = tokens[1]
                if verb.startswith("-"):
                    continue  # `repro-datalog --help` style
                if verb not in surface:
                    errors.append(
                        f"{rel}:{line_no}: unknown verb {verb!r} "
                        f"(known: {', '.join(sorted(surface))})"
                    )
                    continue
                used_verbs.add(verb)
                for token in tokens[2:]:
                    if not token.startswith("--"):
                        continue
                    flag = token.split("=", 1)[0]
                    if flag not in surface[verb]:
                        errors.append(
                            f"{rel}:{line_no}: {verb!r} does not accept {flag} "
                            f"(run: repro-datalog {verb} --help)"
                        )
    return errors, used_verbs


def check_coverage(surface: dict[str, set[str]], used: set[str]) -> list[str]:
    missing = sorted(set(surface) - used)
    return [
        f"README.md/docs: verb {verb!r} is never demonstrated in any "
        f"fenced command line"
        for verb in missing
    ]


def smoke_env(shim_dir: Path) -> dict[str, str]:
    env = dict(os.environ)
    if shutil.which("repro-datalog") is None:
        shim = shim_dir / "repro-datalog"
        shim.write_text(
            f'#!/bin/sh\nexec {shlex.quote(sys.executable)} -m repro.cli "$@"\n'
        )
        shim.chmod(0o755)
        env["PATH"] = f"{shim_dir}{os.pathsep}{env.get('PATH', '')}"
        pkg_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
    return env


def run_smoke_blocks() -> list[str]:
    errors: list[str] = []
    with tempfile.TemporaryDirectory(prefix="check-docs-") as tmp:
        env = smoke_env(Path(tmp))
        for rel in SCANNED:
            text = Path(rel).read_text()
            for start, info, body in fenced_blocks(text):
                if info != "bash" or not body or body[0].strip() != SMOKE_MARK:
                    continue
                workdir = tempfile.mkdtemp(dir=tmp, prefix="smoke-")
                script = "\n".join(["set -euo pipefail", *body[1:]])
                print(f"== smoke {rel}:{start}")
                proc = subprocess.run(
                    ["bash", "-c", script],
                    cwd=workdir,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=300,
                )
                if proc.returncode != 0:
                    tail = (proc.stderr or proc.stdout).strip().splitlines()[-5:]
                    errors.append(
                        f"{rel}:{start}: smoke snippet exited "
                        f"{proc.returncode}: " + " | ".join(tail)
                    )
    return errors


def main() -> int:
    os.chdir(REPO)
    surface = cli_surface()
    errors, used = check_commands(surface)
    errors += check_coverage(surface, used)
    errors += run_smoke_blocks()
    for error in errors:
        print(error)
    print(
        f"check_docs: {len(SCANNED)} files, {len(surface)} verbs, "
        f"{len(errors)} finding(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
