#!/usr/bin/env python
"""Metrics-name drift check: documented names vs. emitted names.

``docs/ARCHITECTURE.md`` and ``docs/BENCHMARKING.md`` enumerate the
metric counters and trace spans the codebase emits.  Those lists rot
silently: renaming a counter in ``src/`` leaves the prose pointing at a
name no registry snapshot will ever contain.  This check (part of the
``docs-check`` CI job, runnable locally as ``python
tools/check_metrics.py``) parses every emission site and fails when a
documented name has no emitter.

**Emitted names** are collected by walking the ASTs of ``src/**/*.py``
for ``.increment(...)`` / ``.observe(...)`` calls (metric counters and
observations) and ``trace(...)`` calls (span names).  A literal first
argument contributes its exact name; an f-string contributes a pattern
whose interpolated pieces are wildcards (``f"{prefix}.runs"`` emits
``*.runs``).

**Documented names** are backticked dotted tokens inside metric-bearing
prose paragraphs (fenced code blocks are skipped).  The docs' notation
is normalized: ``<engine>``-style placeholders become wildcards,
``governor.trips[.<limit>]`` expands to both the bare and suffixed
forms, and the ``/`` shorthands continue the previous name
(`` `chase.runs`/`.rounds` `` documents ``chase.rounds``;
`` `containment.budget_spent`/`_skipped` `` documents
``containment.budget_skipped``).  Dotted tokens that name real modules
under ``src/repro`` (``obs.metrics``) are module references, not metric
names, and are skipped.

A documented pattern matches an emitted pattern when their dot-segments
unify, with a wildcard on either side covering one or more segments.

Exit status: 0 when every documented name has an emitter, 1 otherwise;
findings print as ``file: message``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
SCANNED_DOCS = ["docs/ARCHITECTURE.md", "docs/BENCHMARKING.md"]

#: Calls whose first string argument names a metric (attribute calls on
#: the registry) or a span.
METRIC_METHODS = {"increment", "observe"}
SPAN_FUNCTIONS = {"trace"}

#: A prose paragraph is metric-bearing when it matches this (the docs
#: introduce name lists with "Metrics:", "spans:", "counts `...`", or
#: talk about the registry's counters/observations).
BEARING = re.compile(
    r"(Metrics:|spans:|counts\s+`|counters|observation|`\s*metrics\b|\bmetrics\.?($|\s))"
)

#: Shape of a documentable metric/span token: lowercase dotted name,
#: possibly with <placeholder>, [.<optional>] and * wildcards.
TOKEN = re.compile(r"^[a-z0-9_.*<>\[\]]+$")


def emitted_patterns() -> set[str]:
    """Every metric/span name (or f-string wildcard pattern) in src/."""
    patterns: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in METRIC_METHODS or name in SPAN_FUNCTIONS:
                pattern = _string_pattern(node.args[0])
                if pattern:
                    patterns.add(pattern)
    return patterns


def _string_pattern(node: ast.expr) -> str | None:
    """A string literal verbatim; an f-string with ``*`` per hole."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def prose_paragraphs(text: str):
    """Paragraphs outside fenced code blocks."""
    lines = []
    fence = None
    for line in text.splitlines():
        stripped = line.strip()
        if fence is None and stripped.startswith(("```", "~~~")):
            fence = stripped[:3]
            lines.append("")
            continue
        if fence is not None:
            if stripped.startswith(fence):
                fence = None
            continue
        lines.append(line)
    for block in re.split(r"\n\s*\n", "\n".join(lines)):
        if block.strip():
            yield block


def _is_module_reference(token: str) -> bool:
    """True when the dotted token names a real module under src/repro."""
    if not re.match(r"^[a-z0-9_.]+$", token):
        return False
    parts = token.split(".")
    base = SRC / "repro"
    return (base.joinpath(*parts).with_suffix(".py")).is_file() or (
        base.joinpath(*parts) / "__init__.py"
    ).is_file()


def documented_names(text: str) -> list[str]:
    """Normalized metric/span name patterns the document claims exist."""
    names: list[str] = []
    for para in prose_paragraphs(text):
        if not BEARING.search(para):
            continue
        previous: str | None = None
        previous_end = 0
        for match in re.finditer(r"`([^`\n]+)`", para):
            token = match.group(1).strip()
            if not TOKEN.match(token):
                continue
            separator = para[previous_end : match.start()]
            continuation = (
                previous is not None
                and re.fullmatch(r"\s*/\s*", separator) is not None
            )
            if token.startswith("."):
                if not continuation:
                    continue
                # `chase.runs`/`.rounds` -> chase.rounds
                token = previous.rsplit(".", 1)[0] + token
            elif token.startswith("_"):
                if not continuation:
                    continue
                # `containment.budget_spent`/`_skipped`
                token = previous.rsplit("_", 1)[0] + token
            if "." not in token:
                continue
            if _is_module_reference(token) or token.startswith("repro."):
                continue
            previous = token
            previous_end = match.end()
            names.extend(_expand(token))
    return names


def _expand(token: str) -> list[str]:
    """``governor.trips[.<limit>]`` -> both forms; ``<x>`` -> ``*``."""
    optional = re.search(r"\[([^\]]+)\]", token)
    if optional:
        without = token.replace(optional.group(0), "", 1)
        with_suffix = token.replace(optional.group(0), optional.group(1), 1)
        return [*_expand(without), *_expand(with_suffix)]
    token = re.sub(r"<[^>]*>", "*", token)
    token = re.sub(r"\*+", "*", token.strip("."))
    return [token] if token else []


def _segments_match(a: list[str], b: list[str]) -> bool:
    """Dot-segment unification; ``*`` covers one or more segments."""
    if not a and not b:
        return True
    if a and a[0] == "*":
        return any(_segments_match(a[1:], b[i:]) for i in range(1, len(b) + 1))
    if b and b[0] == "*":
        return _segments_match(b, a)
    if not a or not b:
        return False
    return a[0] == b[0] and _segments_match(a[1:], b[1:])


def pattern_matches(documented: str, emitted: str) -> bool:
    return _segments_match(documented.split("."), emitted.split("."))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the collected emitted patterns and documented names",
    )
    args = parser.parse_args(argv)

    emitted = emitted_patterns()
    failures = 0
    checked = 0
    for rel in SCANNED_DOCS:
        path = REPO / rel
        if not path.is_file():
            print(f"{rel}: scanned document is missing", file=sys.stderr)
            failures += 1
            continue
        for name in documented_names(path.read_text(encoding="utf-8")):
            checked += 1
            if not any(pattern_matches(name, e) for e in emitted):
                print(
                    f"{rel}: documented metric/span `{name}` is not emitted "
                    f"anywhere under src/",
                    file=sys.stderr,
                )
                failures += 1
    if args.list:
        print("emitted patterns:")
        for e in sorted(emitted):
            print(f"  {e}")
    print(
        f"check_metrics: {checked} documented name(s) against "
        f"{len(emitted)} emitted pattern(s); {failures} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
