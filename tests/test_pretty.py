"""Unit tests for the pretty-printer."""

from __future__ import annotations

from repro import Database, parse_program, parse_rule, parse_tgd
from repro.lang import (
    format_atom,
    format_atoms,
    format_database,
    format_program,
    format_rule,
    format_tgd,
    parse_atom,
)


class TestFormatRule:
    def test_plain(self):
        rule = parse_rule("G(x, z) :- A(x, z).")
        assert format_rule(rule) == "G(x, z) :- A(x, z)."

    def test_fact(self):
        assert format_rule(parse_rule("A(1, 2).")) == "A(1, 2)."

    def test_alignment(self):
        rule = parse_rule("G(x) :- A(x).")
        assert format_rule(rule, align_at=10) == "G(x)       :- A(x)."

    def test_negated_literal(self):
        rule = parse_rule("P(x) :- A(x), not B(x).")
        assert "not B(x)" in format_rule(rule)


class TestFormatProgram:
    def test_heads_aligned(self):
        program = parse_program(
            """
            Long(x, y, z) :- A(x, y, z).
            S(x) :- Long(x, x, x).
            """
        )
        lines = format_program(program).splitlines()
        assert lines[0].index(":-") == lines[1].index(":-")

    def test_alignment_optional(self):
        program = parse_program("Long(x) :- A(x). S(x) :- A(x).")
        unaligned = format_program(program, align=False)
        assert "S(x) :- A(x)." in unaligned

    def test_empty_program(self):
        assert format_program(parse_program("")) == ""

    def test_round_trip(self, tc):
        assert parse_program(format_program(tc)) == tc


class TestFormatAtoms:
    def test_sorted_and_braced(self):
        atoms = [parse_atom("B(2)"), parse_atom("A(1)")]
        assert format_atoms(atoms) == "{A(1), B(2)}"

    def test_unsorted_option(self):
        atoms = [parse_atom("B(2)"), parse_atom("A(1)")]
        assert format_atoms(atoms, sort=False) == "{B(2), A(1)}"

    def test_empty(self):
        assert format_atoms([]) == "{}"

    def test_format_atom_single(self):
        assert format_atom(parse_atom("G(x, 3)")) == "G(x, 3)"


class TestFormatDatabase:
    def test_grouped_by_predicate(self):
        db = Database.from_facts({"B": [(2,)], "A": [(1, 2), (1, 1)]})
        text = format_database(db)
        lines = text.splitlines()
        assert lines[0].startswith("A:")
        assert lines[1].startswith("B:")
        assert "A(1, 1), A(1, 2)" in lines[0]

    def test_empty_database(self):
        assert format_database(Database()) == ""


class TestFormatTgd:
    def test_rendering(self):
        tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w) & C(w)")
        assert format_tgd(tgd) == "G(x, y), G(y, z) -> A(y, w) & C(w)"

    def test_round_trip(self):
        source = "G(y, z) -> G(y, w) & C(w)"
        assert format_tgd(parse_tgd(source)) == source
