"""Unit tests for redundant-atom *addition* (the Section I remark)."""

from __future__ import annotations

import pytest

from repro import evaluate, parse_program
from repro.core.augment import add_atom, addable_guards, atom_is_addable
from repro.core.containment import uniformly_equivalent
from repro.lang import parse_atom
from repro.workloads import chain


@pytest.fixture
def guarded():
    """A program where G implies an A guard exists (uniformly)."""
    return parse_program(
        """
        G(x, z) :- A(x, z).
        G(x, z) :- A(x, y), G(y, z).
        """
    )


class TestAtomIsAddable:
    def test_implied_atom_addable(self, guarded):
        # In the recursive rule, A(x, y) is already present; adding a
        # weakened copy A(x, v) is redundant.
        rule = guarded.rules[1]
        assert atom_is_addable(guarded, rule, parse_atom("A(x, v)"))

    def test_constraining_atom_not_addable(self, guarded):
        # Adding B(x) genuinely constrains the rule.
        rule = guarded.rules[1]
        assert not atom_is_addable(guarded, rule, parse_atom("B(x)"))

    def test_derived_atom_addable(self, guarded):
        # G(x, z) holds whenever the recursive rule fires (it is the
        # head's own derivation through the other rules? no -- but
        # G(y, z) is a body atom; a weakened copy is addable).
        rule = guarded.rules[1]
        assert atom_is_addable(guarded, rule, parse_atom("G(y, u)"))

    def test_foreign_rule_rejected(self, guarded):
        from repro.lang import parse_rule

        with pytest.raises(ValueError):
            atom_is_addable(guarded, parse_rule("H(x) :- A(x, x)."), parse_atom("A(x, x)"))


class TestAddAtom:
    def test_add_preserves_uniform_equivalence(self, guarded):
        rule = guarded.rules[1]
        augmentation = add_atom(guarded, rule, parse_atom("A(x, v)"))
        assert uniformly_equivalent(guarded, augmentation.program_after)

    def test_add_preserves_results(self, guarded):
        rule = guarded.rules[1]
        augmentation = add_atom(guarded, rule, parse_atom("A(x, v)"))
        edb = chain(8)
        assert (
            evaluate(guarded, edb).database
            == evaluate(augmentation.program_after, edb).database
        )

    def test_unsafe_addition_rejected(self, guarded):
        rule = guarded.rules[1]
        with pytest.raises(ValueError, match="not redundant"):
            add_atom(guarded, rule, parse_atom("B(x)"))

    def test_str(self, guarded):
        rule = guarded.rules[1]
        augmentation = add_atom(guarded, rule, parse_atom("A(x, v)"))
        assert "added A(x, v)" in str(augmentation)


class TestAddableGuards:
    def test_filters_candidates(self, guarded):
        rule = guarded.rules[1]
        guards = addable_guards(
            guarded,
            rule,
            [parse_atom("A(x, v)"), parse_atom("B(x)"), parse_atom("G(y, u)")],
        )
        assert [str(g) for g in guards] == ["A(x, v)", "G(y, u)"]

    def test_roundtrip_with_minimization(self, guarded):
        # Adding a redundant guard and minimizing again returns the
        # original program.
        from repro.core.minimize import minimize_program

        rule = guarded.rules[1]
        augmented = add_atom(guarded, rule, parse_atom("A(x, v)")).program_after
        assert minimize_program(augmented).program == guarded
