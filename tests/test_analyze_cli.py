"""Unit tests for the ``repro-datalog analyze`` verb."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

TC = """
T(x, y) :- E(x, y).
T(x, y) :- E(x, z), T(z, y).
"""

DEAD = """
P(x) :- E(x).
P(x) :- E(x), Q(x, 1).
Q(y, 2) :- S(y).
"""

#: Every top-level key of the analyze JSON document, in schema order.
#: Version 2 added the always-present ``termination`` block.
SCHEMA_KEYS = (
    "version",
    "filename",
    "predicates",
    "sorts",
    "cardinality",
    "recursion",
    "binding",
    "termination",
    "diagnostics",
    "counts",
)


@pytest.fixture
def files(tmp_path):
    def write(name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return write


class TestText:
    def test_sections_present(self, files, capsys):
        assert main(["analyze", files("tc.dl", TC)]) == 0
        out = capsys.readouterr().out
        assert "sorts" in out
        assert "cardinality" in out
        assert "recursion" in out

    def test_query_adds_binding_section(self, files, capsys):
        code = main(["analyze", files("tc.dl", TC), "--query", 'T("a", y)'])
        assert code == 0
        out = capsys.readouterr().out
        assert "binding for query" in out
        assert "bf" in out

    def test_assume_edb_scales_cardinality(self, files, capsys):
        assert main(["analyze", files("tc.dl", TC), "--assume-edb", "7"]) == 0
        assert "[7, 7]" in capsys.readouterr().out


class TestJson:
    def test_schema_keys(self, files, capsys):
        assert main(["analyze", files("tc.dl", TC), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert tuple(data) == SCHEMA_KEYS
        assert data["version"] == 2
        assert data["predicates"] == {"edb": ["E"], "idb": ["T"]}
        assert data["binding"] is None
        # Without tgds the program's rules alone are trivially full.
        assert data["termination"]["classification"] == "full-only"
        assert data["termination"]["terminating"] is True

    def test_diagnostics_carry_stable_ids(self, files, capsys):
        main(["analyze", files("tc.dl", TC), "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        (finding,) = data["diagnostics"]
        assert finding["id"] == "linear-recursion@r1"
        assert finding["rule_ref"]["index"] == 1

    def test_schema_stable_across_examples(self, capsys):
        """Every shipped example yields the same top-level shape."""
        for example in sorted(EXAMPLES_DIR.glob("*.dl")):
            main(["analyze", str(example), "--format", "json"])
            data = json.loads(capsys.readouterr().out)
            assert tuple(data) == SCHEMA_KEYS, example.name
            assert data["version"] == 2


class TestFindingsAndExitCodes:
    def test_certified_dead_rule_is_error_and_fails(self, files, capsys):
        assert main(["analyze", files("dead.dl", DEAD)]) == 1
        out = capsys.readouterr().out
        assert "dead-rule" in out
        assert "§VI" in out

    def test_fail_on_never(self, files):
        assert main(["analyze", files("dead.dl", DEAD), "--fail-on", "never"]) == 0

    def test_info_findings_do_not_fail_by_default(self, files, capsys):
        # Linear recursion is an info note; default --fail-on is error.
        assert main(["analyze", files("tc.dl", TC)]) == 0
        assert "linear-recursion" in capsys.readouterr().out

    def test_ignore_suppresses(self, files, capsys):
        code = main(
            [
                "analyze",
                files("dead.dl", DEAD),
                "--ignore",
                "dead-rule,empty-predicate",
            ]
        )
        assert code == 0
        assert "dead-rule" not in capsys.readouterr().out

    def test_unknown_rule_id_is_usage_error(self, files, capsys):
        assert main(["analyze", files("tc.dl", TC), "--select", "nope"]) == 2
        assert "unknown lint rule id" in capsys.readouterr().err

    def test_parse_error_reports_diagnostic_and_exits_1(self, files, capsys):
        assert main(["analyze", files("bad.dl", "P(x :- Q(x).")]) == 1
        assert "[syntax]" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self):
        assert main(["analyze", "/does/not/exist.dl"]) == 2

    def test_shipped_examples_are_analyze_clean(self):
        """The CI gate: every example passes analyze at --fail-on error."""
        for example in sorted(EXAMPLES_DIR.glob("*.dl")):
            assert main(["analyze", str(example)]) == 0, example.name
