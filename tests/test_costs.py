"""Unit tests for the cost model (statistics, join estimates, guard ranking)."""

from __future__ import annotations

import pytest

from repro import Database, parse_program, parse_rule
from repro.engine.costs import (
    DEFAULT_SELECTIVITY,
    PredicateStatistics,
    collect_statistics,
    estimate_guard_benefit,
    estimate_rule,
    rank_guards,
)
from repro.lang import parse_atom
from repro.workloads import chain, random_graph


class TestStatistics:
    def test_cardinality(self):
        db = chain(10)
        stats = collect_statistics(db)
        assert stats["A"].cardinality == 10

    def test_distinct_counts(self):
        db = Database.from_facts({"A": [(1, 2), (1, 3), (2, 3)]})
        stats = collect_statistics(db)
        assert stats["A"].distinct == (2, 2)

    def test_selectivity(self):
        db = Database.from_facts({"A": [(1, 2), (1, 3), (2, 3), (4, 5)]})
        stats = collect_statistics(db)
        assert stats["A"].selectivity(0) == pytest.approx(1 / 3)

    def test_empty_relation_handled(self):
        stats = collect_statistics(Database())
        assert stats == {}

    def test_empty_relation_selectivity_is_default(self):
        stats = PredicateStatistics("A", cardinality=0, distinct=(0, 0))
        assert stats.selectivity(0) == DEFAULT_SELECTIVITY
        assert stats.selectivity(1) == DEFAULT_SELECTIVITY

    def test_zero_distinct_selectivity_is_default(self):
        # Degenerate hand-built statistics: rows exist but a position
        # records no distinct values.  Must not divide by zero.
        stats = PredicateStatistics("A", cardinality=5, distinct=(0,))
        assert stats.selectivity(0) == DEFAULT_SELECTIVITY


class TestEstimateRule:
    def test_single_scan(self):
        db = chain(20)
        stats = collect_statistics(db)
        rule = parse_rule("P(x, y) :- A(x, y).")
        estimate = estimate_rule(rule, stats)
        assert estimate.result_rows == pytest.approx(20)

    def test_join_shrinks_by_selectivity(self):
        db = chain(20)
        stats = collect_statistics(db)
        two_hop = parse_rule("P(x, z) :- A(x, y), A(y, z).")
        estimate = estimate_rule(two_hop, stats)
        # 20 * 20 / distinct(y-position) = 400/20 = 20-ish.
        assert 5 <= estimate.result_rows <= 40

    def test_constant_filters(self):
        db = chain(20)
        stats = collect_statistics(db)
        selective = parse_rule("P(y) :- A(0, y).")
        unselective = parse_rule("P(y) :- A(x, y).")
        assert (
            estimate_rule(selective, stats).result_rows
            < estimate_rule(unselective, stats).result_rows
        )

    def test_unknown_predicate_estimates_zero(self):
        stats = collect_statistics(chain(5))
        rule = parse_rule("P(x) :- Zzz(x).")
        assert estimate_rule(rule, stats).result_rows == 0

    def test_repeated_variable_filters(self):
        db = random_graph(20, 60, seed=1)
        stats = collect_statistics(db)
        loop = parse_rule("P(x) :- A(x, x).")
        any_edge = parse_rule("P(x) :- A(x, y).")
        assert (
            estimate_rule(loop, stats).result_rows
            < estimate_rule(any_edge, stats).result_rows
        )

    def test_negated_literal_is_a_filter(self):
        db = chain(10)
        stats = collect_statistics(db)
        rule = parse_rule("P(x, y) :- A(x, y), not B(x, y).")
        plain = parse_rule("P(x, y) :- A(x, y).")
        assert (
            estimate_rule(rule, stats).result_rows
            <= estimate_rule(plain, stats).result_rows
        )

    def test_order_parameter(self):
        db = chain(10)
        stats = collect_statistics(db)
        rule = parse_rule("P(x, z) :- A(x, y), A(y, z).")
        default = estimate_rule(rule, stats)
        reversed_order = estimate_rule(rule, stats, order=[1, 0])
        # Result size is order-independent under the model.
        assert default.result_rows == pytest.approx(reversed_order.result_rows)


class TestGuardRanking:
    def test_selective_guard_ranked_first(self):
        db = Database.from_facts(
            {
                "A": [(i, i + 1) for i in range(50)],
                "Small": [(0,)],
                "Big": [(i,) for i in range(50)],
            }
        )
        stats = collect_statistics(db)
        rule = parse_rule("P(x, y) :- A(x, y).")
        guards = [parse_atom("Big(x)"), parse_atom("Small(x)")]
        ranking = rank_guards(rule, guards, stats)
        assert str(ranking[0][0]) == "Small(x)"

    def test_benefit_below_one_for_selective_guard(self):
        db = Database.from_facts(
            {"A": [(i, i + 1) for i in range(50)], "Small": [(0,)]}
        )
        stats = collect_statistics(db)
        rule = parse_rule("P(x, z) :- A(x, y), A(y, z).")
        benefit = estimate_guard_benefit(rule, parse_atom("Small(x)"), stats)
        assert benefit < 1.0

    def test_end_to_end_with_augment(self):
        """Safety from augment + profitability from costs."""
        from repro.core.augment import addable_guards

        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        rule = program.rules[1]
        candidates = [parse_atom("A(x, v)"), parse_atom("G(y, u)")]
        safe = addable_guards(program, rule, candidates)
        db = chain(30)
        stats = collect_statistics(db)
        ranking = rank_guards(rule, safe, stats)
        assert len(ranking) == 2
        assert all(isinstance(score, float) for _, score in ranking)
