"""Chaos drills: seeded fault sweeps across every session-drivable engine.

Three invariants, checked over a matrix of engines and fault seeds:

1. **Typed failures only** -- under injection, an evaluation either
   succeeds or raises one of the resilience layer's typed exceptions
   (:class:`TransientStorageError`, :class:`ResourceLimitExceeded`);
   nothing else escapes, and no corrupt result is returned silently.
2. **Soundness of whatever completes** -- a run that does complete
   (possibly after retries) equals the unfaulted fixpoint, and a
   governed PARTIAL result is a subset of it (monotonicity).
3. **Bounded time** -- a deadline-governed run never outlives its
   budget by more than the per-attempt bound documented on
   :class:`EvaluationSession`.

A fourth invariant rides the ``crash`` seam
(:class:`TestCrashRecoverySweep`): an evaluation killed mid-round at a
seeded checkpoint-write stage is resumed from the latest durable
generation and converges to the **bitwise-identical** final database --
across every fixpoint engine, both storage backends, and with the
latest generation deliberately corrupted (checksum fallback).

Every schedule is derived from a seed, so any failure here replays
bit-for-bit from the parameters in the test id.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import Database, parse_atom, parse_program
from repro.engine import evaluate, get_engine
from repro.errors import ResourceLimitExceeded, SimulatedCrash, TransientStorageError
from repro.lang.serialize import database_to_json
from repro.resilience import (
    CheckpointManager,
    EvaluationSession,
    EvaluationStatus,
    FaultPlan,
    ResourceGovernor,
    RetryPolicy,
    corrupt_checkpoint,
)

TC = parse_program(
    """
    T(x, y) :- E(x, y).
    T(x, z) :- E(x, y), T(y, z).
    """
)
QUERY = parse_atom("T(0, x)")
SESSION_ENGINES = ("naive", "seminaive", "stratified", "magic", "supplementary", "topdown")
SEEDS = (1, 2, 3)


def chain(n: int) -> Database:
    return Database.from_facts({"E": [(i, i + 1) for i in range(n)]})


def _session(engine: str, **kwargs) -> EvaluationSession:
    query = QUERY if get_engine(engine).kind == "query" else None
    return EvaluationSession(TC, chain(12), engine=engine, query=query, **kwargs)


def _clean_result(engine: str) -> set:
    session = _session(engine)
    return set(session.run().database.atoms())


@pytest.mark.parametrize("engine", SESSION_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestFaultSweep:
    def test_typed_exceptions_and_sound_results(self, engine, seed):
        clean = _clean_result(engine)
        plan = FaultPlan.seeded(
            seed=seed,
            operations=("candidates", "add", "contains"),
            faults_per_operation=3,
            horizon=400,
        )
        session = _session(
            engine, fault_plan=plan, retry_policy=RetryPolicy(max_retries=2)
        )
        try:
            result = session.run()
        except TransientStorageError:
            return  # retries exhausted: the typed error is the contract
        assert result.status is EvaluationStatus.COMPLETE
        assert set(result.database.atoms()) == clean

    def test_enough_retries_always_complete(self, engine, seed):
        clean = _clean_result(engine)
        plan = FaultPlan.seeded(
            seed=seed,
            operations=("candidates", "add"),
            faults_per_operation=2,
            horizon=300,
        )
        # 4 one-shot faults total; 8 retries always outlast them.
        result = _session(
            engine, fault_plan=plan, retry_policy=RetryPolicy(max_retries=8)
        ).run()
        assert result.status is EvaluationStatus.COMPLETE
        assert set(result.database.atoms()) == clean
        assert result.attempts <= 1 + plan.injected


@pytest.mark.parametrize("engine", SESSION_ENGINES)
class TestGovernedDegradation:
    def test_partial_is_subset_of_unfaulted_fixpoint(self, engine):
        clean = _clean_result(engine)
        governor = ResourceGovernor(max_facts=15)
        result = _session(engine, governor=governor).run()
        assert result.status in (EvaluationStatus.PARTIAL, EvaluationStatus.COMPLETE)
        assert set(result.database.atoms()) <= clean
        if result.status is EvaluationStatus.PARTIAL:
            assert result.degradation is not None
            assert result.degradation.limit == "max_facts"

    def test_no_hang_past_deadline(self, engine):
        deadline = 0.05
        governor = ResourceGovernor(deadline_s=deadline, check_stride=1)
        started = time.perf_counter()
        result = _session(engine, governor=governor).run()
        elapsed = time.perf_counter() - started
        # One attempt, no retries: generous 20x slack absorbs slow CI.
        assert elapsed < deadline * 20 + 1.0
        assert result.status in (EvaluationStatus.PARTIAL, EvaluationStatus.COMPLETE)


class TestFaultsComposeWithGovernance:
    def test_latency_faults_trip_the_deadline(self):
        plan = FaultPlan.transient_at("candidates", [1, 2, 3], latency_s=0.05)
        governor = ResourceGovernor(deadline_s=0.01, check_stride=1)
        result = EvaluationSession(
            TC, chain(12), governor=governor, fault_plan=plan
        ).run()
        assert result.status is EvaluationStatus.PARTIAL
        assert result.degradation.limit == "deadline"

    def test_governor_resets_per_attempt(self):
        plan = FaultPlan.transient_at("add", [4])
        governor = ResourceGovernor(max_facts=5_000)
        result = EvaluationSession(
            TC,
            chain(10),
            governor=governor,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=3),
        ).run()
        assert result.status is EvaluationStatus.COMPLETE
        assert result.attempts == 2

    def test_partial_under_faults_still_subset(self):
        clean = set(evaluate(TC, chain(12)).database.atoms())
        plan = FaultPlan.seeded(seed=9, faults_per_operation=2, horizon=200)
        governor = ResourceGovernor(max_facts=12)
        session = EvaluationSession(
            TC,
            chain(12),
            governor=governor,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=6),
        )
        result = session.run()
        assert set(result.database.atoms()) <= clean


FIXPOINT_ENGINES = ("naive", "seminaive", "stratified")
BACKENDS = ("rows", "columnar")


def backend_chain(n: int, backend: str) -> Database:
    db = Database(backend=backend)
    for i in range(n):
        db.add_fact("E", i, i + 1)
    return db


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", FIXPOINT_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestCrashRecoverySweep:
    """Kill mid-round at a seeded write stage; resume; demand equality.

    The crash position is drawn from the seed over the stages of
    checkpoint writes 3+, so the kill lands mid-fixpoint with at least
    two durable generations behind it -- every run is replayable from
    its test id.
    """

    def _crash_position(self, seed: int) -> int:
        # Writes 1..2 occupy crash counts 1..6; land inside writes 3..6.
        return random.Random(seed).randint(7, 18)

    def test_resume_equals_uninterrupted(self, tmp_path, engine, backend, seed):
        baseline = database_to_json(
            evaluate(TC, backend_chain(12, backend), engine=engine).database
        )
        path = tmp_path / "ck.json"
        plan = FaultPlan.crash_at([self._crash_position(seed)])
        crashed = EvaluationSession(
            TC,
            backend_chain(12, backend),
            engine=engine,
            checkpoint_manager=CheckpointManager(path, fault_plan=plan),
        )
        with pytest.raises(SimulatedCrash):
            crashed.run()
        recovered = EvaluationSession(
            TC,
            backend_chain(12, backend),
            engine=engine,
            checkpoint_manager=CheckpointManager(path),
        )
        result = recovered.run()
        assert result.status is EvaluationStatus.COMPLETE
        assert database_to_json(result.database) == baseline

    def test_corrupt_latest_generation_still_recovers(
        self, tmp_path, engine, backend, seed
    ):
        baseline = database_to_json(
            evaluate(TC, backend_chain(12, backend), engine=engine).database
        )
        path = tmp_path / "ck.json"
        plan = FaultPlan.crash_at([self._crash_position(seed)])
        with pytest.raises(SimulatedCrash):
            EvaluationSession(
                TC,
                backend_chain(12, backend),
                engine=engine,
                checkpoint_manager=CheckpointManager(path, fault_plan=plan),
            ).run()
        # Flip a payload byte in the surviving latest generation: the
        # checksum must reject it and recovery fall back to .prev.
        corrupt_checkpoint(path, mode="flip")
        result = EvaluationSession(
            TC,
            backend_chain(12, backend),
            engine=engine,
            checkpoint_manager=CheckpointManager(path),
        ).run()
        assert result.status is EvaluationStatus.COMPLETE
        assert database_to_json(result.database) == baseline
