"""Unit tests for why-provenance and proof trees."""

from __future__ import annotations

import pytest

from repro import Database, evaluate, parse_program
from repro.engine.provenance import (
    derivation_tree,
    evaluate_with_provenance,
    explain,
)
from repro.errors import UnsafeRuleError
from repro.lang import Atom
from repro.workloads import chain, random_graph


class TestEvaluation:
    def test_same_database_as_plain_evaluation(self, tc):
        edb = random_graph(10, 20, seed=6)
        plain = evaluate(tc, edb).database
        traced = evaluate_with_provenance(tc, edb).database
        assert plain == traced

    def test_every_fact_justified(self, tc):
        edb = chain(6)
        result = evaluate_with_provenance(tc, edb)
        for atom in result.database.atoms():
            assert atom in result.justifications

    def test_input_facts_marked_given(self, tc):
        edb = chain(3)
        result = evaluate_with_provenance(tc, edb)
        justification = result.justifications[Atom.of("A", 0, 1)]
        assert justification.is_input
        assert "given" in str(justification)

    def test_derived_fact_has_rule_and_premises(self, tc):
        result = evaluate_with_provenance(tc, chain(3))
        justification = result.justifications[Atom.of("G", 0, 2)]
        assert justification.rule is not None
        assert len(justification.premises) == len(justification.rule.body)

    def test_premises_are_established_facts(self, tc):
        result = evaluate_with_provenance(tc, chain(5))
        for justification in result.justifications.values():
            for premise in justification.premises:
                assert premise in result.database

    def test_fact_rules_justified(self):
        program = parse_program(
            """
            A(1, 2).
            G(x, z) :- A(x, z).
            """
        )
        result = evaluate_with_provenance(program, Database())
        justification = result.justifications[Atom.of("A", 1, 2)]
        assert justification.rule is not None
        assert justification.premises == ()

    def test_negation_rejected(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            evaluate_with_provenance(program, Database())


class TestProofTrees:
    def test_tree_grounds_out_in_inputs(self, tc):
        result = evaluate_with_provenance(tc, chain(4))
        tree = derivation_tree(result, Atom.of("G", 0, 3))

        def leaves(node):
            if node.is_leaf:
                yield node
            for child in node.children:
                yield from leaves(child)

        for leaf in leaves(tree):
            assert leaf.rule is None  # every leaf is a given fact
            assert leaf.fact.predicate == "A"

    def test_tree_is_finite_and_acyclic(self, tc):
        # A cycle in the data must not create an infinite proof.
        from repro.workloads import cycle

        result = evaluate_with_provenance(tc, cycle(4))
        tree = derivation_tree(result, Atom.of("G", 0, 0))
        assert tree.depth() < 20
        assert tree.size() < 200

    def test_depth_reflects_recursion(self, tc):
        result = evaluate_with_provenance(tc, chain(8))
        shallow = derivation_tree(result, Atom.of("G", 0, 1))
        deep = derivation_tree(result, Atom.of("G", 0, 8))
        assert shallow.depth() < deep.depth()

    def test_unknown_fact_raises(self, tc):
        result = evaluate_with_provenance(tc, chain(2))
        with pytest.raises(KeyError):
            derivation_tree(result, Atom.of("G", 5, 9))


class TestExplain:
    def test_mentions_rule_and_given(self, tc):
        result = evaluate_with_provenance(tc, chain(3))
        text = explain(result, Atom.of("G", 0, 2))
        assert "(given)" in text
        assert "by:" in text
        assert "G(0, 2)" in text

    def test_input_fact_explained_as_given(self, tc):
        result = evaluate_with_provenance(tc, chain(2))
        text = explain(result, Atom.of("A", 0, 1))
        assert text.strip().endswith("(given)")

    def test_indentation_reflects_structure(self, tc):
        result = evaluate_with_provenance(tc, chain(4))
        text = explain(result, Atom.of("G", 0, 3))
        lines = text.splitlines()
        assert lines[0].startswith("G(0, 3)")
        assert any(line.startswith("  ") for line in lines[1:])
