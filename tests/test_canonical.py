"""Unit tests for canonical forms and isomorphism."""

from __future__ import annotations

from repro.lang import parse_program, parse_rule
from repro.lang.canonical import (
    canonical_renaming,
    canonicalize_program,
    canonicalize_rule,
    modulo_body_order,
    programs_isomorphic,
    rules_isomorphic,
)


class TestCanonicalizeRule:
    def test_renames_in_occurrence_order(self):
        rule = parse_rule("G(a, b) :- G(a, c), G(c, b).")
        assert str(canonicalize_rule(rule)) == "G(v0, v1) :- G(v0, v2), G(v2, v1)."

    def test_idempotent(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w).")
        once = canonicalize_rule(rule)
        assert canonicalize_rule(once) == once

    def test_constants_untouched(self):
        rule = parse_rule("G(a, 3) :- A(a, 3).")
        assert str(canonicalize_rule(rule)) == "G(v0, 3) :- A(v0, 3)."

    def test_renaming_covers_all_variables(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w).")
        mapping = canonical_renaming(rule)
        assert set(mapping) == rule.variables()

    def test_facts(self):
        rule = parse_rule("A(1, 2).")
        assert canonicalize_rule(rule) == rule


class TestRulesIsomorphic:
    def test_pure_renaming_detected(self):
        r1 = parse_rule("G(x, z) :- G(x, y), G(y, z).")
        r2 = parse_rule("G(u, w) :- G(u, v), G(v, w).")
        assert rules_isomorphic(r1, r2)

    def test_structural_difference_detected(self):
        r1 = parse_rule("G(x, z) :- G(x, y), G(y, z).")
        r2 = parse_rule("G(x, z) :- G(x, y), G(x, z).")
        assert not rules_isomorphic(r1, r2)

    def test_body_order_matters(self):
        r1 = parse_rule("G(x, z) :- A(x, y), B(y, z).")
        r2 = parse_rule("G(x, z) :- B(y, z), A(x, y).")
        assert not rules_isomorphic(r1, r2)

    def test_repeated_variables_significant(self):
        r1 = parse_rule("P(x) :- A(x, x).")
        r2 = parse_rule("P(x) :- A(x, y).")
        assert not rules_isomorphic(r1, r2)


class TestProgramsIsomorphic:
    def test_renaming_and_rule_order(self):
        p1 = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        p2 = parse_program(
            """
            G(p, q) :- G(p, r), G(r, q).
            G(a, b) :- A(a, b).
            """
        )
        assert programs_isomorphic(p1, p2)

    def test_different_programs(self, tc, tc_linear):
        assert not programs_isomorphic(tc, tc_linear)

    def test_canonical_program_is_stable(self, tc):
        assert canonicalize_program(tc) == canonicalize_program(
            canonicalize_program(tc)
        )

    def test_minimization_outputs_comparable(self):
        """The intended use: two atom orders give different survivors of
        a mutually-redundant pair; the results are isomorphic."""
        from repro.core.minimize import minimize_rule
        from repro.lang import Program

        rule = parse_rule("G(x) :- A(x, y), A(x, w).")
        forward = minimize_rule(rule, atom_order=lambda r: [0, 1])
        backward = minimize_rule(rule, atom_order=lambda r: [1, 0])
        assert forward != backward
        assert rules_isomorphic(forward, backward)


class TestModuloBodyOrder:
    def test_reordered_bodies_normalize_together(self):
        r1 = parse_rule("G(x, z) :- A(x, y), B(y, z).")
        r2 = parse_rule("G(x, z) :- B(y, z), A(x, y).")
        assert modulo_body_order(r1) == modulo_body_order(r2)

    def test_different_rules_stay_apart(self):
        r1 = parse_rule("G(x, z) :- A(x, y), B(y, z).")
        r2 = parse_rule("G(x, z) :- A(x, y), B(z, y).")
        assert modulo_body_order(r1) != modulo_body_order(r2)

    def test_stable(self):
        rule = parse_rule("G(x, z) :- B(y, z), A(x, y), A(x, q).")
        normalized = modulo_body_order(rule)
        assert modulo_body_order(normalized) == normalized
