"""Tests for the chase-termination certificate domain (fifth absint domain).

Covers the classification cascade (full-only ⊂ weakly acyclic ⊂ jointly
acyclic ⊂ sticky / weakly sticky ⊂ unknown), the evidence each class
carries, the certificate → chase-budget contract, and the CLI surface
(``analyze --tgds --select termination``).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import paper, parse_program, parse_tgd
from repro.analysis.absint.report import ANALYZE_SCHEMA_VERSION, analyze_program
from repro.analysis.absint.termination import (
    FULL_ONLY,
    JOINTLY_ACYCLIC,
    STICKY,
    UNKNOWN_CLASS,
    WEAKLY_ACYCLIC,
    WEAKLY_STICKY,
    classify_termination,
)
from repro.cli import main
from repro.core.chase import (
    ChaseBudget,
    Verdict,
    certified_budget,
    chase,
    check_model_containment,
    termination_certificate,
)
from repro.workloads.graphs import random_graph
from repro.workloads.suites import load


def _classify(*tgd_texts, program=None):
    return classify_termination(
        tuple(parse_tgd(t) for t in tgd_texts), program
    ).certificate


class TestClassification:
    def test_full_only(self):
        cert = _classify("A(x, y) -> B(x, y)", "A(x, y) & B(y, z) -> C(x, z)")
        assert cert.classification == FULL_ONLY
        assert cert.guarantees_termination
        assert cert.guarantees_decidability
        # No invented values: the bound is the input's value count.
        assert cert.value_bound(17) == 17

    def test_paper_example_11_is_weakly_acyclic(self):
        cert = classify_termination((paper.EX11_TGD,), paper.EX11_P1).certificate
        assert cert.classification == WEAKLY_ACYCLIC
        assert cert.guarantees_termination
        assert cert.special_cycle is None
        # The program's rules participate in the position graph.
        origins = {edge.origin for edge in cert.graph.edges}
        assert any(origin.startswith("rule[") for origin in origins)
        assert any(origin.startswith("tgd[") for origin in origins)

    def test_jointly_acyclic_but_not_weakly_acyclic(self):
        cert = _classify("P(x) -> E(x, y) & Q(y)", "E(x, y) & Q(x) -> P(x)")
        assert cert.classification == JOINTLY_ACYCLIC
        assert cert.guarantees_termination
        assert not cert.properties["weakly_acyclic"]
        assert cert.ja_cycle is None

    def test_sticky_but_not_terminating(self):
        cert = _classify("B(x, y) -> B(y, w)")
        assert cert.classification == STICKY
        assert cert.guarantees_decidability
        assert not cert.guarantees_termination
        assert cert.value_bound(10) is None

    def test_weakly_sticky(self):
        cert = _classify("R(x, y) -> R(y, w)", "R(x, y) & S(y, y2) -> T(x)")
        assert cert.classification == WEAKLY_STICKY
        assert cert.guarantees_decidability
        assert not cert.guarantees_termination
        # The repeated marked variable has a finite-rank occurrence.
        assert all(v.finite_rank_occurrences for v in cert.sticky_violations)

    def test_unknown_with_both_evidence_kinds(self):
        cert = _classify("R(x, y) -> R(y, w)", "R(x, y) & R(y, z) -> T(x, z)")
        assert cert.classification == UNKNOWN_CLASS
        assert not cert.guarantees_termination
        assert not cert.guarantees_decidability
        # Evidence: the special-edge cycle and the infinite-rank join.
        assert cert.special_cycle is not None
        assert any(edge.special for edge in cert.special_cycle)
        assert any(
            not v.finite_rank_occurrences for v in cert.sticky_violations
        )
        assert "special-edge cycle" in cert.describe()

    def test_hierarchy_flags_are_monotone(self):
        # A weakly acyclic set is also jointly acyclic (WA ⊂ JA).
        cert = _classify("A(x, y) -> F(x, w) & F(w, y)", "F(x, y) -> H(x, v)")
        assert cert.classification == WEAKLY_ACYCLIC
        assert cert.properties["jointly_acyclic"]

    def test_empty_tgd_set_with_program_is_full_only(self):
        cert = classify_termination((), paper.TC_NONLINEAR).certificate
        assert cert.classification == FULL_ONLY


#: A pool of tgds whose every subset is weakly acyclic (the position
#: graph flows strictly forward: A -> F/T -> H -> K).
WA_POOL = (
    "A(x, y) -> T(x, y)",
    "A(x, y) -> F(x, w) & F(w, y)",
    "F(x, y) -> H(x, v)",
    "H(x, y) -> K(y, v)",
    "A(x, y) & A(y, z) -> H(x, z)",
)


class TestCertifiedBudget:
    @given(
        picks=st.sets(
            st.integers(min_value=0, max_value=len(WA_POOL) - 1), min_size=1
        ),
        edges=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=40, deadline=None)
    def test_wa_sets_saturate_within_certified_budget(self, picks, edges, seed):
        """The property behind the UNKNOWN -> DISPROVED upgrade: for any
        weakly acyclic subset and any EDB, the chase saturates inside
        the budget the certificate computes from the EDB's values."""
        tgds = [parse_tgd(WA_POOL[i]) for i in sorted(picks)]
        cert = classify_termination(tuple(tgds)).certificate
        assert cert.guarantees_termination
        db = random_graph(8, edges, seed=seed)
        tiny = ChaseBudget(max_rounds=1, max_nulls=0, max_atoms=1)
        widened = certified_budget(tiny, cert, db, None, tgds)
        outcome = chase(db, None, tgds, budget=widened)
        assert outcome.saturated
        assert outcome.exhausted is None

    def test_budget_never_shrinks_below_base(self):
        cert = _classify("A(x, y) -> T(x, y)")
        base = ChaseBudget(max_rounds=10**6, max_nulls=10**6, max_atoms=10**7)
        widened = certified_budget(base, cert, random_graph(4, 3, seed=1), None, [])
        assert widened.max_rounds >= base.max_rounds
        assert widened.max_nulls >= base.max_nulls
        assert widened.max_atoms >= base.max_atoms

    def test_sticky_certificate_leaves_budget_unchanged(self):
        cert = _classify("B(x, y) -> B(y, w)")
        base = ChaseBudget(max_rounds=7, max_nulls=9, max_atoms=11)
        assert certified_budget(base, cert) is base


class TestDifferential:
    def test_certificate_upgrades_unknown_to_disproved(self):
        """The acceptance scenario: the seed's budget-bound UNKNOWN
        becomes DISPROVED once the weak-acyclicity certificate lets the
        chase run to genuine saturation."""
        p1 = parse_program("G(x, y) :- B(x, y).")
        p2 = parse_program("G(x, y) :- A(x, y).")
        levels = ["A", "H", "K", "L", "M", "N", "O"]
        tgds = [
            parse_tgd(f"{src}(x, y) -> {dst}(x, v) & {dst}(v, y)")
            for src, dst in zip(levels, levels[1:])
        ]
        budget = ChaseBudget(max_rounds=5, max_nulls=20)
        blind = check_model_containment(
            p1, tgds, p2, budget=budget, use_certificate=False
        )
        assert blind.verdict is Verdict.UNKNOWN
        assert blind.exhausted == "nulls"
        certified = check_model_containment(p1, tgds, p2, budget=budget)
        assert certified.verdict is Verdict.DISPROVED
        assert certified.certificate.classification == WEAKLY_ACYCLIC
        assert certified.exhausted is None

    def test_sticky_set_stays_unknown(self):
        """Sticky certifies decidable answering, not chase termination,
        so the seed behaviour (budget-bound UNKNOWN) is preserved."""
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(x, z) :- B(x, z).")
        tgd = parse_tgd("B(x, y) -> B(y, w)")
        budget = ChaseBudget(max_rounds=10, max_nulls=50)
        report = check_model_containment(p1, [tgd], p2, budget=budget)
        assert report.verdict is Verdict.UNKNOWN
        assert report.certificate.classification == STICKY
        assert report.exhausted is not None

    def test_chase_outcome_names_exhausted_limit(self):
        from repro import Database

        tgd = parse_tgd("G(x, y) -> G(y, w)")
        db = Database.from_facts({"G": [(0, 1)]})
        outcome = chase(db, None, [tgd], budget=ChaseBudget(max_rounds=3, max_nulls=1000))
        assert not outcome.saturated
        assert outcome.exhausted == "rounds"
        outcome = chase(db, None, [tgd], budget=ChaseBudget(max_rounds=1000, max_nulls=5))
        assert not outcome.saturated
        assert outcome.exhausted == "nulls"

    def test_data_exchange_suites_are_certified(self):
        for name, expected in (
            ("de-copy", FULL_ONLY),
            ("de-fusion", WEAKLY_ACYCLIC),
            ("de-chain", WEAKLY_ACYCLIC),
        ):
            workload = load(name)
            cert = termination_certificate(list(workload.tgds), workload.program)
            assert cert.classification == expected, name
            outcome = chase(
                workload.edb(8),
                workload.program,
                list(workload.tgds),
                certificate=cert,
            )
            assert outcome.saturated, name


#: Every key of the analyze document's ``termination`` block, sorted.
#: Extending the block requires an ANALYZE_SCHEMA_VERSION bump and an
#: update here -- this is the stability contract for consumers.
TERMINATION_BLOCK_KEYS = (
    "classification",
    "decidable",
    "ja_cycle",
    "marking_trace",
    "position_graph",
    "properties",
    "special_cycle",
    "sticky_violations",
    "terminating",
    "tgds",
)


class TestSchema:
    def test_schema_version_is_two(self):
        assert ANALYZE_SCHEMA_VERSION == 2

    def test_termination_block_keys_stable(self):
        report = analyze_program(
            parse_program("G(x, y) :- A(x, y)."),
            tgds=(parse_tgd("A(x, y) -> F(x, w) & F(w, y)"),),
        )
        block = report.to_dict()["termination"]
        assert tuple(sorted(block)) == TERMINATION_BLOCK_KEYS
        # The whole block must be JSON-serializable as-is.
        round_tripped = json.loads(json.dumps(block))
        assert round_tripped["classification"] == "weakly-acyclic"
        assert round_tripped["terminating"] is True

    def test_block_carries_evidence_for_unknown(self):
        report = analyze_program(
            parse_program("G(x, y) :- A(x, y)."),
            tgds=(
                parse_tgd("R(x, y) -> R(y, w)"),
                parse_tgd("R(x, y) & R(y, z) -> T(x, z)"),
            ),
        )
        block = report.to_dict()["termination"]
        assert block["classification"] == "unknown"
        assert block["special_cycle"]
        assert block["marking_trace"]


TC = "G(x, y) :- A(x, y).\nG(x, z) :- A(x, y), G(y, z).\n"


@pytest.fixture
def files(tmp_path):
    def write(name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return write


class TestCli:
    def test_select_termination_alias(self, files, capsys):
        code = main(
            [
                "analyze",
                files("tc.dl", TC),
                "--tgds",
                files("wa.tgds", "A(x, y) -> F(x, w) & F(w, y)\n"),
                "--select",
                "termination",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "weakly-acyclic" in out
        assert "weakly-acyclic-certified" in out

    def test_nonterminating_risk_fails_on_warning(self, files, capsys):
        code = main(
            [
                "analyze",
                files("tc.dl", TC),
                "--tgds",
                files(
                    "bad.tgds",
                    "R(x, y) -> R(y, w)\nR(x, y) & R(y, z) -> T(x, z)\n",
                ),
                "--select",
                "termination",
                "--fail-on",
                "warning",
            ]
        )
        assert code != 0
        assert "nonterminating-chase-risk" in capsys.readouterr().out

    def test_json_document_includes_tgds(self, files, capsys):
        code = main(
            [
                "analyze",
                files("tc.dl", TC),
                "--tgds",
                files("wa.tgds", "A(x, y) -> T(x, y)\n"),
                "--format",
                "json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["termination"]["classification"] == "full-only"
        assert data["termination"]["tgds"] == ["A(x, y) -> T(x, y)"]
