"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro import evaluate
from repro.core.containment import uniformly_equivalent
from repro.core.minimize import is_minimal, minimize_program
from repro.lang import Program
from repro.workloads import (
    SUITES,
    ancestry,
    chain,
    complete,
    cycle,
    grid,
    guarded_tc,
    layered_dag,
    load,
    merged,
    random_graph,
    random_positive_program,
    random_tree,
    same_generation,
    star,
    tc_nonlinear,
    tc_with_redundant_atoms,
    tc_with_redundant_rules,
    unary_marks,
    wide_rule,
)


class TestGraphGenerators:
    def test_chain_edge_count(self):
        assert chain(10).count("A") == 10

    def test_chain_offset(self):
        db = chain(2, offset=100)
        assert db.contains_tuple("A", tuple(map(_c, (100, 101))))

    def test_cycle(self):
        db = cycle(5)
        assert db.count("A") == 5

    def test_cycle_closure_is_complete(self, tc):
        out = evaluate(tc, cycle(4)).database
        assert out.count("G") == 16

    def test_star(self):
        assert star(7).count("A") == 7

    def test_complete(self):
        assert complete(4).count("A") == 12

    def test_random_graph_exact_edges(self):
        assert random_graph(10, 25, seed=1).count("A") == 25

    def test_random_graph_deterministic(self):
        assert random_graph(10, 20, seed=5) == random_graph(10, 20, seed=5)

    def test_random_graph_seed_matters(self):
        assert random_graph(10, 20, seed=5) != random_graph(10, 20, seed=6)

    def test_random_graph_too_many_edges(self):
        with pytest.raises(ValueError):
            random_graph(3, 10, seed=0)

    def test_random_tree_edge_count(self):
        assert random_tree(20, seed=2).count("A") == 19

    def test_grid_edges(self):
        # 3x3 grid: 2 right-edges per row * 3 + 2 down * 3 = 12.
        assert grid(3, 3).count("A") == 12

    def test_layered_dag(self):
        db = layered_dag(layers=3, width=4, fanout=2, seed=1)
        assert db.count("A") == 2 * 4 * 2

    def test_unary_marks(self):
        assert unary_marks(range(5)).count("C") == 5

    def test_merged(self):
        db = merged(chain(3), unary_marks(range(4)))
        assert db.count("A") == 3 and db.count("C") == 4

    def test_custom_predicate(self):
        assert chain(3, predicate="E").predicates == {"E"}


class TestProgramFamilies:
    def test_planted_atoms_are_redundant(self):
        program = tc_with_redundant_atoms(3)
        assert uniformly_equivalent(program, tc_nonlinear())

    def test_planted_rules_are_redundant(self):
        program = tc_with_redundant_rules(2)
        assert uniformly_equivalent(program, tc_nonlinear())

    def test_guarded_tc_not_uniformly_equivalent(self):
        # The guards matter under uniform equivalence (Example 4's point).
        assert not uniformly_equivalent(guarded_tc(1), tc_nonlinear())

    def test_guarded_tc_equivalent_on_data(self, tc):
        program = guarded_tc(2)
        for n in (3, 6):
            edb = chain(n)
            assert evaluate(program, edb).database == evaluate(tc, edb).database

    def test_wide_rule_redundancy_by_construction(self):
        rule = wide_rule(core_atoms=3, redundant_atoms=4, seed=9)
        minimized = minimize_program(Program.of(rule))
        assert len(minimized.atom_removals) == 4

    def test_wide_rule_core_is_minimal(self):
        rule = wide_rule(core_atoms=3, redundant_atoms=0, seed=9)
        assert is_minimal(Program.of(rule))

    def test_wide_rule_deterministic(self):
        assert wide_rule(3, 2, seed=4) == wide_rule(3, 2, seed=4)

    def test_random_program_parses_and_evaluates(self):
        program = random_positive_program(
            rules=5, max_body=3, predicates=2, variables_per_rule=4, seed=3
        )
        edb = merged(
            random_graph(5, 8, seed=1, predicate="E0"),
            random_graph(5, 8, seed=2, predicate="E1"),
        )
        out = evaluate(program, edb).database
        assert len(out) >= len(edb)

    def test_same_generation_reflexive_on_persons(self):
        program = same_generation()
        edb = merged(
            random_tree(8, seed=1, predicate="Par"),
            unary_marks(range(8), predicate="Per"),
        )
        out = evaluate(program, edb).database
        for i in range(8):
            assert out.contains_tuple("Sg", tuple(map(_c, (i, i))))

    def test_ancestry(self):
        program = ancestry()
        edb = chain(4, predicate="Par")
        out = evaluate(program, edb).database
        assert out.count("Anc") == 10


class TestSuites:
    def test_all_suites_load(self):
        for name in SUITES:
            workload = load(name)
            assert workload.name == name
            assert len(workload.edb(5)) > 0

    def test_unknown_suite(self):
        with pytest.raises(KeyError, match="unknown workload"):
            load("nope")

    def test_expected_minimal_is_truthful(self):
        workload = load("tc+2atoms/chain")
        result = minimize_program(workload.program)
        assert result.program == workload.expected_minimal


def _c(v):
    from repro.lang.terms import Constant

    return Constant(v)
