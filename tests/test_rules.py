"""Unit tests for repro.lang.rules."""

from __future__ import annotations

import pytest

from repro.errors import UnsafeRuleError
from repro.lang.atoms import Atom, Literal
from repro.lang.rules import Rule
from repro.lang.terms import Constant, Variable

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def tc_recursive() -> Rule:
    return Rule(
        Atom("G", (x, z)),
        [Literal(Atom("G", (x, y))), Literal(Atom("G", (y, z)))],
    )


class TestSafety:
    def test_head_variable_must_appear_in_body(self):
        with pytest.raises(UnsafeRuleError):
            Rule(Atom("G", (x, z)), [Literal(Atom("A", (x, x)))])

    def test_ground_fact_allowed(self):
        rule = Rule(Atom.of("A", 1, 2), [])
        assert rule.is_fact

    def test_nonground_empty_body_rejected(self):
        # The paper: Anc(x, x) :- . is not allowed.
        with pytest.raises(UnsafeRuleError):
            Rule(Atom("Anc", (x, x)), [])

    def test_negated_literal_variables_must_be_positive_bound(self):
        with pytest.raises(UnsafeRuleError):
            Rule(
                Atom("P", (x,)),
                [Literal(Atom("A", (x,))), Literal(Atom("B", (y,)), positive=False)],
            )

    def test_safe_negation_accepted(self):
        rule = Rule(
            Atom("P", (x,)),
            [Literal(Atom("A", (x,))), Literal(Atom("B", (x,)), positive=False)],
        )
        assert not rule.is_positive

    def test_head_constant_is_fine(self):
        rule = Rule(Atom.of("G", x, 3), [Literal(Atom("A", (x,)))])
        assert rule.head.args[1] == Constant(3)


class TestAccessors:
    def test_body_accepts_plain_atoms(self):
        rule = Rule(Atom("G", (x,)), [Atom("A", (x,))])
        assert rule.body[0] == Literal(Atom("A", (x,)))

    def test_variables(self):
        assert tc_recursive().variables() == {x, y, z}

    def test_predicates(self):
        assert tc_recursive().predicates() == {"G"}
        assert tc_recursive().body_predicates() == {"G"}

    def test_body_atoms_positive_only(self):
        rule = Rule(
            Atom("P", (x,)),
            [Literal(Atom("A", (x,))), Literal(Atom("B", (x,)), positive=False)],
        )
        with pytest.raises(UnsafeRuleError):
            rule.body_atoms()

    def test_positive_negative_iterators(self):
        rule = Rule(
            Atom("P", (x,)),
            [Literal(Atom("A", (x,))), Literal(Atom("B", (x,)), positive=False)],
        )
        assert [a.predicate for a in rule.positive_atoms()] == ["A"]
        assert [a.predicate for a in rule.negative_atoms()] == ["B"]

    def test_str_roundtrippable(self):
        assert str(tc_recursive()) == "G(x, z) :- G(x, y), G(y, z)."

    def test_fact_str(self):
        assert str(Rule(Atom.of("A", 1, 2), [])) == "A(1, 2)."


class TestTransforms:
    def test_substitute(self):
        rule = tc_recursive().substitute({y: Constant(5)})
        assert str(rule) == "G(x, z) :- G(x, 5), G(5, z)."

    def test_rename_variables(self):
        renamed = tc_recursive().rename_variables("_1")
        assert renamed.variables() == {Variable("x_1"), Variable("y_1"), Variable("z_1")}

    def test_rename_produces_disjoint_rule(self):
        original = tc_recursive()
        renamed = original.rename_variables("_q")
        assert not (original.variables() & renamed.variables())

    def test_without_body_literal(self):
        rule = Rule(
            Atom("G", (x, z)),
            [Literal(Atom("G", (x, z))), Literal(Atom("A", (x, w)))],
        )
        slimmer = rule.without_body_literal(1)
        assert len(slimmer.body) == 1

    def test_without_body_literal_unsafe_raises(self):
        rule = Rule(Atom("G", (x,)), [Literal(Atom("A", (x,)))])
        with pytest.raises(UnsafeRuleError):
            rule.without_body_literal(0)

    def test_without_body_literal_bad_index(self):
        with pytest.raises(IndexError):
            tc_recursive().without_body_literal(9)

    def test_can_drop_body_literal(self):
        rule = Rule(
            Atom("G", (x, z)),
            [Literal(Atom("G", (x, z))), Literal(Atom("A", (x, w)))],
        )
        assert rule.can_drop_body_literal(1)
        assert not rule.can_drop_body_literal(0)  # would strand z

    def test_with_body(self):
        rule = tc_recursive().with_body([Atom("A", (x, z))])
        assert str(rule) == "G(x, z) :- A(x, z)."


class TestEquality:
    def test_equal_rules(self):
        assert tc_recursive() == tc_recursive()

    def test_body_order_matters_syntactically(self):
        r1 = Rule(Atom("G", (x, z)), [Atom("G", (x, y)), Atom("G", (y, z))])
        r2 = Rule(Atom("G", (x, z)), [Atom("G", (y, z)), Atom("G", (x, y))])
        assert r1 != r2

    def test_hashable(self):
        assert len({tc_recursive(), tc_recursive()}) == 1
