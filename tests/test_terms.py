"""Unit tests for repro.lang.terms."""

from __future__ import annotations

import pytest

from repro.lang.terms import (
    Constant,
    FrozenConstant,
    Null,
    NullFactory,
    Variable,
    is_ground_term,
    term_sort_key,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_not_ground(self):
        assert not Variable("x").is_ground
        assert not is_ground_term(Variable("x"))

    def test_str(self):
        assert str(Variable("foo")) == "foo"


class TestConstant:
    def test_int_and_str_distinct(self):
        assert Constant(1) != Constant("1")

    def test_equality(self):
        assert Constant(3) == Constant(3)
        assert Constant("a") == Constant("a")

    def test_is_ground(self):
        assert Constant(3).is_ground

    def test_str_int(self):
        assert str(Constant(10)) == "10"

    def test_str_string_quoted(self):
        assert str(Constant("alice")) == "'alice'"


class TestNull:
    def test_counts_as_ground(self):
        # Section VIII: atoms with nulls are viewed as ground atoms.
        assert Null(1).is_ground

    def test_identity(self):
        assert Null(1) == Null(1)
        assert Null(1) != Null(2)

    def test_distinct_from_constant(self):
        assert Null(1) != Constant(1)

    def test_str(self):
        assert str(Null(23)) == "@23"


class TestFrozenConstant:
    def test_counts_as_ground(self):
        assert FrozenConstant("x").is_ground

    def test_distinct_from_variable_and_constant(self):
        assert FrozenConstant("x") != Variable("x")
        assert FrozenConstant("x") != Constant("x")

    def test_serial_disambiguates(self):
        assert FrozenConstant("x", 0) != FrozenConstant("x", 1)

    def test_str(self):
        assert str(FrozenConstant("x")) == "x#"
        assert str(FrozenConstant("x", 2)) == "x#2"


class TestNullFactory:
    def test_fresh_never_repeats(self):
        factory = NullFactory()
        issued = [factory.fresh() for _ in range(100)]
        assert len(set(issued)) == 100

    def test_issued_counter(self):
        factory = NullFactory()
        assert factory.issued == 0
        factory.fresh()
        factory.fresh()
        assert factory.issued == 2

    def test_start_offset(self):
        factory = NullFactory(start=5)
        assert factory.fresh() == Null(5)


class TestSortKey:
    def test_total_order_over_mixed_terms(self):
        terms = [Variable("x"), Constant(1), Null(1), FrozenConstant("x"), Constant("a")]
        ordered = sorted(terms, key=term_sort_key)
        # Constants first, then nulls, then frozen constants, then variables.
        assert isinstance(ordered[0], Constant)
        assert isinstance(ordered[-1], Variable)

    def test_int_before_str_constants(self):
        assert term_sort_key(Constant(5)) < term_sort_key(Constant("a"))

    def test_deterministic(self):
        terms = [Constant(2), Constant(1), Null(3), Variable("b"), Variable("a")]
        assert sorted(terms, key=term_sort_key) == sorted(terms, key=term_sort_key)
