"""Property-based tests for the extension modules
(canonical forms, serialization, unfolding, top-down engine, augmentation)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Database, evaluate, parse_program
from repro.core.augment import atom_is_addable
from repro.core.containment import uniformly_contains
from repro.core.unfold import unfold_atom
from repro.engine.topdown import tabled_query
from repro.lang import Atom, Program, Rule, Literal
from repro.lang.canonical import canonicalize_rule, rules_isomorphic
from repro.lang.serialize import (
    database_from_json,
    database_to_json,
    program_from_json,
    program_to_json,
    rule_from_dict,
    rule_to_dict,
)
from repro.lang.terms import Constant, Variable
from repro.workloads import random_positive_program, tc_linear, wide_rule

variables_st = st.sampled_from([Variable(n) for n in "xyzuvw"])
constants_st = st.integers(min_value=0, max_value=4).map(Constant)
terms_st = st.one_of(variables_st, constants_st)


@st.composite
def safe_rules(draw):
    """Random safe positive rules."""
    body_size = draw(st.integers(min_value=1, max_value=4))
    body = []
    for _ in range(body_size):
        pred = draw(st.sampled_from(["A", "B"]))
        args = tuple(draw(terms_st) for _ in range(2))
        body.append(Literal(Atom(pred, args)))
    body_vars = sorted(
        {v for lit in body for v in lit.atom.variables()}, key=lambda v: v.name
    )
    if body_vars:
        head_args = tuple(
            draw(st.sampled_from(body_vars)) for _ in range(2)
        )
    else:
        head_args = (Constant(0), Constant(1))
    return Rule(Atom("H", head_args), body)


class TestCanonicalLaws:
    @given(safe_rules())
    def test_canonicalization_idempotent(self, rule):
        once = canonicalize_rule(rule)
        assert canonicalize_rule(once) == once

    @given(safe_rules())
    def test_rule_isomorphic_to_itself_renamed(self, rule):
        renamed = rule.rename_variables("_q")
        assert rules_isomorphic(rule, renamed)

    @given(safe_rules())
    def test_canonical_preserves_structure(self, rule):
        canonical = canonicalize_rule(rule)
        assert len(canonical.body) == len(rule.body)
        assert canonical.head.predicate == rule.head.predicate
        assert [lit.predicate for lit in canonical.body] == [
            lit.predicate for lit in rule.body
        ]

    @given(safe_rules())
    def test_canonical_semantically_equivalent(self, rule):
        # Renaming never changes uniform semantics.
        original = Program.of(rule)
        canonical = Program.of(canonicalize_rule(rule))
        assert uniformly_contains(original, canonical)
        assert uniformly_contains(canonical, original)


class TestSerializationLaws:
    @given(safe_rules())
    def test_rule_roundtrip(self, rule):
        assert rule_from_dict(rule_to_dict(rule)) == rule

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_program_roundtrip(self, seed):
        program = random_positive_program(
            rules=4, max_body=3, predicates=2, variables_per_rule=4, seed=seed
        )
        assert program_from_json(program_to_json(program)) == program

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=10,
        )
    )
    def test_database_roundtrip(self, rows):
        db = Database.from_facts({"A": rows})
        assert database_from_json(database_to_json(db)) == db


class TestUnfoldLaws:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, deadline=None)
    def test_unfolded_always_uniformly_contained(self, seed):
        rng = random.Random(seed)
        program = random_positive_program(
            rules=4, max_body=2, predicates=2, variables_per_rule=3, seed=seed
        )
        # Pick any rule with an IDB body atom.
        idb = program.idb_predicates
        targets = [
            (rule, pos)
            for rule in program.rules
            for pos, lit in enumerate(rule.body)
            if lit.predicate in idb
        ]
        if not targets:
            return
        rule, pos = rng.choice(targets)
        result = unfold_atom(program, rule, pos)
        assert uniformly_contains(container=program, contained=result.program)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_unfolding_preserves_edb_semantics(self, seed):
        # On EDB-only inputs, the unfolded program agrees with the
        # original (plain equivalence of the unfolding transformation).
        rng = random.Random(seed)
        program = tc_linear()
        result = unfold_atom(program, program.rules[1], 1)
        db = Database()
        for _ in range(rng.randint(1, 10)):
            db.add_fact("A", rng.randrange(5), rng.randrange(5))
        assert evaluate(program, db).database == evaluate(result.program, db).database


class TestTopDownAgreesWithBottomUp:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        source=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=20, deadline=None)
    def test_reachability_queries(self, seed, source):
        from repro.lang import parse_atom
        from repro.lang.terms import Constant

        rng = random.Random(seed)
        program = tc_linear()
        db = Database()
        for _ in range(rng.randint(1, 14)):
            db.add_fact("A", rng.randrange(8), rng.randrange(8))
        query = parse_atom(f"G({source}, x)")
        tabled = tabled_query(program, db, query)
        full = evaluate(program, db).database
        expected = {
            row for row in full.tuples("G") if row[0] == Constant(source)
        }
        assert set(tabled.answers.tuples("G")) == expected


class TestAugmentLaws:
    @given(
        core=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=2_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_weakened_copies_always_addable(self, core, seed):
        rng = random.Random(seed)
        rule = wide_rule(core_atoms=core, redundant_atoms=0, seed=seed)
        program = Program.of(rule)
        # Weaken a random body atom: replace one position with a fresh var.
        body = rule.body_atoms()
        template = rng.choice(body)
        position = rng.randrange(template.arity)
        args = list(template.args)
        args[position] = Variable("fresh_q")
        guard = Atom(template.predicate, tuple(args))
        assert atom_is_addable(program, rule, guard)
