"""Unit tests for the observability layer: tracer, metrics, schema."""

from __future__ import annotations

import json

import pytest

from repro import Database, evaluate, parse_program
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    ObservationSummary,
    metrics_registry,
)
from repro.obs.schema import ALL_ENGINES, BENCH_SCHEMA, validate_bench_document
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    aggregate_spans,
    render_spans,
    trace,
    tracer,
    tracing,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics_registry().reset()
    yield
    metrics_registry().reset()


class TestSpanBasics:
    def test_disabled_by_default_returns_null_span(self):
        assert not tracer().enabled
        span = trace("anything")
        assert span is NULL_SPAN

    def test_null_span_is_falsy_and_inert(self):
        assert not NULL_SPAN
        with NULL_SPAN as span:
            span.set(a=1)
            span.add("c")
            span.watch(None)
        assert tracer().roots == []

    def test_disabled_mode_records_nothing(self):
        with trace("outer"):
            with trace("inner"):
                pass
        assert tracer().roots == []

    def test_nesting(self):
        with tracing() as spans:
            with trace("outer", kind="demo"):
                with trace("inner.a"):
                    pass
                with trace("inner.b"):
                    pass
        assert [s.name for s in spans] == ["outer"]
        outer = spans[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert outer.attributes["kind"] == "demo"
        assert outer.elapsed >= 0.0

    def test_counters_and_walk(self):
        with tracing() as spans:
            with trace("outer") as outer:
                outer.add("hits", 2)
                with trace("inner") as inner:
                    inner.add("hits", 3)
        outer = spans[0]
        assert outer.counters["hits"] == 2
        assert outer.total("hits") == 5  # walk() sums the subtree
        assert [s.name for s in outer.walk()] == ["outer", "inner"]

    def test_tracing_restores_previous_state(self):
        before = tracer().enabled
        with tracing():
            assert tracer().enabled
            with trace("x"):
                pass
        assert tracer().enabled == before
        assert tracer().roots == []

    def test_to_dict_round_trips_through_json(self):
        with tracing() as spans:
            with trace("outer", kind="demo") as outer:
                outer.add("hits")
                with trace("inner"):
                    pass
        doc = json.loads(json.dumps(spans[0].to_dict()))
        assert doc["name"] == "outer"
        assert doc["counters"] == {"hits": 1}
        assert [c["name"] for c in doc["children"]] == ["inner"]


class TestWatch:
    def test_watch_attaches_stat_deltas(self):
        from repro.engine.stats import EvaluationStats

        stats = EvaluationStats()
        stats.subgoal_attempts = 10
        with tracing() as spans:
            with trace("work") as span:
                span.watch(stats)
                stats.subgoal_attempts += 7
                stats.rule_firings += 2
        counters = spans[0].counters
        assert counters["subgoal_attempts"] == 7
        assert counters["rule_firings"] == 2
        assert "iterations" not in counters  # zero deltas are dropped


class TestEngineSpans:
    def test_seminaive_emits_rule_spans(self, tc, ex2_edb):
        with tracing() as spans:
            evaluate(tc, ex2_edb)
        assert [s.name for s in spans] == ["seminaive.eval"]
        root = spans[0]
        names = {s.name for s in root.walk()}
        assert "seminaive.iteration" in names
        assert "seminaive.rule" in names
        # The root's watched counters agree with a fresh evaluation.
        result = evaluate(tc, ex2_edb)
        assert root.counters["subgoal_attempts"] == result.stats.subgoal_attempts
        assert root.counters["index_probes"] > 0

    def test_evaluation_outside_tracing_has_no_spans(self, tc, ex2_edb):
        evaluate(tc, ex2_edb)
        assert tracer().roots == []

    def test_aggregate_rule_spans(self, tc, ex2_edb):
        with tracing() as spans:
            evaluate(tc, ex2_edb)
        buckets = aggregate_spans(spans, "seminaive.rule", by="rule")
        assert set(buckets) == {0, 1}  # tc has two rules
        total = sum(b.get("subgoal_attempts", 0) for b in buckets.values())
        assert total == evaluate(tc, ex2_edb).stats.subgoal_attempts

    def test_render_spans_depth_filter(self, tc, ex2_edb):
        with tracing() as spans:
            evaluate(tc, ex2_edb)
        shallow = render_spans(spans, max_depth=0)
        assert "seminaive.eval" in shallow
        assert "seminaive.iteration" not in shallow
        deep = render_spans(spans, max_depth=2)
        assert "seminaive.rule" in deep


class TestMetricsRegistry:
    def test_evaluation_feeds_registry(self, tc, ex2_edb):
        registry = metrics_registry()
        result = evaluate(tc, ex2_edb)
        assert registry.counter("evaluation.runs") == 1
        assert registry.counter("evaluation.seminaive.runs") == 1
        assert (
            registry.counter("evaluation.subgoal_attempts")
            == result.stats.subgoal_attempts
        )
        assert registry.observation("evaluation.elapsed_s").count == 1

    def test_containment_feeds_registry(self, tc):
        from repro.core import check_uniform_containment

        registry = metrics_registry()
        check_uniform_containment(container=tc, contained=tc)
        assert registry.counter("containment.rule_tests") == len(tc.rules)

    def test_observation_summary(self):
        summary = ObservationSummary()
        for value in (2.0, 4.0, 6.0):
            summary.record(value)
        assert summary.count == 3
        assert summary.mean == 4.0
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0

    def test_export_round_trip(self):
        registry = MetricsRegistry()
        registry.increment("a.b", 3)
        registry.observe("lat", 0.5)
        registry.observe("lat", 1.5)
        doc = registry.export()
        assert doc["schema"] == METRICS_SCHEMA
        clone = MetricsRegistry.from_export(json.loads(json.dumps(doc)))
        assert clone.counter("a.b") == 3
        assert clone.observation("lat").count == 2
        assert clone.export() == doc

    def test_from_export_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_export({"schema": "bogus/9"})

    def test_reset(self):
        registry = MetricsRegistry()
        registry.increment("x")
        registry.reset()
        assert len(registry) == 0


def _valid_doc():
    return {
        "schema": BENCH_SCHEMA,
        "generated": "2026-08-05",
        "quick": True,
        "engines": ["seminaive"],
        "entries": [
            {
                "workload": "magic-tc",
                "size": 12,
                "engine": "seminaive",
                "stats": {"elapsed_s": 0.001, "subgoal_attempts": 10},
            }
        ],
    }


class TestBenchSchema:
    def test_valid_document(self):
        assert validate_bench_document(_valid_doc()) == []

    def test_unknown_schema_marker(self):
        doc = _valid_doc()
        doc["schema"] = "other/1"
        assert any("schema" in e for e in validate_bench_document(doc))

    def test_bad_date(self):
        doc = _valid_doc()
        doc["generated"] = "yesterday"
        assert validate_bench_document(doc)

    def test_unknown_engine(self):
        doc = _valid_doc()
        doc["entries"][0]["engine"] = "warp"
        doc["engines"] = ["warp"]
        assert validate_bench_document(doc)

    def test_missing_elapsed(self):
        doc = _valid_doc()
        del doc["entries"][0]["stats"]["elapsed_s"]
        assert any("elapsed_s" in e for e in validate_bench_document(doc))

    def test_duplicate_entry_key(self):
        doc = _valid_doc()
        doc["entries"].append(dict(doc["entries"][0]))
        assert any("duplicate" in e for e in validate_bench_document(doc))

    def test_engines_list_must_match_entries(self):
        doc = _valid_doc()
        doc["engines"] = ["seminaive", "naive"]
        assert validate_bench_document(doc)

    def test_all_engines_is_complete(self):
        assert set(ALL_ENGINES) == {
            "naive",
            "seminaive",
            "magic",
            "supplementary",
            "topdown",
            "incremental",
            "chase",
        }
