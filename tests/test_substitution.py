"""Unit tests for repro.lang.substitution."""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.substitution import Substitution, match_atom, unify_atoms
from repro.lang.terms import Constant, FrozenConstant, Variable

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
c1, c2, c3 = Constant(1), Constant(2), Constant(3)


class TestSubstitution:
    def test_empty(self):
        subst = Substitution.empty()
        assert len(subst) == 0
        assert subst.apply_term(x) == x

    def test_bind_returns_new(self):
        base = Substitution.empty()
        extended = base.bind(x, c1)
        assert len(base) == 0
        assert extended[x] == c1

    def test_bind_same_value_is_noop(self):
        subst = Substitution({x: c1})
        assert subst.bind(x, c1) is subst

    def test_bind_conflict_raises(self):
        subst = Substitution({x: c1})
        with pytest.raises(ValueError):
            subst.bind(x, c2)

    def test_bind_many(self):
        subst = Substitution.empty().bind_many({x: c1, y: c2})
        assert subst[x] == c1 and subst[y] == c2

    def test_apply_atom(self):
        subst = Substitution({x: c1})
        assert subst.apply_atom(Atom("A", (x, y))) == Atom("A", (c1, y))

    def test_mapping_protocol(self):
        subst = Substitution({x: c1, y: c2})
        assert set(subst) == {x, y}
        assert dict(subst) == {x: c1, y: c2}

    def test_equality_with_plain_mapping(self):
        assert Substitution({x: c1}) == {x: c1}

    def test_hashable(self):
        assert hash(Substitution({x: c1})) == hash(Substitution({x: c1}))

    def test_compose_applies_left_then_right(self):
        left = Substitution({x: y})
        right = Substitution({y: c1})
        composed = left.compose(right)
        atom = Atom("A", (x,))
        assert composed.apply_atom(atom) == right.apply_atom(left.apply_atom(atom))

    def test_compose_keeps_right_only_bindings(self):
        composed = Substitution({x: c1}).compose(Substitution({y: c2}))
        assert composed[y] == c2

    def test_restrict(self):
        subst = Substitution({x: c1, y: c2}).restrict([x])
        assert dict(subst) == {x: c1}

    def test_is_ground(self):
        assert Substitution({x: c1}).is_ground()
        assert not Substitution({x: y}).is_ground()


class TestMatchAtom:
    def test_binds_variables(self):
        got = match_atom(Atom("A", (x, y)), Atom("A", (c1, c2)))
        assert got == {x: c1, y: c2}

    def test_repeated_variable_must_agree(self):
        assert match_atom(Atom("A", (x, x)), Atom("A", (c1, c1))) is not None
        assert match_atom(Atom("A", (x, x)), Atom("A", (c1, c2))) is None

    def test_pattern_constant_must_equal(self):
        assert match_atom(Atom("A", (c1, x)), Atom("A", (c1, c2))) is not None
        assert match_atom(Atom("A", (c1, x)), Atom("A", (c2, c2))) is None

    def test_predicate_mismatch(self):
        assert match_atom(Atom("A", (x,)), Atom("B", (c1,))) is None

    def test_arity_mismatch(self):
        assert match_atom(Atom("A", (x,)), Atom("A", (c1, c2))) is None

    def test_extends_existing_substitution(self):
        base = Substitution({x: c1})
        got = match_atom(Atom("A", (x, y)), Atom("A", (c1, c2)), base)
        assert got == {x: c1, y: c2}

    def test_conflict_with_existing_substitution(self):
        base = Substitution({x: c3})
        assert match_atom(Atom("A", (x,)), Atom("A", (c1,)), base) is None

    def test_no_new_bindings_returns_same_object(self):
        base = Substitution({x: c1})
        assert match_atom(Atom("A", (x,)), Atom("A", (c1,)), base) is base

    def test_matches_frozen_constants(self):
        frozen = FrozenConstant("q")
        got = match_atom(Atom("A", (x,)), Atom("A", (frozen,)))
        assert got == {x: frozen}


class TestUnifyAtoms:
    def test_ground_identical(self):
        assert unify_atoms(Atom.of("A", 1), Atom.of("A", 1)) is not None

    def test_ground_different(self):
        assert unify_atoms(Atom.of("A", 1), Atom.of("A", 2)) is None

    def test_variable_to_constant_both_sides(self):
        got = unify_atoms(Atom("A", (x, c2)), Atom("A", (c1, y)))
        assert got[x] == c1 and got[y] == c2

    def test_variable_to_variable(self):
        got = unify_atoms(Atom("A", (x,)), Atom("A", (y,)))
        assert got is not None
        # One variable is bound to the other.
        assert got.apply_term(x) == got.apply_term(y) or got.apply_term(y) in (x, y)

    def test_chain_resolution(self):
        # x=y and then y=1 must give x -> 1 after normalization.
        got = unify_atoms(Atom("A", (x, y)), Atom("A", (y, c1)))
        assert got.apply_term(x) == c1
        assert got.apply_term(y) == c1

    def test_repeated_variable_forces_equality(self):
        got = unify_atoms(Atom("A", (x, x)), Atom("A", (c1, y)))
        assert got is not None
        assert got.apply_term(y) == c1

    def test_clash_through_repeats(self):
        assert unify_atoms(Atom("A", (x, x)), Atom("A", (c1, c2))) is None

    def test_predicate_mismatch(self):
        assert unify_atoms(Atom("A", (x,)), Atom("B", (x,))) is None
