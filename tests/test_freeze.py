"""Unit tests for repro.lang.freeze (Section VI's canonical databases)."""

from __future__ import annotations

from repro.lang import parse_rule, parse_tgd
from repro.lang.freeze import freeze_atoms, freeze_rule
from repro.lang.terms import FrozenConstant


class TestFreezeRule:
    def test_all_atoms_become_ground(self):
        frozen = freeze_rule(parse_rule("G(x, z) :- G(x, y), G(y, z)."))
        assert frozen.head.is_ground
        assert all(a.is_ground for a in frozen.body)

    def test_distinct_variables_get_distinct_constants(self):
        frozen = freeze_rule(parse_rule("G(x, z) :- G(x, y), G(y, z)."))
        constants = set(frozen.theta.values())
        assert len(constants) == 3

    def test_paper_notation(self):
        # Variable x freezes to the paper's x0, rendered x#.
        frozen = freeze_rule(parse_rule("G(x, z) :- A(x, z)."))
        assert frozen.head.args[0] == FrozenConstant("x", 0)

    def test_shared_variables_shared_constants(self):
        frozen = freeze_rule(parse_rule("G(x, z) :- G(x, y), G(y, z)."))
        # The y in both body atoms freezes to the same constant.
        assert frozen.body[0].args[1] == frozen.body[1].args[0]

    def test_constants_unaffected(self):
        frozen = freeze_rule(parse_rule("G(x, 3) :- A(x, 3)."))
        assert str(frozen.body[0].args[1]) == "3"

    def test_serial_produces_disjoint_freezings(self):
        rule = parse_rule("G(x, z) :- A(x, z).")
        f0 = freeze_rule(rule, serial=0)
        f1 = freeze_rule(rule, serial=1)
        assert not set(f0.theta.values()) & set(f1.theta.values())

    def test_body_order_preserved(self):
        frozen = freeze_rule(parse_rule("G(x, z) :- G(x, y), A(y, z)."))
        assert frozen.body[0].predicate == "G"
        assert frozen.body[1].predicate == "A"


class TestFreezeAtoms:
    def test_tgd_lhs_freezing(self):
        tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w)")
        atoms, theta = freeze_atoms(tgd.lhs)
        assert all(a.is_ground for a in atoms)
        # Only LHS variables are in the substitution.
        assert {v.name for v in theta} == {"x", "y", "z"}

    def test_shared_variable_across_atoms(self):
        tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w)")
        atoms, _theta = freeze_atoms(tgd.lhs)
        assert atoms[0].args[1] == atoms[1].args[0]

    def test_empty(self):
        atoms, theta = freeze_atoms(())
        assert atoms == () and len(theta) == 0
