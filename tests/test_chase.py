"""Unit tests for the [P, T] chase and Theorem-1 containment (Section VIII)."""

from __future__ import annotations

import pytest

from repro import Database, paper, parse_program, parse_rule, parse_tgd
from repro.core.chase import (
    ChaseBudget,
    Verdict,
    chase,
    check_model_containment,
    rule_contained_under_constraints,
)
from repro.core.tgds import satisfies_all
from repro.lang import Atom, Program


class TestChaseDriver:
    def test_rules_only_reaches_fixpoint(self, tc, ex2_edb):
        outcome = chase(ex2_edb, tc, [])
        assert outcome.saturated
        assert outcome.database.count("G") == 6

    def test_tgds_only(self):
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2)]})
        outcome = chase(db, None, [tgd])
        assert outcome.saturated
        assert outcome.database.count("A") == 1
        assert satisfies_all(outcome.database, [tgd])

    def test_input_not_mutated(self, tc, ex2_edb):
        before = len(ex2_edb)
        chase(ex2_edb, tc, [])
        assert len(ex2_edb) == before

    def test_result_satisfies_tgds_and_is_model(self, tc):
        # [P, T](d) is a model of P and satisfies T (Section VIII).
        tgd = parse_tgd("G(x, z) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2), (2, 3)]})
        outcome = chase(db, tc, [tgd])
        assert outcome.saturated
        assert satisfies_all(outcome.database, [tgd])
        from repro.engine import apply_once

        assert apply_once(tc, outcome.database) <= set(outcome.database.atoms())

    def test_target_short_circuits(self, tc):
        db = Database.from_facts({"A": [(1, 2)]})
        outcome = chase(db, tc, [], target=Atom.of("G", 1, 2))
        assert outcome.target_found

    def test_target_in_input(self, tc):
        db = Database.from_facts({"G": [(1, 2)]})
        outcome = chase(db, tc, [], target=Atom.of("G", 1, 2))
        assert outcome.target_found
        assert outcome.rounds == 0

    def test_diverging_tgd_hits_budget(self):
        # G(x,y) -> G(y,w): every repair creates a new violation.
        tgd = parse_tgd("G(x, y) -> G(y, w)")
        db = Database.from_facts({"G": [(1, 2)]})
        outcome = chase(db, None, [tgd], budget=ChaseBudget(max_rounds=10, max_nulls=50))
        assert not outcome.saturated
        assert outcome.nulls_created > 0

    def test_atom_budget(self, tc):
        big = Database.from_facts({"A": [(i, i + 1) for i in range(60)]})
        outcome = chase(big, tc, [], budget=ChaseBudget(max_atoms=100))
        assert not outcome.saturated


class TestTheorem1:
    def test_example11_rule2(self):
        # The chase transcript of Example 11: the pure-TC recursive rule
        # is contained in [P1, T].
        rule = paper.EX11_P2.rules[1]
        evidence = rule_contained_under_constraints(rule, paper.EX11_P1, [paper.EX11_TGD])
        assert evidence.verdict is Verdict.PROVED
        assert evidence.nulls_created >= 1  # the tgd had to fire

    def test_example11_full_report(self):
        report = check_model_containment(paper.EX11_P1, [paper.EX11_TGD], paper.EX11_P2)
        assert report.verdict is Verdict.PROVED
        assert len(report.evidence) == 2

    def test_without_tgd_fails(self):
        # Without T, the recursive TC rule is not uniformly contained in
        # P1 (that is the whole point of Example 11).
        report = check_model_containment(paper.EX11_P1, [], paper.EX11_P2)
        assert report.verdict is Verdict.DISPROVED
        assert [str(r) for r in report.failing_rules] == [
            "G(x, z) :- G(x, y), G(y, z)."
        ]

    def test_empty_tgds_is_uniform_containment(self, tc, tc_linear):
        # With T = {} the Theorem-1 test degenerates to Section VI.
        report = check_model_containment(tc, [], tc_linear)
        assert report.verdict is Verdict.PROVED
        report2 = check_model_containment(tc_linear, [], tc)
        assert report2.verdict is Verdict.DISPROVED

    def test_unknown_on_budget_exhaustion(self):
        # A diverging tgd set and an unprovable rule: chase can neither
        # find the head nor saturate.
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(x, z) :- B(x, z).")
        tgd = parse_tgd("B(x, y) -> B(y, w)")
        report = check_model_containment(
            p1, [tgd], p2, budget=ChaseBudget(max_rounds=5, max_nulls=20)
        )
        assert report.verdict is Verdict.UNKNOWN

    def test_example19_model_containment(self):
        report = check_model_containment(paper.EX19_P1, [paper.EX16_TGD], paper.EX19_P2)
        assert report.verdict is Verdict.PROVED

    def test_verdict_bool(self):
        assert bool(Verdict.PROVED)
        assert not bool(Verdict.DISPROVED)
        assert not bool(Verdict.UNKNOWN)

    def test_full_tgd_containment(self):
        # A full tgd B(x,y) -> A(x,y) makes the A-rule subsume the B-rule.
        p1 = parse_program("G(x, y) :- A(x, y).")
        p2 = parse_program("G(x, y) :- B(x, y).")
        tgd = parse_tgd("B(x, y) -> A(x, y)")
        report = check_model_containment(p1, [tgd], p2)
        assert report.verdict is Verdict.PROVED


class TestOnBudget:
    """The on_budget seam: absorb exhaustion (default) or raise typed."""

    DIVERGING = parse_tgd("B(x, y) -> B(y, w)")

    def _db(self):
        return Database.from_facts({"B": [(1, 2)]})

    def test_partial_absorbs_exhaustion(self):
        outcome = chase(
            self._db(), None, [self.DIVERGING],
            budget=ChaseBudget(max_rounds=5, max_nulls=20),
        )
        assert not outcome.saturated
        assert outcome.database.count("B") >= 1  # sound under-approximation

    def test_raise_surfaces_typed_error(self):
        from repro.errors import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            chase(
                self._db(), None, [self.DIVERGING],
                budget=ChaseBudget(max_rounds=5, max_nulls=20),
                on_budget="raise",
            )

    def test_raise_mode_does_not_fire_on_saturation(self):
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2)]})
        outcome = chase(db, None, [tgd], on_budget="raise")
        assert outcome.saturated

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_budget"):
            chase(self._db(), None, [], on_budget="explode")

    def test_exhaustion_counted_in_metrics(self):
        from repro.obs.metrics import metrics_registry

        registry = metrics_registry()

        def exhausted():
            return registry.export()["counters"].get("chase.budget_exhausted", 0)

        before = exhausted()
        with pytest.raises(Exception):
            chase(
                self._db(), None, [self.DIVERGING],
                budget=ChaseBudget(max_rounds=4, max_nulls=16),
                on_budget="raise",
            )
        assert exhausted() == before + 1
