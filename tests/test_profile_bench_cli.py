"""CLI tests for the ``profile`` and ``bench`` verbs."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_REGRESSION, main
from repro.obs.profiler import PROFILE_SCHEMA
from repro.obs.schema import ALL_ENGINES, BENCH_SCHEMA, validate_bench_document

#: Transitive closure with a planted redundant atom (Edge(x, z) twice)
#: and a fully redundant third rule -- Fig. 2 removes both.
TC_REDUNDANT = """
Path(x, y) :- Edge(x, y).
Path(x, y) :- Edge(x, z), Path(z, y), Edge(x, z).
Path(x, y) :- Edge(x, y), Path(x, y).
"""

EDB = """
Edge(1, 2).
Edge(2, 3).
Edge(3, 4).
Edge(4, 5).
"""


@pytest.fixture
def files(tmp_path):
    def write(name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return write


class TestProfile:
    def test_text_output_has_per_rule_breakdown(self, files, capsys):
        code = main(["profile", files("p.dl", TC_REDUNDANT), "--edb", files("e.dl", EDB)])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-rule breakdown" in out
        assert "Path(x, y) :- Edge(x, y)." in out
        assert "span tree" in out
        assert "seminaive.eval" in out

    def test_json_output_is_schema_stamped(self, files, capsys):
        code = main(
            ["profile", files("p.dl", TC_REDUNDANT), "--edb", files("e.dl", EDB), "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["engine"] == "seminaive"
        assert doc["stats"]["subgoal_attempts"] > 0
        assert len(doc["rules"]) == 3
        # Per-rule subgoal attempts sum to the overall total.
        assert sum(r.get("subgoal_attempts", 0) for r in doc["rules"]) == (
            doc["stats"]["subgoal_attempts"]
        )

    def test_compare_minimized_reports_strict_subgoal_decrease(self, files, capsys):
        code = main(
            [
                "profile",
                files("p.dl", TC_REDUNDANT),
                "--edb",
                files("e.dl", EDB),
                "--compare-minimized",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        original = doc["original"]["stats"]["subgoal_attempts"]
        minimized = doc["minimized"]["stats"]["subgoal_attempts"]
        assert minimized < original  # the paper's fewer-joins claim
        assert doc["comparison"]["subgoal_reduction"] == original - minimized
        assert doc["comparison"]["atom_removals"] >= 1
        # Same fixpoint reached either way (uniform equivalence).
        assert (
            doc["original"]["stats"]["facts_derived"]
            == doc["minimized"]["stats"]["facts_derived"]
        )

    def test_compare_minimized_text(self, files, capsys):
        code = main(
            [
                "profile",
                files("p.dl", TC_REDUNDANT),
                "--edb",
                files("e.dl", EDB),
                "--compare-minimized",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "subgoal attempts:" in out
        assert "minimization removed" in out

    def test_magic_engine_profiles_rewritten_rules(self, files, capsys):
        code = main(
            [
                "profile",
                files("p.dl", TC_REDUNDANT),
                "--edb",
                files("e.dl", EDB),
                "--engine",
                "magic",
                "--query",
                "Path(1, y)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query: Path(1, y)" in out
        assert "m__" in out  # breakdown names the magic-rewritten rules

    def test_topdown_engine(self, files, capsys):
        code = main(
            [
                "profile",
                files("p.dl", TC_REDUNDANT),
                "--edb",
                files("e.dl", EDB),
                "--engine",
                "topdown",
                "--query",
                "Path(1, y)",
            ]
        )
        assert code == 0
        assert "answer(s)" in capsys.readouterr().out

    def test_query_engine_without_query_is_an_error(self, files, capsys):
        code = main(
            [
                "profile",
                files("p.dl", TC_REDUNDANT),
                "--edb",
                files("e.dl", EDB),
                "--engine",
                "magic",
            ]
        )
        assert code == 2
        assert "requires a query" in capsys.readouterr().err


class TestBench:
    def test_quick_writes_schema_valid_document(self, files, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--quiet", "--date", "2026-08-05", "--out", str(out_path)]
        )
        assert code == 0
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert validate_bench_document(doc) == []
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["quick"] is True
        assert doc["generated"] == "2026-08-05"
        # The acceptance criterion: every engine appears in a quick run.
        assert doc["engines"] == sorted(ALL_ENGINES)
        assert doc["metrics"]["counters"]["evaluation.runs"] > 0

    def test_validate_accepts_fresh_document(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--quiet", "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["bench", "--validate", str(out_path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_corrupt_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": BENCH_SCHEMA, "entries": []}), encoding="utf-8")
        assert main(["bench", "--validate", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_compare_against_previous_run(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        args = ["bench", "--quiet", "--suite", "magic-tc", "--size", "8"]
        assert main(args + ["--out", str(first)]) == 0
        # Identical back-to-back runs: counters match, but sub-millisecond
        # timings can jitter past the 20% gate, so accept both exits.
        assert main(args + ["--out", str(second), "--compare", str(first)]) in (
            0,
            EXIT_REGRESSION,
        )
        out = capsys.readouterr().out
        assert "comparison against" in out
        assert "magic-tc" in out

    def test_compare_two_documents_without_running(self, tmp_path, capsys):
        out_path = tmp_path / "base.json"
        args = ["bench", "--quiet", "--suite", "same-generation", "--size", "6"]
        assert main(args + ["--out", str(out_path)]) == 0
        capsys.readouterr()
        # Same document on both sides: zero change, gate passes.
        assert main(["bench", "--compare", str(out_path), str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "comparing" in out
        assert "same-generation" in out

    def test_compare_gate_fails_on_rule_firing_regression(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        worse = tmp_path / "worse.json"
        args = ["bench", "--quiet", "--suite", "same-generation", "--size", "6"]
        assert main(args + ["--out", str(base)]) == 0
        doc = json.loads(base.read_text(encoding="utf-8"))
        for entry in doc["entries"]:
            if "rule_firings" in entry["stats"]:
                entry["stats"]["rule_firings"] *= 2
        worse.write_text(json.dumps(doc), encoding="utf-8")
        capsys.readouterr()
        assert (
            main(["bench", "--compare", str(base), str(worse)]) == EXIT_REGRESSION
        )
        err = capsys.readouterr().err
        assert "regressions" in err
        assert "rule_firings" in err

    def test_compare_rejects_more_than_two_files(self, tmp_path, capsys):
        assert main(["bench", "--compare", "a.json", "b.json", "c.json"]) == 2
        assert "--compare" in capsys.readouterr().err

    def test_compare_rejects_invalid_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": BENCH_SCHEMA, "entries": []}), encoding="utf-8")
        assert main(["bench", "--compare", str(bad), str(bad)]) == 2
        assert "not a valid bench document" in capsys.readouterr().err

    def test_unknown_suite_is_usage_error(self, capsys):
        assert main(["bench", "--quiet", "--suite", "no-such-workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_selected_suite_and_size(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--quiet",
                "--suite",
                "same-generation",
                "--size",
                "6",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert {e["workload"] for e in doc["entries"]} == {"same-generation"}
        assert {e["size"] for e in doc["entries"]} == {6}
        # same-generation has no query: only the non-goal-directed engines.
        assert doc["engines"] == ["incremental", "naive", "seminaive"]
