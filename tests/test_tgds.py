"""Unit tests for tuple-generating dependencies (Section VIII)."""

from __future__ import annotations

import pytest

from repro import Database, paper, parse_program, parse_tgd
from repro.core.tgds import Tgd, first_violation, satisfies_all
from repro.engine import evaluate
from repro.errors import TgdError
from repro.lang import Atom, Variable
from repro.lang.terms import Null, NullFactory


class TestStructure:
    def test_universal_and_existential_variables(self):
        tgd = parse_tgd("G(x, z) -> A(x, w)")
        assert {v.name for v in tgd.universal_variables} == {"x", "z"}
        assert {v.name for v in tgd.existential_variables} == {"w"}

    def test_full_tgd(self):
        tgd = parse_tgd("A(x, y, z), B(w, y, v) -> A(x, y, v) & T(w, y, z)")
        assert tgd.is_full

    def test_embedded_tgd(self):
        assert not parse_tgd("G(x, z) -> A(x, w)").is_full

    def test_empty_sides_rejected(self):
        with pytest.raises(TgdError):
            Tgd((), (Atom("A", (Variable("x"),)),))
        with pytest.raises(TgdError):
            Tgd((Atom("A", (Variable("x"),)),), ())

    def test_predicates(self):
        tgd = parse_tgd("G(y, z) -> G(y, w) & C(w)")
        assert tgd.predicates() == {"G", "C"}

    def test_parse_classmethod(self):
        assert Tgd.parse("G(x, z) -> A(x, w)") == paper.EX11_TGD


class TestExample10AsRules:
    def test_full_tgd_as_rules(self):
        rules = paper.EX10_TGD.as_rules()
        assert set(rules) == set(paper.EX10_RULES)

    def test_embedded_tgd_rejected(self):
        with pytest.raises(TgdError):
            paper.EX11_TGD.as_rules()

    def test_rule_application_equals_tgd_chase(self):
        # Applying the full tgd to saturation produces the same DB as
        # evaluating its two rules.
        db = Database.from_facts({"A": [(1, 2, 3)], "B": [(4, 2, 5)]})
        via_rules = evaluate(parse_program(
            """
            A(x, y, v) :- A(x, y, z), B(w, y, v).
            T(w, y, z) :- A(x, y, z), B(w, y, v).
            """
        ), db).database

        chased = db.copy()
        nulls = NullFactory()
        while paper.EX10_TGD.apply_all_once(chased, nulls):
            pass
        assert chased == via_rules
        assert nulls.issued == 0  # full tgds never invent nulls


class TestExample9Satisfaction:
    def test_violated_tgd(self):
        # G(4,2) has no A(2,z) ∧ A(z,4) witness.
        assert not paper.EX9_TGD_VIOLATED.is_satisfied_by(paper.EX2_OUTPUT)

    def test_satisfied_tgd(self):
        assert paper.EX9_TGD_SATISFIED.is_satisfied_by(paper.EX2_OUTPUT)

    def test_violation_witness(self):
        violations = list(paper.EX9_TGD_VIOLATED.violations(paper.EX2_OUTPUT))
        assert violations
        rendered = {
            tuple(str(theta[v]) for v in sorted(theta, key=lambda v: v.name))
            for theta in violations
        }
        # The paper names (x=4, y=2) as a violating instantiation.
        assert ("4", "2") in rendered

    def test_violations_unique_per_instantiation(self):
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2), (1, 3)]})
        # Two G facts share x=1; each (x, y) instantiation is one violation.
        assert len(list(tgd.violations(db))) == 2

    def test_empty_db_satisfies_everything(self):
        assert paper.EX9_TGD_VIOLATED.is_satisfied_by(Database())

    def test_satisfies_all_helper(self):
        assert satisfies_all(Database(), [paper.EX9_TGD_VIOLATED, paper.EX11_TGD])
        assert not satisfies_all(paper.EX2_OUTPUT, [paper.EX9_TGD_VIOLATED])

    def test_first_violation_helper(self):
        hit = first_violation(paper.EX2_OUTPUT, [paper.EX9_TGD_SATISFIED, paper.EX9_TGD_VIOLATED])
        assert hit is not None
        tgd, _theta = hit
        assert tgd == paper.EX9_TGD_VIOLATED


class TestApplication:
    def test_embedded_application_adds_nulls(self):
        # The paper's example: G(3, 2) with G(x,y) -> A(x,w) ∧ G(w,y).
        tgd = parse_tgd("G(x, y) -> A(x, w) & G(w, y)")
        db = Database.from_facts({"G": [(3, 2)]})
        nulls = NullFactory()
        added = tgd.apply_all_once(db, nulls)
        assert added == 2
        assert nulls.issued == 1
        (a_row,) = db.tuples("A")
        assert isinstance(a_row[1], Null)

    def test_no_application_when_satisfied(self):
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2)], "A": [(1, 9)]})
        assert tgd.apply_all_once(db, NullFactory()) == 0

    def test_nulls_are_reused_as_witnesses(self):
        # After one repair, the same null satisfies later checks: the
        # tgd is satisfied and no second null is created.
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2)]})
        nulls = NullFactory()
        tgd.apply_all_once(db, nulls)
        assert tgd.is_satisfied_by(db)
        assert tgd.apply_all_once(db, nulls) == 0
        assert nulls.issued == 1

    def test_one_round_repairs_each_start_violation(self):
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2), (3, 4)]})
        added = tgd.apply_all_once(db, NullFactory())
        assert added == 2
        assert db.count("A") == 2

    def test_repair_within_round_skips_satisfied(self):
        # Both violations share x=1; the first repair satisfies the second.
        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2), (1, 3)]})
        added = tgd.apply_all_once(db, NullFactory())
        assert added == 1

    def test_exhibits_violation_specific_instantiation(self):
        from repro.lang.substitution import Substitution
        from repro.lang.terms import Constant

        tgd = parse_tgd("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": [(1, 2)], "A": [(5, 5)]})
        x, y = Variable("x"), Variable("y")
        theta = Substitution({x: Constant(1), y: Constant(2)})
        assert tgd.exhibits_violation(db, theta)
        theta5 = Substitution({x: Constant(5), y: Constant(2)})
        assert not tgd.exhibits_violation(db, theta5)
