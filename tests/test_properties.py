"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Database, evaluate, parse_program
from repro.core.chase import chase
from repro.core.containment import uniformly_contains, uniformly_equivalent
from repro.core.minimize import minimize_program
from repro.core.tgds import Tgd, satisfies_all
from repro.engine import naive_fixpoint, seminaive_fixpoint
from repro.lang import Atom, Program, Rule, Literal
from repro.lang.substitution import Substitution, match_atom, unify_atoms
from repro.lang.terms import Constant, Variable
from repro.workloads import random_positive_program, wide_rule

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

variables_st = st.sampled_from([Variable(n) for n in "xyzuvw"])
constants_st = st.integers(min_value=0, max_value=5).map(Constant)
terms_st = st.one_of(variables_st, constants_st)
predicates_st = st.sampled_from(["A", "B", "G"])


@st.composite
def atoms(draw, arity=st.integers(min_value=1, max_value=3)):
    pred = draw(predicates_st)
    n = draw(arity)
    return Atom(pred, tuple(draw(terms_st) for _ in range(n)))


@st.composite
def ground_atoms(draw):
    pred = draw(predicates_st)
    n = draw(st.integers(min_value=1, max_value=2))
    return Atom(pred + str(n), tuple(draw(constants_st) for _ in range(n)))


@st.composite
def substitutions(draw):
    pairs = draw(
        st.dictionaries(variables_st, constants_st, min_size=0, max_size=4)
    )
    return Substitution(pairs)


# ---------------------------------------------------------------------------
# Substitution algebra
# ---------------------------------------------------------------------------


class TestSubstitutionLaws:
    @given(atoms(), substitutions())
    def test_apply_is_idempotent_for_ground_targets(self, atom, subst):
        # Ground substitutions: applying twice equals applying once.
        once = subst.apply_atom(atom)
        assert subst.apply_atom(once) == once

    @given(atoms(), substitutions(), substitutions())
    def test_compose_law(self, atom, s1, s2):
        composed = s1.compose(s2)
        assert composed.apply_atom(atom) == s2.apply_atom(s1.apply_atom(atom))

    @given(atoms(), substitutions())
    def test_empty_is_identity(self, atom, subst):
        empty = Substitution.empty()
        assert empty.compose(subst).apply_atom(atom) == subst.apply_atom(atom)
        assert subst.compose(empty).apply_atom(atom) == subst.apply_atom(atom)

    @given(atoms(), ground_atoms())
    def test_match_produces_matching_substitution(self, pattern, fact):
        result = match_atom(pattern, fact)
        if result is not None:
            assert result.apply_atom(pattern) == fact

    @given(atoms(), atoms())
    def test_unify_produces_unifier(self, left, right):
        result = unify_atoms(left, right)
        if result is not None:
            assert result.apply_atom(left) == result.apply_atom(right)

    @given(atoms())
    def test_unify_reflexive(self, atom):
        assert unify_atoms(atom, atom) is not None


# ---------------------------------------------------------------------------
# Engine agreement on random programs
# ---------------------------------------------------------------------------


class TestEngineAgreement:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_naive_equals_seminaive(self, seed):
        rng = random.Random(seed)
        program = random_positive_program(
            rules=rng.randint(1, 5),
            max_body=3,
            predicates=2,
            variables_per_rule=4,
            seed=seed,
        )
        db = Database()
        for _ in range(rng.randint(0, 12)):
            pred = f"E{rng.randrange(2)}" if rng.random() < 0.7 else f"G{rng.randrange(2)}"
            db.add_fact(pred, rng.randrange(4), rng.randrange(4))
        assert (
            naive_fixpoint(program, db).database
            == seminaive_fixpoint(program, db).database
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_monotonicity(self, seed):
        # Datalog is monotone: more input facts, never fewer outputs.
        rng = random.Random(seed)
        program = random_positive_program(
            rules=3, max_body=2, predicates=2, variables_per_rule=3, seed=seed
        )
        small = Database()
        for _ in range(5):
            small.add_fact(f"E{rng.randrange(2)}", rng.randrange(3), rng.randrange(3))
        big = small.copy()
        big.add_fact("E0", rng.randrange(3), rng.randrange(3))
        out_small = evaluate(program, small).database
        out_big = evaluate(program, big).database
        assert out_small.issubset(out_big)


# ---------------------------------------------------------------------------
# Minimization invariants
# ---------------------------------------------------------------------------


class TestMinimizationInvariants:
    @given(
        core=st.integers(min_value=2, max_value=4),
        redundant=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_planted_redundancy_always_removed(self, core, redundant, seed):
        rule = wide_rule(core_atoms=core, redundant_atoms=redundant, seed=seed)
        program = Program.of(rule)
        result = minimize_program(program)
        assert len(result.atom_removals) == redundant
        assert uniformly_equivalent(program, result.program)

    @given(
        core=st.integers(min_value=2, max_value=4),
        redundant=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_idempotent(self, core, redundant, seed):
        rule = wide_rule(core_atoms=core, redundant_atoms=redundant, seed=seed)
        once = minimize_program(Program.of(rule)).program
        twice = minimize_program(once).program
        assert once == twice

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_deleting_any_atom_uniformly_contains_original(self, seed):
        # For every rule r and deletable atom, r ⊑u r̂ trivially (the
        # direction the paper calls "trivially true").
        rule = wide_rule(core_atoms=3, redundant_atoms=2, seed=seed)
        program = Program.of(rule)
        for index in range(len(rule.body)):
            if not rule.can_drop_body_literal(index):
                continue
            slimmer = Program.of(rule.without_body_literal(index))
            assert uniformly_contains(container=slimmer, contained=program)


# ---------------------------------------------------------------------------
# Chase invariants
# ---------------------------------------------------------------------------


class TestChaseInvariants:
    @given(
        facts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_saturated_chase_satisfies_tgds(self, facts):
        tgd = Tgd.parse("G(x, y) -> A(x, w)")
        db = Database.from_facts({"G": facts})
        outcome = chase(db, None, [tgd])
        assert outcome.saturated
        assert satisfies_all(outcome.database, [tgd])

    @given(
        facts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_chase_output_contains_input(self, facts):
        program = parse_program("G(x, z) :- A(x, z).")
        db = Database.from_facts({"A": facts})
        outcome = chase(db, program, [])
        assert db.issubset(outcome.database)


# ---------------------------------------------------------------------------
# Containment is a preorder
# ---------------------------------------------------------------------------


class TestContainmentPreorder:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_reflexive_on_random_programs(self, seed):
        program = random_positive_program(
            rules=3, max_body=2, predicates=2, variables_per_rule=3, seed=seed
        )
        assert uniformly_contains(program, program)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_rule_subset_contained(self, seed):
        program = random_positive_program(
            rules=4, max_body=2, predicates=2, variables_per_rule=3, seed=seed
        )
        subset = Program(program.rules[:2])
        assert uniformly_contains(container=program, contained=subset)
