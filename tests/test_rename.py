"""Unit tests for predicate renaming and namespacing."""

from __future__ import annotations

import pytest

from repro import Database, evaluate, parse_program
from repro.errors import ValidationError
from repro.lang.rename import merge_disjoint, namespace, rename_predicates


class TestRenamePredicates:
    def test_simple_rename(self, tc):
        renamed = rename_predicates(tc, {"G": "Reach", "A": "Edge"})
        assert renamed.idb_predicates == {"Reach"}
        assert renamed.edb_predicates == {"Edge"}

    def test_unmapped_pass_through(self, tc):
        renamed = rename_predicates(tc, {"G": "Reach"})
        assert renamed.edb_predicates == {"A"}

    def test_semantics_preserved_modulo_names(self, tc):
        renamed = rename_predicates(tc, {"G": "Reach", "A": "Edge"})
        db = Database.from_facts({"Edge": [(1, 2), (2, 3)]})
        out = evaluate(renamed, db).database
        assert out.count("Reach") == 3

    def test_merge_rejected(self):
        program = parse_program("P(x) :- A(x), B(x).")
        with pytest.raises(ValidationError):
            rename_predicates(program, {"A": "B"})

    def test_merge_onto_unmapped_rejected(self):
        program = parse_program("P(x) :- A(x), B(x).")
        with pytest.raises(ValidationError):
            rename_predicates(program, {"A": "P"})

    def test_swap_allowed(self):
        program = parse_program("P(x) :- A(x).")
        swapped = rename_predicates(program, {"P": "A", "A": "P"})
        assert swapped.idb_predicates == {"A"}
        assert swapped.edb_predicates == {"P"}

    def test_negated_literals_renamed(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        renamed = rename_predicates(program, {"B": "Blocked"})
        (rule,) = renamed.rules
        assert str(rule.body[1]) == "not Blocked(x)"


class TestNamespace:
    def test_prefixes_everything(self, tc):
        spaced = namespace(tc, "Core")
        assert spaced.predicates == {"Core_G", "Core_A"}

    def test_lowercase_prefix_rejected(self, tc):
        with pytest.raises(ValidationError):
            namespace(tc, "core")

    def test_empty_prefix_rejected(self, tc):
        with pytest.raises(ValidationError):
            namespace(tc, "")

    def test_roundtrip_parseable(self, tc):
        from repro.lang import format_program, parse_program as parse

        spaced = namespace(tc, "Ns")
        assert parse(format_program(spaced)) == spaced


class TestMergeDisjoint:
    def test_disjoint_merge(self):
        p1 = parse_program("P(x) :- A(x).")
        p2 = parse_program("Q(x) :- B(x).")
        merged = merge_disjoint(p1, p2)
        assert len(merged) == 2

    def test_overlap_rejected_with_indices(self):
        p1 = parse_program("P(x) :- A(x).")
        p2 = parse_program("Q(x) :- A(x).")
        with pytest.raises(ValidationError, match="#0 and #1"):
            merge_disjoint(p1, p2)

    def test_namespaced_merge(self, tc, tc_linear):
        merged = merge_disjoint(namespace(tc, "L"), namespace(tc_linear, "R"))
        assert len(merged) == 4
        db = Database.from_facts({"L_A": [(1, 2), (2, 3)], "R_A": [(1, 2)]})
        out = evaluate(merged, db).database
        assert out.count("L_G") == 3
        assert out.count("R_G") == 1
