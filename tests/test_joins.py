"""Unit tests for repro.engine.joins."""

from __future__ import annotations

from repro.data import Database
from repro.engine.joins import fire_rule, match_body, plan_order
from repro.engine.stats import EvaluationStats
from repro.lang import Atom, Literal, Variable, parse_rule
from repro.lang.terms import Constant

x, y, z = Variable("x"), Variable("y"), Variable("z")


def literals(*atoms: Atom) -> list[Literal]:
    return [Literal(a) for a in atoms]


class TestPlanOrder:
    def test_constants_make_atoms_early(self):
        db = Database.from_facts({"A": [(1, 2)], "B": [(2, 3)]})
        body = literals(Atom("B", (y, z)), Atom.of("A", 1, y))
        order = plan_order(body, db)
        # The A atom has a bound constant position, so it goes first.
        assert order[0] == 1

    def test_initially_bound_variables_count(self):
        db = Database.from_facts({"A": [(1, 2)], "B": [(2, 3)]})
        body = literals(Atom("A", (x, y)), Atom("B", (z, x)))
        order = plan_order(body, db, initially_bound=frozenset({z}))
        assert order[0] == 1  # B has z pre-bound

    def test_negated_literal_scheduled_when_bound(self):
        db = Database.from_facts({"A": [(1,)], "B": [(1,)]})
        body = [
            Literal(Atom("B", (x,)), positive=False),
            Literal(Atom("A", (x,))),
        ]
        order = plan_order(body, db)
        assert order == [1, 0]

    def test_all_indexes_present(self):
        db = Database()
        body = literals(Atom("A", (x, y)), Atom("B", (y, z)), Atom("C", (z, x)))
        assert sorted(plan_order(body, db)) == [0, 1, 2]

    def test_tie_break_smaller_relation_wins(self):
        # Equal boundness: the atom over the smaller relation leads.
        db = Database.from_facts(
            {"Big": [(i, i + 1) for i in range(10)], "Small": [(0, 1)]}
        )
        body = literals(Atom("Big", (x, y)), Atom("Small", (x, y)))
        assert plan_order(body, db)[0] == 1
        # Swapped body order: still the smaller relation first.
        body = literals(Atom("Small", (x, y)), Atom("Big", (x, y)))
        assert plan_order(body, db)[0] == 0

    def test_prefer_vars_pull_head_binding_atoms_early(self):
        # Same sizes and boundness; the atom binding a preferred (head)
        # variable wins the tie-break against one binding none.
        db = Database.from_facts({"A": [(1, 2)], "B": [(3, 4)]})
        head_var = Variable("h")
        body = literals(Atom("A", (x, y)), Atom("B", (head_var, z)))
        order = plan_order(body, db, prefer_vars=frozenset({head_var}))
        assert order[0] == 1

    def test_first_pins_the_delta_literal(self):
        # first= puts the pinned literal up front even when every other
        # signal (boundness, size) says otherwise.
        db = Database.from_facts(
            {"A": [(1, 2)], "B": [(i, i + 1) for i in range(20)]}
        )
        body = literals(Atom("A", (x, y)), Atom("B", (y, z)))
        assert plan_order(body, db, first=1) == [1, 0]
        assert plan_order(body, db, first=0) == [0, 1]


class TestMatchBody:
    def test_single_atom(self):
        db = Database.from_facts({"A": [(1, 2), (3, 4)]})
        got = list(match_body(db, literals(Atom("A", (x, y)))))
        assert len(got) == 2

    def test_join_on_shared_variable(self):
        db = Database.from_facts({"A": [(1, 2), (2, 3)]})
        got = list(match_body(db, literals(Atom("A", (x, y)), Atom("A", (y, z)))))
        assert len(got) == 1
        assert got[0][x] == Constant(1) and got[0][z] == Constant(3)

    def test_constant_selection(self):
        db = Database.from_facts({"A": [(1, 2), (3, 4)]})
        got = list(match_body(db, literals(Atom.of("A", 3, y))))
        assert got == [{y: Constant(4)}]

    def test_repeated_variable_in_atom(self):
        db = Database.from_facts({"A": [(1, 1), (1, 2)]})
        got = list(match_body(db, literals(Atom("A", (x, x)))))
        assert got == [{x: Constant(1)}]

    def test_initial_bindings_respected(self):
        db = Database.from_facts({"A": [(1, 2), (3, 4)]})
        got = list(
            match_body(db, literals(Atom("A", (x, y))), initial={x: Constant(3)})
        )
        assert got == [{x: Constant(3), y: Constant(4)}]

    def test_negated_literal_filters(self):
        db = Database.from_facts({"A": [(1,), (2,)], "B": [(2,)]})
        body = [Literal(Atom("A", (x,))), Literal(Atom("B", (x,)), positive=False)]
        got = list(match_body(db, body))
        assert got == [{x: Constant(1)}]

    def test_empty_relation_no_solutions(self):
        db = Database()
        assert list(match_body(db, literals(Atom("A", (x,))))) == []

    def test_source_override(self):
        full = Database.from_facts({"A": [(1, 2), (2, 3)]})
        delta = Database.from_facts({"A": [(2, 3)]})
        body = literals(Atom("A", (x, y)), Atom("A", (y, z)))
        # Force position 0 to the delta: only the (2,3)-(3,?) join, which
        # fails, so only bindings where the *first* atom is the delta fact.
        got = list(match_body(full, body, source_for={0: delta}, order=[0, 1]))
        assert got == []
        got = list(match_body(full, body, source_for={1: delta}, order=[0, 1]))
        assert len(got) == 1

    def test_yielded_dicts_are_fresh(self):
        db = Database.from_facts({"A": [(1,), (2,)]})
        got = list(match_body(db, literals(Atom("A", (x,)))))
        assert got[0] is not got[1]

    def test_stats_counts_subgoals(self):
        db = Database.from_facts({"A": [(1, 2)]})
        stats = EvaluationStats()
        list(match_body(db, literals(Atom("A", (x, y))), stats=stats))
        assert stats.subgoal_attempts >= 1


class TestFireRule:
    def test_derives_heads(self):
        db = Database.from_facts({"A": [(1, 2), (2, 3)]})
        rule = parse_rule("G(x, z) :- A(x, y), A(y, z).")
        derived = fire_rule(db, rule.head, rule.body)
        assert derived == {Atom.of("G", 1, 3)}

    def test_duplicates_collapse(self):
        db = Database.from_facts({"A": [(1, 2), (1, 3)]})
        rule = parse_rule("P(x) :- A(x, y).")
        derived = fire_rule(db, rule.head, rule.body)
        assert derived == {Atom.of("P", 1)}

    def test_ground_fact_rule(self):
        rule = parse_rule("A(1, 2).")
        derived = fire_rule(Database(), rule.head, rule.body)
        assert derived == {Atom.of("A", 1, 2)}

    def test_firings_counted(self):
        db = Database.from_facts({"A": [(1, 2), (1, 3)]})
        rule = parse_rule("P(x) :- A(x, y).")
        stats = EvaluationStats()
        fire_rule(db, rule.head, rule.body, stats=stats)
        assert stats.rule_firings == 2
