"""Tests for the specialization advisor, plan certificates, and ``advise``.

Covers the certificate schema (pinned to version 1), the advisor's
recommendations, the differential property that executing a recommended
plan matches the semi-naive reference (including under a tripping
governor and on both storage backends), the certificate fast path
(``query --certificate`` skips analysis), the two specialization lint
rules, and the ``bench --advised`` cells.
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, parse_program
from repro.analysis.lint import LintConfig, lint
from repro.analysis.specialize import (
    ADVISE_SCHEMA_VERSION,
    CertificateError,
    PlanCertificate,
    QueryFormError,
    advise_form,
    advise_program,
    apply_certificate,
    default_query_forms,
    execute_plan,
    load_certificate,
    parse_query_form,
    save_certificate,
    select_answers,
    validate_certificate_document,
)
from repro.analysis.specialize.rewrite import QueryForm
from repro.cli import main
from repro.engine.compile import clear_certificate_hints
from repro.engine.fixpoint import evaluate
from repro.engine.magic import Adornment, clear_closure_cache
from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Variable
from repro.obs.metrics import metrics_registry
from repro.resilience.governor import EvaluationStatus, ResourceGovernor
from repro.testing import random_database, random_program

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

TC = """
Tc(x, y) :- E(x, y).
Tc(x, z) :- E(x, y), Tc(y, z).
"""

#: Stratified as written, but the magic rewriting of ``H(b)`` creates a
#: negative cycle through the magic predicate of ``Q``.
MAGIC_BREAKS = """
H(x) :- P(x, y), Q(y).
P(x, y) :- E(x, y), not Q(x).
Q(x) :- F(x).
"""

EDB_CHAIN = "\n".join(f"E({i}, {i + 1})." for i in range(8))


@pytest.fixture(autouse=True)
def _fresh_state():
    """Certificate hints and the closure cache are process-global."""
    clear_closure_cache()
    clear_certificate_hints()
    metrics_registry().reset()
    yield
    clear_closure_cache()
    clear_certificate_hints()
    metrics_registry().reset()


@pytest.fixture
def files(tmp_path):
    def write(name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return write


class TestQueryForms:
    def test_pattern_form_case_insensitive(self):
        program = parse_program(TC)
        form = parse_query_form("tc(bf)", program)
        assert form.predicate == "Tc"
        assert form.suffix == "bf"

    def test_atom_form(self):
        program = parse_program(TC)
        form = parse_query_form('Tc("a", y)', program)
        assert form.suffix == "bf"
        assert form.probe.args[0] == Constant("a")

    def test_unknown_predicate_rejected(self):
        program = parse_program(TC)
        with pytest.raises(QueryFormError):
            parse_query_form("Nope(bf)", program)

    def test_arity_mismatch_rejected(self):
        program = parse_program(TC)
        with pytest.raises(QueryFormError):
            parse_query_form("tc(bff)", program)

    def test_default_forms_cover_idb_bound_and_free(self):
        program = parse_program(TC)
        forms = {(f.predicate, f.suffix) for f in default_query_forms(program)}
        assert forms == {("Tc", "bb"), ("Tc", "ff")}


class TestCertificateSchema:
    def test_schema_version_pinned(self):
        # The certificate format is consumed by ``query --certificate``;
        # bumping the version is a contract change that needs migration
        # notes, not a silent edit.
        assert ADVISE_SCHEMA_VERSION == 1

    def certificate(self):
        return advise_program(parse_program(TC))

    def test_document_declares_schema(self):
        doc = self.certificate().to_dict()
        assert doc["schema"] == "repro.advise/1"
        assert validate_certificate_document(doc) == []

    def test_round_trip(self, tmp_path):
        certificate = self.certificate()
        path = tmp_path / "cert.json"
        save_certificate(certificate, str(path))
        loaded = load_certificate(str(path))
        assert loaded.to_dict() == certificate.to_dict()

    def test_wrong_version_rejected(self):
        doc = self.certificate().to_dict()
        doc["version"] = 2
        assert validate_certificate_document(doc)
        with pytest.raises(CertificateError):
            PlanCertificate.from_dict(doc)

    def test_bad_adornment_rejected(self):
        doc = self.certificate().to_dict()
        doc["plans"][0]["adornment"] = "bq"
        assert validate_certificate_document(doc)

    def test_duplicate_forms_rejected(self):
        doc = self.certificate().to_dict()
        doc["plans"].append(dict(doc["plans"][0]))
        assert validate_certificate_document(doc)

    def test_exported_file_is_schema_valid(self, files, tmp_path, capsys):
        cert_path = tmp_path / "cert.json"
        code = main(
            ["advise", files("tc.dl", TC), "--query", "tc(bf)",
             "--export", str(cert_path)]
        )
        assert code == 0
        doc = json.loads(cert_path.read_text(encoding="utf-8"))
        assert validate_certificate_document(doc) == []


class TestAdvisor:
    def test_bound_query_recommends_magic(self):
        program = parse_program(TC)
        plan = advise_form(program, parse_query_form("tc(bf)", program))
        assert plan.recommendation.rewrite == "magic"
        assert plan.recommendation.engine == "seminaive"
        assert ("Tc", "bf") in plan.closure
        assert plan.classification["stratifiable_after_magic"] is True
        assert plan.classification["linear"] is True

    def test_free_query_recommends_plain_evaluation(self):
        program = parse_program(TC)
        plan = advise_form(program, parse_query_form("tc(ff)", program))
        assert plan.recommendation.rewrite == "none"
        assert plan.recommendation.method == "evaluate"

    def test_edb_predicate_gets_trivial_plan(self):
        program = parse_program(TC)
        plan = advise_form(
            program, QueryForm("E", Adornment((True, False)), Atom("E", (Constant(0), Variable("y"))))
        )
        assert plan.recommendation.rewrite == "none"
        assert plan.closure == ()

    def test_negation_stays_on_stratified_engine(self):
        program = parse_program(MAGIC_BREAKS)
        plan = advise_form(program, parse_query_form("h(b)", program))
        assert plan.recommendation.rewrite == "none"
        assert plan.recommendation.engine == "stratified"
        assert plan.classification["stratifiable_after_magic"] is False
        assert plan.stratification["status"] == "unstratifiable"

    def test_advise_records_its_own_analysis_domain(self):
        advise_program(parse_program(TC))
        assert metrics_registry().counter("analysis.specialize.runs") == 1


class TestExecutePlanDifferential:
    """Advise-recommended execution equals the semi-naive reference."""

    def reference(self, program, db, query):
        return select_answers(evaluate(program, db, engine="seminaive").database, query)

    @given(seed=st.integers(min_value=0, max_value=400), bound=st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_on_random_programs(self, seed, bound):
        clear_closure_cache()
        clear_certificate_hints()
        program = random_program(seed)
        db = random_database(seed)
        predicate = sorted(program.idb_predicates)[0]
        query = Atom(predicate, (Constant(bound), Variable("qy")))
        form = QueryForm(predicate, Adornment((True, False)), query)
        plan = advise_form(program, form)
        answers, _ = execute_plan(program, db, query, plan)
        assert answers == self.reference(program, db, query)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_matches_reference_on_columnar_backend(self, seed):
        clear_closure_cache()
        clear_certificate_hints()
        program = random_program(seed)
        atoms = list(random_database(seed).atoms())
        predicate = sorted(program.idb_predicates)[0]
        query = Atom(predicate, (Constant(0), Variable("qy")))
        plan = advise_form(program, QueryForm(predicate, Adornment((True, False)), query))
        results = {}
        for backend in ("rows", "columnar"):
            db = Database(atoms, backend=backend)
            answers, _ = execute_plan(program, db, query, plan)
            assert answers == self.reference(program, db, query)
            results[backend] = {str(a) for a in answers.atoms()}
        assert results["rows"] == results["columnar"]

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_partial_under_governor_is_sound_subset(self, seed):
        clear_closure_cache()
        clear_certificate_hints()
        program = random_program(seed)
        db = random_database(seed)
        predicate = sorted(program.idb_predicates)[0]
        query = Atom(predicate, (Constant(0), Variable("qy")))
        plan = advise_form(program, QueryForm(predicate, Adornment((True, False)), query))
        governor = ResourceGovernor(max_facts=2)
        answers, result = execute_plan(program, db, query, plan, governor=governor)
        reference = self.reference(program, db, query)
        if result.status is EvaluationStatus.PARTIAL:
            assert set(answers.atoms()) <= set(reference.atoms())
        else:
            assert answers == reference

    def test_negation_plan_executes_stratified(self):
        program = parse_program(MAGIC_BREAKS)
        db = Database.from_facts({"E": [(1, 2), (2, 3)], "F": [(2,)]})
        query = Atom("H", (Variable("x"),))
        plan = advise_form(program, QueryForm("H", Adornment((False,)), query))
        answers, _ = execute_plan(program, db, query, plan)
        reference = select_answers(
            evaluate(program, db, engine="stratified").database, query
        )
        assert answers == reference


class TestCertificateFastPath:
    """``query --certificate`` runs the plan without re-analysis."""

    def test_query_with_certificate_skips_analysis(self, files, tmp_path, capsys):
        program_path = files("tc.dl", TC)
        edb_path = files("edb.dl", EDB_CHAIN)
        cert_path = str(tmp_path / "cert.json")
        assert main(["advise", program_path, "--query", "tc(bf)",
                     "--export", cert_path]) == 0
        capsys.readouterr()

        clear_closure_cache()
        clear_certificate_hints()
        metrics_registry().reset()
        code = main(["query", program_path, "Tc(0, y)", "--edb", edb_path,
                     "--certificate", cert_path])
        assert code == 0
        certified_out = capsys.readouterr().out
        registry = metrics_registry()
        assert registry.counter("analysis.runs") == 0
        assert registry.counter("advise.certificate_loads") == 1
        assert registry.counter("magic.closure_cache_hits") >= 1

        # The plain path re-runs the binding analysis and must produce
        # the same answers.
        clear_closure_cache()
        clear_certificate_hints()
        metrics_registry().reset()
        assert main(["query", program_path, "Tc(0, y)", "--edb", edb_path]) == 0
        plain_out = capsys.readouterr().out
        assert certified_out == plain_out
        assert metrics_registry().counter("analysis.runs") >= 1

    def test_certificate_for_other_program_rejected(self, files, tmp_path, capsys):
        cert_path = str(tmp_path / "cert.json")
        assert main(["advise", files("tc.dl", TC), "--export", cert_path]) == 0
        other = files("other.dl", "P(x) :- E(x, y).")
        edb_path = files("edb.dl", "E(1, 2).")
        code = main(["query", other, "P(x)", "--edb", edb_path,
                     "--certificate", cert_path])
        assert code == 2

    def test_apply_certificate_returns_matching_plan(self):
        program = parse_program(TC)
        certificate = advise_program(
            program, [parse_query_form("tc(bf)", program)]
        )
        plan = apply_certificate(
            certificate, program, Atom("Tc", (Constant(0), Variable("y")))
        )
        assert plan is not None
        assert plan.predicate == "Tc"

    def test_apply_certificate_without_matching_form_is_none(self):
        program = parse_program(TC)
        certificate = advise_program(program)  # default forms: bb and ff
        plan = apply_certificate(
            certificate, program, Atom("Tc", (Constant(0), Variable("y")))
        )
        assert plan is None

    def test_apply_certificate_checks_program_key(self):
        certificate = advise_program(parse_program(TC))
        other = parse_program("P(x) :- E(x, y).")
        with pytest.raises(CertificateError):
            apply_certificate(
                certificate, other, Atom("P", (Variable("x"),))
            )


class TestAdviseCli:
    def test_text_report(self, files, capsys):
        assert main(["advise", files("tc.dl", TC)]) == 0
        out = capsys.readouterr().out
        assert "specialization advice" in out
        assert "recommend:" in out

    def test_json_report(self, files, capsys):
        assert main(["advise", files("tc.dl", TC), "--query", "tc(bf)", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == f"repro.advise/{ADVISE_SCHEMA_VERSION}"
        assert doc["plans"][0]["recommendation"]["rewrite"] == "magic"
        assert "diagnostics" in doc and "counts" in doc

    def test_bad_query_form_exits_2(self, files, capsys):
        assert main(["advise", files("tc.dl", TC), "--query", "zzz(bf)"]) == 2

    def test_shipped_examples_are_clean(self, capsys):
        for path in sorted(EXAMPLES_DIR.glob("*.dl")):
            assert main(["advise", str(path)]) == 0, path.name
            capsys.readouterr()


class TestSpecializationLints:
    def test_magic_unstratifiable_fires(self):
        diagnostics = lint(
            parse_program(MAGIC_BREAKS),
            LintConfig(select=frozenset({"magic-unstratifiable"})),
        )
        assert any(d.rule_id == "magic-unstratifiable" for d in diagnostics)
        assert all(str(d.severity).endswith("error")
                   for d in diagnostics if d.rule_id == "magic-unstratifiable")

    def test_magic_unstratifiable_silent_on_positive_programs(self):
        diagnostics = lint(
            parse_program(TC),
            LintConfig(select=frozenset({"magic-unstratifiable"})),
        )
        assert diagnostics == []

    def test_adornment_space_explosion_respects_budget(self):
        program = parse_program(TC)
        config = LintConfig(
            select=frozenset({"adornment-space-explosion"}), adornment_budget=0
        )
        diagnostics = lint(program, config)
        assert any(d.rule_id == "adornment-space-explosion" for d in diagnostics)
        relaxed = LintConfig(
            select=frozenset({"adornment-space-explosion"}), adornment_budget=64
        )
        assert lint(program, relaxed) == []


class TestBenchAdvised:
    def test_advised_cell_matches_fixed_magic_answers(self):
        from repro.obs.benchrun import run_bench
        from repro.obs.schema import validate_bench_document

        doc = run_bench(
            suites=["magic-tc"], sizes=[12], quick=True,
            date="2026-08-08", advised=True,
        )
        assert validate_bench_document(doc) == []
        advised = [e for e in doc["entries"] if e.get("advised")]
        assert len(advised) == 1
        fixed_magic = [
            e for e in doc["entries"]
            if e["engine"] == "magic" and not e.get("advised")
        ]
        assert advised[0]["stats"]["answers"] == fixed_magic[0]["stats"]["answers"]
        assert "advise_s" in advised[0]["stats"]

    def test_advised_participates_in_dedup_key(self):
        from repro.obs.schema import validate_bench_document

        entry = {
            "workload": "tc/chain", "size": 12, "engine": "seminaive",
            "backend": "rows", "stats": {"elapsed_s": 0.1},
        }
        doc = {
            "schema": "repro.bench/4", "generated": "2026-08-08",
            "quick": True, "engines": ["seminaive"],
            "entries": [entry, dict(entry, advised=True)],
        }
        assert validate_bench_document(doc) == []
        doc["entries"].append(dict(entry))
        assert any("duplicate" in e for e in validate_bench_document(doc))

    def test_non_boolean_advised_rejected(self):
        from repro.obs.schema import validate_bench_document

        doc = {
            "schema": "repro.bench/4", "generated": "2026-08-08",
            "quick": True, "engines": ["seminaive"],
            "entries": [{
                "workload": "tc/chain", "size": 12, "engine": "seminaive",
                "backend": "rows", "advised": 1,
                "stats": {"elapsed_s": 0.1},
            }],
        }
        assert any("advised" in e for e in validate_bench_document(doc))
