"""Every example script must run to completion (they contain their own
assertions), so the examples can never silently rot."""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert SCRIPTS, f"no example scripts under {EXAMPLES_DIR}"
    names = {s.stem for s in SCRIPTS}
    assert "quickstart" in names


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda s: s.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.stem} produced no output"
