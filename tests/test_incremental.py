"""Unit tests for incremental view maintenance (DRed)."""

from __future__ import annotations

import random

import pytest

from repro import Database, evaluate, parse_program
from repro.engine.incremental import MaterializedView
from repro.errors import GroundnessError, UnsafeRuleError
from repro.lang import Atom, Variable
from repro.workloads import chain, cycle, random_graph, tc_nonlinear


def recomputed(program, atoms):
    return evaluate(program, Database(atoms)).database


class TestConstruction:
    def test_initial_materialization(self, tc):
        base = chain(5)
        view = MaterializedView(tc, base)
        assert view.database == evaluate(tc, base).database

    def test_negation_rejected(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            MaterializedView(program, Database())

    def test_len_and_contains(self, tc):
        view = MaterializedView(tc, chain(3))
        assert len(view) == 3 + 6
        assert Atom.of("G", 0, 3) in view


class TestInsert:
    def test_insert_propagates(self, tc):
        view = MaterializedView(tc, chain(3))
        view.insert(Atom.of("A", 3, 4))
        expected = recomputed(tc, list(chain(4).atoms()))
        assert view.database == expected

    def test_insert_bridge_edge(self, tc):
        # Two disconnected chains joined by one new edge.
        base = chain(3)
        base.update(chain(3, offset=10))
        view = MaterializedView(tc, base)
        view.insert(Atom.of("A", 3, 10))
        atoms = set(base.atoms()) | {Atom.of("A", 3, 10)}
        assert view.database == recomputed(tc, atoms)

    def test_duplicate_insert_noop(self, tc):
        view = MaterializedView(tc, chain(3))
        before = len(view)
        stats = view.insert(Atom.of("A", 0, 1))
        assert stats.inserted == 0
        assert len(view) == before

    def test_insert_counts(self, tc):
        view = MaterializedView(tc, chain(3))
        stats = view.insert(Atom.of("A", 3, 4))
        # New: edge + G(3,4) + G(2,4) + G(1,4) + G(0,4).
        assert stats.inserted == 5

    def test_nonground_rejected(self, tc):
        view = MaterializedView(tc, chain(2))
        with pytest.raises(GroundnessError):
            view.insert(Atom("A", (Variable("x"), Variable("y"))))

    def test_insert_idb_fact(self, tc):
        # Initial IDB facts are legal inputs (paper, Section III).
        view = MaterializedView(tc, chain(2))
        view.insert(Atom.of("G", 50, 60))
        assert Atom.of("G", 50, 60) in view


class TestDelete:
    def test_delete_chain_edge(self, tc):
        base = chain(6)
        view = MaterializedView(tc, base)
        view.delete(Atom.of("A", 3, 4))
        remaining = [a for a in base.atoms() if a != Atom.of("A", 3, 4)]
        assert view.database == recomputed(tc, remaining)

    def test_delete_with_rederivation(self, tc):
        # In a cycle, many closure facts survive edge deletion through
        # alternative paths: rederivation must bring them back.
        base = cycle(5)
        view = MaterializedView(tc, base)
        stats = view.delete(Atom.of("A", 0, 1))
        remaining = [a for a in base.atoms() if a != Atom.of("A", 0, 1)]
        assert view.database == recomputed(tc, remaining)
        assert stats.rederived > 0
        assert stats.overdeleted > stats.deleted

    def test_delete_absent_fact_noop(self, tc):
        view = MaterializedView(tc, chain(3))
        before = len(view)
        stats = view.delete(Atom.of("A", 50, 51))
        assert stats.deleted == 0
        assert len(view) == before

    def test_delete_then_reinsert_roundtrip(self, tc):
        base = chain(5)
        view = MaterializedView(tc, base)
        original = view.database.copy()
        view.delete(Atom.of("A", 2, 3))
        view.insert(Atom.of("A", 2, 3))
        assert view.database == original

    def test_base_facts_protected(self, tc):
        # A(0,1) is given AND derivable-as-G... G(0,1) is derived; if we
        # delete A(1,2), G(0,1) must survive (it has its own support).
        view = MaterializedView(tc, chain(3))
        view.delete(Atom.of("A", 1, 2))
        assert Atom.of("A", 0, 1) in view
        assert Atom.of("G", 0, 1) in view
        assert Atom.of("G", 0, 2) not in view

    def test_delete_all_batch(self, tc):
        base = chain(6)
        view = MaterializedView(tc, base)
        victims = [Atom.of("A", 1, 2), Atom.of("A", 4, 5)]
        view.delete_all(victims)
        remaining = [a for a in base.atoms() if a not in victims]
        assert view.database == recomputed(tc, remaining)


class TestDifferential:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_random_workload_matches_recomputation(self, tc, seed):
        rng = random.Random(seed)
        base = random_graph(9, 18, seed=seed)
        view = MaterializedView(tc, base)
        live = set(base.atoms())
        for _ in range(15):
            if live and rng.random() < 0.5:
                atom = rng.choice(sorted(live, key=str))
                view.delete(atom)
                live.discard(atom)
            else:
                atom = Atom.of("A", rng.randrange(9), rng.randrange(9))
                view.insert(atom)
                live.add(atom)
            assert view.database == recomputed(tc, live)
