"""Columnar backend: storage contract, differential equivalence, units.

The storage contract (``docs/STORAGE.md``) promises that the two
backends are observationally identical through the five seams --
``candidates`` / ``_add_row`` / ``__contains__`` / ``empty_like`` /
``copy`` -- so every engine must compute the same answers on either.
This module checks that promise three ways:

* **unit** tests of :class:`SymbolTable` / :class:`ColumnarRelation`
  and the int/Term representation convention;
* **differential** sweeps: every workload suite under every applicable
  engine, rows vs columnar, including under seeded fault injection and
  under governed memory budgets (where both backends must degrade to
  the same *kind* of sound PARTIAL answer);
* **property** tests (hypothesis): intern -> decode round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, parse_program
from repro.data.columnar import ColumnarDatabase, ColumnarRelation, SymbolTable
from repro.engine import evaluate, get_engine
from repro.engine.costs import collect_statistics
from repro.engine.incremental import MaterializedView
from repro.engine.joins import delta_variant_positions
from repro.engine.seminaive import seminaive_fixpoint
from repro.errors import GroundnessError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom
from repro.lang.terms import Constant, Variable
from repro.obs.benchrun import run_workload
from repro.obs.schema import BENCH_SCHEMA, validate_bench_document
from repro.resilience import (
    EvaluationSession,
    EvaluationStatus,
    FaultPlan,
    ResourceGovernor,
    RetryPolicy,
)
from repro.workloads import programs
from repro.workloads.suites import SUITES

BACKENDS = ("rows", "columnar")


def atom_set(db: Database) -> frozenset[Atom]:
    return frozenset(db.atoms())


# ---------------------------------------------------------------------------
# SymbolTable / ColumnarRelation units
# ---------------------------------------------------------------------------


class TestSymbolTable:
    def test_intern_is_idempotent_and_dense(self):
        table = SymbolTable()
        a, b = Constant("a"), Constant(7)
        assert table.intern(a) == 0
        assert table.intern(b) == 1
        assert table.intern(a) == 0
        assert len(table) == 2

    def test_decode_inverts_intern(self):
        table = SymbolTable()
        terms = [Constant("x"), Constant(1), Constant("y")]
        idents = [table.intern(t) for t in terms]
        assert [table.decode(i) for i in idents] == terms

    def test_lookup_does_not_allocate(self):
        table = SymbolTable()
        assert table.lookup(Constant("never-seen")) is None
        assert len(table) == 0

    def test_variables_are_rejected(self):
        table = SymbolTable()
        with pytest.raises(GroundnessError):
            table.intern(Variable("x"))


class TestColumnarRelation:
    def test_add_discard_and_views(self):
        rel = ColumnarRelation(2)
        assert rel.add((1, 2))
        assert not rel.add((1, 2))
        assert rel.add((1, 3))
        assert rel.bucket(0, 1) == {(1, 2), (1, 3)}
        assert rel.discard((1, 2))
        assert rel.bucket(0, 1) == {(1, 3)}
        assert not rel.discard((9, 9))

    def test_copy_compacts_stale_log_entries(self):
        rel = ColumnarRelation(2)
        rel.add((1, 2))
        rel.add((3, 4))
        rel.discard((1, 2))
        assert rel.appended == 2  # stale (1, 2) still logged
        compacted = rel.copy()
        assert compacted.appended == len(compacted.rows) == 1
        assert list(compacted.columns[0]) == [3]

    def test_approximate_bytes_tracks_columns(self):
        rel = ColumnarRelation(2)
        for i in range(10):
            rel.add((i, i + 1))
        assert rel.approximate_bytes() == 10 * 2 * 8 + 10 * 24


# ---------------------------------------------------------------------------
# Backend dispatch and the five seams
# ---------------------------------------------------------------------------


class TestBackendContract:
    def test_constructor_dispatch(self):
        assert isinstance(Database(backend="columnar"), ColumnarDatabase)
        assert Database(backend="rows").backend == "rows"
        assert Database().backend == "rows"
        with pytest.raises(ValueError):
            Database(backend="parquet")

    def test_copy_and_empty_like_preserve_backend(self):
        for backend in BACKENDS:
            db = Database.from_facts({"A": [(1, 2)]})
            db = Database(db.atoms(), backend=backend)
            assert db.copy().backend == backend
            assert db.empty_like().backend == backend
            assert len(db.empty_like()) == 0
            assert atom_set(db.copy()) == atom_set(db)

    def test_contains_and_candidates_agree_across_backends(self):
        facts = {"A": [(1, 2), (2, 3), (1, 4)], "B": [("x", 1)]}
        rows = Database.from_facts(facts)
        cols = Database(rows.atoms(), backend="columnar")
        for atom in rows.atoms():
            assert atom in cols
        assert parse_atom("A(9, 9)") not in cols
        # candidates returns rows in storage representation; decoded
        # they must match the row backend's view.
        bound_term = cols.adapt_atom(parse_atom("A(1, 2)")).args[0]
        decoded = {cols.decode_row(r) for r in cols.candidates("A", {0: bound_term})}
        assert decoded == {r for r in rows.candidates("A", {0: Constant(1)})}

    def test_candidates_accepts_encoded_ints(self):
        cols = Database(Database.from_facts({"A": [(1, 2), (3, 4)]}).atoms(),
                        backend="columnar")
        encoded = cols.store_term(Constant(1))
        assert isinstance(encoded, int)
        hits = list(cols.candidates("A", {0: encoded}))
        assert len(hits) == 1

    def test_update_across_backends_decodes(self):
        cols = Database(Database.from_facts({"A": [(1, 2)]}).atoms(), backend="columnar")
        rows = Database()
        rows.update(cols)
        assert atom_set(rows) == atom_set(cols)

    def test_approximate_bytes_separates_backends(self):
        atoms = list(Database.from_facts({"A": [(i, i + 1) for i in range(100)]}).atoms())
        rows = Database(atoms, backend="rows")
        cols = Database(atoms, backend="columnar")
        assert cols.approximate_bytes() < rows.approximate_bytes()


# ---------------------------------------------------------------------------
# Differential: every suite, every applicable engine, rows == columnar
# ---------------------------------------------------------------------------

_SIZE = 8


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_fixpoint_engines_agree_across_backends(suite):
    workload = SUITES[suite]()
    reference = None
    engines = workload.engines or ("naive", "seminaive")
    for backend in BACKENDS:
        edb = workload.edb(_SIZE, backend=backend)
        assert edb.backend == backend
        for engine in engines:
            result = evaluate(workload.program, edb, engine=engine)
            answers = atom_set(result.database)
            if reference is None:
                reference = answers
            assert answers == reference, f"{suite}/{engine}/{backend} diverged"


@pytest.mark.parametrize("suite", ["magic-tc"])
def test_query_engines_agree_across_backends(suite):
    workload = SUITES[suite]()
    reference = None
    for backend in BACKENDS:
        edb = workload.edb(_SIZE, backend=backend)
        for engine in ("magic", "supplementary", "topdown"):
            answers, _ = get_engine(engine).answer(workload.program, edb, workload.query)
            got = atom_set(answers)
            if reference is None:
                reference = got
            assert got == reference, f"{suite}/{engine}/{backend} diverged"


@pytest.mark.parametrize("suite", ["tc+2atoms/chain", "same-generation"])
def test_incremental_round_trip_agrees_across_backends(suite):
    workload = SUITES[suite]()
    outcomes = []
    for backend in BACKENDS:
        edb = workload.edb(_SIZE, backend=backend)
        atoms = sorted(edb.atoms(), key=lambda a: a.sort_key())
        holdout, base = atoms[-3:], atoms[:-3]
        view = MaterializedView(workload.program, Database(base, backend=backend))
        view.insert_all(holdout)
        after_insert = atom_set(view.database)
        stats = view.delete_all(holdout)
        outcomes.append((after_insert, atom_set(view.database),
                         stats.overdeleted, stats.rederived, stats.deleted))
    assert outcomes[0] == outcomes[1]


def test_bench_runner_threads_backend():
    workload = SUITES["tc+2atoms/chain"]()
    entries = run_workload(workload, 6, ["seminaive", "incremental"], "columnar")
    assert {e["backend"] for e in entries} == {"columnar"}
    assert {e["engine"] for e in entries} == {"seminaive", "incremental"}


def test_workload_engine_restriction():
    workload = SUITES["reach/random"]()
    entries = run_workload(workload, 500, ["naive", "seminaive", "incremental"], "rows")
    assert [e["engine"] for e in entries] == ["seminaive"]


# ---------------------------------------------------------------------------
# Fault injection: the seams fire identically on either backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("backend", BACKENDS)
def test_seeded_faults_retry_to_the_clean_fixpoint(seed, backend):
    workload = SUITES["tc+2atoms/chain"]()
    edb = workload.edb(_SIZE, backend=backend)
    clean = atom_set(evaluate(workload.program, edb, engine="seminaive").database)
    session = EvaluationSession(
        workload.program,
        edb,
        engine="seminaive",
        fault_plan=FaultPlan.seeded(seed, horizon=200),
        retry_policy=RetryPolicy(max_retries=8),
    )
    result = session.run()
    assert atom_set(result.database) == clean


@pytest.mark.parametrize("backend", BACKENDS)
def test_explicit_faults_fire_identically_on_both_backends(backend):
    workload = SUITES["tc+2atoms/chain"]()
    edb = workload.edb(_SIZE, backend=backend)
    clean = atom_set(evaluate(workload.program, edb, engine="seminaive").database)
    plan = FaultPlan.transient_at("candidates", [1, 5, 9])
    session = EvaluationSession(
        workload.program, edb, engine="seminaive", fault_plan=plan
    )
    result = session.run()
    assert atom_set(result.database) == clean
    assert result.faults_seen == 3
    assert result.attempts > 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_wrapping_preserves_backend(backend):
    db = Database(Database.from_facts({"A": [(1, 2)]}).atoms(), backend=backend)
    wrapped = FaultPlan().wrap(db)
    assert wrapped.backend == backend
    assert wrapped.empty_like().backend == backend
    assert wrapped.copy().backend == backend


# ---------------------------------------------------------------------------
# Governed budgets: PARTIAL results stay sound subsets on both backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_memory_cap_degrades_to_sound_subset(backend):
    workload = SUITES["tc+2atoms/chain"]()
    edb = workload.edb(16, backend=backend)
    full = atom_set(evaluate(workload.program, edb, engine="seminaive").database)
    governor = ResourceGovernor(max_memory_bytes=1)
    result = evaluate(workload.program, edb, engine="seminaive", governor=governor)
    assert result.status is EvaluationStatus.PARTIAL
    assert atom_set(result.database) <= full


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_facts_cap_degrades_to_sound_subset(backend):
    workload = SUITES["tc+2atoms/chain"]()
    edb = workload.edb(16, backend=backend)
    full = atom_set(evaluate(workload.program, edb, engine="seminaive").database)
    governor = ResourceGovernor(max_facts=10)
    result = evaluate(workload.program, edb, engine="seminaive", governor=governor)
    assert result.status is EvaluationStatus.PARTIAL
    assert atom_set(result.database) <= full


def test_columnar_fits_where_rows_trips():
    """The storage-footprint split the million-fact bench entry records,
    at a CI-sized scale: a cap between the two backends' footprints."""
    workload = SUITES["reach/random"]()
    sizes = {}
    for backend in BACKENDS:
        edb = workload.edb(20_000, backend=backend)
        sizes[backend] = edb.approximate_bytes()
    assert sizes["columnar"] < sizes["rows"]
    cap = (sizes["columnar"] + sizes["rows"]) // 2
    outcomes = {}
    for backend in BACKENDS:
        edb = workload.edb(20_000, backend=backend)
        result = evaluate(
            workload.program, edb, engine="seminaive",
            governor=ResourceGovernor(max_memory_bytes=cap),
        )
        outcomes[backend] = result.status
    assert outcomes["columnar"] is EvaluationStatus.COMPLETE
    assert outcomes["rows"] is EvaluationStatus.PARTIAL


# ---------------------------------------------------------------------------
# Cost model: interned-domain selectivity guard
# ---------------------------------------------------------------------------


def test_costs_use_interned_domain_on_columnar():
    atoms = list(Database.from_facts({"A": [(i, i % 3) for i in range(30)]}).atoms())
    cols = Database(atoms, backend="columnar")
    stats = collect_statistics(cols)
    assert stats["A"].domain == cols.symbol_cardinality() > 0
    # Distinct-count selectivity still wins where it exists; the domain
    # is the fallback for unseen positions, never a division by zero.
    assert 0 < stats["A"].selectivity(1) <= 1


# ---------------------------------------------------------------------------
# Semi-naive delta-variant dedup (redundant-atom symmetry)
# ---------------------------------------------------------------------------


class TestDeltaVariantPositions:
    def test_symmetric_private_copies_collapse(self):
        rule = programs.tc_with_redundant_atoms(2).rules[1]
        # body: G(x,y), G(y,z), G(x,s1), G(x,s2) -- s1/s2 are private,
        # so the s2 literal is a renaming of the s1 literal.
        assert delta_variant_positions(rule.head, rule.body) == (0, 1, 2)

    def test_distinct_literals_all_kept(self):
        rule = programs.tc_nonlinear().rules[1]
        assert delta_variant_positions(rule.head, rule.body) == (0, 1)

    def test_shared_variables_prevent_collapse(self):
        program = parse_program("H(x) :- A(x, y), A(x, y).")
        rule = program.rules[0]
        # y occurs twice, so neither literal is private -- the two
        # identical literals share a signature and still collapse.
        assert delta_variant_positions(rule.head, rule.body) == (0,)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dedup_changes_no_answers_and_no_firings(self, backend):
        workload = SUITES["tc+4atoms/chain"]()
        edb = workload.edb(_SIZE, backend=backend)
        compiled = seminaive_fixpoint(workload.program, edb)
        reference = seminaive_fixpoint(workload.program, edb, use_compiled=False)
        naive = evaluate(workload.program, edb, engine="naive")
        assert atom_set(compiled.database) == atom_set(naive.database)
        assert atom_set(reference.database) == atom_set(naive.database)


# ---------------------------------------------------------------------------
# Bench schema v2
# ---------------------------------------------------------------------------


def _document(entries):
    return {
        "schema": BENCH_SCHEMA,
        "generated": "2026-08-08",
        "quick": True,
        "engines": sorted({e["engine"] for e in entries}),
        "entries": entries,
    }


class TestBenchSchemaV2:
    def test_backend_field_accepted_and_keyed(self):
        entries = [
            {"workload": "w", "size": 1, "engine": "seminaive",
             "backend": backend, "stats": {"elapsed_s": 0.1}}
            for backend in BACKENDS
        ]
        assert validate_bench_document(_document(entries)) == []

    def test_duplicate_backend_key_rejected(self):
        entry = {"workload": "w", "size": 1, "engine": "seminaive",
                 "backend": "rows", "stats": {"elapsed_s": 0.1}}
        errors = validate_bench_document(_document([entry, dict(entry)]))
        assert any("duplicate" in e for e in errors)

    def test_unknown_backend_rejected(self):
        entry = {"workload": "w", "size": 1, "engine": "seminaive",
                 "backend": "parquet", "stats": {"elapsed_s": 0.1}}
        assert any("backend" in e for e in validate_bench_document(_document([entry])))

    def test_v1_documents_remain_valid(self):
        doc = _document([
            {"workload": "w", "size": 1, "engine": "seminaive",
             "stats": {"elapsed_s": 0.1}}
        ])
        doc["schema"] = "repro.bench/1"
        assert validate_bench_document(doc) == []


# ---------------------------------------------------------------------------
# Property tests: intern -> decode round-trips
# ---------------------------------------------------------------------------

ground_terms = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31).map(Constant),
    st.text(min_size=0, max_size=12).map(Constant),
)


@settings(max_examples=100, deadline=None)
@given(st.lists(ground_terms, min_size=1, max_size=30))
def test_intern_decode_round_trip(terms):
    table = SymbolTable()
    idents = [table.intern(t) for t in terms]
    assert [table.decode(i) for i in idents] == terms
    # Idempotence: re-interning allocates nothing new.
    assert [table.intern(t) for t in terms] == idents


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                min_size=1, max_size=40))
def test_columnar_database_round_trips_facts(pairs):
    rows = Database.from_facts({"A": pairs})
    cols = Database(rows.atoms(), backend="columnar")
    assert atom_set(cols) == atom_set(rows)
    assert len(cols) == len(rows)
    for atom in rows.atoms():
        assert atom in cols
