"""Tests for the abstract-interpretation framework and its four domains.

The acceptance-critical piece is the differential class at the bottom:
with static cardinality hints wired into the compiled planner, every
engine path must still compute exactly the ``match_body`` reference
fixpoint on every workload suite.
"""

from __future__ import annotations

import pytest

from repro import Database, parse_program
from repro.analysis.absint import (
    ProgramFacts,
    analyze_cardinality,
    analyze_program,
    analyze_sorts,
    binding_analysis,
    cardinality_hints,
    certify_dead_rule,
    classify_recursion,
)
from repro.analysis.absint.cardinality import CAP, Interval
from repro.analysis.absint.recursion import LINEAR, NONLINEAR, NONLINEAR_MAX_DEPTH
from repro.engine import naive_fixpoint, seminaive_fixpoint
from repro.engine.compile import KernelCache
from repro.engine.joins import plan_order
from repro.lang import parse_atom, parse_rule
from repro.obs.metrics import metrics_registry
from repro.workloads.suites import SUITES

TC = """
T(x, y) :- E(x, y).
T(x, y) :- E(x, z), T(z, y).
"""

TC_NONLINEAR = """
T(x, y) :- E(x, y).
T(x, y) :- T(x, z), T(z, y).
"""


class TestProgramFacts:
    def test_rules_by_head_carries_indexes(self):
        program = parse_program(TC)
        facts = ProgramFacts(program)
        assert [i for i, _r in facts.rules_by_head["T"]] == [0, 1]

    def test_scc_order_is_topological(self):
        program = parse_program(
            """
            B(x) :- A(x).
            C(x) :- B(x).
            """
        )
        facts = ProgramFacts(program)
        order = [pred for scc in facts.scc_order for pred in scc]
        assert order.index("A") < order.index("B") < order.index("C")

    def test_join_components_detects_cartesian_split(self):
        program = parse_program("P(x, y) :- A(x), B(y).")
        facts = ProgramFacts(program)
        assert len(facts.join_components(program.rules[0])) == 2

    def test_reachable_from(self):
        program = parse_program(
            """
            B(x) :- A(x).
            C(x) :- B(x).
            D(x) :- A(x).
            """
        )
        facts = ProgramFacts(program)
        reachable = facts.reachable_from(frozenset({"C"}))
        assert "A" in reachable and "B" in reachable
        assert "D" not in reachable

    def test_variable_occurrences(self):
        rule = parse_rule("P(x) :- A(x, y), B(y, y).")
        program = parse_program("P(x) :- A(x, y), B(y, y).")
        facts = ProgramFacts(program)
        counts = {v.name: n for v, n in facts.variable_occurrences(rule).items()}
        assert counts == {"x": 2, "y": 3}


class TestSortDomain:
    def test_plain_tc_has_top_sorts_and_no_findings(self):
        analysis = analyze_sorts(parse_program(TC))
        assert not analysis.empty_predicates
        assert not analysis.dead_rules
        assert analysis.values["T"].describe() == "(*, *)"

    def test_constant_mismatch_marks_rule_dead(self):
        # Q only ever holds 2 at position 1, so the body Q(x, 1) of the
        # second P rule is unsatisfiable.
        program = parse_program(
            """
            Q(y, 2) :- S(y).
            P(x) :- R(x).
            P(x) :- Q(x, 1).
            """
        )
        analysis = analyze_sorts(program)
        assert 2 in analysis.dead_rules
        assert "constant 1" in analysis.dead_rules[2]
        assert not analysis.empty_predicates

    def test_all_rules_dead_makes_predicate_empty_and_propagates(self):
        program = parse_program(
            """
            Q(y, 2) :- S(y).
            P(x) :- Q(x, 1).
            Top(x) :- P(x).
            """
        )
        analysis = analyze_sorts(program)
        assert analysis.empty_predicates == {"P", "Top"}
        # The Top rule is dead *because* P is empty: deadness propagated
        # up the dependence graph through the fixpoint.
        assert "provably empty" in analysis.dead_rules[2]

    def test_value_disjoint_join_detected(self):
        program = parse_program(
            """
            A(1) :- S(x).
            B(2) :- S(x).
            P(x) :- A(x), B(x).
            """
        )
        analysis = analyze_sorts(program)
        assert 2 in analysis.dead_rules
        assert "value-disjoint" in analysis.dead_rules[2]

    def test_certified_dead_rule(self):
        # The dead rule is redundant even under the open (uniform)
        # reading: dropping it is certified by §VI containment.
        program = parse_program(
            """
            P(x) :- E(x).
            P(x) :- E(x), Q(x, 1).
            Q(y, 2) :- S(y).
            """
        )
        analysis = analyze_sorts(program)
        (index,) = [i for i in analysis.dead_rules if i == 1]
        assert certify_dead_rule(program, program.rules[index])

    def test_uncertified_dead_rule(self):
        # Closed-world dead, but with IDB facts as input the rule could
        # fire (Q(c, 1) given directly); the certificate must refuse.
        program = parse_program(
            """
            Q(y, 2) :- S(y).
            P(x) :- Q(x, 1).
            """
        )
        analysis = analyze_sorts(program)
        assert 1 in analysis.dead_rules
        assert not certify_dead_rule(program, program.rules[1])


class TestCardinalityDomain:
    def test_nonrecursive_bounds_are_products(self):
        program = parse_program("P(x, z) :- A(x, y), B(y, z).")
        analysis = analyze_cardinality(
            program, edb_counts={"A": 10, "B": 20}
        )
        assert analysis.values["P"].hi == 200

    def test_recursion_widens_to_unbounded(self):
        analysis = analyze_cardinality(parse_program(TC), edb_counts={"E": 50})
        assert analysis.values["T"].hi is None

    def test_unbounded_hint_falls_back_to_domain_bound(self):
        analysis = analyze_cardinality(parse_program(TC), edb_counts={"E": 50})
        assert analysis.hints["T"] == min(50**2, CAP)

    def test_hints_seeded_from_database_counts(self):
        program = parse_program("P(x, z) :- A(x, y), B(y, z).")
        db = Database.from_facts({"A": [(1, 2), (2, 3)], "B": [(3, 4)]})
        hints = cardinality_hints(program, db)
        assert hints["A"] == 2 and hints["B"] == 1
        assert hints["P"] == 2

    def test_widening_reported_for_slow_linear_growth(self):
        analysis = analyze_cardinality(parse_program(TC), edb_counts={"E": 2})
        assert analysis.result.widenings >= 1

    def test_interval_describe(self):
        assert Interval(0, None).describe() == "[0, inf]"
        assert Interval.exactly(3).describe() == "[3, 3]"


class TestGroundnessDomain:
    def test_tc_query_adornments(self):
        program = parse_program(TC)
        analysis = binding_analysis(program, parse_atom('T("a", y)'))
        assert {a.suffix for a in analysis.adornments_of("T")} == {"bf"}
        assert not analysis.issues

    def test_free_query_flagged(self):
        program = parse_program(TC)
        analysis = binding_analysis(program, parse_atom("T(x, y)"))
        assert any(issue.kind == "free-query" for issue in analysis.issues)

    def test_unbound_subgoal_flagged(self):
        # Left-to-right SIPS: the recursive P subgoal precedes the atom
        # that could bind its arguments, so it is demanded all-free.
        program = parse_program(
            """
            P(x, y) :- E(x, y).
            P(x, y) :- Q(y, w), E(w, x).
            Q(a, b) :- P(a, b).
            """
        )
        analysis = binding_analysis(program, parse_atom('P("c", y)'))
        assert any(
            issue.kind == "unbound-subgoal" for issue in analysis.issues
        )

    def test_demand_matches_magic_transform(self):
        from repro.engine.magic import magic_transform

        program = parse_program(
            """
            Sg(x, x) :- Per(x).
            Sg(x, y) :- Par(x, xp), Sg(xp, yp), Par(y, yp).
            """
        )
        query = parse_atom('Sg("ann", y)')
        analysis = binding_analysis(program, query)
        rewriting = magic_transform(program, query)
        demanded = {(pred, a.suffix) for pred, a in analysis.demand}
        # Every adorned predicate the rewriting produced was demanded.
        assert ("Sg", "bf") in demanded
        assert rewriting.adorned_query_predicate == "Sg__bf"


class TestRecursionDomain:
    def test_linear_classification(self):
        analysis = classify_recursion(parse_program(TC))
        assert analysis.kind_of("T") == LINEAR
        assert analysis.linear

    def test_nonlinear_classification(self):
        analysis = classify_recursion(parse_program(TC_NONLINEAR))
        assert analysis.kind_of("T") == NONLINEAR
        assert not analysis.linear

    def test_mutual_recursion_marked(self):
        program = parse_program(
            """
            Ev(x, y) :- E(x, z), Od(z, y).
            Od(x, y) :- E(x, y).
            Od(x, y) :- E(x, z), Ev(z, y).
            """
        )
        analysis = classify_recursion(program)
        (scc,) = analysis.recursive_sccs
        assert scc.mutual
        assert scc.predicates == {"Ev", "Od"}

    def test_candidate_depths(self):
        assert classify_recursion(
            parse_program("P(x) :- E(x).")
        ).candidate_depths(4) == ()
        assert classify_recursion(parse_program(TC)).candidate_depths(4) == (
            1,
            2,
            3,
            4,
        )
        assert classify_recursion(
            parse_program(TC_NONLINEAR)
        ).candidate_depths(10) == tuple(range(1, NONLINEAR_MAX_DEPTH + 1))


class TestMetrics:
    def test_analysis_counters_published(self):
        registry = metrics_registry()
        registry.reset()
        analyze_sorts(parse_program(TC))
        counters = registry.counters()
        assert counters["analysis.runs"] >= 1
        assert counters["analysis.sorts.runs"] == 1
        assert counters["analysis.fixpoint_iterations"] >= 1

    def test_report_runs_every_domain(self):
        registry = metrics_registry()
        registry.reset()
        analyze_program(parse_program(TC), query=parse_atom('T("a", y)'))
        counters = registry.counters()
        for domain in ("sorts", "cardinality", "recursion", "groundness", "termination"):
            assert counters[f"analysis.{domain}.runs"] >= 1, domain


class TestPlannerHints:
    def test_hint_breaks_empty_relation_tie(self):
        # Both body relations are empty in the db; the hint must order
        # the (statically) smaller Small before Big.
        rule = parse_rule("P(x) :- Big(x, y), Small(y, x).")
        db = Database()
        hints = {"Big": 1000, "Small": 2}
        order = plan_order(rule.body, db, hints=hints)
        assert order[0] == 1

    def test_real_statistics_beat_hints(self):
        # Big actually holds one fact; the hint claiming it is huge
        # must lose to the measured count.
        rule = parse_rule("P(x) :- Big(x, y), Small(y, x).")
        db = Database.from_facts({"Big": [(1, 2)], "Small": [(2, 1), (3, 1)]})
        order = plan_order(rule.body, db, hints={"Big": 1000, "Small": 2})
        assert order[0] == 0

    def test_kernel_cache_provider_is_lazy(self):
        calls = []

        def provider():
            calls.append(1)
            return {"T": 7}

        program = parse_program(TC)
        db = Database.from_facts({"E": [(1, 2)]})
        cache = KernelCache(program.rules, db, hint_provider=provider)
        cache.kernel(0)  # body is E only; statistics cover it
        assert not calls
        cache.kernel(1)  # body mentions T, which the db has no facts of
        assert len(calls) == 1
        cache.kernel(1, delta_position=0)  # hints memoised
        assert len(calls) == 1

    def test_hinted_plans_metric(self):
        registry = metrics_registry()
        registry.reset()
        program = parse_program(TC)
        db = Database.from_facts({"E": [(1, 2)]})
        cache = KernelCache(
            program.rules, db, hint_provider=lambda: {"T": 7}
        )
        cache.kernel(1)
        assert registry.counters()["compile.hinted_plans"] == 1


@pytest.mark.parametrize("suite", sorted(SUITES))
class TestHintedDifferential:
    """Hinted compiled plans == match_body reference, on every suite."""

    def test_hinted_engines_match_reference(self, suite):
        workload = SUITES[suite]()
        edb = workload.edb(8)
        program = workload.program
        reference = seminaive_fixpoint(
            program, edb, use_compiled=False
        ).database
        assert seminaive_fixpoint(program, edb).database == reference
        assert naive_fixpoint(program, edb).database == reference
