"""Integration tests: full pipelines across modules."""

from __future__ import annotations

import pytest

from repro import (
    Database,
    evaluate,
    minimize_program,
    optimize,
    parse_program,
    uniformly_equivalent,
)
from repro.analysis import profile
from repro.engine import answer_query
from repro.lang import format_program, parse_atom
from repro.workloads import (
    chain,
    guarded_tc,
    merged,
    random_graph,
    tc_with_redundant_atoms,
    unary_marks,
)


class TestParseOptimizeEvaluate:
    def test_text_to_results(self):
        """A downstream user's whole flow: text in, optimized results out."""
        source = """
            % Reachability with accidental redundancy.
            Reach(x, z) :- Edge(x, z), Edge(x, w).
            Reach(x, z) :- Reach(x, y), Reach(y, z).
            Reach(x, z) :- Edge(x, y), Edge(y, z).
        """
        program = parse_program(source)
        report = optimize(program)
        # The weakened copy Edge(x, w) goes; the 2-step rule is subsumed.
        assert report.optimized.size() < program.size()
        edb = random_graph(10, 20, seed=13, predicate="Edge")
        assert (
            evaluate(program, edb).database
            == evaluate(report.optimized, edb).database
        )

    def test_roundtrip_through_text(self):
        program = tc_with_redundant_atoms(2)
        minimized = minimize_program(program).program
        reparsed = parse_program(format_program(minimized))
        assert reparsed == minimized
        assert uniformly_equivalent(program, reparsed)


class TestMinimizeThenMagic:
    def test_composition_preserves_answers(self):
        """The paper's §I claim: minimization composes with magic sets."""
        program = parse_program(
            """
            G(x, z) :- A(x, z), A(x, w).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        minimized = minimize_program(program).program
        db = random_graph(15, 30, seed=21)
        query = parse_atom("G(0, x)")
        before, _ = answer_query(program, db, query)
        after, _ = answer_query(minimized, db, query)
        assert set(before.tuples("G")) == set(after.tuples("G"))

    def test_minimization_reduces_magic_work(self):
        program = parse_program(
            """
            G(x, z) :- A(x, z), A(x, w).
            G(x, z) :- A(x, y), G(y, z), A(y, v).
            """
        )
        minimized = minimize_program(program).program
        db = random_graph(20, 40, seed=3)
        query = parse_atom("G(0, x)")
        _, raw = answer_query(program, db, query)
        _, opt = answer_query(minimized, db, query)
        assert opt.stats.subgoal_attempts <= raw.stats.subgoal_attempts


class TestOptimizeThenEvaluateEquivalence:
    @pytest.mark.parametrize("n", [3, 8])
    def test_guarded_tc_same_closure(self, n):
        program = guarded_tc(2)
        optimized = optimize(program).optimized
        edb = chain(n)
        assert evaluate(program, edb).database == evaluate(optimized, edb).database

    def test_optimized_program_does_fewer_joins(self):
        program = guarded_tc(2)
        optimized = optimize(program).optimized
        edb = chain(25)
        raw = evaluate(program, edb)
        opt = evaluate(optimized, edb)
        assert opt.stats.subgoal_attempts < raw.stats.subgoal_attempts
        assert raw.database == opt.database


class TestProfilesThroughPipeline:
    def test_profile_before_after(self):
        program = tc_with_redundant_atoms(3)
        before = profile(program)
        after = profile(minimize_program(program).program)
        assert after.atom_count < before.atom_count
        assert before.is_recursive and after.is_recursive


class TestMixedDataPipeline:
    def test_example19_database_flow(self):
        """Parse Example 19, optimize, evaluate on marked chain data."""
        program = parse_program(
            """
            G(x, z) :- A(x, z), C(z).
            G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
            """
        )
        optimized = optimize(program).optimized
        edb = merged(chain(10), unary_marks(range(11)))
        full = evaluate(program, edb).database
        fast = evaluate(optimized, edb).database
        assert full == fast
        assert full.count("G") == 55

    def test_partial_marks(self):
        # With C holding only even nodes, outputs still agree.
        program = parse_program(
            """
            G(x, z) :- A(x, z), C(z).
            G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
            """
        )
        optimized = optimize(program).optimized
        edb = merged(chain(10), unary_marks(range(0, 11, 2)))
        assert (
            evaluate(program, edb).database == evaluate(optimized, edb).database
        )


class TestLargeScaleSmoke:
    def test_thousand_fact_closure(self, tc):
        edb = random_graph(60, 120, seed=17)
        result = evaluate(tc, edb)
        assert result.database.count("G") >= 120
        # And the engine agrees with the naive baseline on a sample that
        # size (guards against index-maintenance bugs at scale).
        from repro.engine import naive_fixpoint

        assert naive_fixpoint(tc, edb).database == result.database
