"""Shared fixtures: the paper's programs and small databases."""

from __future__ import annotations

import pytest

from repro import Database, parse_program
from repro import paper


@pytest.fixture
def tc():
    """Example 1: non-linear transitive closure."""
    return paper.TC_NONLINEAR


@pytest.fixture
def tc_linear():
    """Example 4: right-linear transitive closure."""
    return paper.TC_LINEAR


@pytest.fixture
def ex2_edb():
    return paper.EX2_EDB.copy()


@pytest.fixture
def chain4():
    """A(1,2), A(2,3), A(3,4)."""
    return Database.from_facts({"A": [(1, 2), (2, 3), (3, 4)]})


@pytest.fixture
def ancestry_program():
    return parse_program(
        """
        Anc(x, y) :- Par(x, y).
        Anc(x, y) :- Par(x, z), Anc(z, y).
        """
    )
