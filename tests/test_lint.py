"""Unit tests for the lint diagnostics framework (repro.analysis.lint)."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Diagnostic,
    LintConfig,
    Linter,
    check_program_source,
    known_rule_ids,
    lint,
    lint_source,
    registered_rules,
    render_json,
    render_text,
    severity_at_least,
)
from repro.analysis.lint import Fix, max_severity
from repro.core.minimize import ContainmentBudget, scan_redundancy
from repro.lang import parse_program, parse_program_with_spans

# Paper Section VII: A(w, y) is redundant (map y -> z folds it onto A(w, z)).
REDUNDANT_ATOM = "G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).\n"

# TC plus a derivable two-step path rule (redundant under Fig. 2).
REDUNDANT_RULE = """
G(x, z) :- A(x, z).
G(x, z) :- G(x, y), G(y, z).
G(x, z) :- A(x, y), A(y, z).
"""

CLEAN_TC = """
G(x, z) :- A(x, z).
G(x, z) :- G(x, y), G(y, z).
"""


def ids(diagnostics):
    return [d.rule_id for d in diagnostics]


class TestDiagnostic:
    def test_to_dict_keys_always_present(self):
        d = Diagnostic("redundant-atom", "warning", "msg")
        data = d.to_dict()
        assert set(data) == {
            "rule",
            "severity",
            "message",
            "rule_index",
            "rule_ref",
            "line",
            "column",
            "fix",
        }

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("x", "fatal", "msg")

    def test_severity_ordering(self):
        assert severity_at_least("error", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("info", "warning")
        assert severity_at_least("info", "hint")

    def test_max_severity(self):
        diags = [Diagnostic("a", "info", "m"), Diagnostic("b", "warning", "m")]
        assert max_severity(diags) == "warning"
        assert max_severity([]) is None


class TestRegistry:
    def test_nine_paper_rules_registered(self):
        expected = {
            "redundant-atom",
            "redundant-rule",
            "duplicate-rule",
            "cartesian-product",
            "singleton-variable",
            "unused-idb",
            "undefined-predicate",
            "unstratifiable",
            "tgd-candidate",
        }
        assert expected <= set(registered_rules())

    def test_pseudo_ids_known(self):
        assert {"safety", "syntax", "arity", "containment-budget"} <= known_rule_ids()


class TestRedundantAtom:
    def test_paper_example_flagged_with_fix(self):
        diags = lint(parse_program(REDUNDANT_ATOM))
        findings = [d for d in diags if d.rule_id == "redundant-atom"]
        assert len(findings) == 1
        finding = findings[0]
        assert "A(w, y)" in finding.message
        assert finding.rule_index == 0
        assert finding.fix is not None
        assert finding.fix.replacement is not None
        assert "A(w, y)" not in finding.fix.replacement

    def test_clean_program_has_no_warnings(self):
        diags = lint(parse_program(CLEAN_TC))
        assert all(not severity_at_least(d.severity, "warning") for d in diags)

    def test_budget_zero_disables_and_reports(self):
        config = LintConfig(max_containment_checks=0)
        diags = lint(parse_program(REDUNDANT_ATOM), config)
        assert "redundant-atom" not in ids(diags)
        assert "containment-budget" in ids(diags)


class TestRedundantRule:
    def test_derivable_path_rule_flagged(self):
        diags = lint(parse_program(REDUNDANT_RULE))
        findings = [d for d in diags if d.rule_id == "redundant-rule"]
        assert len(findings) == 1
        assert findings[0].rule_index == 2
        assert findings[0].fix == Fix("delete the rule")


class TestDuplicateRule:
    def test_renamed_variant_flagged(self):
        program = parse_program(
            """
            P(x) :- E(x, y), F(y).
            P(a) :- E(a, b), F(b).
            """
        )
        findings = [d for d in lint(program) if d.rule_id == "duplicate-rule"]
        assert len(findings) == 1
        assert findings[0].rule_index == 1

    def test_body_reordering_flagged(self):
        program = parse_program(
            """
            P(x) :- E(x, y), F(y).
            P(x) :- F(y), E(x, y).
            """
        )
        assert "duplicate-rule" in ids(lint(program))

    def test_distinct_rules_not_flagged(self):
        assert "duplicate-rule" not in ids(lint(parse_program(CLEAN_TC)))


class TestCartesianProduct:
    def test_disconnected_body_flagged(self):
        program = parse_program("Q(x, y) :- E(x), F(y).")
        findings = [d for d in lint(program) if d.rule_id == "cartesian-product"]
        assert len(findings) == 1

    def test_connected_body_clean(self):
        program = parse_program("Q(x, y) :- E(x, y), F(y).")
        assert "cartesian-product" not in ids(lint(program))

    def test_ground_guard_exempt(self):
        program = parse_program("Q(x) :- Flag(1), E(x).")
        assert "cartesian-product" not in ids(lint(program))


class TestSingletonVariable:
    def test_singleton_is_hint(self):
        program = parse_program("P(x) :- E(x, y).")
        findings = [d for d in lint(program) if d.rule_id == "singleton-variable"]
        assert len(findings) == 1
        assert findings[0].severity == "hint"
        assert "y" in findings[0].message

    def test_joined_variables_clean(self):
        program = parse_program("P(x) :- E(x, y), F(y).")
        assert "singleton-variable" not in ids(lint(program))


class TestUnusedIdb:
    PROGRAM = """
        Out(x) :- Mid(x).
        Mid(x) :- E(x).
        Dead(x) :- E(x), Dead(x).
    """

    def test_disabled_without_exports(self):
        assert "unused-idb" not in ids(lint(parse_program(self.PROGRAM)))

    def test_flagged_with_exports(self):
        config = LintConfig(exported=frozenset({"Out"}))
        findings = [
            d for d in lint(parse_program(self.PROGRAM), config) if d.rule_id == "unused-idb"
        ]
        assert len(findings) == 1
        assert "Dead" in findings[0].message

    def test_exported_predicates_never_flagged(self):
        config = LintConfig(exported=frozenset({"Out", "Dead"}))
        assert "unused-idb" not in ids(lint(parse_program(self.PROGRAM), config))


class TestUndefinedPredicate:
    def test_near_miss_of_idb_flagged(self):
        program = parse_program(
            """
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Rech(z, y).
            """
        )
        findings = [d for d in lint(program) if d.rule_id == "undefined-predicate"]
        assert len(findings) == 1
        assert "Rech" in findings[0].message
        assert "Reach" in findings[0].message

    def test_short_edb_names_not_flagged(self):
        # A and G are distance 2 apart as words of length 1; no typo story.
        assert "undefined-predicate" not in ids(lint(parse_program(CLEAN_TC)))

    def test_distinct_edb_relations_not_flagged(self):
        program = parse_program("Sg(x, x) :- Per(x).\nSg(x, y) :- Par(x, y).")
        assert "undefined-predicate" not in ids(lint(program))


class TestUnstratifiable:
    def test_negation_through_recursion_is_error(self):
        program = parse_program(
            """
            P(x) :- E(x), not Q(x).
            Q(x) :- E(x), not P(x).
            """
        )
        findings = [d for d in lint(program) if d.rule_id == "unstratifiable"]
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "P" in findings[0].message and "Q" in findings[0].message

    def test_stratified_negation_clean(self):
        program = parse_program(
            """
            P(x) :- E(x).
            Q(x) :- E(x), not P(x).
            """
        )
        assert "unstratifiable" not in ids(lint(program))


class TestTgdCandidate:
    def test_example18_guard_surfaced_as_info(self):
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- G(x, y), G(y, z), A(y, w).
            """
        )
        findings = [d for d in lint(program) if d.rule_id == "tgd-candidate"]
        assert findings
        assert all(d.severity == "info" for d in findings)
        assert any("A(y, w)" in d.message for d in findings)

    def test_per_rule_cap_respected(self):
        config = LintConfig(max_tgd_candidates_per_rule=0)
        program = parse_program(REDUNDANT_ATOM)
        assert "tgd-candidate" not in ids(lint(program, config))


class TestSelectIgnore:
    def test_select_runs_only_named_rules(self):
        config = LintConfig(select=frozenset({"singleton-variable"}))
        diags = lint(parse_program(REDUNDANT_ATOM), config)
        assert set(ids(diags)) <= {"singleton-variable"}

    def test_ignore_suppresses(self):
        config = LintConfig(ignore=frozenset({"redundant-atom"}))
        diags = lint(parse_program(REDUNDANT_ATOM), config)
        assert "redundant-atom" not in ids(diags)

    def test_linter_with_explicit_rules(self):
        from repro.analysis.lint_rules import SingletonVariableLint

        linter = Linter(rules=[SingletonVariableLint()])
        diags = linter.run(parse_program("P(x) :- E(x, y)."))
        assert ids(diags) == ["singleton-variable"]


class TestLintSource:
    def test_spans_attached(self):
        diags = lint_source("% comment\n" + REDUNDANT_ATOM)
        finding = next(d for d in diags if d.rule_id == "redundant-atom")
        assert finding.span is not None
        assert finding.span.line == 2

    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("G(x :- A(x).")
        assert ids(diags) == ["syntax"]
        assert diags[0].severity == "error"

    def test_arity_error_reported(self):
        diags = lint_source("P(x) :- E(x).\nQ(x) :- E(x, x).")
        assert ids(diags) == ["arity"]

    def test_safety_violations_reported_per_rule(self):
        diags = lint_source("P(x) :- E(x).\nG(x, z) :- E(x).\nH(x) :- D(x), not F(x, y).")
        assert ids(diags) == ["safety", "safety"]
        assert [d.rule_index for d in diags] == [1, 2]

    def test_filters_apply_to_source_level_ids(self):
        assert lint_source("G(x :- A(x).", LintConfig(ignore=frozenset({"syntax"}))) == []


class TestReporters:
    def test_text_clean(self):
        assert "clean" in render_text([], "p.dl")

    def test_text_lists_findings_and_fix(self):
        diags = lint_source(REDUNDANT_ATOM)
        text = render_text(diags, "p.dl")
        assert "p.dl:1:1" in text
        assert "[redundant-atom]" in text
        assert "fix:" in text
        assert "finding(s)" in text

    def test_json_round_trips_with_required_keys(self):
        diags = lint_source(REDUNDANT_ATOM)
        data = json.loads(render_json(diags, "p.dl"))
        assert data["version"] == 2
        assert data["filename"] == "p.dl"
        assert len(data["diagnostics"]) == len(diags)
        for entry in data["diagnostics"]:
            assert "rule" in entry and "severity" in entry and "rule_index" in entry
            assert "id" in entry and "rule_ref" in entry

    def test_json_counts(self):
        data = json.loads(render_json(lint_source(REDUNDANT_ATOM), "p.dl"))
        # redundant-atom, plus dead-rule and empty-predicate: the fixture's
        # G has no base case, so sort propagation proves it empty.
        assert data["counts"]["warning"] == 3


class TestScanRedundancy:
    def test_non_mutating(self):
        program = parse_program(REDUNDANT_ATOM)
        before = program.rules
        scan = scan_redundancy(program)
        assert program.rules == before
        assert len(scan.redundant_atoms) == 1
        assert scan.redundant_atoms[0].atom.predicate == "A"

    def test_budget_enforced(self):
        program = parse_program(REDUNDANT_RULE)
        scan = scan_redundancy(program, max_checks=1)
        assert scan.containment_tests == 1
        assert scan.budget_exhausted

    def test_shared_budget(self):
        budget = ContainmentBudget(2)
        program = parse_program(REDUNDANT_RULE)
        scan_redundancy(program, atoms=True, rules=False, budget=budget)
        scan_redundancy(program, atoms=False, rules=True, budget=budget)
        assert budget.spent == 2
        assert budget.skipped > 0

    def test_matches_minimize_on_paper_example(self):
        from repro import minimize_program

        program = parse_program(REDUNDANT_ATOM)
        scan = scan_redundancy(program)
        result = minimize_program(program)
        assert {f.atom for f in scan.redundant_atoms} == {
            r.atom for r in result.atom_removals
        }


class TestCheckProgramSource:
    def test_clean_program(self):
        assert check_program_source(CLEAN_TC) == []

    def test_collects_all_violations_with_positions(self):
        violations = check_program_source(
            "P(x) :- E(x).\nG(x, z) :- E(x).\nH(x) :- D(x), not F(x, y).\n"
        )
        assert [(v.rule_index, v.variable.name, v.location) for v in violations] == [
            (1, "z", "head"),
            (2, "y", "negated literal"),
        ]
        assert violations[0].line == 2

    def test_parse_error_still_raises(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            check_program_source("P(x :- E(x).")
