"""Unit tests for non-recursive preservation (Section IX, Fig. 3)
and the preliminary-DB check (Section X, condition 3')."""

from __future__ import annotations

import pytest

from repro import paper, parse_program, parse_tgd
from repro.core.chase import ChaseBudget, Verdict
from repro.core.preservation import (
    preliminary_db_satisfies,
    preserves_nonrecursively,
)
from repro.lang import Program


class TestPaperExamples:
    def test_example13_single_rule(self):
        report = preserves_nonrecursively(Program.of(paper.EX13_RULE), [paper.EX11_TGD])
        assert report.verdict is Verdict.PROVED

    def test_example14_whole_program(self):
        report = preserves_nonrecursively(paper.EX11_P1, [paper.EX11_TGD])
        assert report.verdict is Verdict.PROVED
        # Three unification cases: rule 1, rule 2, trivial rule.
        assert report.combinations_examined == 3

    def test_example15_four_combinations(self):
        report = preserves_nonrecursively(Program.of(paper.EX13_RULE), [paper.EX15_TGD])
        assert report.verdict is Verdict.PROVED
        # Two LHS atoms × (rule r + trivial rule) each = 4 combinations.
        assert report.combinations_examined == 4

    def test_example16(self):
        report = preserves_nonrecursively(Program.of(paper.EX16_RULE), [paper.EX16_TGD])
        assert report.verdict is Verdict.PROVED

    def test_example19_program(self):
        report = preserves_nonrecursively(paper.EX19_P1, [paper.EX16_TGD])
        assert report.verdict is Verdict.PROVED


class TestViolations:
    def test_rule_that_breaks_tgd(self):
        # The rule produces H facts with a second argument that nothing
        # constrains; the tgd insists every H(x,y) has Mark(y).
        program = parse_program("H(x, y) :- A(x, y).")
        tgd = parse_tgd("H(x, y) -> Mark(y)")
        report = preserves_nonrecursively(program, [tgd])
        assert report.verdict is Verdict.DISPROVED
        assert report.counterexample is not None

    def test_counterexample_is_genuine(self):
        # Rebuild the counterexample scenario: d satisfies T but
        # ⟨d, Pⁿ(d)⟩ does not.
        from repro.core.tgds import satisfies_all
        from repro.data import Database
        from repro.engine import apply_once

        program = parse_program("H(x, y) :- A(x, y).")
        tgd = parse_tgd("H(x, y) -> Mark(y)")
        report = preserves_nonrecursively(program, [tgd])
        counter = Database(
            a for a in report.counterexample if a.predicate != "H"
        )
        assert satisfies_all(counter, [tgd])  # d ∈ SAT(T)
        combined = counter.copy()
        combined.add_all(apply_once(program, counter))
        assert not satisfies_all(combined, [tgd])

    def test_copy_rule_preserves(self):
        # H(x, y) :- G(x, y) just copies; if every G has a Mark then
        # every H does NOT automatically... the tgd is about H, and d
        # may contain G facts without marks, so this must be violated.
        program = parse_program("H(x, y) :- G(x, y).")
        tgd = parse_tgd("H(x, y) -> Mark(y)")
        report = preserves_nonrecursively(program, [tgd])
        assert report.verdict is Verdict.DISPROVED

    def test_guarded_copy_preserves(self):
        # Adding the mark requirement to the rule body restores preservation.
        program = parse_program("H(x, y) :- G(x, y), Mark(y).")
        tgd = parse_tgd("H(x, y) -> Mark(y)")
        report = preserves_nonrecursively(program, [tgd])
        assert report.verdict is Verdict.PROVED

    def test_stop_at_violation_default(self):
        program = parse_program(
            """
            H(x, y) :- A(x, y).
            H(x, y) :- B(x, y).
            """
        )
        tgd = parse_tgd("H(x, y) -> Mark(y)")
        stopped = preserves_nonrecursively(program, [tgd])
        assert stopped.verdict is Verdict.DISPROVED
        exhaustive = preserves_nonrecursively(program, [tgd], stop_at_violation=False)
        assert exhaustive.combinations_examined >= stopped.combinations_examined

    def test_unknown_on_diverging_tgds(self):
        # The tgd repairs create new LHS matches forever; the check can
        # neither pass nor saturate within the budget.
        program = parse_program("H(x, y) :- A(x, y).")
        tgds = [parse_tgd("H(x, y) -> Mark(y)"), parse_tgd("A(x, y) -> A(y, w)")]
        report = preserves_nonrecursively(
            program, tgds, budget=ChaseBudget(max_rounds=4, max_nulls=30)
        )
        assert report.verdict in (Verdict.UNKNOWN, Verdict.DISPROVED)


class TestCombinationEnumeration:
    def test_trivial_rules_participate(self, tc):
        tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w)")
        report = preserves_nonrecursively(tc, [tgd], stop_at_violation=False)
        # Two intensional LHS atoms × (2 program rules + 1 trivial) = 9.
        assert report.combinations_examined == 9

    def test_extensional_lhs_needs_no_unification(self):
        program = parse_program("H(x, y) :- A(x, y), Mark(y).")
        tgd = parse_tgd("A(x, y) -> B(x)")  # LHS purely extensional
        report = preserves_nonrecursively(program, [tgd])
        # d = {A(x0,y0)} already satisfies tgds only after chase; one
        # "combination" (the empty product) is examined.
        assert report.combinations_examined == 1
        assert report.verdict is Verdict.PROVED

    def test_head_with_repeated_variable_unification(self):
        # Head G(x, x) cannot produce G(x0, y0) with distinct constants:
        # the combination is skipped, leaving only the trivial rule.
        program = parse_program("G(x, x) :- A(x).")
        tgd = parse_tgd("G(x, y) -> B(x)")
        report = preserves_nonrecursively(program, [tgd], stop_at_violation=False)
        # Only the trivial-rule choice survives unification.
        assert report.combinations_examined == 1


class TestPreliminaryDb:
    def test_example18_condition3prime(self):
        report = preliminary_db_satisfies(paper.EX11_P1, [paper.EX11_TGD])
        assert report.verdict is Verdict.PROVED

    def test_example19_condition3prime(self):
        report = preliminary_db_satisfies(paper.EX19_P1, [paper.EX16_TGD])
        assert report.verdict is Verdict.PROVED

    def test_never_unknown(self):
        # No tgds are applied, so the check always terminates decisively.
        program = parse_program("G(x, z) :- A(x, z).")
        tgd = parse_tgd("G(x, y) -> G(y, w)")
        report = preliminary_db_satisfies(program, [tgd])
        assert report.verdict in (Verdict.PROVED, Verdict.DISPROVED)

    def test_violating_initialization_rule(self):
        # The preliminary DB of G(x,z) :- A(x,z) contains G facts with
        # no C marks, so this tgd fails.
        program = parse_program("G(x, z) :- A(x, z).")
        tgd = parse_tgd("G(x, z) -> C(z)")
        report = preliminary_db_satisfies(program, [tgd])
        assert report.verdict is Verdict.DISPROVED

    def test_satisfying_initialization_rule(self):
        program = parse_program("G(x, z) :- A(x, z), C(z).")
        tgd = parse_tgd("G(x, z) -> C(z)")
        report = preliminary_db_satisfies(program, [tgd])
        assert report.verdict is Verdict.PROVED

    def test_unproducible_lhs_vacuous(self):
        # No initialization rule derives H, so the tgd about H is
        # vacuously satisfied by every preliminary DB.
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            H(x) :- G(x, x).
            """
        )
        tgd = parse_tgd("H(x) -> Mark(x)")
        report = preliminary_db_satisfies(program, [tgd])
        assert report.verdict is Verdict.PROVED
        assert report.combinations_examined == 0

    def test_no_trivial_rules_used(self):
        # With trivial rules the tgd below would be violated (G(x0,y0)
        # in d with no mark); the preliminary check must NOT use them,
        # and the only initialization rule guards with Mark.
        program = parse_program(
            """
            G(x, y) :- A(x, y), Mark(y).
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        tgd = parse_tgd("G(x, y) -> Mark(y)")
        report = preliminary_db_satisfies(program, [tgd])
        assert report.verdict is Verdict.PROVED
