"""Differential and chaos tests for the parallel evaluation engine.

The parallel engine's contract is *observational equivalence*: for any
program, database, backend, and worker count, ``parallel_evaluate``
produces the same database, the same deterministic output ordering,
and the same work counters (minus execution-shaped ones) as the serial
engines.  Round barriers are the only synchronization points, so the
sweep below checks equality per worker count rather than sampling.

Chaos coverage rides the barrier hook seam
(:func:`repro.engine.parallel.set_barrier_chaos_hook`): a worker is
SIGKILLed mid-round, the crash surfaces as the retryable
:class:`~repro.errors.WorkerCrashError`, and a checkpointed session
retries from the last barrier generation to the bitwise-identical
fixpoint.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import Database, evaluate, parse_program
from repro.data.columnar import (
    live_pool_count,
    note_pool_started,
    note_pool_stopped,
    reset_symbol_table,
)
from repro.engine import get_engine
from repro.engine.parallel import (
    DeltaShard,
    WorkerPool,
    parallel_evaluate,
    scc_waves,
    set_barrier_chaos_hook,
)
from repro.errors import ReproError, WorkerCrashError
from repro.lang.serialize import database_to_json
from repro.obs.schema import validate_bench_document
from repro.resilience import (
    CheckpointManager,
    EvaluationSession,
    EvaluationStatus,
    ResourceGovernor,
    RetryPolicy,
)

TC_LINEAR = parse_program(
    """
    T(x, y) :- E(x, y).
    T(x, z) :- E(x, y), T(y, z).
    """
)

TC_NONLINEAR = parse_program(
    """
    T(x, y) :- E(x, y).
    T(x, z) :- T(x, y), T(y, z).
    """
)

#: A head constant that never appears in the EDB: workers must agree
#: with the master on its interned id (the pre-interning seam).
CONSTED = parse_program(
    """
    T(x, y) :- E(x, y).
    T(x, z) :- T(x, y), T(y, z).
    Root(99, x) :- T(0, x).
    """
)

NEGATION = parse_program(
    """
    R(x, y) :- E(x, y).
    R(x, z) :- R(x, y), E(y, z).
    Un(x) :- N(x), not R(0, x).
    """
)

#: Two independent SCCs (P-chain, Q-chain) feeding a third: the wave
#: scheduler runs the first two concurrently.
WAVES = parse_program(
    """
    P(x, y) :- Ep(x, y).
    P(x, z) :- P(x, y), Ep(y, z).
    Q(x, y) :- Eq(x, y).
    Q(x, z) :- Q(x, y), Eq(y, z).
    Top(x, y) :- P(x, y), Q(x, y).
    """
)

BACKENDS = ("rows", "columnar")
WORKER_COUNTS = (1, 2, 4)


def chain_db(n: int, backend: str = "rows", predicate: str = "E") -> Database:
    db = Database(backend=backend)
    for i in range(n):
        db.add_fact(predicate, i, i + 1)
    return db


def negation_db(n: int, backend: str = "rows") -> Database:
    db = chain_db(n, backend)
    for i in range(n + 3):
        db.add_fact("N", i)
    return db


def waves_db(n: int, backend: str = "rows") -> Database:
    db = chain_db(n, backend, "Ep")
    for i in range(n):
        db.add_fact("Eq", i, i + 1)
    return db


def canonical(db: Database) -> str:
    """Backend-independent canonical form for cross-run comparison."""
    return json.dumps(database_to_json(db), sort_keys=True)


# ---------------------------------------------------------------------------
# Differential sweep: parallel == serial, every engine x backend x N
# ---------------------------------------------------------------------------
class TestDifferential:
    CASES = (
        ("seminaive", TC_LINEAR, chain_db, 9),
        ("seminaive", TC_NONLINEAR, chain_db, 9),
        ("seminaive", CONSTED, chain_db, 7),
        ("stratified", NEGATION, negation_db, 8),
        ("stratified", WAVES, waves_db, 7),
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize(
        "engine,program,make_db,size",
        CASES,
        ids=[f"{e}-{i}" for i, (e, *_rest) in enumerate(CASES)],
    )
    def test_parallel_equals_serial(
        self, engine, program, make_db, size, backend, workers
    ):
        serial = get_engine(engine).run(program, make_db(size, backend))
        parallel = parallel_evaluate(
            program, make_db(size, backend), engine=engine, workers=workers
        )
        assert parallel.status is EvaluationStatus.COMPLETE
        assert canonical(parallel.database) == canonical(serial.database)
        assert parallel.stats.facts_derived == serial.stats.facts_derived

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicates_avoided_matches_serial_exactly(self, backend):
        """Shard views delegate containment to the full delta, so the
        summed counter equals the serial engine's, not a partition-
        dependent undercount."""
        serial = get_engine("seminaive").run(TC_NONLINEAR, chain_db(9, backend))
        parallel = parallel_evaluate(
            TC_NONLINEAR, chain_db(9, backend), engine="seminaive", workers=3
        )
        assert parallel.stats.duplicates_avoided == serial.stats.duplicates_avoided
        assert parallel.stats.rule_firings == serial.stats.rule_firings
        assert parallel.stats.iterations == serial.stats.iterations

    def test_governed_partial_matches_serial(self):
        """A tripped cap degrades to the same sound under-approximation
        as a serial run: barriers are the sync points, so the surviving
        prefix of rounds is identical."""
        serial = get_engine("seminaive").run(
            TC_NONLINEAR, chain_db(12), governor=ResourceGovernor(max_facts=40)
        )
        parallel = parallel_evaluate(
            TC_NONLINEAR,
            chain_db(12),
            engine="seminaive",
            governor=ResourceGovernor(max_facts=40),
            workers=2,
        )
        assert serial.status is EvaluationStatus.PARTIAL
        assert parallel.status is EvaluationStatus.PARTIAL
        assert canonical(parallel.database) == canonical(serial.database)
        assert parallel.degradation.limit == serial.degradation.limit

    def test_workers_one_is_the_serial_engine(self):
        result = parallel_evaluate(TC_LINEAR, chain_db(6), workers=1)
        serial = get_engine("seminaive").run(TC_LINEAR, chain_db(6))
        assert canonical(result.database) == canonical(serial.database)

    def test_rejects_non_fixpoint_engines_and_bad_counts(self):
        with pytest.raises(ValueError):
            parallel_evaluate(TC_LINEAR, chain_db(4), engine="magic", workers=2)
        with pytest.raises(ValueError):
            parallel_evaluate(TC_LINEAR, chain_db(4), workers=0)


class TestSpawnStart:
    def test_spawn_workers_agree_with_serial(self, monkeypatch):
        """The spawn path ships a symbol-table snapshot instead of
        relying on fork inheritance; ids must still agree."""
        monkeypatch.setenv("REPRO_PARALLEL_START", "spawn")
        serial = get_engine("seminaive").run(CONSTED, chain_db(6, "columnar"))
        parallel = parallel_evaluate(
            CONSTED, chain_db(6, "columnar"), engine="seminaive", workers=2
        )
        assert canonical(parallel.database) == canonical(serial.database)


# ---------------------------------------------------------------------------
# SCC wave schedule
# ---------------------------------------------------------------------------
class TestWaves:
    def test_independent_sccs_share_a_wave(self):
        waves = scc_waves(WAVES)
        assert waves == [[("P",), ("Q",)], [("Top",)]]

    def test_waves_are_deterministic(self):
        assert scc_waves(WAVES) == scc_waves(WAVES)


# ---------------------------------------------------------------------------
# Fork-safety of the interning seam
# ---------------------------------------------------------------------------
class TestSymbolTableForkSafety:
    def test_reset_refused_while_pool_is_live(self):
        note_pool_started()
        try:
            with pytest.raises(ReproError, match="worker pool"):
                reset_symbol_table()
        finally:
            note_pool_stopped()

    def test_reset_allowed_after_pools_stop(self):
        assert live_pool_count() == 0

    def test_real_pool_registers_and_unregisters(self):
        pool = WorkerPool(2, TC_LINEAR, backend="rows")
        try:
            assert live_pool_count() == 1
            with pytest.raises(ReproError):
                reset_symbol_table()
        finally:
            pool.close()
        assert live_pool_count() == 0


# ---------------------------------------------------------------------------
# The satellite fix: shard views must not double-bill shared columns
# ---------------------------------------------------------------------------
class TestDeltaShardBytes:
    def test_approximate_bytes_counts_rows_not_columns(self):
        delta = chain_db(10, "columnar")
        rows = {"E": set(tuple(r) for r in [(0, 1), (1, 2), (2, 3)])}
        shard = DeltaShard(delta, rows)
        assert shard.approximate_bytes() == 3 * 24
        # Two shards of the same delta together cost their row counts,
        # not 2x the parent's column logs.
        other = DeltaShard(delta, {"E": {(4, 5)}})
        combined = shard.approximate_bytes() + other.approximate_bytes()
        assert combined == 4 * 24
        assert combined < delta.approximate_bytes()

    def test_empty_shard_is_falsy_and_free(self):
        shard = DeltaShard(chain_db(4), {})
        assert not shard
        assert shard.approximate_bytes() == 0


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a worker mid-round, retry from the barrier checkpoint
# ---------------------------------------------------------------------------
class TestWorkerCrashRecovery:
    def test_crash_surfaces_as_worker_crash_error(self):
        fired = []

        def kill_one(pool, round_index):
            if round_index == 2 and not fired:
                fired.append(round_index)
                os.kill(pool.pids[0], signal.SIGKILL)

        set_barrier_chaos_hook(kill_one)
        try:
            with pytest.raises(WorkerCrashError):
                parallel_evaluate(
                    TC_NONLINEAR, chain_db(9), engine="seminaive", workers=2
                )
        finally:
            set_barrier_chaos_hook(None)
        assert fired == [2]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_session_retries_from_barrier_checkpoint(self, tmp_path, backend):
        serial = evaluate(TC_NONLINEAR, chain_db(9, backend)).database
        fired = []

        def kill_one(pool, round_index):
            if round_index == 3 and not fired:
                fired.append(round_index)
                os.kill(pool.pids[0], signal.SIGKILL)

        manager = CheckpointManager(tmp_path / "ck.json", every=1)
        session = EvaluationSession(
            TC_NONLINEAR,
            chain_db(9, backend),
            engine="seminaive",
            checkpoint_manager=manager,
            retry_policy=RetryPolicy(max_retries=2),
            workers=2,
        )
        set_barrier_chaos_hook(kill_one)
        try:
            result = session.run()
        finally:
            set_barrier_chaos_hook(None)
        assert fired == [3]
        assert result.attempts == 2
        assert result.status is EvaluationStatus.COMPLETE
        assert canonical(result.database) == canonical(serial)
        # The retry resumed from a durable generation, not the EDB.
        latest = manager.latest()
        assert latest is not None


# ---------------------------------------------------------------------------
# Deterministic CLI output, byte-for-byte across worker counts
# ---------------------------------------------------------------------------
def run_cli(tmp_path: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
    )


@pytest.fixture
def tc_files(tmp_path):
    program = tmp_path / "tc.dl"
    program.write_text("T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), T(y, z).\n")
    edb = tmp_path / "tc.edb"
    edb.write_text("".join(f"E({i}, {i + 1}).\n" for i in range(7)))
    return program, edb


class TestCliDeterminism:
    def test_eval_output_byte_identical_across_worker_counts(
        self, tmp_path, tc_files
    ):
        program, edb = tc_files
        outputs = {}
        for workers in ("1", "2", "4"):
            proc = run_cli(
                tmp_path, "eval", str(program), "--edb", str(edb), "--workers", workers
            )
            assert proc.returncode == 0, proc.stderr
            outputs[workers] = proc.stdout
        assert outputs["1"] == outputs["2"] == outputs["4"]

    def test_json_output_identical_modulo_execution_shape(self, tmp_path, tc_files):
        """``elapsed_s`` and ``subgoal_attempts`` are execution-shaped
        (wall clock; per-shard kernel probing); everything else --
        facts, ordering, status, derived counts -- must match."""
        program, edb = tc_files
        docs = {}
        for workers in ("1", "2"):
            proc = run_cli(
                tmp_path,
                "eval",
                str(program),
                "--edb",
                str(edb),
                "--json",
                "--workers",
                workers,
            )
            assert proc.returncode == 0, proc.stderr
            doc = json.loads(proc.stdout)
            doc["stats"].pop("elapsed_s", None)
            doc["stats"].pop("subgoal_attempts", None)
            docs[workers] = doc
        assert docs["1"] == docs["2"]
        assert docs["1"]["database"] == docs["2"]["database"]


# ---------------------------------------------------------------------------
# Bench schema v3
# ---------------------------------------------------------------------------
def bench_doc(**entry_extra):
    entry = {
        "workload": "tc/chain",
        "size": 12,
        "engine": "seminaive",
        "backend": "rows",
        "stats": {"elapsed_s": 0.1},
    }
    entry.update(entry_extra)
    return {
        "schema": "repro.bench/3",
        "generated": "2026-08-08",
        "quick": True,
        "engines": ["seminaive"],
        "entries": [entry],
    }


class TestBenchSchemaV3:
    def test_workers_field_accepted(self):
        assert validate_bench_document(bench_doc(workers=4)) == []

    def test_workers_defaults_to_one(self):
        assert validate_bench_document(bench_doc()) == []

    def test_bad_workers_rejected(self):
        assert validate_bench_document(bench_doc(workers=0))
        assert validate_bench_document(bench_doc(workers=True))
        assert validate_bench_document(bench_doc(workers="2"))

    def test_workers_participates_in_dedup_key(self):
        doc = bench_doc()
        doc["entries"].append(dict(doc["entries"][0], workers=2))
        assert validate_bench_document(doc) == []
        doc["entries"].append(dict(doc["entries"][0]))
        errors = validate_bench_document(doc)
        assert any("duplicate" in e for e in errors)

    def test_v2_documents_still_valid(self):
        doc = bench_doc()
        doc["schema"] = "repro.bench/2"
        assert validate_bench_document(doc) == []
