"""Unit tests for the exception hierarchy and error ergonomics."""

from __future__ import annotations

import pytest

from repro.errors import (
    ArityError,
    BudgetExceededError,
    GroundnessError,
    ParseError,
    ReproError,
    StratificationError,
    TgdError,
    UnsafeRuleError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ParseError("x"),
            UnsafeRuleError("x"),
            ArityError("x"),
            GroundnessError("x"),
            TgdError("x"),
            StratificationError("x"),
            BudgetExceededError("x"),
            ValidationError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_structural_errors_are_validation_errors(self):
        for cls in (UnsafeRuleError, ArityError, GroundnessError, TgdError):
            assert issubclass(cls, ValidationError)

    def test_one_except_clause_suffices(self):
        from repro import parse_program

        with pytest.raises(ReproError):
            parse_program("G(x :- A(x).")
        with pytest.raises(ReproError):
            parse_program("G(x, y) :- A(x).")  # unsafe


class TestParseErrorLocations:
    def test_line_and_column_attached(self):
        error = ParseError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)
        assert "column 7" in str(error)

    def test_line_only(self):
        error = ParseError("bad token", line=2)
        assert "line 2" in str(error)
        assert "column" not in str(error)

    def test_no_location(self):
        assert str(ParseError("bad token")) == "bad token"

    def test_real_parse_failure_reports_position(self):
        from repro import parse_program

        with pytest.raises(ParseError) as excinfo:
            parse_program("G(x, y) :- A(x, y).\n\nG(x y) :- A(x, y).")
        assert excinfo.value.line == 3


class TestErrorMessages:
    def test_unsafe_rule_names_variables(self):
        from repro import parse_rule

        with pytest.raises(UnsafeRuleError, match="z"):
            parse_rule("G(x, z) :- A(x, x).")

    def test_arity_error_names_predicate(self):
        from repro import parse_program

        with pytest.raises(ArityError, match="G"):
            parse_program("G(x) :- G(x, x).")

    def test_groundness_error_shows_atom(self):
        from repro import Database
        from repro.lang import Atom, Variable

        with pytest.raises(GroundnessError, match="A"):
            Database().add(Atom("A", (Variable("x"),)))
