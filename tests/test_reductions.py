"""Unit tests for the §IV uniform-to-plain containment reduction."""

from __future__ import annotations

import pytest

from repro import Database, evaluate, paper, parse_program, uniformly_contains
from repro.core.reductions import (
    add_seed_rules,
    has_seed_rules,
    plain_equals_uniform,
    seed_predicate,
)
from repro.errors import ValidationError
from repro.workloads import random_graph


class TestConstruction:
    def test_one_seed_rule_per_idb(self, tc):
        primed = add_seed_rules(tc)
        assert len(primed) == len(tc) + 1
        assert "G0" in primed.edb_predicates

    def test_seed_rule_shape(self, tc):
        primed = add_seed_rules(tc)
        (seed_rule,) = [r for r in primed.rules if r not in tc.rules]
        assert str(seed_rule) == "G(x1, x2) :- G0(x1, x2)."

    def test_collision_rejected(self):
        program = parse_program(
            """
            G(x) :- A(x).
            P(x) :- G0(x).
            """
        )
        with pytest.raises(ValidationError):
            add_seed_rules(program)

    def test_alternative_suffix(self):
        program = parse_program(
            """
            G(x) :- A(x).
            P(x) :- G0(x).
            """
        )
        primed = add_seed_rules(program, suffix="_init")
        assert seed_predicate("G", "_init") in primed.edb_predicates


class TestRecognition:
    def test_primed_programs_recognized(self, tc, tc_linear):
        assert has_seed_rules(add_seed_rules(tc))
        assert has_seed_rules(add_seed_rules(tc_linear))

    def test_nonlinear_tc_already_seeded(self, tc):
        # The paper's own remark: G(x,z) :- A(x,z) qualifies because A
        # appears in no other rule of the non-linear program, so no
        # seed rule needs to be added for it.
        assert has_seed_rules(tc)

    def test_linear_tc_not_seeded(self, tc_linear):
        # Here A also feeds the recursive rule, so it is not private.
        assert not has_seed_rules(tc_linear)

    def test_shared_seed_predicate_rejected(self):
        # The "B0 appears in no other rule" condition.
        program = parse_program(
            """
            G(x, y) :- G0(x, y).
            H(x, y) :- G0(x, y).
            G(x, z) :- G(x, y), G(y, z).
            H(x, z) :- H(x, y), H(y, z).
            """
        )
        assert not has_seed_rules(program)

    def test_repeated_variable_head_not_a_seed(self):
        program = parse_program("G(x, x) :- G0(x, x).")
        assert not has_seed_rules(program)

    def test_plain_equals_uniform_condition(self, tc, tc_linear):
        assert plain_equals_uniform(add_seed_rules(tc), add_seed_rules(tc_linear))
        assert not plain_equals_uniform(tc, tc_linear)


class TestTheorem:
    """P2 ⊑u P1  iff  P2′ ⊑ P1′ — verified in both directions.

    Plain containment of the primed programs is sampled over random
    EDBs (it has no decision procedure), which suffices to *refute*
    containment and to corroborate the positive direction.
    """

    def _plain_containment_sample(self, p1, p2, seeds=5) -> bool:
        for seed in range(seeds):
            edb = random_graph(6, 10, seed=seed)
            # Give the seed predicates content too: that is the point
            # of the construction.
            for row in random_graph(6, 6, seed=seed + 50).tuples("A"):
                edb._add_row("G0", row)
            out1 = evaluate(p1, edb).database
            out2 = evaluate(p2, edb).database
            if not out2.issubset(out1):
                return False
        return True

    def test_positive_direction(self):
        # TC_LINEAR ⊑u TC_NONLINEAR holds, so the primed programs must
        # be plainly contained on every sample.
        p1p = add_seed_rules(paper.TC_NONLINEAR)
        p2p = add_seed_rules(paper.TC_LINEAR)
        assert uniformly_contains(paper.TC_NONLINEAR, paper.TC_LINEAR)
        assert self._plain_containment_sample(p1p, p2p)

    def test_negative_direction(self):
        # TC_NONLINEAR ⋢u TC_LINEAR: the primed programs must separate
        # on some sample (the seeded G facts expose the difference).
        p1p = add_seed_rules(paper.TC_LINEAR)
        p2p = add_seed_rules(paper.TC_NONLINEAR)
        assert not uniformly_contains(paper.TC_LINEAR, paper.TC_NONLINEAR)
        assert not self._plain_containment_sample(p1p, p2p)

    def test_decidable_test_answers_plain_containment_under_condition(self):
        # For primed programs, the Section VI test IS the plain
        # containment test.
        p1p = add_seed_rules(paper.TC_NONLINEAR)
        p2p = add_seed_rules(paper.TC_LINEAR)
        assert plain_equals_uniform(p1p, p2p)
        assert uniformly_contains(p1p, p2p)
        assert not uniformly_contains(p2p, p1p)
