"""Unit tests for the public differential-testing harness."""

from __future__ import annotations

import pytest

from repro import Database, parse_program
from repro.cli import main
from repro.testing import (
    DifferentialReport,
    check_engines_agree,
    check_maintenance_exact,
    check_minimization_sound,
    check_optimizer_sound,
    check_query_strategies_agree,
    random_database,
    random_program,
    run_differential_suite,
)


class TestGenerators:
    def test_random_program_deterministic(self):
        assert random_program(5) == random_program(5)

    def test_random_database_deterministic(self):
        assert random_database(5) == random_database(5)

    def test_seeds_vary_output(self):
        assert any(random_program(i) != random_program(i + 1) for i in range(5))


class TestChecks:
    def test_engines_agree_on_sane_program(self, tc):
        db = Database.from_facts({"A": [(1, 2), (2, 3)]})
        assert check_engines_agree(tc, db) is None

    def test_minimization_sound_on_paper_example(self):
        from repro import paper

        samples = [random_database(i) for i in range(2)]
        assert check_minimization_sound(paper.EX7_P1, samples) is None

    def test_optimizer_sound_on_example19(self):
        from repro import paper
        from repro.workloads import chain, merged, unary_marks

        samples = [merged(chain(4), unary_marks(range(5)))]
        assert check_optimizer_sound(paper.EX19_P1, samples) is None

    def test_query_strategies_agree(self):
        program = parse_program(
            """
            G(x, z) :- E0(x, z).
            G(x, z) :- E0(x, y), G(y, z).
            """
        )
        from repro.lang import parse_atom

        db = random_database(3)
        assert check_query_strategies_agree(program, db, parse_atom("G(0, x)")) is None

    def test_maintenance_exact(self):
        program = parse_program(
            """
            G(x, z) :- E0(x, z).
            G(x, z) :- E0(x, y), G(y, z).
            """
        )
        assert check_maintenance_exact(program, seed=4) is None


class TestSuite:
    def test_small_run_clean(self):
        report = run_differential_suite(seeds=5)
        assert report.ok, [str(f) for f in report.failures]
        assert report.seeds_run == 5
        assert report.checks_run == 25

    def test_summary_format(self):
        report = DifferentialReport(seeds_run=3, checks_run=9)
        assert "OK" in report.summary()

    def test_maintenance_can_be_skipped(self):
        report = run_differential_suite(seeds=2, include_maintenance=False)
        assert report.checks_run == 8


class TestCliFuzz:
    def test_fuzz_command(self, capsys):
        code = main(["fuzz", "--seeds", "3"])
        assert code == 0
        assert "OK" in capsys.readouterr().out
