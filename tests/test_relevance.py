"""Unit tests for query-relevance analysis."""

from __future__ import annotations

from repro import Database, evaluate, parse_program
from repro.analysis.relevance import (
    relevant_predicates,
    restrict_to_goal,
    unreachable_predicates,
)
from repro.workloads import chain


MULTI = """
    % reachability, wanted
    R(x, y) :- E(x, y).
    R(x, y) :- E(x, z), R(z, y).
    % an unrelated aggregate-ish predicate, dead for R queries
    Deg(x, y) :- E(x, y), E(x, w).
    DegTwo(x) :- Deg(x, y), Deg(x, z).
"""


class TestRelevantPredicates:
    def test_goal_included(self):
        program = parse_program(MULTI)
        assert "R" in relevant_predicates(program, "R")

    def test_edb_feeding_goal_included(self):
        program = parse_program(MULTI)
        assert "E" in relevant_predicates(program, "R")

    def test_dead_predicates_excluded(self):
        program = parse_program(MULTI)
        relevant = relevant_predicates(program, "R")
        assert "Deg" not in relevant
        assert "DegTwo" not in relevant

    def test_unknown_goal_is_singleton(self):
        program = parse_program(MULTI)
        assert relevant_predicates(program, "Nope") == {"Nope"}

    def test_everything_relevant_to_sink(self):
        program = parse_program(MULTI)
        relevant = relevant_predicates(program, "DegTwo")
        assert {"DegTwo", "Deg", "E"} <= relevant

    def test_unreachable_helper(self):
        program = parse_program(MULTI)
        assert unreachable_predicates(program, "R") == {"Deg", "DegTwo"}


class TestRestrictToGoal:
    def test_dead_rules_removed(self):
        program = parse_program(MULTI)
        result = restrict_to_goal(program, "R")
        assert len(result.program) == 2
        assert len(result.removed_rules) == 2
        assert result.changed

    def test_goal_answers_unchanged(self):
        program = parse_program(MULTI)
        restricted = restrict_to_goal(program, "R").program
        db = chain(6, predicate="E")
        full = evaluate(program, db).database
        lean = evaluate(restricted, db).database
        assert full.tuples("R") == lean.tuples("R")

    def test_retained_predicates_unchanged(self):
        program = parse_program(MULTI)
        restricted = restrict_to_goal(program, "DegTwo").program
        db = chain(5, predicate="E")
        full = evaluate(program, db).database
        lean = evaluate(restricted, db).database
        assert full.tuples("DegTwo") == lean.tuples("DegTwo")
        assert full.tuples("Deg") == lean.tuples("Deg")

    def test_no_op_when_all_relevant(self, tc):
        result = restrict_to_goal(tc, "G")
        assert result.program == tc
        assert not result.changed

    def test_unknown_goal_drops_everything(self):
        program = parse_program(MULTI)
        result = restrict_to_goal(program, "Mystery")
        assert len(result.program) == 0
        # Querying it still "works": only stored facts.
        db = Database.from_facts({"Mystery": [(1,)]})
        assert evaluate(result.program, db).database.count("Mystery") == 1

    def test_mutual_recursion_kept_together(self):
        program = parse_program(
            """
            P(x) :- A(x, y), Q(y).
            Q(x) :- B(x, y), P(y).
            Z(x) :- C(x).
            """
        )
        result = restrict_to_goal(program, "P")
        heads = {r.head.predicate for r in result.program.rules}
        assert heads == {"P", "Q"}


class TestRelevanceEdgeCases:
    def test_zero_ary_predicates(self):
        program = parse_program("Go() :- Start().\nGo() :- Go(), Step().")
        assert relevant_predicates(program, "Go") == {"Go", "Start", "Step"}
        assert unreachable_predicates(program, "Go") == frozenset()

    def test_head_negated_in_own_body_still_relevant(self):
        # Negative dependencies count for relevance: dropping A or P would
        # change the (stratified-semantics) answer to a P query.
        program = parse_program("P(x) :- A(x), not P(x).")
        assert relevant_predicates(program, "P") == {"P", "A"}

    def test_facts_only_program(self):
        program = parse_program("A(1, 2).\nA(2, 3).")
        assert relevant_predicates(program, "A") == {"A"}
        assert unreachable_predicates(program, "A") == frozenset()
        result = restrict_to_goal(program, "A")
        assert not result.changed
        assert len(result.program) == 2
