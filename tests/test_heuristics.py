"""Unit tests for Section XI candidate-tgd discovery."""

from __future__ import annotations

from repro import paper, parse_rule, parse_tgd
from repro.core.heuristics import candidate_tgds
from repro.lang.atoms import atoms_variables


def all_candidates(rule, **kwargs):
    return list(candidate_tgds(rule, **kwargs))


class TestPaperCandidates:
    def test_example18_tgd_found(self):
        # Rule: G(x,z) :- G(x,y), G(y,z), A(y,w); wanted: G(y,z) -> A(y,w).
        rule = paper.EX11_P1.rules[1]
        wanted = parse_tgd("G(y, z) -> A(y, w)")
        assert wanted in [c.tgd for c in all_candidates(rule)]

    def test_example19_tgd_found(self):
        rule = paper.EX19_P1.rules[1]
        wanted = parse_tgd("G(y, z) -> G(y, w) & C(w)")
        candidates = all_candidates(rule)
        assert wanted in [c.tgd for c in candidates]

    def test_example19_positions(self):
        rule = paper.EX19_P1.rules[1]
        wanted = parse_tgd("G(y, z) -> G(y, w) & C(w)")
        (hit,) = [c for c in all_candidates(rule) if c.tgd == wanted]
        # Body: A(x,y), G(y,z), G(y,w), C(w) -- deletes positions 2, 3.
        assert hit.rhs_body_positions == (2, 3)

    def test_larger_rhs_first(self):
        rule = paper.EX19_P1.rules[1]
        sizes = [len(c.rhs_body_positions) for c in all_candidates(rule)]
        assert sizes == sorted(sizes, reverse=True)


class TestProperties:
    def test_property1_lhs_predicate_matches_head(self):
        rule = paper.EX11_P1.rules[1]
        for candidate in all_candidates(rule):
            assert all(a.predicate == "G" for a in candidate.tgd.lhs)

    def test_property2_existential_vars_closed(self):
        rule = parse_rule("G(x, z) :- G(x, y), A(y, w), B(w, z).")
        for candidate in all_candidates(rule):
            existential = candidate.tgd.existential_variables
            body = rule.body_atoms()
            for var in existential:
                holders = {i for i, a in enumerate(body) if var in a.variable_set()}
                assert holders <= set(candidate.rhs_body_positions)

    def test_property3_existential_vars_not_in_head(self):
        rule = paper.EX11_P1.rules[1]
        head_vars = rule.head.variable_set()
        for candidate in all_candidates(rule):
            assert not (candidate.tgd.existential_variables & head_vars)

    def test_no_candidates_without_head_predicate_in_body(self):
        rule = parse_rule("G(x, z) :- A(x, z), B(z).")
        assert all_candidates(rule) == []

    def test_bounds_respected(self):
        rule = paper.EX19_P1.rules[1]
        for candidate in all_candidates(rule, max_lhs_atoms=1, max_rhs_atoms=2):
            assert len(candidate.tgd.lhs) <= 1
            assert len(candidate.tgd.rhs) <= 2

    def test_deterministic(self):
        rule = paper.EX19_P1.rules[1]
        assert [str(c.tgd) for c in all_candidates(rule)] == [
            str(c.tgd) for c in all_candidates(rule)
        ]

    def test_no_duplicates(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w), A(y, v).")
        rendered = [str(c.tgd) for c in all_candidates(rule)]
        assert len(rendered) == len(set(rendered))

    def test_candidate_str(self):
        rule = paper.EX11_P1.rules[1]
        candidate = all_candidates(rule)[0]
        assert "deletes body positions" in str(candidate)
