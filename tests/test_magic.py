"""Unit tests for the magic-sets rewriting."""

from __future__ import annotations

import pytest

from repro import Database, evaluate, parse_program
from repro.engine.magic import (
    Adornment,
    adorned_name,
    answer_query,
    magic_name,
    magic_transform,
)
from repro.errors import UnsafeRuleError
from repro.lang import Atom, Variable, parse_atom
from repro.lang.terms import Constant
from repro.workloads import chain, random_graph

x, y = Variable("x"), Variable("y")


def reference_answers(program, db, query):
    """Answers by full evaluation + selection (the oracle)."""
    full = evaluate(program, db).database
    out = set()
    for row in full.tuples(query.predicate):
        if all(
            isinstance(qt, Variable) or qt == rt for qt, rt in zip(query.args, row)
        ):
            out.add(row)
    return out


class TestAdornment:
    def test_suffix(self):
        assert Adornment((True, False)).suffix == "bf"
        assert Adornment((False, False, True)).suffix == "ffb"

    def test_for_atom_constants_bound(self):
        atom = parse_atom("G(0, x)")
        assert Adornment.for_atom(atom, frozenset()).pattern == (True, False)

    def test_for_atom_bound_variables(self):
        atom = Atom("G", (x, y))
        assert Adornment.for_atom(atom, frozenset({x})).pattern == (True, False)

    def test_names(self):
        adornment = Adornment((True, False))
        assert adorned_name("G", adornment) == "G__bf"
        assert magic_name("G", adornment) == "m__G__bf"


class TestTransform:
    def test_linear_tc_structure(self):
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        rewriting = magic_transform(program, parse_atom("G(0, x)"))
        names = {r.head.predicate for r in rewriting.program.rules}
        assert "G__bf" in names
        assert "m__G__bf" in names
        assert rewriting.seed == Atom.of("m__G__bf", 0)

    def test_rejects_negation(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            magic_transform(program, parse_atom("P(0)"))

    def test_rejects_reserved_names(self):
        program = parse_program("G__bf(x) :- A(x).")
        with pytest.raises(UnsafeRuleError):
            magic_transform(program, parse_atom("G__bf(0)"))

    def test_rejects_edb_query(self, tc):
        with pytest.raises(ValueError):
            magic_transform(tc, parse_atom("A(0, x)"))


class TestSips:
    HOSTILE = """
        P(x, z) :- B(y, z), A(x, y).
        P(x, z) :- B(y, z), A(x, w), P(w, y).
    """

    def _db(self):
        db = random_graph(15, 30, seed=1, predicate="A")
        db.update(random_graph(15, 30, seed=2, predicate="B"))
        return db

    @pytest.mark.parametrize("sips", ["left-to-right", "most-bound"])
    def test_both_strategies_correct(self, sips):
        program = parse_program(self.HOSTILE)
        db = self._db()
        query = parse_atom("P(x, 5)")
        answers, _ = answer_query(program, db, query, sips=sips)
        assert set(answers.tuples("P")) == reference_answers(program, db, query)

    def test_most_bound_cuts_work_on_hostile_order(self):
        # The written order starts with an unbound B subgoal; the
        # bound-first SIPS starts from the bound z position instead.
        program = parse_program(self.HOSTILE)
        db = self._db()
        query = parse_atom("P(x, 5)")
        _, ltr = answer_query(program, db, query, sips="left-to-right")
        _, mb = answer_query(program, db, query, sips="most-bound")
        assert mb.stats.subgoal_attempts < ltr.stats.subgoal_attempts

    def test_unknown_sips_rejected(self, tc):
        with pytest.raises(ValueError):
            magic_transform(tc, parse_atom("G(0, x)"), sips="rightmost")


class TestCorrectness:
    @pytest.mark.parametrize(
        "query_text", ["G(0, x)", "G(x, 5)", "G(0, 5)", "G(x, y)"]
    )
    def test_linear_tc_all_adornments(self, query_text):
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        db = random_graph(12, 24, seed=5)
        query = parse_atom(query_text)
        answers, _result = answer_query(program, db, query)
        assert set(answers.tuples("G")) == reference_answers(program, db, query)

    def test_nonlinear_tc(self, tc):
        db = chain(8)
        query = parse_atom("G(0, x)")
        answers, _ = answer_query(tc, db, query)
        assert set(answers.tuples("G")) == reference_answers(tc, db, query)

    def test_same_generation_bound_first(self):
        from repro.workloads import merged, random_tree, unary_marks, same_generation

        program = same_generation()
        db = merged(
            random_tree(15, seed=2, predicate="Par"),
            unary_marks(range(15), predicate="Per"),
        )
        query = parse_atom("Sg(3, x)")
        answers, _ = answer_query(program, db, query)
        assert set(answers.tuples("Sg")) == reference_answers(program, db, query)

    def test_empty_answer(self):
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        db = chain(5)
        query = parse_atom("G(99, x)")
        answers, _ = answer_query(program, db, query)
        assert len(answers) == 0

    def test_edb_query_selects_directly(self, tc):
        db = chain(5)
        answers, _ = answer_query(tc, db, parse_atom("A(0, x)"))
        assert set(answers.tuples("A")) == {(Constant(0), Constant(1))}

    def test_goal_directed_is_cheaper(self):
        # Magic must explore fewer facts than full evaluation on a
        # query about one source in a large graph.
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        # Two disconnected chains: the query only touches one.
        db = chain(30)
        db.update(chain(30, offset=100))
        query = parse_atom("G(100, x)")
        answers, magic_result = answer_query(program, db, query)
        full_result = evaluate(program, db)
        assert set(answers.tuples("G")) == reference_answers(program, db, query)
        assert magic_result.stats.facts_derived < full_result.stats.facts_derived
