"""Edge-case coverage across modules: zero-arity predicates, constants
everywhere, ground rules, empty inputs, weird-but-legal syntax."""

from __future__ import annotations

import pytest

from repro import (
    Database,
    evaluate,
    minimize_program,
    parse_program,
    parse_rule,
    parse_tgd,
    uniformly_contains,
    uniformly_equivalent,
)
from repro.core.chase import chase
from repro.core.minimize import minimize_rule
from repro.engine import apply_once, evaluate_stratified
from repro.lang import Atom, Program


class TestZeroArity:
    def test_zero_arity_fact_and_rule(self):
        program = parse_program(
            """
            Go().
            Ready(x) :- Task(x), Go().
            """
        )
        db = Database.from_facts({"Task": [(1,), (2,)]})
        out = evaluate(program, db).database
        assert out.count("Ready") == 2

    def test_zero_arity_gate_closed(self):
        program = parse_program("Ready(x) :- Task(x), Go().")
        db = Database.from_facts({"Task": [(1,)]})
        out = evaluate(program, db).database
        assert out.count("Ready") == 0

    def test_zero_arity_head_derivation(self):
        program = parse_program("Any() :- Task(x).")
        db = Database.from_facts({"Task": [(7,)]})
        out = evaluate(program, db).database
        assert Atom("Any", ()) in out

    def test_zero_arity_containment(self):
        p1 = parse_program("P() :- A(x).")
        p2 = parse_program("P() :- A(x), B(x).")
        assert uniformly_contains(p1, p2)
        assert not uniformly_contains(p2, p1)


class TestConstantsEverywhere:
    def test_all_constant_rule(self):
        program = parse_program("G(1, 2) :- A(3).")
        db = Database.from_facts({"A": [(3,)]})
        out = evaluate(program, db).database
        assert Atom.of("G", 1, 2) in out

    def test_constant_join(self):
        program = parse_program("P(x) :- A(x, 3), B(3, x).")
        db = Database.from_facts({"A": [(1, 3), (2, 4)], "B": [(3, 1)]})
        out = evaluate(program, db).database
        assert out.tuples("P") == Database.from_facts({"P": [(1,)]}).tuples("P")

    def test_minimize_respects_constants(self):
        # A(x, 3) and A(x, 4) are NOT mutually redundant.
        rule = parse_rule("P(x) :- A(x, 3), A(x, 4).")
        assert minimize_rule(rule) == rule

    def test_minimize_folds_constant_weakening(self):
        # A(x, y) IS redundant given A(x, 3) (y weakened to anything).
        rule = parse_rule("P(x) :- A(x, 3), A(x, y).")
        minimized = minimize_rule(rule)
        assert len(minimized.body) == 1
        assert str(minimized.body[0]) == "A(x, 3)"

    def test_string_constants_join(self):
        program = parse_program("P(x) :- Name(x, 'alice').")
        db = Database.from_facts({"Name": [(1, "alice"), (2, "bob")]})
        out = evaluate(program, db).database
        assert out.count("P") == 1

    def test_string_int_never_equal(self):
        program = parse_program("P(x) :- A(x, 1), B(x, '1').")
        db = Database.from_facts({"A": [(0, 1)], "B": [(0, "1")]})
        out = evaluate(program, db).database
        assert out.count("P") == 1  # both present, as distinct values


class TestEmptyAndDegenerate:
    def test_empty_program_on_empty_db(self):
        out = evaluate(Program(), Database()).database
        assert len(out) == 0

    def test_facts_only_program(self):
        program = parse_program("A(1, 2). A(2, 3).")
        out = evaluate(program, Database()).database
        assert len(out) == 2

    def test_rule_never_firing(self):
        program = parse_program("P(x) :- Missing(x).")
        db = Database.from_facts({"Other": [(1,)]})
        out = evaluate(program, db).database
        assert out.count("P") == 0

    def test_apply_once_on_fact_program(self):
        program = parse_program("A(1, 2).")
        assert apply_once(program, Database()) == {Atom.of("A", 1, 2)}

    def test_chase_empty_everything(self):
        outcome = chase(Database(), Program(), [])
        assert outcome.saturated
        assert len(outcome.database) == 0

    def test_minimize_fact_program(self):
        program = parse_program("A(1, 2). A(1, 2).")
        result = minimize_program(program)
        assert len(result.program) == 1  # parser/Program dedupe

    def test_single_fact_redundant_via_rule(self):
        # The fact G(1,2) is derivable from A(1,2) via the rule: redundant.
        program = parse_program(
            """
            A(1, 2).
            G(1, 2).
            G(x, z) :- A(x, z).
            """
        )
        result = minimize_program(program)
        assert parse_rule("G(1, 2).") not in result.program.rules


class TestSelfContainment:
    def test_tautological_rule_removed(self):
        # G(x, z) :- G(x, z) is contained in the empty program.
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- G(x, z).
            """
        )
        result = minimize_program(program)
        assert len(result.program) == 1

    def test_permuted_recursion_kept(self):
        # G(x, z) :- G(z, x) genuinely does something; must survive.
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- G(z, x).
            """
        )
        result = minimize_program(program)
        assert len(result.program) == 2


class TestStratifiedEdges:
    def test_negation_on_empty_relation(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        db = Database.from_facts({"A": [(1,), (2,)]})
        out = evaluate_stratified(program, db).database
        assert out.count("P") == 2

    def test_double_negation_layers(self):
        program = parse_program(
            """
            Q(x) :- A(x), not B(x).
            R(x) :- A(x), not Q(x).
            """
        )
        db = Database.from_facts({"A": [(1,), (2,)], "B": [(1,)]})
        out = evaluate_stratified(program, db).database
        # Q = {2}; R = A - Q = {1}.
        assert set(out.tuples("Q")) == Database.from_facts({"Q": [(2,)]}).tuples("Q")
        assert set(out.tuples("R")) == Database.from_facts({"R": [(1,)]}).tuples("R")


class TestTgdEdges:
    def test_tgd_with_constants(self):
        tgd = parse_tgd("G(x, 3) -> Mark(x)")
        db = Database.from_facts({"G": [(1, 3), (2, 4)], "Mark": [(1,)]})
        assert tgd.is_satisfied_by(db)  # only (1,3) triggers; Mark(1) holds

    def test_tgd_with_constants_violated(self):
        tgd = parse_tgd("G(x, 3) -> Mark(x)")
        db = Database.from_facts({"G": [(5, 3)]})
        assert not tgd.is_satisfied_by(db)

    def test_tgd_lhs_repeated_variable(self):
        tgd = parse_tgd("G(x, x) -> Loop(x)")
        db = Database.from_facts({"G": [(1, 1), (1, 2)], "Loop": [(1,)]})
        assert tgd.is_satisfied_by(db)

    def test_chase_with_constant_tgd(self):
        tgd = parse_tgd("Person(x) -> Likes(x, 'pizza')")
        db = Database.from_facts({"Person": [("a",)]})
        outcome = chase(db, None, [tgd])
        assert outcome.saturated
        assert outcome.database.contains_tuple(
            "Likes", tuple(Database.from_facts({"L": [("a", "pizza")]}).tuples("L"))[0]
        )


class TestUniformEquivalenceEdges:
    def test_variable_renaming_equivalent(self):
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(u, v) :- A(u, v).")
        assert uniformly_equivalent(p1, p2)

    def test_body_reordering_equivalent(self):
        p1 = parse_program("P(x) :- A(x), B(x).")
        p2 = parse_program("P(x) :- B(x), A(x).")
        assert uniformly_equivalent(p1, p2)

    def test_split_vs_joined_rules(self):
        # One program with a disjunctive pair of rules vs a single
        # stronger rule: not equivalent.
        p1 = parse_program("P(x) :- A(x). P(x) :- B(x).")
        p2 = parse_program("P(x) :- A(x), B(x).")
        assert uniformly_contains(p1, p2)
        assert not uniformly_contains(p2, p1)
