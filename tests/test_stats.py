"""Regression tests for :class:`repro.engine.stats.EvaluationStats`."""

from __future__ import annotations

import pytest

from repro.engine.stats import EvaluationStats
from repro.obs.metrics import metrics_registry


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics_registry().reset()
    yield
    metrics_registry().reset()


class TestStopIdempotence:
    def test_double_stop_does_not_inflate_elapsed(self):
        stats = EvaluationStats()
        stats.start()
        stats.stop()
        elapsed = stats.elapsed
        stats.stop()  # historically clobbered/inflated elapsed
        assert stats.elapsed == elapsed

    def test_stop_without_start_is_a_noop(self):
        stats = EvaluationStats()
        stats.stop()
        assert stats.elapsed == 0.0
        assert metrics_registry().counter("evaluation.runs") == 0

    def test_each_effective_stop_publishes_once(self):
        stats = EvaluationStats(engine="seminaive")
        stats.start()
        stats.stop()
        stats.stop()
        stats.stop()
        assert metrics_registry().counter("evaluation.runs") == 1
        assert metrics_registry().counter("evaluation.seminaive.runs") == 1

    def test_start_stop_can_reopen_and_accumulate(self):
        stats = EvaluationStats()
        stats.start()
        stats.stop()
        first = stats.elapsed
        stats.start()
        stats.stop()
        assert stats.elapsed >= first
        assert metrics_registry().counter("evaluation.runs") == 2


class TestMerge:
    def test_merge_sums_all_counters_including_elapsed(self):
        a = EvaluationStats(
            iterations=2, rule_firings=3, subgoal_attempts=5, facts_derived=7, elapsed=0.25
        )
        b = EvaluationStats(
            iterations=1, rule_firings=1, subgoal_attempts=2, facts_derived=3, elapsed=0.5
        )
        a.merge(b)
        assert a.iterations == 3
        assert a.rule_firings == 4
        assert a.subgoal_attempts == 7
        assert a.facts_derived == 10
        assert a.elapsed == pytest.approx(0.75)  # historically dropped

    def test_merge_leaves_other_untouched(self):
        a = EvaluationStats(elapsed=0.1)
        b = EvaluationStats(iterations=4, elapsed=0.2)
        a.merge(b)
        assert b.iterations == 4
        assert b.elapsed == 0.2


class TestToDict:
    def test_flat_json_ready_mapping(self):
        stats = EvaluationStats(
            iterations=1, rule_firings=2, subgoal_attempts=3, facts_derived=4, elapsed=0.5
        )
        assert stats.to_dict() == {
            "iterations": 1,
            "rule_firings": 2,
            "subgoal_attempts": 3,
            "facts_derived": 4,
            "duplicates_avoided": 0,
            "elapsed_s": 0.5,
        }

    def test_equality_ignores_engine_tag(self):
        assert EvaluationStats(engine="naive") == EvaluationStats(engine="seminaive")
