"""Unit tests for repro.lang.programs."""

from __future__ import annotations

import pytest

from repro.errors import ArityError
from repro.lang import parse_program, parse_rule
from repro.lang.programs import Program


class TestConstruction:
    def test_duplicate_rules_collapse(self):
        rule = parse_rule("G(x, z) :- A(x, z).")
        program = Program([rule, rule])
        assert len(program) == 1

    def test_arity_conflict_raises(self):
        with pytest.raises(ArityError):
            parse_program(
                """
                G(x) :- A(x, x).
                G(x, y) :- A(x, y).
                """
            )

    def test_arity_conflict_across_head_and_body(self):
        with pytest.raises(ArityError):
            parse_program("G(x) :- G(x, x).")

    def test_empty_program(self):
        program = Program()
        assert len(program) == 0
        assert program.predicates == frozenset()


class TestClassification:
    def test_idb_edb_split(self, tc):
        assert tc.idb_predicates == {"G"}
        assert tc.edb_predicates == {"A"}

    def test_predicate_both_roles_is_idb(self):
        program = parse_program(
            """
            G(x, z) :- A(x, z).
            A(x, z) :- A(x, y), G(y, z).
            """
        )
        assert program.idb_predicates == {"G", "A"}
        assert program.edb_predicates == frozenset()

    def test_arity_lookup(self, tc):
        assert tc.arity("G") == 2
        with pytest.raises(KeyError):
            tc.arity("Nope")

    def test_rules_for(self, tc):
        assert len(tc.rules_for("G")) == 2
        assert tc.rules_for("A") == ()

    def test_initialization_rules(self, tc):
        init = tc.initialization_rules()
        assert [str(r) for r in init] == ["G(x, z) :- A(x, z)."]

    def test_facts_are_initialization_rules(self):
        program = parse_program(
            """
            G(1, 2).
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        assert len(program.initialization_rules()) == 1

    def test_size_counts_heads_and_bodies(self, tc):
        # 2 heads + 1 + 2 body atoms.
        assert tc.size() == 5


class TestUpdates:
    def test_with_rule(self, tc):
        extra = parse_rule("H(x) :- A(x, x).")
        bigger = tc.with_rule(extra)
        assert len(bigger) == 3
        assert len(tc) == 2  # original untouched

    def test_with_rule_existing_noop(self, tc):
        assert tc.with_rule(tc.rules[0]) is tc

    def test_without_rule(self, tc):
        smaller = tc.without_rule(tc.rules[1])
        assert len(smaller) == 1

    def test_replace_rule_preserves_position(self, tc):
        replacement = parse_rule("G(x, z) :- A(x, y), G(y, z).")
        replaced = tc.replace_rule(tc.rules[1], replacement)
        assert replaced.rules[1] == replacement
        assert replaced.rules[0] == tc.rules[0]

    def test_union(self, tc, tc_linear):
        merged = tc.union(tc_linear)
        # The initialization rule is shared.
        assert len(merged) == 3

    def test_map_rules(self, tc):
        renamed = tc.map_rules(lambda r: r.rename_variables("_0"))
        assert all("_0" in str(r) for r in renamed.rules)


class TestEquality:
    def test_order_insensitive(self):
        p1 = parse_program("G(x, z) :- A(x, z). G(x, z) :- G(x, y), G(y, z).")
        p2 = parse_program("G(x, z) :- G(x, y), G(y, z). G(x, z) :- A(x, z).")
        assert p1 == p2

    def test_hashable(self, tc):
        assert hash(tc) == hash(Program(tc.rules))


class TestTrivialRules:
    def test_one_per_idb_predicate(self, tc):
        augmented = tc.with_trivial_rules()
        assert len(augmented) == 3
        trivial = [r for r in augmented.rules if r not in tc.rules]
        assert [str(r) for r in trivial] == ["G(x1, x2) :- G(x1, x2)."]

    def test_idempotent(self, tc):
        once = tc.with_trivial_rules()
        assert once.with_trivial_rules() == once

    def test_no_trivial_for_edb(self, tc):
        augmented = tc.with_trivial_rules()
        assert all(r.head.predicate != "A" for r in augmented.rules)


class TestPresentation:
    def test_str_is_parseable(self, tc):
        assert parse_program(str(tc)) == tc

    def test_from_source(self):
        program = Program.from_source("G(x, z) :- A(x, z).")
        assert len(program) == 1
