"""Unit tests for the end-to-end optimizer (Sections VII + X + XI)."""

from __future__ import annotations

import pytest

from repro import evaluate, paper, parse_program
from repro.core.optimizer import optimize
from repro.workloads import chain, guarded_tc, tc_nonlinear, tc_with_redundant_atoms


class TestExample19:
    def test_end_to_end(self):
        report = optimize(paper.EX19_P1)
        assert report.optimized == paper.EX19_P2

    def test_justifying_tgd_recorded(self):
        report = optimize(paper.EX19_P1)
        (removal,) = report.equivalence_removals
        assert str(removal.tgd) == "G(y, z) -> G(y, w) & C(w)"
        assert [str(a) for a in removal.removed_atoms] == ["G(y, w)", "C(w)"]

    def test_summary(self):
        report = optimize(paper.EX19_P1)
        assert "1 deletion(s)" in report.summary()


class TestExample18Family:
    def test_guarded_tc_one_guard(self):
        report = optimize(guarded_tc(1))
        assert report.optimized == tc_nonlinear()

    def test_guarded_tc_two_guards(self):
        report = optimize(guarded_tc(2))
        assert report.optimized == tc_nonlinear()

    def test_uniform_only_keeps_guards(self):
        # The guards are not redundant under uniform equivalence.
        program = guarded_tc(1)
        report = optimize(program, use_equivalence=False)
        assert report.optimized == program
        assert report.equivalence_attempts == 0


class TestUniformLayer:
    def test_planted_atoms_removed_by_phase1(self):
        report = optimize(tc_with_redundant_atoms(2), use_equivalence=True)
        assert report.optimized == tc_nonlinear()
        assert len(report.minimization.atom_removals) == 2

    def test_minimal_program_untouched(self, tc):
        report = optimize(tc)
        assert report.optimized == tc
        assert not report.changed


class TestSemantics:
    @pytest.mark.parametrize("k", [1, 2])
    def test_optimized_program_equivalent_on_data(self, k):
        # The ultimate sanity check: same outputs on concrete EDBs.
        program = guarded_tc(k)
        report = optimize(program)
        for n in (1, 4, 9):
            edb = chain(n)
            assert (
                evaluate(program, edb).database
                == evaluate(report.optimized, edb).database
            )

    def test_example19_on_data(self):
        from repro.workloads import merged, unary_marks

        report = optimize(paper.EX19_P1)
        edb = merged(chain(6), unary_marks(range(7)))
        assert (
            evaluate(paper.EX19_P1, edb).database
            == evaluate(report.optimized, edb).database
        )


class TestGoalDirected:
    def test_dead_rules_dropped_for_goal(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            R(x, y) :- E(x, z), R(z, y).
            Deg(x, y) :- E(x, y), E(x, w).
            """
        )
        report = optimize(program, goal="R")
        assert len(report.relevance_removed) == 1
        assert {r.head.predicate for r in report.optimized.rules} == {"R"}
        assert "relevance" in report.summary()

    def test_goal_answers_preserved(self):
        from repro import evaluate

        program = parse_program(
            """
            R(x, y) :- E(x, y).
            R(x, y) :- E(x, z), R(z, y).
            Deg(x, y) :- E(x, y), E(x, w).
            """
        )
        report = optimize(program, goal="R")
        edb = chain(6, predicate="E")
        assert (
            evaluate(program, edb).database.tuples("R")
            == evaluate(report.optimized, edb).database.tuples("R")
        )

    def test_no_goal_keeps_everything(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            Deg(x, y) :- E(x, y).
            """
        )
        report = optimize(program)
        assert report.relevance_removed == ()
        assert len(report.optimized) == 2


class TestBudgets:
    def test_attempt_limit(self):
        report = optimize(paper.EX19_P1, max_equivalence_attempts=0)
        assert report.equivalence_attempts == 0
        # Uniform minimization still ran.
        assert report.minimization is not None

    def test_proofs_recorded(self):
        report = optimize(paper.EX19_P1)
        assert len(report.proofs) == report.equivalence_attempts
