"""Regression tests: queries with repeated variables select the diagonal.

Adornments and call patterns track *boundness* only; the repeated-
variable constraint of a query like ``G(x, x)`` must be enforced when
answers are projected out.  All three query strategies are covered.
"""

from __future__ import annotations

import pytest

from repro import evaluate
from repro.engine import answer_query, answer_query_supplementary, tabled_query
from repro.lang import parse_atom
from repro.workloads import cycle, random_graph, tc_linear, tc_nonlinear


def diagonal(program, db):
    full = evaluate(program, db).database
    return {row for row in full.tuples("G") if row[0] == row[1]}


@pytest.fixture(params=["cycle", "random"])
def graph(request):
    if request.param == "cycle":
        return cycle(5)
    return random_graph(10, 25, seed=19)


@pytest.fixture(params=[tc_linear, tc_nonlinear])
def program(request):
    return request.param()


class TestDiagonalQueries:
    def test_magic(self, program, graph):
        answers, _ = answer_query(program, graph, parse_atom("G(x, x)"))
        assert set(answers.tuples("G")) == diagonal(program, graph)

    def test_supplementary(self, program, graph):
        answers, _ = answer_query_supplementary(program, graph, parse_atom("G(x, x)"))
        assert set(answers.tuples("G")) == diagonal(program, graph)

    def test_tabled(self, program, graph):
        result = tabled_query(program, graph, parse_atom("G(x, x)"))
        assert set(result.answers.tuples("G")) == diagonal(program, graph)

    def test_nonempty_on_cycles(self, program):
        # Sanity: cycles do have diagonal facts, so the filter is not
        # trivially passing on empty sets.
        db = cycle(4)
        answers, _ = answer_query(program, db, parse_atom("G(x, x)"))
        assert len(answers) == 4
