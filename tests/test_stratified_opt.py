"""Unit tests for stratified-program minimization (the announced extension)."""

from __future__ import annotations

import pytest

from repro import Database, evaluate_stratified, parse_program
from repro.core.stratified_opt import (
    decode_negation,
    encode_negation,
    minimize_stratified,
)
from repro.errors import StratificationError, UnsafeRuleError


class TestEncoding:
    def test_roundtrip(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            Un(x) :- Node(x), not R(x, x).
            """
        )
        assert decode_negation(encode_negation(program)) == program

    def test_encoded_program_is_positive(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        encoded = encode_negation(program)
        assert encoded.is_positive
        assert "B__neg" in encoded.predicates

    def test_positive_program_unchanged(self, tc):
        assert encode_negation(tc) == tc

    def test_reserved_suffix_rejected(self):
        program = parse_program("P__neg(x) :- A(x).")
        with pytest.raises(UnsafeRuleError):
            encode_negation(program)

    def test_unstratifiable_rejected(self):
        program = parse_program(
            """
            P(x) :- A(x), not Q(x).
            Q(x) :- A(x), not P(x).
            """
        )
        with pytest.raises(StratificationError):
            encode_negation(program)


class TestStratifiedContainment:
    def test_reflexive(self):
        from repro.core.stratified_opt import uniformly_contains_stratified

        program = parse_program("P(x) :- A(x), not B(x).")
        assert uniformly_contains_stratified(program, program)

    def test_subset_body_contains(self):
        from repro.core.stratified_opt import uniformly_contains_stratified

        smaller = parse_program("P(x) :- A(x), not B(x).")
        larger = parse_program("P(x) :- A(x), C(x), not B(x).")
        # larger's rule body strictly extends smaller's: larger ⊑u smaller.
        assert uniformly_contains_stratified(smaller, larger)
        assert not uniformly_contains_stratified(larger, smaller)

    def test_conservative_on_negation_semantics(self):
        from repro.core.stratified_opt import uniformly_contains_stratified

        # Under true complement semantics the second program's rule is
        # unsatisfiable (B and not B), so it is contained in anything;
        # the conservative test cannot see that and answers "not shown".
        p1 = parse_program("P(x) :- Zero(x).")
        p2 = parse_program("P(x) :- A(x), B(x), not B(x).")
        assert not uniformly_contains_stratified(p1, p2)

    def test_positive_programs_delegate(self, tc, tc_linear):
        from repro.core.stratified_opt import uniformly_contains_stratified

        assert uniformly_contains_stratified(tc, tc_linear)
        assert not uniformly_contains_stratified(tc_linear, tc)


class TestMinimizeStratified:
    def test_redundant_positive_atom_in_negated_rule(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            Un(x) :- Node(x), Node(x), not R(x, x).
            """
        )
        result = minimize_stratified(program)
        (rule,) = [r for r in result.program.rules if r.head.predicate == "Un"]
        assert len(rule.body) == 2
        assert result.changed

    def test_redundant_negated_literal_removed(self):
        # Two identical negated literals: one goes.
        program = parse_program(
            """
            P(x) :- A(x), not B(x), not B(x).
            """
        )
        result = minimize_stratified(program)
        (rule,) = result.program.rules
        assert len(rule.body) == 2

    def test_redundant_rule_removed(self):
        program = parse_program(
            """
            P(x) :- A(x), not B(x).
            P(x) :- A(x), A(y), not B(x).
            """
        )
        result = minimize_stratified(program)
        assert len(result.program) == 1

    def test_semantics_preserved(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            R(x, y) :- E(x, z), R(z, y).
            Un(x, y) :- Node(x), Node(y), Node(x), not R(x, y).
            """
        )
        result = minimize_stratified(program)
        db = Database.from_facts(
            {"E": [(1, 2), (2, 3)], "Node": [(1,), (2,), (3,)]}
        )
        assert (
            evaluate_stratified(program, db).database
            == evaluate_stratified(result.program, db).database
        )

    def test_minimal_program_unchanged(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            Un(x) :- Node(x), not R(x, x).
            """
        )
        result = minimize_stratified(program)
        assert result.program == program
        assert not result.changed

    def test_conservative_on_negation_semantics(self):
        # not B(x), B(x) is unsatisfiable under real complement
        # semantics, but the encoding treats B__neg as arbitrary, so the
        # conservative procedure must NOT exploit it -- it keeps the
        # rule (soundness over completeness).
        program = parse_program(
            """
            P(x) :- A(x).
            P(x) :- A(x), B(x), not B(x).
            """
        )
        result = minimize_stratified(program)
        # The second rule IS uniformly contained in the first (its body
        # is a superset), so it goes -- but through the positive
        # containment test, not through negation reasoning.
        assert len(result.program) == 1

    def test_summary(self):
        program = parse_program("P(x) :- A(x), not B(x), not B(x).")
        assert "stratified" in minimize_stratified(program).summary()
