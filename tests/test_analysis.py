"""Unit tests for repro.analysis (dependence graphs, classification, safety)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DependenceGraph,
    check_rule_source,
    is_initialization_rule,
    is_nonrecursive,
    profile,
    shares_initialization_rules,
)
from repro.errors import ParseError
from repro.lang import parse_program


class TestDependenceGraph:
    def test_tc_is_recursive(self, tc):
        graph = DependenceGraph(tc)
        assert graph.is_recursive
        assert graph.recursive_predicates == {"G"}

    def test_nonrecursive_program(self):
        program = parse_program("G(x, z) :- A(x, z).")
        graph = DependenceGraph(program)
        assert not graph.is_recursive
        assert graph.recursive_predicates == frozenset()

    def test_recursive_rules(self, tc):
        graph = DependenceGraph(tc)
        recursive = graph.recursive_rules()
        assert len(recursive) == 1
        assert str(recursive[0]) == "G(x, z) :- G(x, y), G(y, z)."

    def test_mutual_recursion(self):
        program = parse_program(
            """
            P(x) :- A(x, y), Q(y).
            Q(x) :- B(x, y), P(y).
            """
        )
        graph = DependenceGraph(program)
        assert graph.recursive_predicates == {"P", "Q"}
        assert len(graph.recursive_rules()) == 2

    def test_linear_classification(self, tc, tc_linear):
        assert not DependenceGraph(tc).is_linear  # two recursive G atoms
        assert DependenceGraph(tc_linear).is_linear

    def test_condensation_order_topological(self):
        program = parse_program(
            """
            P(x) :- A(x).
            Q(x) :- P(x).
            R(x) :- Q(x), R(x).
            """
        )
        order = DependenceGraph(program).condensation_order()
        flat = [pred for component in order for pred in component]
        assert flat.index("P") < flat.index("Q") < flat.index("R")

    def test_negative_cycle_detection(self):
        program = parse_program(
            """
            P(x) :- A(x), not Q(x).
            Q(x) :- A(x), not P(x).
            """
        )
        assert DependenceGraph(program).has_negative_cycle()

    def test_negation_without_cycle_ok(self):
        program = parse_program(
            """
            P(x) :- A(x).
            Q(x) :- A(x), not P(x).
            """
        )
        assert not DependenceGraph(program).has_negative_cycle()


class TestProfile:
    def test_tc_profile(self, tc):
        info = profile(tc)
        assert info.rule_count == 2
        assert info.atom_count == 5
        assert info.is_recursive
        assert not info.is_linear
        assert info.initialization_rule_count == 1
        assert "recursive" in str(info)

    def test_is_nonrecursive(self, tc):
        assert not is_nonrecursive(tc)
        assert is_nonrecursive(parse_program("G(x, z) :- A(x, z)."))


class TestInitializationRules:
    def test_classification(self, tc):
        init, recursive = tc.rules
        assert is_initialization_rule(tc, init)
        assert not is_initialization_rule(tc, recursive)

    def test_shares_initialization_rules(self, tc, tc_linear):
        # Both TC variants share G(x,z) :- A(x,z).
        assert shares_initialization_rules(tc, tc_linear)

    def test_different_initialization_rules(self, tc):
        other = parse_program(
            """
            G(x, z) :- B(x, z).
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        assert not shares_initialization_rules(tc, other)


class TestSafetyDiagnostics:
    def test_safe_rule_no_violations(self):
        assert check_rule_source("G(x, z) :- A(x, z).") == []

    def test_loose_head_variable(self):
        violations = check_rule_source("G(x, z) :- A(x, x).")
        assert len(violations) == 1
        assert violations[0].variable.name == "z"
        assert violations[0].location == "head"

    def test_loose_negated_variable(self):
        violations = check_rule_source("P(x) :- A(x), not B(y).")
        assert len(violations) == 1
        assert violations[0].location == "negated literal"

    def test_multiple_violations_reported(self):
        violations = check_rule_source("G(x, y, z) :- A(x, x).")
        assert {v.variable.name for v in violations} == {"y", "z"}

    def test_parse_errors_still_raise(self):
        with pytest.raises(ParseError):
            check_rule_source("G(x :- A(x).")

    def test_violation_message(self):
        violation = check_rule_source("G(x, z) :- A(x, x).")[0]
        assert "range-restricted" in str(violation)


class TestDependenceEdgeCases:
    def test_zero_ary_recursion_detected(self):
        program = parse_program("Go() :- Start().\nGo() :- Go(), Step().")
        graph = DependenceGraph(program)
        assert graph.is_recursive
        assert graph.recursive_predicates == {"Go"}
        assert not graph.has_negative_cycle()

    def test_head_negated_in_own_body(self):
        # P depends negatively on itself: a one-node negative cycle.
        program = parse_program("P(x) :- A(x), not P(x).")
        graph = DependenceGraph(program)
        assert graph.has_negative_cycle()
        assert graph.negative_cycle_predicates() == {"P"}
        assert graph.recursive_predicates == {"P"}

    def test_facts_only_program(self):
        program = parse_program("A(1, 2).\nA(2, 3).")
        graph = DependenceGraph(program)
        assert not graph.is_recursive
        assert not graph.has_negative_cycle()
        assert graph.negative_cycle_predicates() == frozenset()
        info = profile(program)
        assert info.rule_count == 2
        assert info.atom_count == 2
        assert not info.is_recursive
