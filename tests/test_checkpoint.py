"""Durable checkpoints: write discipline, recovery, and resumed fixpoints.

The contract under test (see ``repro.resilience.checkpoint``):

1. **Atomic writes** -- a crash at *any* stage of a checkpoint write
   (before the temp write, mid-write leaving a torn temp file, after
   fsync but before the rename pair) leaves at least one loadable,
   checksum-valid generation.
2. **Corruption detection** -- a flipped byte is rejected by the
   SHA-256 checksum, a truncated file by the JSON parse; recovery skips
   the damaged generation and falls back to the previous one.
3. **Resume equivalence** -- continuing an interrupted fixpoint from a
   checkpoint converges to exactly the uninterrupted model (bitwise on
   the canonical serialization), for every generation, both storage
   backends, and every fixpoint engine.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Database, parse_program
from repro.engine import evaluate
from repro.errors import CheckpointError, SimulatedCrash
from repro.lang.serialize import database_to_json
from repro.resilience import (
    Checkpoint,
    CheckpointManager,
    EvaluationSession,
    EvaluationStatus,
    FaultPlan,
    ResourceGovernor,
    corrupt_checkpoint,
    load_checkpoint,
    program_fingerprint,
    resume_evaluation,
)

TC = parse_program(
    """
    T(x, y) :- E(x, y).
    T(x, z) :- E(x, y), T(y, z).
    """
)
FIXPOINT_ENGINES = ("naive", "seminaive", "stratified")
BACKENDS = ("rows", "columnar")


def chain(n: int, backend: str = "rows") -> Database:
    db = Database(backend=backend)
    for i in range(n):
        db.add_fact("E", i, i + 1)
    return db


def checkpointed_run(path, engine="seminaive", backend="rows", every=1, n=10):
    """Run TC to fixpoint writing checkpoints; return (manager, result)."""
    manager = CheckpointManager(path, program=TC, engine=engine, every=every)
    governor = ResourceGovernor(on_round=manager.on_round)
    result = evaluate(TC, chain(n, backend), engine=engine, governor=governor)
    return manager, result


class TestCheckpointFile:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "ck.json"
        manager, result = checkpointed_run(path)
        loaded = load_checkpoint(path)
        assert loaded.engine == "seminaive"
        assert loaded.backend == "rows"
        assert loaded.round is not None and loaded.round >= 2
        assert loaded.fingerprint == program_fingerprint(TC)
        assert loaded.delta is not None  # seminaive persists its frontier
        assert loaded.governor_state is not None
        # Whatever the last snapshot holds is a sound under-approximation.
        assert set(loaded.database.atoms()) <= set(result.database.atoms())

    def test_generation_rotation(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path)
        current = load_checkpoint(path)
        previous = load_checkpoint(str(path) + ".prev")
        assert previous.round == current.round - 1

    def test_cadence_respected(self, tmp_path):
        path = tmp_path / "ck.json"
        manager, _ = checkpointed_run(path, every=3)
        assert load_checkpoint(path).round % 3 == 0
        every1 = CheckpointManager(tmp_path / "all.json", program=TC, engine="seminaive")
        governor = ResourceGovernor(on_round=every1.on_round)
        evaluate(TC, chain(10), governor=governor)
        assert manager.writes < every1.writes

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.json")

    def test_flipped_byte_fails_checksum(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path)
        corrupt_checkpoint(path, mode="flip")
        # Still valid JSON: the checksum, not the parser, must reject it.
        json.loads(path.read_text())
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path)
        corrupt_checkpoint(path, mode="truncate")
        with pytest.raises(CheckpointError, match="torn or truncated"):
            load_checkpoint(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"format": "repro.checkpoint/99", "payload": {}}))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_checksum_independent_of_key_order(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path)
        document = json.loads(path.read_text())
        # Re-dump with reversed key order; the canonical checksum must
        # still verify (it is computed over sorted keys, not file bytes).
        shuffled = {k: document[k] for k in reversed(list(document))}
        path.write_text(json.dumps(shuffled, indent=2))
        assert load_checkpoint(path).round is not None


class TestAtomicWriteDiscipline:
    """A crash at every write stage leaves a valid previous generation."""

    @pytest.mark.parametrize("stage", [1, 2, 3])
    def test_crash_during_second_write_preserves_first(self, tmp_path, stage):
        path = tmp_path / "ck.json"
        # Stages are numbered per write: write 2 occupies counts 4..6.
        plan = FaultPlan.crash_at([3 + stage])
        manager = CheckpointManager(
            path, program=TC, engine="seminaive", fault_plan=plan
        )
        governor = ResourceGovernor(on_round=manager.on_round)
        with pytest.raises(SimulatedCrash):
            evaluate(TC, chain(10), governor=governor)
        assert manager.writes == 1
        survivor = load_checkpoint(path)  # first write, untouched
        assert survivor.round == 2
        recovered = manager.latest()
        assert recovered is not None and recovered.round == 2

    def test_mid_write_crash_leaves_torn_temp_only(self, tmp_path):
        path = tmp_path / "ck.json"
        plan = FaultPlan.crash_at([5])  # stage 2 of write 2: torn temp
        manager = CheckpointManager(
            path, program=TC, engine="seminaive", fault_plan=plan
        )
        governor = ResourceGovernor(on_round=manager.on_round)
        with pytest.raises(SimulatedCrash):
            evaluate(TC, chain(10), governor=governor)
        temp = str(path) + ".tmp"
        assert os.path.exists(temp)
        with pytest.raises(CheckpointError):
            load_checkpoint(temp)  # genuinely torn, not silently loadable
        assert load_checkpoint(path).round == 2

    def test_crash_between_fsync_and_rename_not_published(self, tmp_path):
        path = tmp_path / "ck.json"
        plan = FaultPlan.crash_at([6])  # stage 3 of write 2
        manager = CheckpointManager(
            path, program=TC, engine="seminaive", fault_plan=plan
        )
        governor = ResourceGovernor(on_round=manager.on_round)
        with pytest.raises(SimulatedCrash):
            evaluate(TC, chain(10), governor=governor)
        # The temp file is complete (durable even), but only the rename
        # publishes: recovery must still serve the first generation.
        assert load_checkpoint(str(path) + ".tmp").round == 3
        assert manager.latest().round == 2


class TestRecoveryFallback:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "ck.json"
        manager, _ = checkpointed_run(path)
        latest_round = load_checkpoint(path).round
        corrupt_checkpoint(path, mode="flip")
        recovered = manager.latest()
        assert recovered is not None
        assert recovered.round == latest_round - 1

    def test_truncated_latest_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "ck.json"
        manager, _ = checkpointed_run(path)
        corrupt_checkpoint(path, mode="truncate")
        assert manager.latest() is not None

    def test_both_generations_corrupt_yields_none(self, tmp_path):
        path = tmp_path / "ck.json"
        manager, _ = checkpointed_run(path)
        corrupt_checkpoint(path, mode="flip")
        corrupt_checkpoint(str(path) + ".prev", mode="truncate")
        assert manager.latest() is None

    def test_no_files_yields_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "never.json").latest() is None


class TestResumeEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", FIXPOINT_ENGINES)
    def test_resume_equals_uninterrupted(self, tmp_path, engine, backend):
        baseline = database_to_json(
            evaluate(TC, chain(10, backend), engine=engine).database
        )
        path = tmp_path / "ck.json"
        checkpointed_run(path, engine=engine, backend=backend)
        for generation in (path, str(path) + ".prev"):
            resumed = resume_evaluation(load_checkpoint(generation), program=TC)
            assert resumed.status is EvaluationStatus.COMPLETE
            assert database_to_json(resumed.database) == baseline, (
                f"{engine}/{backend} resume from {generation} diverged"
            )

    def test_resume_from_every_round(self, tmp_path):
        """Kill at round k for every k: each checkpoint resumes to the model."""
        baseline = database_to_json(evaluate(TC, chain(8)).database)
        snapshots = []

        def keep(db, round, delta=None, governor=None):
            snapshots.append(
                Checkpoint(
                    program=TC,
                    engine="seminaive",
                    backend=db.backend,
                    database=db.copy(),
                    round=round,
                    delta=delta.copy() if delta is not None else None,
                )
            )

        evaluate(TC, chain(8), governor=ResourceGovernor(on_round=keep))
        assert len(snapshots) >= 3
        for checkpoint in snapshots:
            resumed = resume_evaluation(checkpoint, program=TC)
            assert database_to_json(resumed.database) == baseline, (
                f"resume from round {checkpoint.round} diverged"
            )

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path)
        other = parse_program("T(x, y) :- E(y, x).")
        with pytest.raises(CheckpointError, match="fingerprint"):
            resume_evaluation(load_checkpoint(path), program=other)

    def test_resumed_governor_rounds_are_cumulative(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path, n=10)
        checkpoint = load_checkpoint(path)
        saved_rounds = checkpoint.governor_state["rounds"]
        assert saved_rounds > 0
        # A cumulative cap equal to the uninterrupted round count must
        # still admit the resumed tail...
        total_rounds = evaluate(
            TC, chain(10), governor=ResourceGovernor()
        ).stats.iterations
        governor = ResourceGovernor(max_rounds=total_rounds)
        governor.restore(rounds=saved_rounds)
        resumed = resume_evaluation(checkpoint, governor=governor, program=TC)
        assert resumed.status is EvaluationStatus.COMPLETE
        # ...while a cap already consumed before the crash trips at once.
        strict = ResourceGovernor(max_rounds=saved_rounds)
        strict.restore(rounds=saved_rounds)
        tripped = resume_evaluation(checkpoint, governor=strict, program=TC)
        assert tripped.status is EvaluationStatus.PARTIAL
        assert tripped.degradation.limit == "max_rounds"


class TestSessionRecovery:
    def test_crash_then_new_session_resumes_and_matches(self, tmp_path):
        path = tmp_path / "ck.json"
        baseline = database_to_json(evaluate(TC, chain(10)).database)
        plan = FaultPlan.crash_at([10])
        crashed = EvaluationSession(
            TC,
            chain(10),
            checkpoint_manager=CheckpointManager(path, fault_plan=plan),
        )
        with pytest.raises(SimulatedCrash):
            crashed.run()
        # A freshly constructed session (a new process, in production)
        # finds the durable generations and continues, not restarts.
        recovered = EvaluationSession(
            TC, chain(10), checkpoint_manager=CheckpointManager(path)
        )
        result = recovered.run()
        assert result.status is EvaluationStatus.COMPLETE
        assert database_to_json(result.database) == baseline

    def test_transient_fault_retry_resumes_from_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        baseline = database_to_json(evaluate(TC, chain(12)).database)
        # One transient storage fault late in the run: the retry must
        # pick up from the checkpoint, not re-derive from the EDB.
        plan = FaultPlan.transient_at("add", [40])
        session = EvaluationSession(
            TC,
            chain(12),
            fault_plan=plan,
            checkpoint_manager=CheckpointManager(path),
        )
        result = session.run()
        assert result.attempts == 2
        assert database_to_json(result.database) == baseline

    def test_stale_checkpoint_of_other_program_ignored(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointed_run(path)  # leaves a TC checkpoint behind
        other = parse_program("S(x) :- V(x). S(y) :- W(x, y), S(x).")
        edb = Database()
        edb.add_fact("V", 0)
        for i in range(4):
            edb.add_fact("W", i, i + 1)
        session = EvaluationSession(
            other, edb, checkpoint_manager=CheckpointManager(path)
        )
        result = session.run()
        assert database_to_json(result.database) == database_to_json(
            evaluate(other, edb).database
        )

    def test_query_engines_refuse_checkpointing(self, tmp_path):
        from repro import parse_atom

        with pytest.raises(ValueError, match="fixpoint"):
            EvaluationSession(
                TC,
                chain(4),
                engine="magic",
                query=parse_atom("T(0, x)"),
                checkpoint_manager=CheckpointManager(tmp_path / "ck.json"),
            )
