"""Property-based cross-validation of all query strategies on random programs.

The fixed-program tests cover the classic workloads; here hypothesis
drives random positive programs, random EDBs, and random query
adornments through magic sets, supplementary magic, and tabled
top-down, each compared against full evaluation + selection.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Database, evaluate
from repro.engine.magic import answer_query, magic_transform
from repro.engine.supplementary import answer_query_supplementary
from repro.engine.topdown import tabled_query
from repro.lang import Atom, Program, Variable
from repro.lang.substitution import match_atom
from repro.workloads import random_positive_program


def _random_edb(rng: random.Random, domain: int = 4, facts: int = 14) -> Database:
    db = Database()
    for _ in range(rng.randint(1, facts)):
        pred = f"E{rng.randrange(2)}"
        db.add_fact(pred, rng.randrange(domain), rng.randrange(domain))
    return db


def _random_query(rng: random.Random, program: Program) -> Atom | None:
    idb = sorted(program.idb_predicates)
    if not idb:
        return None
    pred = rng.choice(idb)
    arity = program.arity(pred)
    args = []
    for index in range(arity):
        if rng.random() < 0.5:
            args.append(rng.randrange(4))
        else:
            args.append(Variable(f"q{index}"))
    return Atom.of(pred, *args)


def _expected(program: Program, db: Database, query: Atom) -> set:
    full = evaluate(program, db).database
    return {
        row
        for row in full.tuples(query.predicate)
        if match_atom(query, Atom(query.predicate, row)) is not None
    }


@given(seed=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=40, deadline=None)
def test_all_query_strategies_agree_on_random_programs(seed):
    rng = random.Random(seed)
    program = random_positive_program(
        rules=rng.randint(1, 4),
        max_body=3,
        predicates=2,
        variables_per_rule=4,
        seed=seed,
    )
    query = _random_query(rng, program)
    if query is None:
        return
    db = _random_edb(rng)
    expected = _expected(program, db, query)

    magic_answers, _ = answer_query(program, db, query)
    assert set(magic_answers.tuples(query.predicate)) == expected, (
        f"magic mismatch for seed={seed}, query={query}"
    )

    sup_answers, _ = answer_query_supplementary(program, db, query)
    assert set(sup_answers.tuples(query.predicate)) == expected, (
        f"supplementary mismatch for seed={seed}, query={query}"
    )

    tabled = tabled_query(program, db, query)
    assert set(tabled.answers.tuples(query.predicate)) == expected, (
        f"tabled mismatch for seed={seed}, query={query}"
    )


@given(seed=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=20, deadline=None)
def test_sips_variants_agree_on_random_programs(seed):
    rng = random.Random(seed)
    program = random_positive_program(
        rules=rng.randint(1, 4),
        max_body=3,
        predicates=2,
        variables_per_rule=4,
        seed=seed,
    )
    query = _random_query(rng, program)
    if query is None:
        return
    db = _random_edb(rng)
    expected = _expected(program, db, query)
    for sips in ("left-to-right", "most-bound"):
        answers, _ = answer_query(program, db, query, sips=sips)
        assert set(answers.tuples(query.predicate)) == expected, (
            f"{sips} mismatch for seed={seed}, query={query}"
        )


@given(seed=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=20, deadline=None)
def test_initial_idb_facts_respected_by_all_strategies(seed):
    # Section III's generalized inputs: seed some IDB facts too.
    rng = random.Random(seed)
    program = random_positive_program(
        rules=3, max_body=2, predicates=2, variables_per_rule=3, seed=seed
    )
    query = _random_query(rng, program)
    if query is None:
        return
    db = _random_edb(rng, facts=8)
    for _ in range(rng.randint(1, 4)):
        pred = rng.choice(sorted(program.idb_predicates))
        row = tuple(rng.randrange(4) for _ in range(program.arity(pred)))
        db.add_fact(pred, *row)
    expected = _expected(program, db, query)
    tabled = tabled_query(program, db, query)
    assert set(tabled.answers.tuples(query.predicate)) == expected
