"""Unit tests for supplementary magic sets."""

from __future__ import annotations

import pytest

from repro import evaluate, parse_program
from repro.engine.magic import answer_query
from repro.engine.supplementary import (
    answer_query_supplementary,
    supplementary_magic_transform,
)
from repro.errors import UnsafeRuleError
from repro.lang import Variable, parse_atom
from repro.workloads import (
    chain,
    merged,
    random_graph,
    random_tree,
    same_generation,
    tc_linear,
    tc_nonlinear,
    unary_marks,
)


def reference(program, db, query):
    full = evaluate(program, db).database
    return {
        row
        for row in full.tuples(query.predicate)
        if all(
            isinstance(qt, Variable) or qt == rt for qt, rt in zip(query.args, row)
        )
    }


class TestCorrectness:
    @pytest.mark.parametrize("query_text", ["G(0, x)", "G(x, 5)", "G(0, 5)", "G(x, y)"])
    @pytest.mark.parametrize("program_factory", [tc_linear, tc_nonlinear])
    def test_tc_all_adornments(self, program_factory, query_text):
        program = program_factory()
        db = random_graph(12, 24, seed=2)
        query = parse_atom(query_text)
        answers, _ = answer_query_supplementary(program, db, query)
        assert set(answers.tuples("G")) == reference(program, db, query)

    def test_same_generation(self):
        program = same_generation()
        db = merged(
            random_tree(12, seed=4, predicate="Par"),
            unary_marks(range(12), predicate="Per"),
        )
        query = parse_atom("Sg(3, x)")
        answers, _ = answer_query_supplementary(program, db, query)
        assert set(answers.tuples("Sg")) == reference(program, db, query)

    def test_agrees_with_plain_magic(self, tc):
        db = random_graph(15, 30, seed=7)
        query = parse_atom("G(0, x)")
        plain, _ = answer_query(tc, db, query)
        sup, _ = answer_query_supplementary(tc, db, query)
        assert set(plain.tuples("G")) == set(sup.tuples("G"))

    def test_facts_in_program(self):
        program = parse_program(
            """
            G(1, 2).
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        db = chain(5)
        query = parse_atom("G(x, y)")
        answers, _ = answer_query_supplementary(program, db, query)
        assert set(answers.tuples("G")) == reference(program, db, query)

    def test_empty_answer(self, tc):
        answers, _ = answer_query_supplementary(tc, chain(4), parse_atom("G(77, x)"))
        assert len(answers) == 0


class TestStructure:
    def test_sup_predicates_generated(self, tc):
        rewriting = supplementary_magic_transform(tc, parse_atom("G(0, x)"))
        names = {r.head.predicate for r in rewriting.program.rules}
        assert any(n.startswith("sup__") for n in names)
        assert any(n.startswith("m__") for n in names)

    def test_prefix_factored_once(self, tc):
        """Each sup body has at most two literals (the chain shape)."""
        rewriting = supplementary_magic_transform(tc, parse_atom("G(0, x)"))
        for rule in rewriting.program.rules:
            assert len(rule.body) <= 2

    def test_reserved_names_rejected(self):
        # "__" is the reserved separator of the generated naming scheme.
        program = parse_program("Sup__X(x) :- A(x).")
        with pytest.raises(UnsafeRuleError):
            supplementary_magic_transform(program, parse_atom("Sup__X(0)"))

    def test_negation_rejected(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            supplementary_magic_transform(program, parse_atom("P(0)"))

    def test_edb_query_rejected(self, tc):
        with pytest.raises(ValueError):
            supplementary_magic_transform(tc, parse_atom("A(0, x)"))


class TestWorkComparison:
    def test_beats_plain_magic_on_multi_idb_rules(self, tc):
        """Non-linear TC has two IDB subgoals per recursive rule: the
        factored prefixes must reduce join work."""
        db = random_graph(25, 50, seed=6)
        query = parse_atom("G(0, x)")
        _, plain = answer_query(tc, db, query)
        _, sup = answer_query_supplementary(tc, db, query)
        assert sup.stats.subgoal_attempts < plain.stats.subgoal_attempts
