"""Unit tests for minimization under uniform equivalence (Figs. 1 and 2)."""

from __future__ import annotations

import pytest

from repro import paper, parse_program, parse_rule
from repro.core.containment import uniformly_equivalent
from repro.core.minimize import (
    is_minimal,
    minimize_program,
    minimize_rule,
)
from repro.lang import Program
from repro.workloads import tc_nonlinear, tc_with_redundant_atoms, tc_with_redundant_rules, wide_rule


class TestFig1MinimizeRule:
    def test_example8(self):
        # Fig. 1 on Example 7's rule removes A(w, y).
        rule = paper.EX7_P1.rules[0]
        minimized = minimize_rule(rule)
        assert minimized == paper.EX7_P2.rules[0]

    def test_minimal_rule_unchanged(self):
        rule = paper.EX7_P2.rules[0]
        assert minimize_rule(rule) == rule

    def test_duplicate_atom_removed(self):
        rule = parse_rule("G(x, z) :- A(x, z), A(x, z).")
        # A tuple body keeps duplicates; minimization drops one copy.
        assert len(minimize_rule(rule).body) == 1

    def test_weakened_copy_removed(self):
        rule = parse_rule("G(x, z) :- A(x, z), A(x, w).")
        minimized = minimize_rule(rule)
        assert str(minimized) == "G(x, z) :- A(x, z)."

    def test_head_variable_atoms_kept(self):
        # z appears only in A(y, z): deletion would strand it; atom stays.
        rule = parse_rule("G(x, z) :- A(x, y), A(y, z).")
        assert minimize_rule(rule) == rule

    def test_within_program_context(self):
        # The atom is redundant only thanks to the other rule.
        program = parse_program(
            """
            B(x, y) :- A(x, y).
            G(x, z) :- A(x, z), B(x, w).
            """
        )
        rule = program.rules[1]
        alone = minimize_rule(rule)
        assert alone == rule  # not redundant in isolation
        within = minimize_rule(rule, within=program)
        assert str(within) == "G(x, z) :- A(x, z)."

    def test_within_requires_membership(self, tc):
        foreign = parse_rule("H(x) :- A(x, x).")
        with pytest.raises(ValueError):
            minimize_rule(foreign, within=tc)

    def test_custom_atom_order_changes_result(self):
        # Two mutually redundant atoms: order decides which survives.
        rule = parse_rule("G(x) :- A(x, y), A(x, w).")
        forward = minimize_rule(rule, atom_order=lambda r: [0, 1])
        backward = minimize_rule(rule, atom_order=lambda r: [1, 0])
        assert len(forward.body) == 1 and len(backward.body) == 1
        assert forward != backward  # different survivor, same semantics

    def test_preserves_uniform_equivalence(self):
        rule = wide_rule(core_atoms=3, redundant_atoms=3, seed=1)
        minimized = minimize_rule(rule)
        assert uniformly_equivalent(Program.of(rule), Program.of(minimized))


class TestFig2MinimizeProgram:
    def test_example8_program(self):
        result = minimize_program(paper.EX7_P1)
        assert result.program == paper.EX7_P2
        assert len(result.atom_removals) == 1
        assert str(result.atom_removals[0].atom) == "A(w, y)"

    def test_planted_atoms_all_removed(self):
        program = tc_with_redundant_atoms(3)
        result = minimize_program(program)
        assert result.program == tc_nonlinear()
        assert len(result.atom_removals) == 3

    def test_planted_rules_all_removed(self):
        program = tc_with_redundant_rules(3)
        result = minimize_program(program)
        assert result.program == tc_nonlinear()
        assert len(result.rule_removals) == 3

    def test_mixed_redundancy(self):
        program = tc_with_redundant_atoms(2).union(
            Program.of(parse_rule("G(x, z) :- A(x, y), A(y, z)."))
        )
        result = minimize_program(program)
        assert result.program == tc_nonlinear()

    def test_output_is_minimal(self):
        result = minimize_program(tc_with_redundant_atoms(2))
        assert is_minimal(result.program)

    def test_idempotent(self):
        once = minimize_program(tc_with_redundant_rules(2)).program
        twice = minimize_program(once).program
        assert once == twice

    def test_preserves_uniform_equivalence(self):
        program = tc_with_redundant_atoms(2)
        result = minimize_program(program)
        assert uniformly_equivalent(program, result.program)

    def test_already_minimal_unchanged(self, tc):
        result = minimize_program(tc)
        assert result.program == tc
        assert not result.changed

    def test_atoms_removed_before_rules(self):
        # Theorem 2 relies on atom deletions happening first; the audit
        # trail must reflect that even when both kinds occur.
        program = tc_with_redundant_atoms(1).union(
            Program.of(parse_rule("G(x, z) :- A(x, y), A(y, z)."))
        )
        result = minimize_program(program)
        assert result.atom_removals and result.rule_removals

    def test_summary_mentions_counts(self):
        result = minimize_program(tc_with_redundant_atoms(1))
        assert "1 atom(s)" in result.summary()

    def test_containment_tests_counted(self):
        result = minimize_program(paper.EX7_P1)
        # 4 deletable atoms considered (one strands nothing? all four
        # A-atoms are droppable) plus the rule-deletion test.
        assert result.containment_tests >= 4

    def test_equivalence_only_redundancy_not_removed(self):
        # Example 18: A(y, w) is NOT redundant under uniform
        # equivalence, so Fig. 2 must keep it.
        result = minimize_program(paper.EX11_P1)
        assert result.program == paper.EX11_P1

    def test_empty_program(self):
        result = minimize_program(Program())
        assert result.program == Program()


class TestIsMinimal:
    def test_detects_redundant_atom(self):
        assert not is_minimal(paper.EX7_P1)

    def test_detects_redundant_rule(self):
        assert not is_minimal(tc_with_redundant_rules(1))

    def test_accepts_minimal(self, tc):
        assert is_minimal(tc)
