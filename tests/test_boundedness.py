"""Unit tests for uniform-boundedness detection."""

from __future__ import annotations

import pytest

from repro import evaluate, parse_program, uniformly_equivalent
from repro.core.boundedness import uniform_boundedness, unroll
from repro.core.chase import Verdict
from repro.workloads import chain, random_graph


@pytest.fixture
def vacuous_recursion():
    """P(x) :- P(x), B(x): the recursion never derives anything new."""
    return parse_program(
        """
        P(x) :- A(x).
        P(x) :- P(x), B(x).
        """
    )


class TestUnroll:
    def test_nonrecursive_fixed_point(self):
        program = parse_program("G(x, z) :- A(x, z).")
        assert unroll(program, 3) == program

    def test_depth_one_of_tc(self, tc_linear):
        unrolled = unroll(tc_linear, 1)
        # Only paths of length <= 2 derivable.
        assert all("G(" not in str(lit) for r in unrolled.rules for lit in r.body)

    def test_unrolled_contained_in_original(self, tc_linear):
        from repro.core.containment import uniformly_contains

        for depth in (1, 2, 3):
            unrolled = unroll(tc_linear, depth)
            assert uniformly_contains(container=tc_linear, contained=unrolled)

    def test_depth_controls_path_length(self, tc_linear):
        edb = chain(6)
        shallow = evaluate(unroll(tc_linear, 1), edb).database
        deep = evaluate(unroll(tc_linear, 3), edb).database
        assert shallow.count("G") < deep.count("G")

    def test_rule_explosion_guarded(self, tc):
        with pytest.raises(ValueError):
            unroll(tc, 10, max_rules=20)


class TestUniformBoundedness:
    def test_nonrecursive_trivially_bounded(self):
        program = parse_program("G(x, z) :- A(x, z).")
        report = uniform_boundedness(program)
        assert report.verdict is Verdict.PROVED
        assert report.depth == 0

    def test_vacuous_recursion_bounded(self, vacuous_recursion):
        report = uniform_boundedness(vacuous_recursion)
        assert report.verdict is Verdict.PROVED
        assert report.depth == 1
        assert uniformly_equivalent(vacuous_recursion, report.nonrecursive)

    def test_witness_is_nonrecursive(self, vacuous_recursion):
        report = uniform_boundedness(vacuous_recursion)
        from repro.analysis import is_nonrecursive

        assert is_nonrecursive(report.nonrecursive)

    def test_witness_computes_same_results(self, vacuous_recursion):
        report = uniform_boundedness(vacuous_recursion)
        from repro import Database

        db = Database.from_facts({"A": [(1,), (2,)], "B": [(1,), (3,)]})
        assert (
            evaluate(vacuous_recursion, db).database
            == evaluate(report.nonrecursive, db).database
        )

    def test_transitive_closure_not_bounded(self, tc):
        report = uniform_boundedness(tc, max_depth=3)
        assert report.verdict is Verdict.UNKNOWN
        assert report.nonrecursive is None

    def test_plain_but_not_uniform_boundedness_stays_unknown(self):
        # The classic Trendy/Buys program is bounded under plain
        # equivalence but NOT uniformly (initial Buys facts feed the
        # recursion); the uniform test must not claim it.
        program = parse_program(
            """
            Buys(x, y) :- Likes(x, y).
            Buys(x, y) :- Trendy(x), Buys(z, y).
            """
        )
        report = uniform_boundedness(program, max_depth=4)
        assert report.verdict is Verdict.UNKNOWN

    def test_guarded_vacuous_recursion(self):
        # The recursive rule can only re-derive the E facts it reads.
        program = parse_program(
            """
            P(x, y) :- E(x, y).
            P(x, y) :- E(x, y), P(x, y).
            """
        )
        report = uniform_boundedness(program)
        assert report.verdict is Verdict.PROVED
        assert uniformly_equivalent(program, report.nonrecursive)

    def test_bounded_program_results_match_on_data(self):
        program = parse_program(
            """
            P(x, y) :- E(x, y).
            P(x, y) :- E(x, y), P(x, y).
            """
        )
        report = uniform_boundedness(program)
        edb = random_graph(10, 20, seed=5, predicate="E")
        assert (
            evaluate(program, edb).database
            == evaluate(report.nonrecursive, edb).database
        )

    def test_round_bounded_but_not_eliminable(self):
        # P(x, y) :- P(y, x) converges in two rounds on every input,
        # yet no non-recursive program reads the initial P facts; the
        # recursion-elimination search must stay UNKNOWN (scope note in
        # the module docstring).
        program = parse_program(
            """
            P(x, y) :- E(x, y).
            P(x, y) :- P(y, x).
            """
        )
        report = uniform_boundedness(program, max_depth=3)
        assert report.verdict is Verdict.UNKNOWN

    def test_unknown_report_is_falsy_and_bare(self):
        program = parse_program(
            """
            P(x, y) :- E(x, y).
            P(x, y) :- P(y, x).
            """
        )
        report = uniform_boundedness(program, max_depth=2)
        assert not report
        assert report.depth is None
        assert report.nonrecursive is None

    def test_mutual_recursion_stays_unknown(self):
        # Even/odd-hop reachability: genuinely unbounded mutual
        # recursion must not be claimed bounded at any tested depth.
        program = parse_program(
            """
            Ev(x, y) :- E(x, z), Od(z, y).
            Od(x, y) :- E(x, y).
            Od(x, y) :- E(x, z), Ev(z, y).
            """
        )
        report = uniform_boundedness(program, max_depth=3)
        assert report.verdict is Verdict.UNKNOWN

    def test_explicit_depths_override_schedule(self, vacuous_recursion):
        # Depth 1 proves this program; a schedule skipping it must
        # still prove at the first depth it does test.
        report = uniform_boundedness(vacuous_recursion, depths=[2])
        assert report.verdict is Verdict.PROVED
        assert report.depth == 2
        # An empty schedule tests nothing and must stay UNKNOWN.
        assert (
            uniform_boundedness(vacuous_recursion, depths=[]).verdict
            is Verdict.UNKNOWN
        )

    def test_nonlinear_depth_schedule_is_capped(self, tc):
        from repro.analysis.absint.recursion import (
            NONLINEAR_MAX_DEPTH,
            classify_recursion,
        )

        classification = classify_recursion(tc)
        assert classification.candidate_depths(10) == tuple(
            range(1, NONLINEAR_MAX_DEPTH + 1)
        )
        # The capped schedule keeps the search inside the max_rules
        # guard even when the caller asks for a deep search.
        report = uniform_boundedness(tc, max_depth=10)
        assert report.verdict is Verdict.UNKNOWN
