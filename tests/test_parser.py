"""Unit tests for repro.lang.parser (and pretty-printer round trips)."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.lang import (
    Atom,
    Constant,
    Variable,
    format_program,
    parse_atom,
    parse_program,
    parse_rule,
    parse_tgd,
    parse_tgds,
)


class TestAtoms:
    def test_simple(self):
        atom = parse_atom("A(x, y)")
        assert atom == Atom("A", (Variable("x"), Variable("y")))

    def test_integer_constants(self):
        assert parse_atom("Q(3, 10)") == Atom.of("Q", 3, 10)

    def test_negative_integers(self):
        assert parse_atom("Q(-5)") == Atom.of("Q", -5)

    def test_string_constants(self):
        assert parse_atom("Name('alice')") == Atom.of("Name", "alice")

    def test_double_quoted_strings(self):
        assert parse_atom('Name("bob")') == Atom.of("Name", "bob")

    def test_zero_arity(self):
        assert parse_atom("Done()") == Atom("Done", ())

    def test_mixed_terms(self):
        atom = parse_atom("Q(x, y, 3, 10)")
        assert atom.args == (Variable("x"), Variable("y"), Constant(3), Constant(10))

    def test_lowercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("a(x)")

    def test_uppercase_term_rejected_with_hint(self):
        with pytest.raises(ParseError, match="uppercase"):
            parse_atom("A(X)")


class TestRules:
    def test_rule(self):
        rule = parse_rule("G(x, z) :- A(x, z).")
        assert str(rule) == "G(x, z) :- A(x, z)."

    def test_fact(self):
        rule = parse_rule("A(1, 2).")
        assert rule.is_fact

    def test_multi_atom_body(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w).")
        assert len(rule.body) == 3

    def test_negation_not_keyword(self):
        rule = parse_rule("P(x) :- A(x), not B(x).")
        assert not rule.body[1].positive

    def test_negation_bang(self):
        rule = parse_rule("P(x) :- A(x), !B(x).")
        assert not rule.body[1].positive

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("G(x, z) :- A(x, z)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_rule("A(1). junk")


class TestPrograms:
    def test_multiline_with_comments(self):
        program = parse_program(
            """
            % transitive closure
            G(x, z) :- A(x, z).
            # hash comments too
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        assert len(program) == 2

    def test_empty_source(self):
        assert len(parse_program("")) == 0
        assert len(parse_program("  % only a comment\n")) == 0

    def test_error_has_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("G(x, z) :- A(x, z).\nG(x z) :- A(x, z).")
        assert excinfo.value.line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("G(x, z) :- A(x, z) @ B(z).")

    def test_roundtrip_through_format(self):
        source = """
            G(x, z) :- A(x, z).
            G(x, z) :- G(x, y), G(y, z), A(y, w).
            Fact(1, 'two').
        """
        program = parse_program(source)
        assert parse_program(format_program(program)) == program


class TestTgds:
    def test_single_atom_sides(self):
        tgd = parse_tgd("G(x, z) -> A(x, w)")
        assert len(tgd.lhs) == 1 and len(tgd.rhs) == 1

    def test_ampersand_conjunction(self):
        tgd = parse_tgd("G(y, z) -> G(y, w) & C(w)")
        assert len(tgd.rhs) == 2

    def test_comma_conjunction_on_lhs(self):
        tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w)")
        assert len(tgd.lhs) == 2

    def test_optional_terminating_period(self):
        tgd = parse_tgd("G(x, z) -> A(x, w).")
        assert len(tgd.lhs) == 1

    def test_parse_many(self):
        tgds = parse_tgds(
            """
            G(x, z) -> A(x, w).
            G(y, z) -> G(y, w) & C(w)
            """
        )
        assert len(tgds) == 2

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_tgd("G(x, z) A(x, w)")

    def test_tgd_str_roundtrip(self):
        tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w) & C(w)")
        assert parse_tgd(str(tgd)) == tgd
