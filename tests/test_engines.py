"""Unit tests for the naive and semi-naive engines and Pⁿ/P operators."""

from __future__ import annotations

import pytest

from repro import Database, apply_once, evaluate, parse_program
from repro.engine import naive_fixpoint, seminaive_fixpoint
from repro.errors import UnsafeRuleError
from repro.lang import Atom
from repro.workloads import chain, cycle, random_graph


class TestEvaluate:
    def test_example2_output(self, tc, ex2_edb):
        # Paper, Section III: the quoted 9-atom output DB.
        out = evaluate(tc, ex2_edb).database
        expected = Database.from_facts(
            {
                "A": [(1, 2), (1, 4), (4, 1)],
                "G": [(1, 2), (1, 4), (4, 1), (1, 1), (4, 4), (4, 2)],
            }
        )
        assert out == expected

    def test_input_not_mutated(self, tc, ex2_edb):
        before = len(ex2_edb)
        evaluate(tc, ex2_edb)
        assert len(ex2_edb) == before

    def test_output_contains_input(self, tc, ex2_edb):
        out = evaluate(tc, ex2_edb).database
        assert ex2_edb.issubset(out)

    def test_initial_idb_facts_participate(self, tc):
        # Example 3: G(4,1) given as input instead of A(4,1).
        db = Database.from_facts({"A": [(1, 2), (1, 4)], "G": [(4, 1)]})
        out = evaluate(tc, db).database
        assert Atom.of("G", 4, 2) in out
        assert Atom.of("A", 4, 1) not in out

    def test_fact_rules_fire(self):
        program = parse_program(
            """
            A(1, 2).
            A(2, 3).
            G(x, z) :- A(x, z).
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        out = evaluate(program, Database()).database
        assert Atom.of("G", 1, 3) in out

    def test_empty_program(self):
        db = Database.from_facts({"A": [(1, 2)]})
        out = evaluate(parse_program(""), db).database
        assert out == db

    def test_unknown_engine(self, tc, ex2_edb):
        with pytest.raises(ValueError):
            evaluate(tc, ex2_edb, engine="quantum")

    def test_result_unpacks(self, tc, ex2_edb):
        db, stats = evaluate(tc, ex2_edb)
        assert stats.iterations >= 1
        assert db.count("G") == 6


class TestEnginesAgree:
    @pytest.mark.parametrize("n", [1, 5, 12])
    def test_chain(self, tc, n):
        edb = chain(n)
        assert naive_fixpoint(tc, edb).database == seminaive_fixpoint(tc, edb).database

    def test_cycle(self, tc):
        edb = cycle(6)
        assert naive_fixpoint(tc, edb).database == seminaive_fixpoint(tc, edb).database

    def test_random_graph(self, tc):
        edb = random_graph(15, 30, seed=3)
        assert naive_fixpoint(tc, edb).database == seminaive_fixpoint(tc, edb).database

    def test_multi_idb_program(self):
        program = parse_program(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- T(x, z), E(z, y).
            S(x) :- T(x, x).
            """
        )
        edb = cycle(5, predicate="E")
        assert (
            naive_fixpoint(program, edb).database
            == seminaive_fixpoint(program, edb).database
        )

    def test_seminaive_does_less_work(self, tc):
        edb = chain(30)
        naive = naive_fixpoint(tc, edb)
        semi = seminaive_fixpoint(tc, edb)
        assert semi.stats.rule_firings < naive.stats.rule_firings


class TestNegativeProgramsRejected:
    def test_naive(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            naive_fixpoint(program, Database())

    def test_seminaive(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            seminaive_fixpoint(program, Database())


class TestApplyOnce:
    def test_example12(self, tc):
        # Paper, Example 12.
        db = Database.from_facts({"A": [(1, 2)], "G": [(2, 3), (3, 4)]})
        pn = apply_once(tc, db)
        assert pn == {Atom.of("G", 1, 2), Atom.of("G", 2, 4)}

    def test_does_not_include_input(self, tc):
        db = Database.from_facts({"A": [(1, 2)]})
        pn = apply_once(tc, db)
        assert Atom.of("A", 1, 2) not in pn

    def test_non_recursive_single_round(self, tc):
        # G(1,3) needs two rounds; Pⁿ must not derive it.
        db = Database.from_facts({"A": [(1, 2), (2, 3)]})
        pn = apply_once(tc, db)
        assert Atom.of("G", 1, 3) not in pn

    def test_empty_database(self, tc):
        assert apply_once(tc, Database()) == set()


class TestStats:
    def test_facts_derived_counts_new_only(self, tc):
        edb = chain(5)
        result = evaluate(tc, edb)
        # Closure of a 5-chain: 5+4+3+2+1 = 15 G facts, none pre-existing.
        assert result.stats.facts_derived == 15

    def test_elapsed_positive(self, tc):
        result = evaluate(tc, chain(5))
        assert result.stats.elapsed > 0

    def test_merge(self):
        from repro.engine import EvaluationStats

        a = EvaluationStats(iterations=1, rule_firings=2, subgoal_attempts=3, facts_derived=4)
        b = EvaluationStats(iterations=10, rule_firings=20, subgoal_attempts=30, facts_derived=40)
        a.merge(b)
        assert (a.iterations, a.rule_firings, a.subgoal_attempts, a.facts_derived) == (11, 22, 33, 44)

    def test_summary_format(self):
        from repro.engine import EvaluationStats

        stats = EvaluationStats(iterations=2)
        assert "iterations=2" in stats.summary()
