"""Unit tests for the repro-datalog CLI."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

TC = """
G(x, z) :- A(x, z).
G(x, z) :- G(x, y), G(y, z).
"""

TC_REDUNDANT = """
G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).
"""

EX19 = """
G(x, z) :- A(x, z), C(z).
G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
"""

EDB = """
A(1, 2).
A(2, 3).
"""


@pytest.fixture
def files(tmp_path):
    def write(name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return write


class TestParse:
    def test_profile_output(self, files, capsys):
        assert main(["parse", files("tc.dl", TC)]) == 0
        out = capsys.readouterr().out
        assert "G(x, z) :- A(x, z)." in out
        assert "recursive" in out

    def test_parse_error_exit_code(self, files, capsys):
        assert main(["parse", files("bad.dl", "G(x :- A(x).")]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["parse", "/does/not/exist.dl"]) == 2

    def test_json_profile(self, files, capsys):
        assert main(["parse", files("tc.dl", TC), "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["rule_count"] == 2
        assert profile["idb_predicates"] == ["G"]
        assert profile["edb_predicates"] == ["A"]
        assert profile["is_recursive"] is True
        assert profile["is_linear"] is False


class TestEval:
    def test_evaluates(self, files, capsys):
        code = main(["eval", files("tc.dl", TC), "--edb", files("edb.dl", EDB)])
        assert code == 0
        out = capsys.readouterr().out
        assert "G(1, 3)" in out

    def test_stats_flag(self, files, capsys):
        main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("edb.dl", EDB),
                "--stats",
            ]
        )
        assert "iterations=" in capsys.readouterr().out

    def test_naive_engine(self, files, capsys):
        code = main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("edb.dl", EDB),
                "--engine",
                "naive",
            ]
        )
        assert code == 0

    def test_rejects_rules_in_edb(self, files, capsys):
        code = main(["eval", files("tc.dl", TC), "--edb", files("bad.dl", TC)])
        assert code == 2
        assert "non-fact" in capsys.readouterr().err


class TestMinimize:
    def test_removes_redundant_atom(self, files, capsys):
        assert main(["minimize", files("r.dl", TC_REDUNDANT)]) == 0
        out = capsys.readouterr().out
        assert "A(w, y)" not in out.splitlines()[0]
        assert "1 atom(s)" in out


class TestOptimize:
    def test_example19(self, files, capsys):
        assert main(["optimize", files("ex19.dl", EX19)]) == 0
        out = capsys.readouterr().out
        assert "G(x, z) :- A(x, y), G(y, z)." in out
        assert "1 deletion(s)" in out

    def test_uniform_only(self, files, capsys):
        assert main(["optimize", files("ex19.dl", EX19), "--uniform-only"]) == 0
        out = capsys.readouterr().out
        assert "G(y, w)" in out  # guard survives without the §X/XI layer


class TestContains:
    def test_both_directions(self, files, capsys):
        linear = "G(x, z) :- A(x, z).\nG(x, z) :- A(x, y), G(y, z).\n"
        code = main(
            ["contains", files("p1.dl", TC), files("p2.dl", linear)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P2 ⊑u P1: yes" in out
        assert "P1 ⊑u P2: no" in out

    def test_equivalent_programs(self, files, capsys):
        code = main(["contains", files("p1.dl", TC), files("p2.dl", TC)])
        assert code == 0
        assert "P1 ≡u P2" in capsys.readouterr().out


class TestPreserves:
    def test_preserved(self, files, capsys):
        guarded = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z), A(y, w).\n"
        code = main(
            [
                "preserves",
                files("p.dl", guarded),
                "--tgds",
                files("t.tgd", "G(x, z) -> A(x, w)\n"),
            ]
        )
        assert code == 0
        assert "proved" in capsys.readouterr().out

    def test_not_preserved_exit_code(self, files, capsys):
        code = main(
            [
                "preserves",
                files("p.dl", "H(x, y) :- A(x, y).\n"),
                "--tgds",
                files("t.tgd", "H(x, y) -> Mark(y)\n"),
            ]
        )
        assert code == 1


class TestQuery:
    def test_bound_query(self, files, capsys):
        code = main(
            ["query", files("tc.dl", TC), "G(1, x)", "--edb", files("edb.dl", EDB)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "G(1, 2)" in out and "G(1, 3)" in out
        assert "G(2, 3)" not in out  # goal-directed: irrelevant answers absent

    def test_stats(self, files, capsys):
        main(
            [
                "query",
                files("tc.dl", TC),
                "G(1, x)",
                "--edb",
                files("edb.dl", EDB),
                "--stats",
            ]
        )
        assert "iterations=" in capsys.readouterr().out

    def test_empty_result(self, files, capsys):
        code = main(
            ["query", files("tc.dl", TC), "G(9, x)", "--edb", files("edb.dl", EDB)]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == ""


class TestExplain:
    def test_proof_tree(self, files, capsys):
        code = main(
            ["explain", files("tc.dl", TC), "G(1, 3)", "--edb", files("edb.dl", EDB)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(given)" in out
        assert "G(1, 3)" in out

    def test_underivable_fact(self, files, capsys):
        code = main(
            ["explain", files("tc.dl", TC), "G(3, 1)", "--edb", files("edb.dl", EDB)]
        )
        assert code == 1
        assert "does not hold" in capsys.readouterr().err


class TestBounded:
    def test_bounded_program(self, files, capsys):
        source = "P(x) :- A(x).\nP(x) :- P(x), B(x).\n"
        code = main(["bounded", files("b.dl", source)])
        assert code == 0
        out = capsys.readouterr().out
        assert "uniformly bounded at depth 1" in out

    def test_unbounded_program(self, files, capsys):
        code = main(["bounded", files("tc.dl", TC), "--max-depth", "2"])
        assert code == 1
        assert "not shown bounded" in capsys.readouterr().out


class TestExamples:
    def test_lists_all(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "E01" in out and "E19" in out


class TestLint:
    def test_redundant_atom_exits_1_with_fix(self, files, capsys):
        assert main(["lint", files("r.dl", TC_REDUNDANT)]) == 1
        out = capsys.readouterr().out
        assert "[redundant-atom]" in out
        assert "A(w, y)" in out
        assert "fix:" in out

    def test_clean_program_exits_0(self, files, capsys):
        assert main(["lint", files("tc.dl", TC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_round_trips(self, files, capsys):
        main(["lint", files("r.dl", TC_REDUNDANT), "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        finding = next(
            d for d in data["diagnostics"] if d["rule"] == "redundant-atom"
        )
        assert finding["severity"] == "warning"
        assert finding["rule_index"] == 0
        assert finding["line"] == 2  # TC_REDUNDANT opens with a blank line

    def test_fail_on_error_tolerates_warnings(self, files):
        assert main(["lint", files("r.dl", TC_REDUNDANT), "--fail-on", "error"]) == 0

    def test_fail_on_never(self, files):
        assert main(["lint", files("r.dl", TC_REDUNDANT), "--fail-on", "never"]) == 0

    def test_ignore_suppresses_finding(self, files):
        # The fixture's G has no base case, so dead-rule/empty-predicate
        # legitimately warn too; ignore all three to show suppression works.
        code = main(
            [
                "lint",
                files("r.dl", TC_REDUNDANT),
                "--ignore",
                "redundant-atom,dead-rule,empty-predicate",
            ]
        )
        assert code == 0

    def test_select_limits_rules(self, files, capsys):
        code = main(
            ["lint", files("r.dl", TC_REDUNDANT), "--select", "singleton-variable"]
        )
        assert code == 0
        assert "redundant-atom" not in capsys.readouterr().out

    def test_unknown_rule_id_is_usage_error(self, files, capsys):
        assert main(["lint", files("tc.dl", TC), "--select", "no-such-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_syntax_error_reported_as_diagnostic(self, files, capsys):
        assert main(["lint", files("bad.dl", "G(x :- A(x).")]) == 1
        assert "[syntax]" in capsys.readouterr().out

    def test_unsafe_rule_reported_as_safety(self, files, capsys):
        assert main(["lint", files("u.dl", "G(x, z) :- A(x).")]) == 1
        assert "[safety]" in capsys.readouterr().out

    def test_max_containment_checks_zero(self, files, capsys):
        code = main(
            [
                "lint",
                files("r.dl", TC_REDUNDANT),
                "--max-containment-checks",
                "0",
                # dead-rule/empty-predicate warn regardless of the budget
                # (the fixture's G has no base case); keep them out so the
                # budget behaviour alone decides the exit code.
                "--ignore",
                "dead-rule,empty-predicate",
            ]
        )
        out = capsys.readouterr().out
        assert "redundant-atom" not in out
        assert "[containment-budget]" in out
        assert code == 0  # info findings are below the default warning threshold

    def test_export_enables_unused_idb(self, files, capsys):
        source = "Out(x) :- E(x).\nDead(x) :- E(x), Dead(x).\n"
        assert main(["lint", files("d.dl", source), "--export", "Out"]) == 1
        assert "[unused-idb]" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["lint", "/does/not/exist.dl"]) == 2

    @pytest.mark.parametrize(
        "example", sorted(EXAMPLES_DIR.glob("*.dl")), ids=lambda p: p.name
    )
    def test_shipped_examples_are_lint_clean(self, example):
        assert main(["lint", str(example)]) == 0


class TestGovernorFlags:
    CHAIN = "\n".join(f"A({i}, {i + 1})." for i in range(30)) + "\n"

    def test_eval_partial_exit_code_and_stderr(self, files, capsys):
        code = main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("edb.dl", self.CHAIN),
                "--max-facts",
                "20",
            ]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "PARTIAL: max_facts tripped" in captured.err
        assert "G(" in captured.out  # the sound partial facts still print

    def test_eval_on_limit_raise_exits_2(self, files, capsys):
        code = main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("edb.dl", self.CHAIN),
                "--max-facts",
                "20",
                "--on-limit",
                "raise",
            ]
        )
        assert code == 2
        assert "max_facts" in capsys.readouterr().err

    def test_eval_without_flags_is_ungoverned(self, files, capsys):
        assert main(["eval", files("tc.dl", TC), "--edb", files("e.dl", EDB)]) == 0

    def test_eval_stratified_engine_choice(self, files, capsys):
        code = main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("e.dl", EDB),
                "--engine",
                "stratified",
            ]
        )
        assert code == 0
        assert "G(1, 3)" in capsys.readouterr().out

    def test_query_method_flag(self, files, capsys):
        for method in ("magic", "supplementary", "topdown"):
            code = main(
                [
                    "query",
                    files("tc.dl", TC),
                    "G(1, x)",
                    "--edb",
                    files("e.dl", EDB),
                    "--method",
                    method,
                ]
            )
            assert code == 0
            assert "G(1, 3)" in capsys.readouterr().out

    def test_query_governed_partial(self, files, capsys):
        code = main(
            [
                "query",
                files("tc.dl", TC),
                "G(0, x)",
                "--edb",
                files("edb.dl", self.CHAIN),
                "--max-facts",
                "10",
            ]
        )
        assert code == 3
        assert "PARTIAL" in capsys.readouterr().err

    def test_minimize_deadline_flag(self, files, capsys):
        code = main(
            ["minimize", files("red.dl", TC_REDUNDANT), "--deadline", "0.000001"]
        )
        assert code == 3
        assert "PARTIAL: deadline tripped" in capsys.readouterr().err


class TestChaseFlags:
    def test_optimize_accepts_chase_budget(self, files, capsys):
        code = main(
            [
                "optimize",
                files("ex19.dl", EX19),
                "--chase-rounds",
                "50",
                "--chase-nulls",
                "100",
            ]
        )
        assert code == 0

    def test_preserves_accepts_chase_budget(self, files, capsys):
        code = main(
            [
                "preserves",
                files("tc.dl", TC),
                "--tgds",
                files("t.tgd", "G(x, z) -> A(x, w)\n"),
                "--chase-rounds",
                "50",
            ]
        )
        assert code in (0, 1)
        assert "preservation" in capsys.readouterr().out

    def test_prove_tiny_budget_reports_unproved(self, files, capsys):
        p1 = "G(x, z) :- A(x, z).\n"
        p2 = "G(x, z) :- B(x, z).\n"
        code = main(
            [
                "prove",
                files("p1.dl", p1),
                files("p2.dl", p2),
                "--tgds",
                files("t.tgd", "B(x, y) -> B(y, w)\n"),
                "--chase-rounds",
                "3",
                "--chase-nulls",
                "10",
            ]
        )
        assert code == 1


class TestJsonResults:
    CHAIN = "\n".join(f"A({i}, {i + 1})." for i in range(30)) + "\n"

    def test_eval_json_complete(self, files, capsys):
        code = main(
            ["eval", files("tc.dl", TC), "--edb", files("e.dl", EDB), "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "complete"
        assert doc["degradation"] is None
        assert doc["database"]["format"] == 2
        assert "G" in doc["database"]["facts"]
        assert doc["stats"]["iterations"] >= 1

    def test_eval_json_partial_carries_degradation(self, files, capsys):
        code = main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("edb.dl", self.CHAIN),
                "--max-facts",
                "20",
                "--json",
            ]
        )
        assert code == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "partial"
        assert doc["degradation"]["limit"] == "max_facts"
        assert doc["degradation"]["engine"] == "seminaive"
        assert doc["degradation"]["facts_seen"] > 20

    def test_query_json_partial_carries_degradation(self, files, capsys):
        code = main(
            [
                "query",
                files("tc.dl", TC),
                "G(0, x)",
                "--edb",
                files("edb.dl", self.CHAIN),
                "--max-facts",
                "10",
                "--json",
            ]
        )
        assert code == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "partial"
        assert doc["degradation"]["limit"] == "max_facts"

    def test_query_json_complete(self, files, capsys):
        code = main(
            [
                "query",
                files("tc.dl", TC),
                "G(1, x)",
                "--edb",
                files("e.dl", EDB),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "complete"
        assert doc["database"]["facts"]["G"]


class TestCheckpointFlags:
    CHAIN = "\n".join(f"A({i}, {i + 1})." for i in range(20)) + "\n"

    def _eval_with_checkpoint(self, files, tmp_path, *extra):
        ck = str(tmp_path / "ck.json")
        code = main(
            [
                "eval",
                files("tc.dl", TC),
                "--edb",
                files("edb.dl", self.CHAIN),
                "--checkpoint",
                ck,
                *extra,
            ]
        )
        return ck, code

    def test_eval_writes_checkpoint_generations(self, files, tmp_path, capsys):
        ck, code = self._eval_with_checkpoint(files, tmp_path)
        assert code == 0
        assert pathlib.Path(ck).exists()
        assert pathlib.Path(ck + ".prev").exists()

    def test_resume_reproduces_the_eval_output(self, files, tmp_path, capsys):
        ck, code = self._eval_with_checkpoint(files, tmp_path)
        assert code == 0
        full_output = capsys.readouterr().out
        assert main(["resume", ck]) == 0
        captured = capsys.readouterr()
        assert captured.out == full_output
        assert "resuming seminaive evaluation" in captured.err

    def test_resume_verifies_program_fingerprint(self, files, tmp_path, capsys):
        ck, _ = self._eval_with_checkpoint(files, tmp_path)
        other = files("other.dl", "G(x, z) :- A(z, x).\n")
        assert main(["resume", ck, "--program", other]) == 2
        assert "fingerprint" in capsys.readouterr().err
        assert main(["resume", ck, "--program", files("tc.dl", TC)]) == 0

    def test_resume_falls_back_past_corrupt_generation(self, files, tmp_path, capsys):
        from repro.resilience import corrupt_checkpoint

        ck, _ = self._eval_with_checkpoint(files, tmp_path)
        capsys.readouterr()
        corrupt_checkpoint(ck, mode="flip")
        assert main(["resume", ck]) == 0
        assert "G(0, 19)" in capsys.readouterr().out

    def test_resume_with_no_valid_generation_exits_2(self, files, tmp_path, capsys):
        from repro.resilience import corrupt_checkpoint

        ck, _ = self._eval_with_checkpoint(files, tmp_path)
        corrupt_checkpoint(ck, mode="flip")
        corrupt_checkpoint(ck + ".prev", mode="truncate")
        assert main(["resume", ck]) == 2
        assert "no valid checkpoint" in capsys.readouterr().err

    def test_resume_honors_governor_flags(self, files, tmp_path, capsys):
        ck, _ = self._eval_with_checkpoint(files, tmp_path, "--checkpoint-every", "2")
        capsys.readouterr()
        code = main(["resume", ck, "--max-rounds", "1", "--no-checkpoint"])
        assert code == 3
        assert "PARTIAL: max_rounds tripped" in capsys.readouterr().err

    def test_checkpoint_every_flag(self, files, tmp_path, capsys):
        ck, code = self._eval_with_checkpoint(
            files, tmp_path, "--checkpoint-every", "5"
        )
        assert code == 0
        doc = json.loads(pathlib.Path(ck).read_text())
        assert doc["payload"]["round"] % 5 == 0
        assert doc["payload"]["every"] == 5

    def test_bench_checkpoint_dir(self, tmp_path, capsys):
        ckdir = tmp_path / "cks"
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--quick",
                "--suite",
                "tc+2atoms/chain",
                "--size",
                "8",
                "--out",
                str(out),
                "--quiet",
                "--checkpoint",
                str(ckdir),
            ]
        )
        assert code == 0
        written = list(ckdir.glob("*.ckpt.json"))
        assert written  # one file per fixpoint cell
        document = json.loads(out.read_text())
        fixpoint = [
            e
            for e in document["entries"]
            if e["engine"] in ("naive", "seminaive", "stratified")
        ]
        assert fixpoint and all(
            e["stats"].get("checkpoints", 0) >= 1 for e in fixpoint
        )
