"""Unit tests for the tabled top-down engine (QSQR-style)."""

from __future__ import annotations

import pytest

from repro import Database, evaluate, parse_program
from repro.engine.magic import answer_query
from repro.engine.topdown import Call, tabled_query
from repro.errors import UnsafeRuleError
from repro.lang import Variable, parse_atom
from repro.workloads import (
    chain,
    cycle,
    merged,
    random_graph,
    random_tree,
    same_generation,
    tc_linear,
    tc_nonlinear,
    unary_marks,
)


def reference(program, db, query):
    full = evaluate(program, db).database
    return {
        row
        for row in full.tuples(query.predicate)
        if all(
            isinstance(qt, Variable) or qt == rt for qt, rt in zip(query.args, row)
        )
    }


class TestCorrectness:
    @pytest.mark.parametrize("query_text", ["G(0, x)", "G(x, 5)", "G(0, 5)", "G(x, y)"])
    @pytest.mark.parametrize("program_factory", [tc_linear, tc_nonlinear])
    def test_tc_all_adornments(self, program_factory, query_text):
        program = program_factory()
        db = random_graph(12, 24, seed=5)
        query = parse_atom(query_text)
        result = tabled_query(program, db, query)
        assert set(result.answers.tuples("G")) == reference(program, db, query)

    def test_cycles_terminate(self, tc):
        db = cycle(8)
        result = tabled_query(tc, db, parse_atom("G(0, x)"))
        assert len(result.answers) == 8

    def test_empty_answer(self, tc):
        result = tabled_query(tc, chain(5), parse_atom("G(99, x)"))
        assert len(result.answers) == 0

    def test_same_generation(self):
        program = same_generation()
        db = merged(
            random_tree(14, seed=8, predicate="Par"),
            unary_marks(range(14), predicate="Per"),
        )
        query = parse_atom("Sg(3, x)")
        result = tabled_query(program, db, query)
        assert set(result.answers.tuples("Sg")) == reference(program, db, query)

    def test_initial_idb_facts_honoured(self, tc):
        db = Database.from_facts({"A": [(1, 2)], "G": [(5, 6)]})
        result = tabled_query(tc, db, parse_atom("G(5, x)"))
        assert set(r[1].value for r in result.answers.tuples("G")) == {6}

    def test_head_constants(self):
        program = parse_program("G(x, 3) :- A(x).")
        db = Database.from_facts({"A": [(1,), (2,)]})
        result = tabled_query(program, db, parse_atom("G(x, 3)"))
        assert len(result.answers) == 2
        miss = tabled_query(program, db, parse_atom("G(x, 4)"))
        assert len(miss.answers) == 0

    def test_agrees_with_magic(self, tc):
        db = random_graph(15, 30, seed=11)
        query = parse_atom("G(0, x)")
        top_down = tabled_query(tc, db, query)
        magic_answers, _ = answer_query(tc, db, query)
        assert set(top_down.answers.tuples("G")) == set(magic_answers.tuples("G"))


class TestGoalDirectedness:
    def test_irrelevant_component_not_explored(self):
        program = tc_linear()
        db = chain(20)
        db.update(chain(20, offset=500))
        result = tabled_query(program, db, parse_atom("G(500, x)"))
        # The tables only mention nodes of the queried component.
        from repro.lang.terms import Constant

        touched = {
            t.value
            for table in result.tables.values()
            for row in table
            for t in row
        }
        assert all(v >= 500 for v in touched)

    def test_fewer_facts_than_full_evaluation(self):
        program = tc_linear()
        db = chain(30)
        db.update(chain(30, offset=100))
        result = tabled_query(program, db, parse_atom("G(100, x)"))
        full = evaluate(program, db)
        derived_tabled = sum(len(t) for t in result.tables.values())
        assert derived_tabled < full.database.count("G")


class TestMechanics:
    def test_call_str(self):
        from repro.lang.terms import Constant

        call = Call("G", (Constant(0), None))
        assert str(call) == "G(0, _)"

    def test_rejects_negation(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        with pytest.raises(UnsafeRuleError):
            tabled_query(program, Database(), parse_atom("P(x)"))

    def test_stats_populated(self, tc):
        result = tabled_query(tc, chain(6), parse_atom("G(0, x)"))
        assert result.stats.iterations >= 1
        assert result.stats.subgoal_attempts > 0
        assert result.calls_made >= 1

    def test_edb_query(self, tc):
        # Query on an extensional predicate: answered from the database.
        result = tabled_query(tc, chain(5), parse_atom("A(0, x)"))
        assert len(result.answers) == 1
