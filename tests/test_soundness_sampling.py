"""Sampling-based soundness validation of the semi-decidable procedures.

The preservation test (Fig. 3) and the §X containment recipe are the
subtlest code in the library; these tests validate their *claims*
against brute-force sampling:

* whenever Fig. 3 answers PROVED, ``⟨d, Pⁿ(d)⟩`` must satisfy the tgds
  for every sampled ``d ∈ SAT(T)``;
* whenever Fig. 3 answers DISPROVED, its recorded counterexample must
  be genuine;
* whenever the §X recipe answers PROVED for (P1, P2, T), then
  ``P2(d) ⊆ P1(d)`` must hold on every sampled EDB.

Random inputs are drawn from parameterized families around the paper's
Examples 13-19, where all three verdicts actually occur.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, evaluate, parse_program, parse_tgd
from repro.core.chase import Verdict, chase
from repro.core.equivalence import prove_containment_with_constraints
from repro.core.preservation import preserves_nonrecursively
from repro.core.tgds import satisfies_all
from repro.engine import apply_once
from repro.lang import Program


def random_db(seed: int, preds: dict[str, int], domain: int = 4, facts: int = 10) -> Database:
    rng = random.Random(seed)
    db = Database()
    names = sorted(preds)
    for _ in range(rng.randint(1, facts)):
        pred = rng.choice(names)
        row = tuple(rng.randrange(domain) for _ in range(preds[pred]))
        db.add_fact(pred, *row)
    return db


def saturate_to_sat(db: Database, tgds) -> Database | None:
    """Chase *db* into SAT(T); None if the chase does not saturate."""
    outcome = chase(db, None, list(tgds))
    return outcome.database if outcome.saturated else None


#: (program source, tgd source) pairs covering PROVED and DISPROVED cases.
PRESERVATION_FAMILY = [
    # Example 13/14: preserved.
    (
        """
        G(x, z) :- A(x, z).
        G(x, z) :- G(x, y), G(y, z), A(y, w).
        """,
        "G(x, z) -> A(x, w)",
    ),
    # Example 16: preserved.
    (
        "G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).",
        "G(y, z) -> G(y, w) & C(w)",
    ),
    # Violated: the rule produces unmarked H facts.
    ("H(x, y) :- A(x, y).", "H(x, y) -> Mark(y)"),
    # Violated: copy rule without the guard.
    ("H(x, y) :- G(x, y).", "H(x, y) -> Mark(y)"),
    # Preserved: guard present.
    ("H(x, y) :- G(x, y), Mark(y).", "H(x, y) -> Mark(y)"),
    # Two-atom LHS (Example 15): preserved.
    (
        "G(x, z) :- G(x, y), G(y, z), A(y, w).",
        "G(x, y), G(y, z) -> A(y, w)",
    ),
]


class TestFig3AgainstSampling:
    @pytest.mark.parametrize("index", range(len(PRESERVATION_FAMILY)))
    def test_verdicts_validated_by_sampling(self, index):
        program_src, tgd_src = PRESERVATION_FAMILY[index]
        program = parse_program(program_src)
        tgd = parse_tgd(tgd_src)
        report = preserves_nonrecursively(program, [tgd])

        preds = dict(program.arities)
        for atom_pred in tgd.predicates():
            preds.setdefault(atom_pred, _tgd_arity(tgd, atom_pred))

        if report.verdict is Verdict.PROVED:
            confirmed = 0
            for seed in range(25):
                base = random_db(seed * 7 + index, preds)
                d = saturate_to_sat(base, [tgd])
                if d is None:
                    continue
                combined = d.copy()
                combined.add_all(apply_once(program, d))
                assert satisfies_all(combined, [tgd]), (
                    f"PROVED but sampled d (seed {seed}) breaks the tgd"
                )
                confirmed += 1
            assert confirmed >= 5  # the sampling actually exercised something
        elif report.verdict is Verdict.DISPROVED:
            # The recorded counterexample ⟨d, Pⁿ(d)⟩ must itself
            # violate the tgd -- DISPROVED is a constructive claim.
            counter = report.counterexample
            assert counter is not None
            assert not satisfies_all(Database(counter), [tgd])
        else:  # pragma: no cover - family contains no UNKNOWN cases
            pytest.fail("unexpected UNKNOWN in the curated family")


def _tgd_arity(tgd, predicate: str) -> int:
    for atom in tuple(tgd.lhs) + tuple(tgd.rhs):
        if atom.predicate == predicate:
            return atom.arity
    raise AssertionError(predicate)


#: (P1, P2, T) triples for the §X recipe; includes provable and
#: unprovable (but true or unknown) cases.
RECIPE_FAMILY = [
    # Example 18.
    (
        """
        G(x, z) :- A(x, z).
        G(x, z) :- G(x, y), G(y, z), A(y, w).
        """,
        """
        G(x, z) :- A(x, z).
        G(x, z) :- G(x, y), G(y, z).
        """,
        "G(x, z) -> A(x, w)",
        {"A": 2},
    ),
    # Example 19.
    (
        """
        G(x, z) :- A(x, z), C(z).
        G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
        """,
        """
        G(x, z) :- A(x, z), C(z).
        G(x, z) :- A(x, y), G(y, z).
        """,
        "G(y, z) -> G(y, w) & C(w)",
        {"A": 2, "C": 1},
    ),
    # A linear variant of Example 18.
    (
        """
        G(x, z) :- A(x, z).
        G(x, z) :- A(x, y), G(y, z), A(y, v).
        """,
        """
        G(x, z) :- A(x, z).
        G(x, z) :- A(x, y), G(y, z).
        """,
        "G(x, z) -> A(x, w)",
        {"A": 2},
    ),
]


class TestRecipeAgainstSampling:
    @pytest.mark.parametrize("index", range(len(RECIPE_FAMILY)))
    def test_proved_implies_containment_on_samples(self, index):
        p1_src, p2_src, tgd_src, edb_arities = RECIPE_FAMILY[index]
        p1 = parse_program(p1_src)
        p2 = parse_program(p2_src)
        tgd = parse_tgd(tgd_src)
        proof = prove_containment_with_constraints(p1, p2, [tgd])
        assert proof.verdict is Verdict.PROVED
        for seed in range(20):
            edb = random_db(seed * 13 + index, edb_arities, domain=4, facts=8)
            out1 = evaluate(p1, edb).database
            out2 = evaluate(p2, edb).database
            assert out2.issubset(out1), f"P2 ⊄ P1 on sampled EDB seed {seed}"
            # For these families the converse holds too (P1 has more
            # atoms), so outputs coincide -- the full Example 18/19 claim.
            assert out1 == out2

    def test_unproved_case_never_claims(self):
        # A tgd the program does not preserve: the recipe must not
        # return PROVED (here the underlying containment is in fact
        # false, so a PROVED would be a soundness bug).
        p1 = parse_program("H(x, y) :- A(x, y).")
        p2 = parse_program(
            """
            H(x, y) :- A(x, y).
            H(x, y) :- B(x, y).
            """
        )
        tgd = parse_tgd("H(x, y) -> Mark(y)")
        proof = prove_containment_with_constraints(p1, p2, [tgd])
        assert proof.verdict is not Verdict.PROVED
