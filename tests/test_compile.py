"""Tests for repro.engine.compile: kernels, delta splitting, differentials.

The load-bearing guarantee is the differential one: for every bench
workload, the compiled kernel path and the ``match_body`` reference path
compute identical fixpoints -- including under fault injection and under
governor PARTIAL cutoffs (where the compiled result must still be a
sound subset).
"""

from __future__ import annotations

import pytest

from repro.data import Database
from repro.engine import (
    KernelCache,
    compile_kernel,
    naive_fixpoint,
    seminaive_fixpoint,
)
from repro.engine.stats import EvaluationStats
from repro.errors import UnsafeRuleError
from repro.lang import Atom, Literal, Variable, parse_rule
from repro.obs.metrics import metrics_registry
from repro.resilience import (
    EvaluationSession,
    EvaluationStatus,
    FaultPlan,
    ResourceGovernor,
    RetryPolicy,
)
from repro.workloads.suites import SUITES

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestKernelUnits:
    def test_simple_join(self):
        db = Database.from_facts({"A": [(1, 2), (2, 3)]})
        rule = parse_rule("G(x, z) :- A(x, y), A(y, z).")
        kernel = compile_kernel(rule.head, rule.body, db)
        assert kernel.run(db) == {Atom.of("G", 1, 3)}

    def test_constants_in_body(self):
        db = Database.from_facts({"A": [(1, 2), (3, 4)]})
        rule = parse_rule("P(y) :- A(3, y).")
        kernel = compile_kernel(rule.head, rule.body, db)
        assert kernel.run(db) == {Atom.of("P", 4)}

    def test_repeated_variable_within_atom(self):
        db = Database.from_facts({"A": [(1, 1), (1, 2)]})
        rule = parse_rule("P(x) :- A(x, x).")
        kernel = compile_kernel(rule.head, rule.body, db)
        assert kernel.run(db) == {Atom.of("P", 1)}

    def test_negated_literal(self):
        db = Database.from_facts({"A": [(1,), (2,)], "B": [(2,)]})
        body = [
            Literal(Atom("A", (x,))),
            Literal(Atom("B", (x,)), positive=False),
        ]
        kernel = compile_kernel(Atom("P", (x,)), body, db)
        assert kernel.run(db) == {Atom.of("P", 1)}

    def test_ground_fact_rule(self):
        rule = parse_rule("A(1, 2).")
        kernel = compile_kernel(rule.head, rule.body, Database())
        assert kernel.run(Database()) == {Atom.of("A", 1, 2)}

    def test_witness_cutoff_collapses_existential_tail(self):
        # P(x) :- A(x, y), B(y, z): once A binds the head variable x,
        # the ten z-witnesses in B must yield one firing, not ten.
        db = Database.from_facts(
            {"A": [(1, 2)], "B": [(2, i) for i in range(10)]}
        )
        rule = parse_rule("P(x) :- A(x, y), B(y, z).")
        kernel = compile_kernel(rule.head, rule.body, db)
        stats = EvaluationStats()
        assert kernel.run(db, stats=stats) == {Atom.of("P", 1)}
        assert stats.rule_firings == 1
        assert kernel.witness_depth == 1

    def test_unsafe_rule_rejected(self):
        body = [Literal(Atom("A", (x,)))]
        with pytest.raises(UnsafeRuleError):
            compile_kernel(Atom("P", (x, z)), body, Database())

    def test_delta_required_when_compiled_with_delta_position(self):
        db = Database.from_facts({"A": [(1, 2)]})
        rule = parse_rule("G(x, y) :- A(x, y).")
        kernel = compile_kernel(rule.head, rule.body, db, delta_position=0)
        with pytest.raises(ValueError):
            kernel.run(db)

    def test_delta_position_must_be_positive_literal(self):
        body = [
            Literal(Atom("A", (x,))),
            Literal(Atom("B", (x,)), positive=False),
        ]
        with pytest.raises(ValueError):
            compile_kernel(Atom("P", (x,)), body, Database(), delta_position=1)

    def test_kernel_cache_reuses_compiled_variants(self):
        db = Database.from_facts({"A": [(1, 2)]})
        rule = parse_rule("G(x, z) :- A(x, y), A(y, z).")
        cache = KernelCache([rule], db)
        first = cache.kernel(0, 0)
        assert cache.kernel(0, 0) is first
        assert cache.kernel(0, 1) is not first
        assert len(cache) == 2


class TestDeltaSplitting:
    def test_splitting_reads_snapshot_before_delta_after(self):
        # Body A(x,y), A(y,z), delta pinned at 1: position 0 must read
        # the snapshot only, so a join needing the delta fact at
        # position 0 yields nothing.
        full = Database.from_facts({"A": [(1, 2), (2, 3)]})
        snapshot = Database.from_facts({"A": [(1, 2)]})
        delta = Database.from_facts({"A": [(2, 3)]})
        rule = parse_rule("G(x, z) :- A(x, y), A(y, z).")
        k1 = compile_kernel(rule.head, rule.body, full, delta_position=1)
        assert k1.run(full, delta=delta, before=snapshot) == {Atom.of("G", 1, 3)}
        k0 = compile_kernel(rule.head, rule.body, full, delta_position=0)
        # Delta at 0 is (2,3); position 1 reads full, but (3,?) has no
        # continuation, so nothing derives.
        assert k0.run(full, delta=delta, before=snapshot) == set()

    def test_seminaive_firings_at_most_naive_on_redundant_atoms(self):
        workload = SUITES["tc+2atoms/chain"]()
        edb = workload.edb(12)
        naive = naive_fixpoint(workload.program, edb)
        semi = seminaive_fixpoint(workload.program, edb)
        assert semi.database == naive.database
        assert semi.stats.rule_firings <= naive.stats.rule_firings
        assert semi.stats.duplicates_avoided > 0

    def test_reference_path_unchanged_and_equal(self):
        workload = SUITES["tc+2atoms/chain"]()
        edb = workload.edb(10)
        compiled = seminaive_fixpoint(workload.program, edb)
        reference = seminaive_fixpoint(workload.program, edb, use_compiled=False)
        assert compiled.database == reference.database


@pytest.mark.parametrize("suite", sorted(SUITES))
class TestDifferentialFixpoints:
    """Compiled kernels == match_body reference, on every bench workload."""

    def test_all_paths_agree(self, suite):
        workload = SUITES[suite]()
        edb = workload.edb(8)
        program = workload.program
        reference = naive_fixpoint(program, edb, use_compiled=False).database
        assert naive_fixpoint(program, edb).database == reference
        assert seminaive_fixpoint(program, edb).database == reference
        assert (
            seminaive_fixpoint(program, edb, use_compiled=False).database
            == reference
        )


@pytest.mark.parametrize("suite", ("tc+2atoms/chain", "same-generation"))
@pytest.mark.parametrize("seed", (1, 2))
class TestDifferentialUnderFaults:
    def test_compiled_path_survives_faults_and_agrees(self, suite, seed):
        workload = SUITES[suite]()
        edb = workload.edb(8)
        clean = seminaive_fixpoint(workload.program, edb).database
        plan = FaultPlan.seeded(
            seed=seed,
            operations=("candidates", "add", "contains"),
            faults_per_operation=3,
            horizon=400,
        )
        session = EvaluationSession(
            workload.program,
            edb,
            engine="seminaive",
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=8),
        )
        result = session.run()
        assert result.status is EvaluationStatus.COMPLETE
        assert set(result.database.atoms()) == set(clean.atoms())


class TestGovernedCompiledRuns:
    def test_partial_is_sound_subset(self):
        workload = SUITES["tc+2atoms/chain"]()
        edb = workload.edb(12)
        clean = set(seminaive_fixpoint(workload.program, edb).database.atoms())
        governor = ResourceGovernor(max_facts=15)
        result = seminaive_fixpoint(workload.program, edb, governor=governor)
        assert result.status in (EvaluationStatus.PARTIAL, EvaluationStatus.COMPLETE)
        assert set(result.database.atoms()) <= clean

    def test_partial_under_faults_still_subset(self):
        workload = SUITES["tc+2atoms/chain"]()
        edb = workload.edb(12)
        clean = set(seminaive_fixpoint(workload.program, edb).database.atoms())
        plan = FaultPlan.seeded(seed=5, faults_per_operation=2, horizon=200)
        governor = ResourceGovernor(max_facts=20)
        session = EvaluationSession(
            workload.program,
            edb,
            engine="seminaive",
            governor=governor,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=6),
        )
        result = session.run()
        assert set(result.database.atoms()) <= clean


class TestMetricsExport:
    def test_counters_flow_through_registry(self):
        registry = metrics_registry()
        kernels_before = registry.counter("compile.kernels_built")
        composite_before = registry.counter("index.composite_built")
        avoided_before = registry.counter("delta.duplicate_derivations_avoided")
        engine_avoided_before = registry.counter(
            "delta.duplicate_derivations_avoided.seminaive"
        )

        workload = SUITES["tc+2atoms/chain"]()
        result = seminaive_fixpoint(workload.program, workload.edb(12))
        assert result.stats.duplicates_avoided > 0

        # The triangle rule probes E with two bound positions, which is
        # what builds a composite index.
        triangle = parse_rule("T(x) :- E(x, y), E(y, z), E(z, x).")
        from repro.lang.programs import Program

        edges = Database.from_facts({"E": [(1, 2), (2, 3), (3, 1), (1, 4)]})
        tri = naive_fixpoint(Program.of(triangle), edges)
        assert set(tri.database.atoms_for("T")) == {
            Atom.of("T", 1),
            Atom.of("T", 2),
            Atom.of("T", 3),
        }

        assert registry.counter("compile.kernels_built") > kernels_before
        assert registry.counter("index.composite_built") > composite_before
        assert (
            registry.counter("delta.duplicate_derivations_avoided")
            >= avoided_before + result.stats.duplicates_avoided
        )
        assert (
            registry.counter("delta.duplicate_derivations_avoided.seminaive")
            >= engine_avoided_before + result.stats.duplicates_avoided
        )
