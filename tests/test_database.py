"""Unit tests for repro.data.database and repro.data.indexes."""

from __future__ import annotations

import pytest

from repro.data import Database, PredicateIndex, Relation, relation_of, split_edb_idb
from repro.errors import ArityError, GroundnessError
from repro.lang import Atom, Variable, parse_program
from repro.lang.terms import Constant, Null


class TestAddContains:
    def test_add_new(self):
        db = Database()
        assert db.add(Atom.of("A", 1, 2))
        assert Atom.of("A", 1, 2) in db

    def test_add_duplicate(self):
        db = Database()
        db.add(Atom.of("A", 1, 2))
        assert not db.add(Atom.of("A", 1, 2))
        assert len(db) == 1

    def test_add_fact_coerces(self):
        db = Database()
        db.add_fact("A", 1, "x")
        assert db.contains_tuple("A", (Constant(1), Constant("x")))

    def test_nonground_rejected(self):
        with pytest.raises(GroundnessError):
            Database().add(Atom("A", (Variable("x"),)))

    def test_nonground_fact_rejected(self):
        with pytest.raises(GroundnessError):
            Database().add_fact("A", Variable("x"))

    def test_null_atoms_accepted(self):
        db = Database()
        db.add(Atom("A", (Constant(3), Null(1))))
        assert len(db) == 1

    def test_arity_conflict(self):
        db = Database()
        db.add_fact("A", 1)
        with pytest.raises(ArityError):
            db.add_fact("A", 1, 2)

    def test_add_all_counts_new(self):
        db = Database()
        added = db.add_all([Atom.of("A", 1), Atom.of("A", 1), Atom.of("A", 2)])
        assert added == 2


class TestConstruction:
    def test_from_facts(self):
        db = Database.from_facts({"A": [(1, 2)], "B": [("x",)]})
        assert db.count("A") == 1 and db.count("B") == 1

    def test_from_atoms(self):
        db = Database.from_atoms([Atom.of("A", 1, 2)])
        assert len(db) == 1

    def test_copy_independent(self):
        db = Database.from_facts({"A": [(1, 2)]})
        other = db.copy()
        other.add_fact("A", 3, 4)
        assert len(db) == 1 and len(other) == 2


class TestSetOperations:
    def test_update_counts_new(self):
        db = Database.from_facts({"A": [(1, 2)]})
        other = Database.from_facts({"A": [(1, 2), (3, 4)], "B": [(5,)]})
        assert db.update(other) == 2
        assert len(db) == 3

    def test_equality_ignores_empty_relations(self):
        db1 = Database.from_facts({"A": [(1, 2)]})
        db2 = Database.from_facts({"A": [(1, 2)]})
        # Probe a missing predicate; must not affect equality.
        db2.count("B")
        assert db1 == db2

    def test_difference(self):
        big = Database.from_facts({"A": [(1, 2), (3, 4)]})
        small = Database.from_facts({"A": [(1, 2)]})
        assert big.difference(small) == {Atom.of("A", 3, 4)}

    def test_issubset(self):
        big = Database.from_facts({"A": [(1, 2), (3, 4)]})
        small = Database.from_facts({"A": [(1, 2)]})
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_restrict_to(self):
        db = Database.from_facts({"A": [(1, 2)], "B": [(3,)]})
        only_a = db.restrict_to(["A"])
        assert only_a.predicates == {"A"}

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Database())


class TestQueries:
    def test_atoms_iteration(self):
        db = Database.from_facts({"A": [(1, 2)], "B": [(3,)]})
        assert set(db.atoms()) == {Atom.of("A", 1, 2), Atom.of("B", 3)}

    def test_atoms_for(self):
        db = Database.from_facts({"A": [(1, 2)], "B": [(3,)]})
        assert list(db.atoms_for("B")) == [Atom.of("B", 3)]
        assert list(db.atoms_for("Zzz")) == []

    def test_tuples_of_unknown_predicate(self):
        assert Database().tuples("X") == frozenset()

    def test_bool(self):
        assert not Database()
        assert Database.from_facts({"A": [(1,)]})


class TestCandidates:
    def setup_method(self):
        self.db = Database.from_facts(
            {"A": [(1, 2), (1, 3), (2, 3), (4, 5)]}
        )

    def test_unbound_scan(self):
        assert len(list(self.db.candidates("A", {}))) == 4

    def test_single_position(self):
        rows = list(self.db.candidates("A", {0: Constant(1)}))
        assert len(rows) == 2

    def test_multi_position(self):
        rows = list(self.db.candidates("A", {0: Constant(1), 1: Constant(3)}))
        assert rows == [(Constant(1), Constant(3))]

    def test_miss(self):
        assert list(self.db.candidates("A", {0: Constant(9)})) == []

    def test_unknown_predicate(self):
        assert list(self.db.candidates("Zzz", {0: Constant(1)})) == []

    def test_index_maintained_after_insert(self):
        # Build the index, then insert, then probe again.
        list(self.db.candidates("A", {0: Constant(1)}))
        self.db.add_fact("A", 1, 9)
        rows = list(self.db.candidates("A", {0: Constant(1)}))
        assert len(rows) == 3

    def test_probe_count_increases(self):
        before = self.db.probe_count()
        list(self.db.candidates("A", {0: Constant(1)}))
        assert self.db.probe_count() > before


class TestCompositeCandidates:
    def setup_method(self):
        self.db = Database.from_facts(
            {"A": [(1, 2, 3), (1, 2, 4), (1, 5, 3), (2, 2, 3)]}
        )

    def test_multi_bound_exact_match(self):
        rows = set(self.db.candidates("A", {0: Constant(1), 1: Constant(2)}))
        assert rows == {
            (Constant(1), Constant(2), Constant(3)),
            (Constant(1), Constant(2), Constant(4)),
        }

    def test_composite_index_built_lazily_per_position_set(self):
        list(self.db.candidates("A", {0: Constant(1), 1: Constant(2)}))
        list(self.db.candidates("A", {0: Constant(1), 2: Constant(3)}))
        index = self.db._indexes["A"]
        assert index.composite_positions() == {(0, 1), (0, 2)}

    def test_composite_maintained_after_add_and_discard(self):
        bound = {0: Constant(1), 1: Constant(2)}
        assert len(list(self.db.candidates("A", bound))) == 2
        self.db.add_fact("A", 1, 2, 9)
        assert len(list(self.db.candidates("A", bound))) == 3
        self.db.discard(Atom.of("A", 1, 2, 3))
        assert len(list(self.db.candidates("A", bound))) == 2

    def test_empty_composite_bucket(self):
        assert list(self.db.candidates("A", {0: Constant(9), 1: Constant(2)})) == []

    def test_fallback_past_cap_with_early_exit(self, monkeypatch):
        from repro.data import database as database_module

        monkeypatch.setattr(database_module, "_COMPOSITE_CAP", 0)
        bound = {0: Constant(1), 1: Constant(2)}
        rows = list(self.db.candidates("A", bound))
        assert len(rows) == 2
        assert self.db._indexes["A"].composite_count() == 0
        # The early-exit fix: an empty bucket at any bound position
        # returns () immediately, even when other positions match.
        assert list(self.db.candidates("A", {0: Constant(9), 1: Constant(2)})) == []
        assert list(self.db.candidates("A", {0: Constant(1), 1: Constant(9)})) == []

    def test_empty_like_is_plain_and_empty(self):
        fresh = self.db.empty_like()
        assert isinstance(fresh, Database)
        assert len(fresh) == 0
        assert len(self.db) == 4


class TestPredicateIndex:
    def test_build_and_bucket(self):
        index = PredicateIndex(2)
        rows = [(Constant(1), Constant(2)), (Constant(1), Constant(3))]
        index.build(0, rows)
        assert index.bucket(0, Constant(1)) == set(rows)

    def test_bucket_unbuilt_position(self):
        index = PredicateIndex(2)
        assert index.bucket(1, Constant(2)) is None

    def test_insert_maintains_built(self):
        index = PredicateIndex(2)
        index.build(0, [])
        index.insert((Constant(7), Constant(8)))
        assert index.bucket(0, Constant(7)) == {(Constant(7), Constant(8))}

    def test_bucket_size_no_probe(self):
        index = PredicateIndex(1)
        index.build(0, [(Constant(1),)])
        before = index.probes
        assert index.bucket_size(0, Constant(1)) == 1
        assert index.probes == before

    def test_composite_build_probe_and_maintain(self):
        index = PredicateIndex(3)
        rows = [
            (Constant(1), Constant(2), Constant(3)),
            (Constant(1), Constant(2), Constant(4)),
        ]
        index.build_composite((0, 1), rows)
        hit = index.composite_bucket((0, 1), (Constant(1), Constant(2)))
        assert hit == set(rows)
        assert index.composite_bucket((0, 2), (Constant(1), Constant(3))) is None
        index.insert((Constant(1), Constant(2), Constant(9)))
        index.remove(rows[0])
        hit = index.composite_bucket((0, 1), (Constant(1), Constant(2)))
        assert hit == {rows[1], (Constant(1), Constant(2), Constant(9))}
        assert index.composite_count() == 1


class TestRelations:
    def test_relation_of(self):
        db = Database.from_facts({"A": [(1, 2), (3, 4)]})
        rel = relation_of(db, "A")
        assert isinstance(rel, Relation)
        assert len(rel) == 2
        assert (Constant(1), Constant(2)) in rel

    def test_relation_values_unwrap(self):
        db = Database.from_facts({"A": [(1, "x")]})
        assert relation_of(db, "A").values() == {(1, "x")}

    def test_split_edb_idb(self):
        program = parse_program("G(x, z) :- A(x, z).")
        db = Database.from_facts({"A": [(1, 2)], "G": [(1, 2)], "Other": [(9,)]})
        edb, idb = split_edb_idb(db, program)
        assert edb.predicates == {"A", "Other"}
        assert idb.predicates == {"G"}
