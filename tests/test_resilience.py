"""Unit tests for the resilience layer: governor, faults, sessions, registry."""

from __future__ import annotations

import pytest

from repro import Database, parse_atom, parse_program
from repro.engine import engine_names, evaluate, get_engine
from repro.engine.incremental import MaterializedView
from repro.errors import ResourceLimitExceeded, TransientStorageError
from repro.resilience import (
    CancellationToken,
    DegradationReport,
    EvaluationSession,
    EvaluationStatus,
    FaultPlan,
    FaultyDatabase,
    InjectedFault,
    ResourceGovernor,
    RetryPolicy,
)

TC = parse_program(
    """
    T(x, y) :- E(x, y).
    T(x, z) :- E(x, y), T(y, z).
    """
)


def chain(n: int) -> Database:
    return Database.from_facts({"E": [(i, i + 1) for i in range(n)]})


class TestEngineRegistry:
    def test_all_engines_registered(self):
        assert set(engine_names("fixpoint")) == {"naive", "seminaive", "stratified"}
        assert set(engine_names("query")) == {"magic", "supplementary", "topdown"}
        assert set(engine_names("maintenance")) == {"incremental"}

    def test_unknown_engine_error_names_known(self):
        with pytest.raises(ValueError, match="seminaive"):
            get_engine("bogus")

    def test_evaluate_rejects_non_fixpoint_engine(self):
        with pytest.raises(ValueError, match="query"):
            evaluate(TC, chain(3), engine="magic")

    def test_specs_are_callable(self):
        spec = get_engine("seminaive")
        result = spec.run(TC, chain(3))
        assert result.database.count("T") == 6


class TestGovernorLimits:
    def test_ungoverned_run_is_complete(self):
        result = evaluate(TC, chain(10))
        assert result.status is EvaluationStatus.COMPLETE
        assert result.degradation is None
        assert not result.is_partial

    def test_max_facts_yields_sound_partial(self):
        full = evaluate(TC, chain(40)).database
        governor = ResourceGovernor(max_facts=50)
        result = evaluate(TC, chain(40), governor=governor)
        assert result.status is EvaluationStatus.PARTIAL
        assert result.degradation.limit == "max_facts"
        partial_atoms = set(result.database.atoms())
        assert partial_atoms < set(full.atoms())

    def test_max_rounds_reports_location(self):
        result = evaluate(
            TC, chain(30), governor=ResourceGovernor(max_rounds=3), engine="naive"
        )
        assert result.is_partial
        report = result.degradation
        assert report.limit == "max_rounds"
        assert report.engine == "naive"
        assert "max_rounds" in report.summary()

    def test_deadline_trips(self):
        governor = ResourceGovernor(deadline_s=0.0, check_stride=1)
        result = evaluate(TC, chain(60), governor=governor)
        assert result.is_partial
        assert result.degradation.limit == "deadline"

    def test_memory_cap_trips_at_round_boundary(self):
        governor = ResourceGovernor(max_memory_bytes=1)
        result = evaluate(TC, chain(20), governor=governor)
        assert result.is_partial
        assert result.degradation.limit == "max_memory"

    def test_on_limit_raise(self):
        governor = ResourceGovernor(max_facts=5)
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            evaluate(TC, chain(20), governor=governor, on_limit="raise")
        assert isinstance(excinfo.value.report, DegradationReport)

    def test_cancellation_token(self):
        token = CancellationToken()
        token.cancel()
        governor = ResourceGovernor(token=token, check_stride=1)
        result = evaluate(TC, chain(10), governor=governor)
        assert result.is_partial
        assert result.degradation.limit == "cancelled"

    def test_reset_clears_counters(self):
        governor = ResourceGovernor(max_facts=50)
        assert evaluate(TC, chain(40), governor=governor).is_partial
        governor.reset()
        complete = evaluate(TC, chain(4), governor=governor)
        assert complete.status is EvaluationStatus.COMPLETE


class TestGovernedQueryEngines:
    @pytest.mark.parametrize("method", ["magic", "supplementary", "topdown"])
    def test_partial_answers_are_subset(self, method):
        query = parse_atom("T(0, x)")
        spec = get_engine(method)
        full_answers, full = spec.answer(TC, chain(25), query)
        governor = ResourceGovernor(max_facts=20)
        answers, result = spec.answer(TC, chain(25), query, governor=governor)
        assert result.is_partial
        assert set(answers.atoms()) <= set(full_answers.atoms())

    def test_stratified_partial_is_subset(self):
        program = parse_program(
            """
            T(x, y) :- E(x, y).
            T(x, z) :- E(x, y), T(y, z).
            Iso(x) :- V(x), not Conn(x).
            Conn(x) :- T(x, y).
            """
        )
        edb = chain(20)
        for i in range(21):
            edb.add_fact("V", i)
        full = evaluate(program, edb, engine="stratified").database
        governed = evaluate(
            program,
            edb,
            engine="stratified",
            governor=ResourceGovernor(max_facts=30),
        )
        assert governed.is_partial
        assert set(governed.database.atoms()) <= set(full.atoms())


class TestIncrementalTransactionality:
    def test_build_under_tight_governor_raises(self):
        with pytest.raises(ResourceLimitExceeded):
            MaterializedView(TC, chain(20), governor=ResourceGovernor(max_facts=10))

    def test_insert_rolls_back_on_trip(self):
        view = MaterializedView(TC, chain(4), governor=ResourceGovernor(max_facts=500))
        before = set(view.database.atoms())
        view.governor.reset()
        view.governor.max_facts = 1
        with pytest.raises(ResourceLimitExceeded):
            view.insert_all([parse_atom('E(100, 101)'), parse_atom('E(101, 102)')])
        assert set(view.database.atoms()) == before


class TestFaultPlans:
    def test_invalid_operation_rejected(self):
        with pytest.raises(ValueError, match="unknown fault operation"):
            InjectedFault("explode", at=1)

    def test_positions_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            InjectedFault("add", at=0)

    def test_transient_fault_fires_once(self):
        plan = FaultPlan.transient_at("add", [2])
        db = plan.wrap(Database())
        db.add_fact("A", 1)
        with pytest.raises(TransientStorageError):
            db.add_fact("A", 2)
        db.add_fact("A", 2)  # consumed: same call count does not re-fire
        assert plan.injected == 1
        assert plan.pending == 0

    def test_persistent_fault_keeps_firing(self):
        plan = FaultPlan([InjectedFault("add", at=2, persistent=True)])
        db = plan.wrap(Database())
        db.add_fact("A", 1)
        for value in (2, 3):
            with pytest.raises(TransientStorageError):
                db.add_fact("A", value)

    def test_seeded_schedules_are_reproducible(self):
        a = FaultPlan.seeded(seed=11, faults_per_operation=4, horizon=100)
        b = FaultPlan.seeded(seed=11, faults_per_operation=4, horizon=100)
        c = FaultPlan.seeded(seed=12, faults_per_operation=4, horizon=100)
        assert a._onetime == b._onetime
        assert a._onetime != c._onetime

    def test_wrapped_copy_stays_faulty(self):
        plan = FaultPlan.transient_at("candidates", [1])
        copy = plan.wrap(chain(3)).copy()
        assert isinstance(copy, FaultyDatabase)
        with pytest.raises(TransientStorageError):
            list(copy.candidates("E", {}))

    def test_wrap_preserves_facts(self):
        db = chain(5)
        wrapped = FaultPlan().wrap(db)
        assert set(wrapped.atoms()) == set(db.atoms())


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy(max_retries=4, base_delay_s=0.5, seed=3)
        assert policy.delays() == policy.delays()

    def test_delays_grow_exponentially(self):
        delays = RetryPolicy(
            max_retries=3, base_delay_s=1.0, multiplier=2.0, jitter=0.0
        ).delays()
        assert delays == [1.0, 2.0, 4.0]

    def test_zero_base_never_sleeps(self):
        assert RetryPolicy(max_retries=5).delays() == [0.0] * 5


class TestEvaluationSession:
    def test_faultless_session_completes_first_attempt(self):
        result = EvaluationSession(TC, chain(6)).run()
        assert result.attempts == 1
        assert result.status is EvaluationStatus.COMPLETE
        assert result.database.count("T") == 21

    def test_transient_faults_are_retried_to_completion(self):
        clean = evaluate(TC, chain(10)).database
        plan = FaultPlan.transient_at("add", [5, 20])
        session = EvaluationSession(
            TC, chain(10), fault_plan=plan, retry_policy=RetryPolicy(max_retries=5)
        )
        result = session.run()
        assert result.status is EvaluationStatus.COMPLETE
        assert result.attempts == 3
        assert result.faults_seen == 2
        assert set(result.database.atoms()) == set(clean.atoms())

    def test_persistent_fault_exhausts_retries(self):
        plan = FaultPlan([InjectedFault("add", at=1, persistent=True)])
        session = EvaluationSession(
            TC, chain(5), fault_plan=plan, retry_policy=RetryPolicy(max_retries=2)
        )
        with pytest.raises(TransientStorageError):
            session.run()

    def test_query_session(self):
        result = EvaluationSession(
            TC,
            chain(8),
            engine="magic",
            query=parse_atom("T(0, x)"),
            fault_plan=FaultPlan.transient_at("candidates", [3]),
            retry_policy=RetryPolicy(max_retries=3),
        ).run()
        assert result.status is EvaluationStatus.COMPLETE
        assert len(result.database) == 8

    def test_session_on_limit_raise(self):
        session = EvaluationSession(
            TC, chain(30), governor=ResourceGovernor(max_facts=10), on_limit="raise"
        )
        with pytest.raises(ResourceLimitExceeded):
            session.run()

    def test_session_rejects_maintenance_engines(self):
        with pytest.raises(ValueError, match="maintenance"):
            EvaluationSession(TC, chain(3), engine="incremental").run()

    def test_session_requires_query_for_query_engines(self):
        with pytest.raises(ValueError, match="query atom"):
            EvaluationSession(TC, chain(3), engine="topdown").run()


class TestGovernedOptimizers:
    def test_minimize_degrades_but_stays_equivalent(self):
        from repro.core.containment import uniformly_equivalent
        from repro.core.minimize import minimize_program

        program = parse_program(
            "P(x, y) :- E(x, y), E(x, z), E(x, w).\n"
            "Q(x, y) :- E(x, y), E(y, z), E(y, w).\n"
        )
        governor = ResourceGovernor(deadline_s=0.0, check_stride=1)
        result = minimize_program(program, governor=governor)
        assert result.degradation is not None
        assert uniformly_equivalent(program, result.program)

    def test_containment_refuses_to_degrade(self):
        from repro.core.containment import uniformly_contains

        governor = ResourceGovernor(deadline_s=0.0, check_stride=1)
        with pytest.raises(ResourceLimitExceeded):
            uniformly_contains(TC, TC, governor=governor)
