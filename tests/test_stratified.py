"""Unit tests for stratified negation."""

from __future__ import annotations

import pytest

from repro import Database, evaluate, evaluate_stratified, parse_program
from repro.engine.stratified import stratify
from repro.errors import StratificationError
from repro.lang import Atom


class TestStratify:
    def test_positive_program_single_stratum(self, tc):
        strata = stratify(tc)
        assert strata.depth == 1
        assert strata.stratum_of["G"] == 0

    def test_negation_pushes_up(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            Un(x) :- Node(x), not R(x, x).
            """
        )
        strata = stratify(program)
        assert strata.stratum_of["R"] == 0
        assert strata.stratum_of["Un"] == 1
        assert strata.depth == 2

    def test_three_levels(self):
        program = parse_program(
            """
            P(x) :- A(x).
            Q(x) :- A(x), not P(x).
            S(x) :- A(x), not Q(x).
            """
        )
        strata = stratify(program)
        assert strata.stratum_of == {"P": 0, "Q": 1, "S": 2}

    def test_negative_cycle_rejected(self):
        program = parse_program(
            """
            P(x) :- A(x), not Q(x).
            Q(x) :- A(x), not P(x).
            """
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_negation_into_recursion_rejected(self):
        program = parse_program(
            """
            P(x) :- A(x, y), P(y), not P(x).
            """
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_empty_program(self):
        strata = stratify(parse_program(""))
        assert strata.depth == 0


class TestEvaluateStratified:
    def test_matches_positive_engine_on_positive_program(self, tc, ex2_edb):
        stratified = evaluate_stratified(tc, ex2_edb).database
        positive = evaluate(tc, ex2_edb).database
        assert stratified == positive

    def test_unreachable_pairs(self):
        program = parse_program(
            """
            R(x, y) :- E(x, y).
            R(x, y) :- E(x, z), R(z, y).
            Unreach(x, y) :- Node(x), Node(y), not R(x, y).
            """
        )
        db = Database.from_facts(
            {"E": [(1, 2), (2, 3)], "Node": [(1,), (2,), (3,)]}
        )
        out = evaluate_stratified(program, db).database
        assert out.count("R") == 3
        assert out.count("Unreach") == 6
        assert Atom.of("Unreach", 3, 1) in out
        assert Atom.of("Unreach", 1, 3) not in out

    def test_complement_via_negation(self):
        program = parse_program(
            """
            Big(x) :- Item(x, y), Threshold(y).
            Small(x) :- Name(x), not Big(x).
            """
        )
        db = Database.from_facts(
            {
                "Item": [("a", 10), ("b", 1)],
                "Threshold": [(10,)],
                "Name": [("a",), ("b",), ("c",)],
            }
        )
        out = evaluate_stratified(program, db).database
        expected = Database.from_facts({"Small": [("b",), ("c",)]})
        assert out.tuples("Small") == expected.tuples("Small")

    def test_recursion_above_negation(self):
        # Compute nodes not in the EDB relation Blocked, then closure
        # over them only.
        program = parse_program(
            """
            Ok(x) :- Node(x), not Blocked(x).
            R(x, y) :- E(x, y), Ok(x), Ok(y).
            R(x, y) :- R(x, z), R(z, y).
            """
        )
        db = Database.from_facts(
            {
                "E": [(1, 2), (2, 3), (3, 4)],
                "Node": [(1,), (2,), (3,), (4,)],
                "Blocked": [(3,)],
            }
        )
        out = evaluate_stratified(program, db).database
        assert Atom.of("R", 1, 3) not in out
        assert Atom.of("R", 1, 2) in out

    def test_input_not_mutated(self):
        program = parse_program("P(x) :- A(x), not B(x).")
        db = Database.from_facts({"A": [(1,)], "B": []})
        before = len(db)
        evaluate_stratified(program, db)
        assert len(db) == before
