"""Unit tests for the conjunctive-query baseline (Chandra-Merlin,
Sagiv-Yannakakis)."""

from __future__ import annotations

import pytest

from repro import parse_program, parse_rule
from repro.core.cq import (
    cq_contained_in,
    cq_equivalent,
    find_homomorphism,
    initialization_programs_equivalent,
    minimize_cq,
    nonrecursive_equivalent,
    ucq_contained_in,
    ucq_equivalent,
)
from repro.errors import ValidationError


class TestHomomorphism:
    def test_identity(self):
        q = parse_rule("Q(x, y) :- A(x, y).")
        assert find_homomorphism(q, q) is not None

    def test_folding_homomorphism(self):
        # The 2-path query maps onto the 1-loop query by y -> x.
        loop = parse_rule("Q(x) :- A(x, x).")
        path = parse_rule("Q(x) :- A(x, y), A(y, x).")
        assert find_homomorphism(path, loop) is not None
        assert find_homomorphism(loop, path) is None

    def test_witness_maps_head(self):
        q1 = parse_rule("Q(x) :- A(x, y).")
        q2 = parse_rule("Q(u) :- A(u, v), A(u, w).")
        hom = find_homomorphism(q2, q1)
        assert hom is not None


class TestContainment:
    def test_more_atoms_contained_in_fewer(self):
        q_small = parse_rule("Q(x) :- A(x, y).")
        q_big = parse_rule("Q(x) :- A(x, y), A(x, z).")
        assert cq_contained_in(q_big, q_small)
        assert cq_contained_in(q_small, q_big)  # z weakened copy folds away

    def test_genuinely_stricter_query(self):
        q_any = parse_rule("Q(x) :- A(x, y).")
        q_loop = parse_rule("Q(x) :- A(x, x).")
        assert cq_contained_in(q_loop, q_any)
        assert not cq_contained_in(q_any, q_loop)

    def test_constants(self):
        q_any = parse_rule("Q(x) :- A(x, y).")
        q_three = parse_rule("Q(x) :- A(x, 3).")
        assert cq_contained_in(q_three, q_any)
        assert not cq_contained_in(q_any, q_three)

    def test_incomparable_predicates_raise(self):
        q1 = parse_rule("Q(x) :- A(x).")
        q2 = parse_rule("R(x) :- A(x).")
        with pytest.raises(ValidationError):
            cq_contained_in(q1, q2)

    def test_negation_rejected(self):
        q1 = parse_rule("Q(x) :- A(x), not B(x).")
        q2 = parse_rule("Q(x) :- A(x).")
        with pytest.raises(ValidationError):
            cq_contained_in(q1, q2)

    def test_equivalence(self):
        q1 = parse_rule("Q(x, z) :- A(x, y), A(y, z).")
        q2 = parse_rule("Q(u, w) :- A(u, v), A(v, w).")
        assert cq_equivalent(q1, q2)


class TestMinimizeCq:
    def test_classic_core(self):
        query = parse_rule("Q(x) :- A(x, y), A(x, z), A(z, w).")
        core = minimize_cq(query)
        # A(x,y) folds into A(x,z); the chain A(x,z), A(z,w) remains.
        assert len(core.body) == 2
        assert cq_equivalent(query, core)

    def test_minimal_query_fixed(self):
        query = parse_rule("Q(x) :- A(x, x).")
        assert minimize_cq(query) == query


class TestUnions:
    def test_member_containment(self):
        q1 = parse_rule("Q(x) :- A(x, 1).")
        q2 = parse_rule("Q(x) :- A(x, 2).")
        q_any = parse_rule("Q(x) :- A(x, y).")
        assert ucq_contained_in([q1, q2], [q_any])
        assert not ucq_contained_in([q_any], [q1, q2])

    def test_empty_unions(self):
        q = parse_rule("Q(x) :- A(x).")
        assert ucq_contained_in([], [q])
        assert not ucq_contained_in([q], [])
        assert ucq_contained_in([], [])

    def test_union_equivalence(self):
        q1 = parse_rule("Q(x) :- A(x, y).")
        q2 = parse_rule("Q(x) :- A(x, y), A(x, z).")
        assert ucq_equivalent([q1], [q2, q1])


class TestInitializationPrograms:
    def test_example_condition3(self):
        # Two programs with semantically equal (but syntactically
        # different) initialization rules.
        p1 = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- G(x, y), G(y, z).
            """
        )
        p2 = parse_program(
            """
            G(u, v) :- A(u, v).
            G(x, z) :- A(x, y), G(y, z).
            """
        )
        assert initialization_programs_equivalent(p1, p2)

    def test_redundant_union_member(self):
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, z), A(x, w).
            """
        )
        assert initialization_programs_equivalent(p1, p2)

    def test_different_initializations(self):
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(x, z) :- B(x, z).")
        assert not initialization_programs_equivalent(p1, p2)


class TestNonrecursiveEquivalence:
    def test_initialization_style_accepted(self):
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program(
            """
            G(x, z) :- A(x, z).
            G(x, z) :- A(x, z), A(x, w).
            """
        )
        assert nonrecursive_equivalent(p1, p2)

    def test_layered_programs_rejected(self):
        # B reads G: equivalence != uniform equivalence here, so the
        # function must refuse rather than silently answer the wrong
        # question.
        p = parse_program(
            """
            G(x) :- A(x).
            B(x) :- G(x).
            """
        )
        with pytest.raises(ValidationError):
            nonrecursive_equivalent(p, p)
