"""Unit tests for the Section X containment/equivalence recipe."""

from __future__ import annotations

import pytest

from repro import paper, parse_program, parse_tgd
from repro.core.chase import ChaseBudget, Verdict
from repro.core.equivalence import (
    prove_containment_with_constraints,
    prove_equivalence_with_constraints,
)


class TestExample18:
    def test_full_proof(self):
        proof = prove_equivalence_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        assert proof.verdict is Verdict.PROVED

    def test_all_three_conditions_recorded(self):
        proof = prove_containment_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        assert proof.model_containment.verdict is Verdict.PROVED
        assert proof.preservation is not None
        assert proof.preservation.verdict is Verdict.PROVED
        assert proof.preliminary is not None
        assert proof.preliminary.verdict is Verdict.PROVED

    def test_explain_mentions_conditions(self):
        proof = prove_equivalence_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        text = proof.explain()
        assert "SAT(T)" in text
        assert "(3')" in text
        assert "P1 ≡ P2: proved" in text


class TestExample19:
    def test_full_proof(self):
        proof = prove_equivalence_with_constraints(
            paper.EX19_P1, paper.EX19_P2, [paper.EX16_TGD]
        )
        assert proof.verdict is Verdict.PROVED


class TestSoundnessGuards:
    def test_wrong_tgd_gives_unknown(self):
        # A tgd that the program does not preserve cannot complete the
        # proof; the verdict must stay UNKNOWN (never a false PROVED).
        bad_tgd = parse_tgd("G(x, z) -> C(z)")
        proof = prove_containment_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [bad_tgd]
        )
        assert proof.verdict is Verdict.UNKNOWN

    def test_no_tgds_reduces_to_uniform(self, tc, tc_linear):
        # With T = {} the recipe can still prove containment when
        # uniform containment already holds.
        proof = prove_containment_with_constraints(tc, tc_linear, [])
        assert proof.verdict is Verdict.PROVED

    def test_skips_later_conditions_after_failure(self):
        bad_tgd = parse_tgd("G(x, z) -> Z(x)")
        proof = prove_containment_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [bad_tgd]
        )
        if proof.model_containment.verdict is not Verdict.PROVED:
            assert proof.preservation is None
            assert proof.preliminary is None

    def test_reverse_direction_checked_not_assumed(self):
        # P2 is NOT a sub-body of P1 here: reverse uniform containment
        # fails and the equivalence verdict must not be PROVED.
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(x, z) :- B(x, z).")
        proof = prove_equivalence_with_constraints(p1, p2, [])
        assert proof.verdict is Verdict.UNKNOWN
        assert not proof.reverse_uniform.holds

    def test_bool_protocol(self):
        proof = prove_equivalence_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        assert bool(proof)

    def test_budget_propagates(self):
        # Tiny budget: the chase cannot finish, verdict stays UNKNOWN
        # rather than wrong.
        proof = prove_containment_with_constraints(
            paper.EX11_P1,
            paper.EX11_P2,
            [paper.EX11_TGD],
            budget=ChaseBudget(max_rounds=1, max_nulls=1, max_atoms=3),
        )
        assert proof.verdict in (Verdict.UNKNOWN, Verdict.PROVED)


class TestPreservationNecessity:
    def test_model_containment_alone_insufficient(self):
        """A case where SAT(T) ∩ M(P1) ⊆ M(P2) holds but P1 does not
        preserve T -- the recipe must not conclude containment."""
        # P1 derives H facts without marks; the tgd demands marks.
        p1 = parse_program("H(x, y) :- A(x, y).")
        # P2 additionally copies B into H.
        p2 = parse_program(
            """
            H(x, y) :- A(x, y).
            H(x, y) :- B(x, y), Mark(y).
            """
        )
        tgd = parse_tgd("B(x, y) -> A(x, y)")
        proof = prove_containment_with_constraints(p2, p1, [tgd])
        # Whatever the sub-verdicts, soundness demands: PROVED only if
        # all three conditions are.
        if proof.verdict is Verdict.PROVED:
            assert proof.model_containment.verdict is Verdict.PROVED
            assert proof.preservation.verdict is Verdict.PROVED
            assert proof.preliminary.verdict is Verdict.PROVED
