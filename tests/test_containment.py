"""Unit tests for uniform containment (Section VI) -- Examples 4-7."""

from __future__ import annotations

import pytest

from repro import paper, parse_program, parse_rule
from repro.core.containment import (
    canonical_database,
    check_rule_containment,
    check_uniform_containment,
    rule_uniformly_contained_in,
    uniformly_contains,
    uniformly_equivalent,
)
from repro.lang import Program
from repro.lang.terms import FrozenConstant


class TestPaperExamples:
    def test_example4_linear_contained_in_nonlinear(self):
        assert uniformly_contains(
            container=paper.TC_NONLINEAR, contained=paper.TC_LINEAR
        )

    def test_example4_nonlinear_not_contained_in_linear(self):
        # The rule G(x,z) :- G(x,y), G(y,z) is not uniformly contained in
        # the linear program (Example 6 second half).
        assert not uniformly_contains(
            container=paper.TC_LINEAR, contained=paper.TC_NONLINEAR
        )

    def test_example4_not_uniformly_equivalent(self):
        assert not uniformly_equivalent(paper.TC_NONLINEAR, paper.TC_LINEAR)

    def test_example5(self):
        # Every rule of P1 is a rule of P2, so P1 ⊑u P2.
        assert uniformly_contains(container=paper.EX5_P2, contained=paper.TC_NONLINEAR)

    def test_example6_failing_rule_identified(self):
        report = check_uniform_containment(
            container=paper.TC_LINEAR, contained=paper.TC_NONLINEAR
        )
        assert not report.holds
        assert [str(r) for r in report.failing_rules] == [
            "G(x, z) :- G(x, y), G(y, z)."
        ]

    def test_example7_both_directions(self):
        # The subset body gives P1 ⊑u P2 trivially; the chase shows P2 ⊑u P1.
        assert uniformly_contains(container=paper.EX7_P2, contained=paper.EX7_P1)
        assert uniformly_contains(container=paper.EX7_P1, contained=paper.EX7_P2)
        assert uniformly_equivalent(paper.EX7_P1, paper.EX7_P2)


class TestAlgebraicProperties:
    def test_reflexive(self, tc):
        assert uniformly_contains(tc, tc)

    def test_rule_in_own_program(self, tc):
        for rule in tc.rules:
            assert rule_uniformly_contained_in(rule, tc)

    def test_subset_of_rules_is_contained(self, tc):
        smaller = Program.of(tc.rules[0])
        assert uniformly_contains(container=tc, contained=smaller)

    def test_transitive(self):
        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(x, z) :- A(x, z). G(x, z) :- G(x, y), G(y, z).")
        p3 = p2.with_rule(parse_rule("H(x) :- G(x, x)."))
        assert uniformly_contains(p2, p1)
        assert uniformly_contains(p3, p2)
        assert uniformly_contains(p3, p1)

    def test_empty_program_contained_in_all(self, tc):
        assert uniformly_contains(container=tc, contained=Program())

    def test_nontrivial_rule_not_contained_in_empty(self):
        rule = parse_rule("G(x, z) :- A(x, z).")
        assert not rule_uniformly_contained_in(rule, Program())

    def test_trivial_rule_contained_in_empty(self):
        rule = parse_rule("G(x, z) :- G(x, z).")
        assert rule_uniformly_contained_in(rule, Program())


class TestWitnesses:
    def test_positive_witness(self, tc):
        rule = parse_rule("G(x, z) :- A(x, y), A(y, z).")
        witness = check_rule_containment(rule, tc)
        assert witness.holds
        assert witness.frozen_head in witness.canonical_output

    def test_negative_witness_is_countermodel(self, tc_linear):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z).")
        witness = check_rule_containment(rule, tc_linear)
        assert not witness.holds
        # The canonical output is a model of the linear program that is
        # not a model of the rule -- the paper's countermodel argument.
        assert witness.frozen_head not in witness.canonical_output

    def test_str_rendering(self, tc):
        witness = check_rule_containment(parse_rule("G(x, z) :- A(x, z)."), tc)
        assert "⊑u holds" in str(witness)

    def test_report_collects_all_failures(self):
        container = parse_program("G(x, z) :- A(x, z).")
        contained = parse_program(
            """
            G(x, z) :- B(x, z).
            G(x, z) :- C(x, z).
            """
        )
        report = check_uniform_containment(container, contained)
        assert len(report.failing_rules) == 2

    def test_canonical_database(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z).")
        db = canonical_database(rule)
        assert len(db) == 2
        assert db.count("G") == 2
        assert all(isinstance(t, FrozenConstant) for row in db.tuples("G") for t in row)


class TestConstantsInRules:
    def test_constants_preserved_in_test(self):
        # Head constants must be derivable exactly.
        container = parse_program("G(x, 3) :- A(x).")
        contained = parse_program("G(x, 3) :- A(x), B(x).")
        assert uniformly_contains(container, contained)
        assert not uniformly_contains(contained, container)

    def test_different_constants_not_contained(self):
        p3 = parse_program("G(x, 3) :- A(x).")
        p4 = parse_program("G(x, 4) :- A(x).")
        assert not uniformly_contains(p3, p4)

    def test_engine_parameter(self, tc):
        assert uniformly_contains(tc, paper.TC_LINEAR, engine="naive")
