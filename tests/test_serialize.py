"""Unit tests for the JSON serialization layer."""

from __future__ import annotations

import json

import pytest

from repro import Database, parse_program, parse_rule
from repro.errors import ValidationError
from repro.lang.serialize import (
    atom_from_dict,
    atom_to_dict,
    database_from_json,
    database_to_json,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
    rule_from_dict,
    rule_to_dict,
    term_from_dict,
    term_to_dict,
)
from repro.lang.terms import Constant, FrozenConstant, Null, Variable


class TestTerms:
    @pytest.mark.parametrize(
        "term",
        [Variable("x"), Constant(3), Constant("alice"), Null(7), FrozenConstant("y", 2)],
    )
    def test_roundtrip(self, term):
        assert term_from_dict(term_to_dict(term)) == term

    def test_int_str_distinction_survives(self):
        assert term_from_dict(term_to_dict(Constant(1))) == Constant(1)
        assert term_from_dict(term_to_dict(Constant("1"))) == Constant("1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            term_from_dict({"weird": 1})

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            term_from_dict({"var": "x", "int": 1})


class TestRulesAndPrograms:
    def test_rule_roundtrip(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w).")
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_negated_literal_roundtrip(self):
        rule = parse_rule("P(x) :- A(x), not B(x).")
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_fact_roundtrip(self):
        rule = parse_rule("A(1, 'two').")
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_program_roundtrip(self, tc):
        assert program_from_json(program_to_json(tc)) == tc

    def test_program_json_is_valid_json(self, tc):
        data = json.loads(program_to_json(tc, indent=2))
        assert data["format"] == 1
        assert len(data["rules"]) == 2

    def test_missing_head_rejected(self):
        with pytest.raises((ValidationError, KeyError)):
            rule_from_dict({"body": []})

    def test_wrong_format_version(self, tc):
        data = program_to_dict(tc)
        data["format"] = 99
        with pytest.raises(ValidationError):
            program_from_dict(data)

    def test_atom_missing_key(self):
        with pytest.raises(ValidationError):
            atom_from_dict({"pred": "A"})

    def test_atom_roundtrip(self):
        from repro.lang import parse_atom

        atom = parse_atom("Q(x, 3, 'z')")
        assert atom_from_dict(atom_to_dict(atom)) == atom


class TestDatabases:
    def test_roundtrip(self):
        db = Database.from_facts({"A": [(1, 2), (3, "x")], "B": [(5,)]})
        assert database_from_json(database_to_json(db)) == db

    def test_nulls_roundtrip(self):
        from repro.lang import Atom

        db = Database()
        db.add(Atom("A", (Constant(1), Null(3))))
        assert database_from_json(database_to_json(db)) == db

    def test_deterministic_output(self):
        db = Database.from_facts({"B": [(2,), (1,)], "A": [(9, 9)]})
        assert database_to_json(db) == database_to_json(db.copy())

    def test_empty_database(self):
        assert database_from_json(database_to_json(Database())) == Database()

    def test_evaluation_through_serialization(self, tc, ex2_edb):
        from repro import evaluate

        wire_program = program_from_json(program_to_json(tc))
        wire_db = database_from_json(database_to_json(ex2_edb))
        assert (
            evaluate(wire_program, wire_db).database
            == evaluate(tc, ex2_edb).database
        )


class TestColumnarDatabases:
    """Database format 2: the backend tag and the columnar symbol remap."""

    def columnar(self, facts) -> Database:
        db = Database(backend="columnar")
        for pred, rows in facts.items():
            for row in rows:
                db.add_fact(pred, *row)
        return db

    def test_backend_tag_round_trips(self):
        db = self.columnar({"A": [(1, "x"), (2, "y")], "B": [("z",)]})
        wire = database_from_json(database_to_json(db))
        assert wire.backend == "columnar"
        assert wire == db

    def test_document_shape(self):
        db = self.columnar({"A": [(1, "x")]})
        data = json.loads(database_to_json(db))
        assert data["format"] == 2
        assert data["backend"] == "columnar"
        # Rows are indexes into the local symbol list, not term objects.
        assert all(isinstance(i, int) for row in data["facts"]["A"] for i in row)
        assert len(data["symbols"]) == 2

    def test_rows_document_tags_backend_too(self):
        data = json.loads(database_to_json(Database.from_facts({"A": [(1,)]})))
        assert data["format"] == 2
        assert data["backend"] == "rows"
        assert "symbols" not in data

    def test_document_independent_of_intern_order(self):
        """Two equal databases interned in different global orders must
        serialize identically (local ids are assigned in row order)."""
        first = self.columnar({"A": [("p", "q"), ("r", "s")]})
        second = Database(backend="columnar")
        second.add_fact("A", "r", "s")  # reversed insertion order
        second.add_fact("A", "p", "q")
        assert database_to_json(first) == database_to_json(second)

    def test_differential_rows_vs_columnar(self, tc, ex2_edb):
        """The two backends' documents decode to the same atom set, and
        evaluation through either wire form agrees."""
        from repro import evaluate

        columnar_edb = Database(backend="columnar")
        for atom in ex2_edb.atoms():
            columnar_edb.add(atom)
        rows_wire = database_from_json(database_to_json(ex2_edb))
        columnar_wire = database_from_json(database_to_json(columnar_edb))
        assert rows_wire.as_atom_set() == columnar_wire.as_atom_set()
        assert (
            evaluate(tc, columnar_wire).database.as_atom_set()
            == evaluate(tc, rows_wire).database.as_atom_set()
        )

    def test_fixpoint_round_trips_on_columnar(self, tc, ex2_edb):
        from repro import evaluate

        columnar_edb = Database(backend="columnar")
        for atom in ex2_edb.atoms():
            columnar_edb.add(atom)
        result = evaluate(tc, columnar_edb).database
        wire = database_from_json(database_to_json(result))
        assert wire.backend == "columnar"
        assert wire == result

    def test_nulls_and_ints_round_trip_columnar(self):
        from repro.lang import Atom

        db = Database(backend="columnar")
        db.add(Atom("A", (Constant(1), Null(3))))
        db.add(Atom("A", (Constant("1"), Constant(2))))
        wire = database_from_json(database_to_json(db))
        assert wire.as_atom_set() == db.as_atom_set()

    def test_legacy_format1_document_still_reads(self):
        db = Database.from_facts({"A": [(1, 2)]})
        data = json.loads(database_to_json(db))
        legacy = {"format": 1, "facts": data["facts"]}
        wire = database_from_json(json.dumps(legacy))
        assert wire.backend == "rows"
        assert wire == db

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            database_from_json(
                json.dumps({"format": 2, "backend": "quantum", "facts": {}})
            )

    def test_bad_symbol_index_rejected(self):
        document = {
            "format": 2,
            "backend": "columnar",
            "symbols": [{"int": 1}],
            "facts": {"A": [[0, 5]]},
        }
        with pytest.raises(ValidationError):
            database_from_json(json.dumps(document))
