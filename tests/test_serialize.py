"""Unit tests for the JSON serialization layer."""

from __future__ import annotations

import json

import pytest

from repro import Database, parse_program, parse_rule
from repro.errors import ValidationError
from repro.lang.serialize import (
    atom_from_dict,
    atom_to_dict,
    database_from_json,
    database_to_json,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
    rule_from_dict,
    rule_to_dict,
    term_from_dict,
    term_to_dict,
)
from repro.lang.terms import Constant, FrozenConstant, Null, Variable


class TestTerms:
    @pytest.mark.parametrize(
        "term",
        [Variable("x"), Constant(3), Constant("alice"), Null(7), FrozenConstant("y", 2)],
    )
    def test_roundtrip(self, term):
        assert term_from_dict(term_to_dict(term)) == term

    def test_int_str_distinction_survives(self):
        assert term_from_dict(term_to_dict(Constant(1))) == Constant(1)
        assert term_from_dict(term_to_dict(Constant("1"))) == Constant("1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            term_from_dict({"weird": 1})

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            term_from_dict({"var": "x", "int": 1})


class TestRulesAndPrograms:
    def test_rule_roundtrip(self):
        rule = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w).")
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_negated_literal_roundtrip(self):
        rule = parse_rule("P(x) :- A(x), not B(x).")
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_fact_roundtrip(self):
        rule = parse_rule("A(1, 'two').")
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_program_roundtrip(self, tc):
        assert program_from_json(program_to_json(tc)) == tc

    def test_program_json_is_valid_json(self, tc):
        data = json.loads(program_to_json(tc, indent=2))
        assert data["format"] == 1
        assert len(data["rules"]) == 2

    def test_missing_head_rejected(self):
        with pytest.raises((ValidationError, KeyError)):
            rule_from_dict({"body": []})

    def test_wrong_format_version(self, tc):
        data = program_to_dict(tc)
        data["format"] = 99
        with pytest.raises(ValidationError):
            program_from_dict(data)

    def test_atom_missing_key(self):
        with pytest.raises(ValidationError):
            atom_from_dict({"pred": "A"})

    def test_atom_roundtrip(self):
        from repro.lang import parse_atom

        atom = parse_atom("Q(x, 3, 'z')")
        assert atom_from_dict(atom_to_dict(atom)) == atom


class TestDatabases:
    def test_roundtrip(self):
        db = Database.from_facts({"A": [(1, 2), (3, "x")], "B": [(5,)]})
        assert database_from_json(database_to_json(db)) == db

    def test_nulls_roundtrip(self):
        from repro.lang import Atom

        db = Database()
        db.add(Atom("A", (Constant(1), Null(3))))
        assert database_from_json(database_to_json(db)) == db

    def test_deterministic_output(self):
        db = Database.from_facts({"B": [(2,), (1,)], "A": [(9, 9)]})
        assert database_to_json(db) == database_to_json(db.copy())

    def test_empty_database(self):
        assert database_from_json(database_to_json(Database())) == Database()

    def test_evaluation_through_serialization(self, tc, ex2_edb):
        from repro import evaluate

        wire_program = program_from_json(program_to_json(tc))
        wire_db = database_from_json(database_to_json(ex2_edb))
        assert (
            evaluate(wire_program, wire_db).database
            == evaluate(tc, ex2_edb).database
        )
