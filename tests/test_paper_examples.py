"""The paper's evaluation, end to end: every worked example (E01-E19).

This file is the single-source reproduction of the paper's "results":
each test matches one numbered example and asserts exactly the outcome
the paper derives by hand.  The benchmark harness times the same
artifacts; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import pytest

from repro import (
    apply_once,
    check_model_containment,
    evaluate,
    minimize_program,
    optimize,
    preserves_nonrecursively,
    prove_equivalence_with_constraints,
    uniformly_contains,
    uniformly_equivalent,
)
from repro import paper
from repro.core.chase import Verdict
from repro.core.minimize import minimize_rule
from repro.core.preservation import preliminary_db_satisfies
from repro.lang import Program
from repro.paper import single_rule_program


class TestSectionII_III:
    def test_e01_tc_program_shape(self):
        assert len(paper.TC_NONLINEAR) == 2
        assert paper.TC_NONLINEAR.edb_predicates == {"A"}
        assert paper.TC_NONLINEAR.idb_predicates == {"G"}

    def test_e01_computes_transitive_closure(self):
        from repro.workloads import chain

        out = evaluate(paper.TC_NONLINEAR, chain(5)).database
        assert out.count("G") == 15  # closure of a 5-edge path

    def test_e02_output_verbatim(self):
        out = evaluate(paper.TC_NONLINEAR, paper.EX2_EDB).database
        assert out == paper.EX2_OUTPUT

    def test_e03_idb_input(self):
        out = evaluate(paper.TC_NONLINEAR, paper.EX3_INPUT).database
        assert out == paper.EX3_OUTPUT


class TestSectionIV:
    def test_e04_uniform_containment_one_way(self):
        assert uniformly_contains(paper.TC_NONLINEAR, paper.TC_LINEAR)
        assert not uniformly_contains(paper.TC_LINEAR, paper.TC_NONLINEAR)

    def test_e04_plain_equivalence_on_edbs(self):
        # Both compute the transitive closure on EDB-only inputs.
        from repro.workloads import random_graph

        edb = random_graph(8, 16, seed=4)
        assert (
            evaluate(paper.TC_NONLINEAR, edb).database
            == evaluate(paper.TC_LINEAR, edb).database
        )

    def test_e05_added_rule_gives_containment(self):
        assert uniformly_contains(paper.EX5_P2, paper.TC_NONLINEAR)


class TestSectionVI:
    def test_e06_rule_by_rule(self):
        from repro.core.containment import check_rule_containment

        r1, r2 = paper.TC_LINEAR.rules
        assert check_rule_containment(r1, paper.TC_NONLINEAR).holds
        assert check_rule_containment(r2, paper.TC_NONLINEAR).holds
        s = paper.TC_NONLINEAR.rules[1]
        assert not check_rule_containment(s, paper.TC_LINEAR).holds

    def test_e07_chase_shows_redundancy(self):
        assert uniformly_contains(paper.EX7_P1, paper.EX7_P2)
        assert uniformly_equivalent(paper.EX7_P1, paper.EX7_P2)


class TestSectionVII:
    def test_e08_fig1_minimizes(self):
        assert minimize_rule(paper.EX7_P1.rules[0]) == paper.EX7_P2.rules[0]

    def test_e08_result_is_minimal(self):
        from repro.core.minimize import is_minimal

        assert is_minimal(paper.EX7_P2)

    def test_fig2_on_example7(self):
        assert minimize_program(paper.EX7_P1).program == paper.EX7_P2


class TestSectionVIII:
    def test_e09_tgd_satisfaction(self):
        assert not paper.EX9_TGD_VIOLATED.is_satisfied_by(paper.EX2_OUTPUT)
        assert paper.EX9_TGD_SATISFIED.is_satisfied_by(paper.EX2_OUTPUT)

    def test_e10_full_tgd_as_rules(self):
        assert set(paper.EX10_TGD.as_rules()) == set(paper.EX10_RULES)

    def test_e11_model_containment(self):
        report = check_model_containment(
            paper.EX11_P1, [paper.EX11_TGD], paper.EX11_P2
        )
        assert report.verdict is Verdict.PROVED

    def test_e11_needs_the_tgd(self):
        report = check_model_containment(paper.EX11_P1, [], paper.EX11_P2)
        assert report.verdict is Verdict.DISPROVED


class TestSectionIX:
    def test_e12_pn_vs_p(self):
        assert apply_once(paper.TC_NONLINEAR, paper.EX12_INPUT) == set(paper.EX12_PN)
        assert (
            evaluate(paper.TC_NONLINEAR, paper.EX12_INPUT).database
            == paper.EX12_OUTPUT
        )

    def test_e13_single_rule_preserves(self):
        report = preserves_nonrecursively(
            single_rule_program(paper.EX13_RULE), [paper.EX11_TGD]
        )
        assert report.verdict is Verdict.PROVED

    def test_e14_program_preserves(self):
        report = preserves_nonrecursively(paper.EX11_P1, [paper.EX11_TGD])
        assert report.verdict is Verdict.PROVED
        assert report.combinations_examined == 3

    def test_e15_four_combinations(self):
        report = preserves_nonrecursively(
            single_rule_program(paper.EX13_RULE), [paper.EX15_TGD]
        )
        assert report.verdict is Verdict.PROVED
        assert report.combinations_examined == 4

    def test_e16_preserves(self):
        report = preserves_nonrecursively(
            single_rule_program(paper.EX16_RULE), [paper.EX16_TGD]
        )
        assert report.verdict is Verdict.PROVED


class TestSectionX:
    def test_e17_preliminary_db(self):
        init = paper.TC_NONLINEAR.initialization_program()
        assert apply_once(init, paper.EX17_EDB) == set(paper.EX17_PI)

    def test_e18_three_conditions(self):
        from repro.core.equivalence import prove_containment_with_constraints

        proof = prove_containment_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        assert proof.verdict is Verdict.PROVED

    def test_e18_full_equivalence(self):
        proof = prove_equivalence_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        assert proof.verdict is Verdict.PROVED

    def test_e18_not_uniformly_equivalent(self):
        # The paper stresses A(y, w) is redundant under equivalence but
        # NOT under uniform equivalence.
        assert not uniformly_equivalent(paper.EX11_P1, paper.EX11_P2)

    def test_e18_condition_3prime(self):
        report = preliminary_db_satisfies(paper.EX11_P1, [paper.EX11_TGD])
        assert report.verdict is Verdict.PROVED


class TestSectionXI:
    def test_e19_optimizer_end_to_end(self):
        report = optimize(paper.EX19_P1)
        assert report.optimized == paper.EX19_P2

    def test_e19_equivalent_on_data(self):
        from repro.workloads import chain, merged, unary_marks

        edb = merged(chain(5), unary_marks(range(6)))
        assert (
            evaluate(paper.EX19_P1, edb).database
            == evaluate(paper.EX19_P2, edb).database
        )

    def test_e19_not_uniformly_equivalent(self):
        assert not uniformly_equivalent(paper.EX19_P1, paper.EX19_P2)


class TestRegistry:
    def test_all_examples_present(self):
        assert set(paper.EXAMPLES) == {f"E{i:02d}" for i in range(1, 20)}

    def test_registry_artifacts_consistent(self):
        assert paper.EXAMPLES["E18"].artifacts["p1"] == paper.EX11_P1
        assert paper.EXAMPLES["E19"].artifacts["p2"] == paper.EX19_P2
