"""Unit tests for repro.lang.atoms."""

from __future__ import annotations

import pytest

from repro.errors import GroundnessError
from repro.lang.atoms import Atom, Literal, atoms_variables, coerce_term
from repro.lang.terms import Constant, Null, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestCoercion:
    def test_int_becomes_constant(self):
        assert coerce_term(3) == Constant(3)

    def test_str_becomes_constant(self):
        assert coerce_term("alice") == Constant("alice")

    def test_terms_pass_through(self):
        assert coerce_term(x) is x
        assert coerce_term(Null(1)) == Null(1)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce_term(3.14)


class TestAtom:
    def test_of_coerces(self):
        atom = Atom.of("A", 1, x)
        assert atom.args == (Constant(1), x)

    def test_arity(self):
        assert Atom.of("Q", 1, 2, 3).arity == 3
        assert Atom("P", ()).arity == 0

    def test_is_ground(self):
        assert Atom.of("A", 1, 2).is_ground
        assert not Atom.of("A", 1, x).is_ground

    def test_null_atoms_are_ground(self):
        assert Atom("A", (Constant(3), Null(1))).is_ground

    def test_variables_with_repeats(self):
        atom = Atom("A", (x, y, x))
        assert list(atom.variables()) == [x, y, x]
        assert atom.variable_set() == {x, y}

    def test_constants_iterator(self):
        atom = Atom.of("A", 1, x, "b")
        assert list(atom.constants()) == [Constant(1), Constant("b")]

    def test_substitute(self):
        atom = Atom("A", (x, y))
        assert atom.substitute({x: Constant(1)}) == Atom.of("A", 1, y)

    def test_substitute_leaves_constants(self):
        atom = Atom.of("A", 7, x)
        assert atom.substitute({x: y}) == Atom.of("A", 7, y)

    def test_require_ground_raises(self):
        with pytest.raises(GroundnessError):
            Atom("A", (x,)).require_ground()

    def test_require_ground_passes(self):
        atom = Atom.of("A", 1)
        assert atom.require_ground() is atom

    def test_equality_and_hash(self):
        assert Atom.of("A", 1, 2) == Atom.of("A", 1, 2)
        assert len({Atom.of("A", 1), Atom.of("A", 1), Atom.of("B", 1)}) == 2

    def test_str(self):
        assert str(Atom.of("G", x, 3, 10)) == "G(x, 3, 10)"

    def test_sort_key_orders_by_predicate_then_args(self):
        atoms = [Atom.of("B", 1), Atom.of("A", 2), Atom.of("A", 1)]
        ordered = sorted(atoms, key=lambda a: a.sort_key())
        assert ordered == [Atom.of("A", 1), Atom.of("A", 2), Atom.of("B", 1)]


class TestLiteral:
    def test_positive_default(self):
        assert Literal(Atom.of("A", 1)).positive

    def test_negated(self):
        literal = Literal(Atom.of("A", 1))
        assert not literal.negated().positive
        assert literal.negated().negated() == literal

    def test_predicate_and_args_delegate(self):
        literal = Literal(Atom.of("A", 1, 2))
        assert literal.predicate == "A"
        assert literal.args == (Constant(1), Constant(2))

    def test_substitute(self):
        literal = Literal(Atom("A", (x,)), positive=False)
        out = literal.substitute({x: Constant(5)})
        assert out.atom == Atom.of("A", 5)
        assert not out.positive

    def test_str(self):
        assert str(Literal(Atom.of("A", 1))) == "A(1)"
        assert str(Literal(Atom.of("A", 1), positive=False)) == "not A(1)"


class TestAtomsVariables:
    def test_union_over_atoms(self):
        atoms = [Atom("A", (x, y)), Atom("B", (y, z))]
        assert atoms_variables(atoms) == {x, y, z}

    def test_empty(self):
        assert atoms_variables([]) == frozenset()

    def test_ground_atoms(self):
        assert atoms_variables([Atom.of("A", 1, 2)]) == frozenset()
