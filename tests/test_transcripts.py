"""Unit tests for transcript rendering (and the CLI flags that use it)."""

from __future__ import annotations

import pytest

from repro import (
    check_model_containment,
    check_uniform_containment,
    paper,
    preserves_nonrecursively,
    prove_containment_with_constraints,
    prove_equivalence_with_constraints,
)
from repro.cli import main
from repro.core.transcripts import (
    render_chase_evidence,
    render_containment_proof,
    render_equivalence_proof,
    render_model_containment,
    render_preservation,
    render_rule_containment,
    render_uniform_containment,
)


class TestContainmentTranscripts:
    def test_positive_transcript_quotes_example6(self):
        report = check_uniform_containment(paper.TC_NONLINEAR, paper.TC_LINEAR)
        text = render_uniform_containment(report)
        assert "frozen body bθ" in text
        assert "hθ ∈ P(bθ)" in text
        assert "P2 ⊑u P1 holds" in text

    def test_negative_transcript_names_countermodel(self):
        report = check_uniform_containment(paper.TC_LINEAR, paper.TC_NONLINEAR)
        text = render_uniform_containment(report)
        assert "hθ ∉ P(bθ)" in text
        assert "does NOT hold" in text
        assert "countermodel" in text or "model of P but not of r" in text

    def test_single_witness(self):
        report = check_uniform_containment(paper.TC_NONLINEAR, paper.TC_LINEAR)
        text = render_rule_containment(report.witnesses[0])
        assert text.startswith("rule r:")


class TestChaseTranscripts:
    def test_example11_transcript(self):
        report = check_model_containment(paper.EX11_P1, [paper.EX11_TGD], paper.EX11_P2)
        text = render_model_containment(report)
        assert "SAT(T) ∩ M(P1) ⊆ M(P2)" in text
        assert "null(s)" in text
        assert "verdict: proved" in text

    def test_disproof_transcript(self):
        report = check_model_containment(paper.EX11_P1, [], paper.EX11_P2)
        text = render_model_containment(report)
        assert "REFUTED" in text

    def test_single_evidence(self):
        report = check_model_containment(paper.EX11_P1, [paper.EX11_TGD], paper.EX11_P2)
        text = render_chase_evidence(report.evidence[1])
        assert "target hθ" in text


class TestPreservationTranscripts:
    def test_example14_three_combinations(self):
        report = preserves_nonrecursively(paper.EX11_P1, [paper.EX11_TGD])
        text = render_preservation(report)
        assert "3 combination(s)" in text
        assert "trivial rule" in text
        assert text.count("Combination") == 3

    def test_violation_transcript(self):
        from repro import parse_program, parse_tgd

        program = parse_program("H(x, y) :- A(x, y).")
        report = preserves_nonrecursively(program, [parse_tgd("H(x, y) -> Mark(y)")])
        text = render_preservation(report)
        assert "counterexample" in text


class TestProofTranscripts:
    def test_example18_full_story(self):
        proof = prove_containment_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        text = render_containment_proof(proof)
        assert "(1)" in text and "(2)" in text and "(3')" in text
        assert "P2 ⊑ P1: proved" in text

    def test_equivalence_includes_reverse(self):
        proof = prove_equivalence_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
        text = render_equivalence_proof(proof)
        assert "Reverse direction" in text
        assert "P1 ≡ P2: proved" in text


class TestCliVerbose:
    @pytest.fixture
    def files(self, tmp_path):
        def write(name, text):
            path = tmp_path / name
            path.write_text(text, encoding="utf-8")
            return str(path)

        return write

    def test_contains_verbose(self, files, capsys):
        tc = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n"
        linear = "G(x, z) :- A(x, z).\nG(x, z) :- A(x, y), G(y, z).\n"
        code = main(
            ["contains", files("p1.dl", tc), files("p2.dl", linear), "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frozen body" in out

    def test_preserves_verbose(self, files, capsys):
        guarded = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z), A(y, w).\n"
        main(
            [
                "preserves",
                files("p.dl", guarded),
                "--tgds",
                files("t.tgd", "G(x, z) -> A(x, w)\n"),
                "--verbose",
            ]
        )
        out = capsys.readouterr().out
        assert "Combination" in out

    def test_prove_command(self, files, capsys):
        p1 = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z), A(y, w).\n"
        p2 = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n"
        code = main(
            [
                "prove",
                files("p1.dl", p1),
                files("p2.dl", p2),
                "--tgds",
                files("t.tgd", "G(x, z) -> A(x, w)\n"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P1 ≡ P2: proved" in out

    def test_prove_verbose(self, files, capsys):
        p1 = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z), A(y, w).\n"
        p2 = "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n"
        main(
            [
                "prove",
                files("p1.dl", p1),
                files("p2.dl", p2),
                "--tgds",
                files("t.tgd", "G(x, z) -> A(x, w)\n"),
                "--verbose",
            ]
        )
        out = capsys.readouterr().out
        assert "Section X proof attempt" in out
        assert "Reverse direction" in out

    def test_prove_unprovable_exit_code(self, files, capsys):
        p1 = "G(x, z) :- A(x, z).\n"
        p2 = "G(x, z) :- B(x, z).\n"
        code = main(
            [
                "prove",
                files("p1.dl", p1),
                files("p2.dl", p2),
                "--tgds",
                files("t.tgd", "G(x, z) -> A(x, w)\n"),
            ]
        )
        assert code == 1


class TestUnknownVerdictRendering:
    """Budget-exhausted (UNKNOWN) outcomes must render truthfully."""

    def _unknown_model_containment(self):
        from repro.core.chase import ChaseBudget, check_model_containment
        from repro import parse_program, parse_tgd

        p1 = parse_program("G(x, z) :- A(x, z).")
        p2 = parse_program("G(x, z) :- B(x, z).")
        tgd = parse_tgd("B(x, y) -> B(y, w)")
        return check_model_containment(
            p1, [tgd], p2, budget=ChaseBudget(max_rounds=5, max_nulls=20)
        )

    def test_chase_evidence_unknown(self):
        report = self._unknown_model_containment()
        assert report.verdict.value == "unknown"
        text = render_chase_evidence(report.evidence[0])
        assert "budget exhausted before saturation" in text
        assert "UNKNOWN" in text

    def test_model_containment_unknown_verdict_line(self):
        text = render_model_containment(self._unknown_model_containment())
        assert "verdict: unknown" in text

    def test_preservation_unknown(self):
        from repro.core.chase import Verdict
        from repro.core.preservation import CombinationEvidence, PreservationReport
        from repro import parse_tgd

        tgd = parse_tgd("G(x, y) -> A(x, w)")
        report = PreservationReport(
            verdict=Verdict.UNKNOWN,
            evidence=[
                CombinationEvidence(
                    tgd=tgd, choices=(), verdict=Verdict.UNKNOWN, rounds=7
                )
            ],
        )
        text = render_preservation(report)
        assert "budget exhausted while a violation persisted" in text
        assert "verdict: unknown" in text
