"""Unit tests for rule unfolding."""

from __future__ import annotations

import pytest

from repro import evaluate, parse_program, uniformly_contains
from repro.core.unfold import unfold_and_minimize, unfold_atom
from repro.errors import ValidationError
from repro.workloads import chain, random_graph


@pytest.fixture
def layered():
    return parse_program(
        """
        B(x, y) :- E(x, y).
        B(x, y) :- F(x, y).
        P(x, z) :- B(x, y), B(y, z).
        """
    )


class TestUnfoldAtom:
    def test_one_rule_per_definition(self, layered):
        rule = layered.rules[2]
        result = unfold_atom(layered, rule, 0)
        # B has two definitions; the P rule splits in two.
        assert len(result.replacements) == 2
        assert len(result.program) == 4

    def test_unfolded_bodies(self, layered):
        rule = layered.rules[2]
        result = unfold_atom(layered, rule, 0)
        rendered = sorted(str(r) for r in result.replacements)
        assert any("E(" in r for r in rendered)
        assert any("F(" in r for r in rendered)
        assert all("B(" in r for r in rendered)  # second B atom remains

    def test_plain_equivalence_preserved(self, layered):
        rule = layered.rules[2]
        result = unfold_atom(layered, rule, 0)
        db = random_graph(8, 16, seed=3, predicate="E")
        db.update(random_graph(8, 10, seed=4, predicate="F"))
        assert (
            evaluate(layered, db).database.tuples("P")
            == evaluate(result.program, db).database.tuples("P")
        )

    def test_uniform_containment_one_direction(self, layered):
        rule = layered.rules[2]
        result = unfold_atom(layered, rule, 0)
        # unfolded ⊑u original always...
        assert uniformly_contains(container=layered, contained=result.program)
        # ...but not conversely: initial B facts feed the original only.
        assert not uniformly_contains(container=result.program, contained=layered)

    def test_recursive_unfolding(self, tc):
        rule = tc.rules[1]  # G(x,z) :- G(x,y), G(y,z)
        result = unfold_atom(tc, rule, 0)
        # Two definitions of G -> two replacements; program now has the
        # init rule + 2 unfolded recursive rules.
        assert len(result.program) == 3
        db = chain(6)
        assert (
            evaluate(tc, db).database == evaluate(result.program, db).database
        )

    def test_extensional_atom_rejected(self, tc):
        with pytest.raises(ValidationError):
            unfold_atom(tc, tc.rules[0], 0)  # A is extensional

    def test_negated_literal_rejected(self):
        program = parse_program(
            """
            B(x) :- E(x).
            P(x) :- A(x), not B(x).
            """
        )
        with pytest.raises(ValidationError):
            unfold_atom(program, program.rules[1], 1)

    def test_foreign_rule_rejected(self, layered):
        from repro.lang import parse_rule

        with pytest.raises(ValueError):
            unfold_atom(layered, parse_rule("Z(x) :- E(x, x)."), 0)

    def test_bad_position(self, layered):
        with pytest.raises(IndexError):
            unfold_atom(layered, layered.rules[2], 7)

    def test_head_constants_through_unifier(self):
        program = parse_program(
            """
            B(x, 3) :- E(x).
            P(x, y) :- B(x, y).
            """
        )
        result = unfold_atom(program, program.rules[1], 0)
        (replacement,) = result.replacements
        assert str(replacement.head).endswith(", 3)")

    def test_non_unifiable_definition_skipped(self):
        program = parse_program(
            """
            B(x, 3) :- E(x).
            B(x, 4) :- F(x).
            P(x) :- B(x, 3).
            """
        )
        result = unfold_atom(program, program.rules[2], 0)
        assert len(result.replacements) == 1
        assert "E(" in str(result.replacements[0])


class TestUnfoldAndMinimize:
    def test_unfold_creates_removable_redundancy(self):
        # After unfolding B in P(x) :- B(x, y), A(x), the A atom becomes
        # a duplicate of the unfolded body and is removed.
        program = parse_program(
            """
            B(x, y) :- A(x), E(x, y).
            P(x) :- B(x, y), A(x).
            """
        )
        result = unfold_and_minimize(program, program.rules[1], 0)
        (p_rule,) = [r for r in result.program.rules if r.head.predicate == "P"]
        # A(x) appears once, not twice.
        a_atoms = [a for a in p_rule.body_atoms() if a.predicate == "A"]
        assert len(a_atoms) == 1
        assert result.atom_removals
