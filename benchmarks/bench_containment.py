"""Experiment Q3: the uniform-containment test is one bottom-up run per rule.

Paper, Section VI / Corollary 2: testing ``r ⊑u P`` is a single
evaluation of ``P`` on the frozen body of ``r``; it is total and cheap
relative to the undecidable plain-containment problem (which has no
procedure at all).  Series: test cost as the tested rule's body grows
and as the container program grows.
"""

from __future__ import annotations

import pytest

from repro.core.containment import (
    rule_uniformly_contained_in,
    uniformly_contains,
    uniformly_equivalent,
)
from repro.lang import Program
from repro.workloads import (
    tc_nonlinear,
    tc_with_redundant_rules,
    wide_rule,
)


@pytest.mark.parametrize("body_atoms", [4, 8, 12])
def test_q3_cost_vs_rule_size(benchmark, body_atoms):
    rule = wide_rule(core_atoms=3, redundant_atoms=body_atoms - 4, seed=5)
    program = Program.of(rule)
    holds = benchmark(lambda: rule_uniformly_contained_in(rule, program))
    assert holds
    benchmark.extra_info["body_atoms"] = len(rule.body)


@pytest.mark.parametrize("extra_rules", [0, 3, 6])
def test_q3_cost_vs_program_size(benchmark, extra_rules):
    program = tc_with_redundant_rules(extra_rules) if extra_rules else tc_nonlinear()
    contained = tc_nonlinear()
    holds = benchmark(lambda: uniformly_contains(program, contained))
    assert holds
    benchmark.extra_info["program_rules"] = len(program)


def test_q3_equivalence_both_directions(benchmark):
    p1 = tc_with_redundant_rules(2)
    p2 = tc_nonlinear()
    equivalent = benchmark(lambda: uniformly_equivalent(p1, p2))
    assert equivalent


def test_q3_always_terminates_on_negative(benchmark):
    """The negative case is just as fast -- no chase divergence without tgds."""
    from repro import paper

    holds = benchmark(
        lambda: uniformly_contains(paper.TC_LINEAR, paper.TC_NONLINEAR)
    )
    assert not holds
