"""Experiment Q1: minimization cost scales with *program* size, not EDB size.

Paper, Section I: "The algorithm has an exponential running time in the
worst case, but the time is exponential only in the size of the
program, which is typically much smaller than the size of the database.
Therefore, minimizing a program is expected to reduce the total time
spent on optimization and evaluation."

Two series substantiate this:

* minimization time as the rule body grows (the only driver);
* minimization time is *constant* in the EDB (it never reads the EDB),
  while evaluation time grows -- so the optimize-then-evaluate total is
  dominated by evaluation, exactly the paper's argument.
"""

from __future__ import annotations

import pytest

from repro import evaluate, minimize_program
from repro.core.minimize import minimize_rule
from repro.lang import Program
from repro.workloads import chain, tc_with_redundant_atoms, wide_rule


@pytest.mark.parametrize("redundant", [1, 2, 4, 6, 8])
def test_q1_rule_minimization_vs_body_size(benchmark, redundant):
    """Fig. 1 cost as the body grows (core fixed at 3 atoms)."""
    rule = wide_rule(core_atoms=3, redundant_atoms=redundant, seed=7)
    minimized = benchmark(lambda: minimize_rule(rule))
    assert len(minimized.body) == len(rule.body) - redundant
    benchmark.extra_info["body_atoms"] = len(rule.body)
    benchmark.extra_info["atoms_removed"] = redundant


@pytest.mark.parametrize("planted", [1, 3, 5])
def test_q1_program_minimization_vs_planted_atoms(benchmark, planted):
    """Fig. 2 cost over the TC family with planted redundant atoms."""
    program = tc_with_redundant_atoms(planted)
    result = benchmark(lambda: minimize_program(program))
    assert len(result.atom_removals) == planted
    benchmark.extra_info["containment_tests"] = result.containment_tests


def test_q1_minimization_independent_of_edb(benchmark):
    """Minimization reads only the program; its cost must not change as
    the (conceptual) database grows, while evaluation cost does."""
    program = tc_with_redundant_atoms(2)
    evaluation_times = {}
    for n in (20, 45):
        result = evaluate(program, chain(n))
        evaluation_times[n] = result.stats.elapsed
    # Evaluation grows with the EDB...
    assert evaluation_times[45] > evaluation_times[20]
    # ...minimization does not involve the EDB at all (benchmarked once,
    # identical regardless of any database in scope).
    result = benchmark(lambda: minimize_program(program))
    assert result.program is not None
    benchmark.extra_info["evaluation_elapsed_by_edb"] = {
        str(k): v for k, v in evaluation_times.items()
    }


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_q1_recursion_elimination_search(benchmark, depth):
    """Cost of the unroll-and-test boundedness search (extension), one
    depth at a time -- the same §VI test drives it, so the curve mirrors
    the containment benchmarks."""
    from repro.core.boundedness import unroll
    from repro.core.containment import uniformly_contains
    from repro.workloads import tc_linear

    program = tc_linear()

    def run():
        candidate = unroll(program, depth)
        return uniformly_contains(container=candidate, contained=program)

    bounded = benchmark(run)
    assert not bounded  # TC is unbounded at every depth
    benchmark.extra_info["depth"] = depth


def test_q1_worst_case_exponential_shape():
    """The containment-test count grows with body size -- record the
    curve (a shape claim, not a wall-clock claim)."""
    tests_by_size = {}
    for redundant in (1, 3, 5, 7):
        rule = wide_rule(core_atoms=3, redundant_atoms=redundant, seed=7)
        result = minimize_program(Program.of(rule))
        tests_by_size[len(rule.body)] = result.containment_tests
    sizes = sorted(tests_by_size)
    counts = [tests_by_size[s] for s in sizes]
    assert counts == sorted(counts), "more atoms must mean more tests"
