"""Ablation benches for the engine's design choices (DESIGN.md §3).

Three decisions in the join machinery are load-bearing; each is ablated
against its naive alternative on the same workload:

* **greedy join ordering** (most-bound-first) vs the rule's written
  order;
* **existential witness cutoff** (stop at the first witness once all
  head variables are bound) vs full enumeration;
* **index probes** vs relation scans.

The assertions pin the *direction* (the chosen design never loses);
wall-clock magnitude is machine-dependent and recorded by the harness.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.joins import match_body, plan_order
from repro.engine.stats import EvaluationStats
from repro.lang import parse_rule
from repro.lang.terms import Constant
from repro.workloads import chain, random_graph


def _count_solutions(db, literals, **kwargs) -> tuple[int, EvaluationStats]:
    stats = EvaluationStats()
    n = sum(1 for _ in match_body(db, literals, stats=stats, **kwargs))
    return n, stats


@pytest.fixture(scope="module")
def graph():
    return random_graph(40, 80, seed=2, predicate="A")


# A body whose written order is hostile: the selective atom comes last.
HOSTILE = parse_rule("Q(x) :- A(y, z), A(x, y), A(0, x).").body


def test_ablation_join_order_greedy(benchmark, graph):
    def run():
        return _count_solutions(graph, HOSTILE)

    solutions, stats = benchmark(run)
    benchmark.extra_info["subgoals"] = stats.subgoal_attempts


def test_ablation_join_order_written(benchmark, graph):
    def run():
        return _count_solutions(graph, HOSTILE, order=[0, 1, 2])

    solutions, stats = benchmark(run)
    benchmark.extra_info["subgoals"] = stats.subgoal_attempts


def test_ablation_join_order_shape(graph):
    greedy_n, greedy = _count_solutions(graph, HOSTILE)
    written_n, written = _count_solutions(graph, HOSTILE, order=[0, 1, 2])
    assert greedy_n == written_n  # same semantics
    assert greedy.subgoal_attempts <= written.subgoal_attempts


# A body with three head-irrelevant existential atoms.
EXISTENTIAL = parse_rule("Q(x, z) :- A(x, y), A(y, z), A(x, s1), A(x, s2), A(y, s3).").body
HEAD_VARS = frozenset(parse_rule("Q(x, z) :- A(x, y), A(y, z), A(x, s1), A(x, s2), A(y, s3).").head.variables())


def test_ablation_witness_cutoff_on(benchmark, graph):
    def run():
        return _count_solutions(graph, EXISTENTIAL, witness_after=HEAD_VARS)

    solutions, stats = benchmark(run)
    benchmark.extra_info["solutions"] = solutions
    benchmark.extra_info["subgoals"] = stats.subgoal_attempts


def test_ablation_witness_cutoff_off(benchmark, graph):
    def run():
        return _count_solutions(graph, EXISTENTIAL)

    solutions, stats = benchmark(run)
    benchmark.extra_info["solutions"] = solutions
    benchmark.extra_info["subgoals"] = stats.subgoal_attempts


def test_ablation_witness_cutoff_shape(graph):
    on_n, _on = _count_solutions(graph, EXISTENTIAL, witness_after=HEAD_VARS)
    off_n, _off = _count_solutions(graph, EXISTENTIAL)
    # Same distinct head instantiations, far fewer solution tuples.
    def heads(literals, **kw):
        head = parse_rule("Q(x, z) :- A(x, y), A(y, z), A(x, s1), A(x, s2), A(y, s3).").head
        return {
            head.substitute(b)
            for b in match_body(graph, literals, **kw)
        }

    assert heads(EXISTENTIAL, witness_after=HEAD_VARS) == heads(EXISTENTIAL)
    assert on_n <= off_n


def test_ablation_index_probe(benchmark):
    db = chain(500)
    target = Constant(250)

    def indexed():
        return list(db.candidates("A", {0: target}))

    rows = benchmark(indexed)
    assert len(rows) == 1


def test_ablation_full_scan(benchmark):
    db = chain(500)
    target = Constant(250)

    def scan():
        return [row for row in db.tuples("A") if row[0] == target]

    rows = benchmark(scan)
    assert len(rows) == 1
