"""Experiment Q6: minimization composes with magic sets.

Paper, Section I: "if the query is going to be computed [by] the 'magic
set' method of Bancilhon et al., then removing redundant parts can only
speed up the computation."  Series: answer a bound query with magic
sets on the original vs the minimized program; and magic vs full
evaluation as the baseline goal-directed win.
"""

from __future__ import annotations

import pytest

from repro import evaluate, minimize_program, optimize, parse_program
from repro.engine import answer_query
from repro.lang import parse_atom
from repro.workloads import chain, random_graph

FAT_PROGRAM = """
    G(x, z) :- A(x, z), A(x, w).
    G(x, z) :- A(x, y), G(y, z), A(y, v).
"""


def _db(n: int):
    return random_graph(n, 2 * n, seed=9)


@pytest.mark.parametrize("n", [30, 60])
def test_q6_magic_on_original(benchmark, n):
    program = parse_program(FAT_PROGRAM)
    db = _db(n)
    query = parse_atom("G(0, x)")
    answers, result = benchmark(lambda: answer_query(program, db, query))
    benchmark.extra_info["subgoal_attempts"] = result.stats.subgoal_attempts
    benchmark.extra_info["answers"] = len(answers)


@pytest.mark.parametrize("n", [30, 60])
def test_q6_magic_on_minimized(benchmark, n):
    # The full optimizer is needed here: A(y, v) in the recursive rule
    # is an Example-18-style guard, redundant only under *equivalence*.
    program = optimize(parse_program(FAT_PROGRAM)).optimized
    db = _db(n)
    query = parse_atom("G(0, x)")
    answers, result = benchmark(lambda: answer_query(program, db, query))
    benchmark.extra_info["subgoal_attempts"] = result.stats.subgoal_attempts
    benchmark.extra_info["answers"] = len(answers)


def test_q6_shape_minimize_then_magic():
    """Same answers, no more join work, on every size tried."""
    program = parse_program(FAT_PROGRAM)
    minimized = optimize(program).optimized
    query = parse_atom("G(0, x)")
    for n in (20, 40, 80):
        db = _db(n)
        raw_answers, raw = answer_query(program, db, query)
        opt_answers, opt = answer_query(minimized, db, query)
        assert set(raw_answers.tuples("G")) == set(opt_answers.tuples("G"))
        assert opt.stats.subgoal_attempts <= raw.stats.subgoal_attempts


HOSTILE_SIPS_PROGRAM = """
    P(x, z) :- B(y, z), A(x, y).
    P(x, z) :- B(y, z), A(x, w), P(w, y).
"""


@pytest.mark.parametrize("sips", ["left-to-right", "most-bound"])
def test_q6_sips_comparison(benchmark, sips):
    """Ablation: binding-passing order matters when the written body
    order is hostile to the query's bound positions."""
    program = parse_program(HOSTILE_SIPS_PROGRAM)
    db = random_graph(15, 30, seed=1)
    db.update(random_graph(15, 30, seed=2, predicate="B"))
    query = parse_atom("P(x, 5)")
    answers, result = benchmark(lambda: answer_query(program, db, query, sips=sips))
    benchmark.extra_info["subgoals"] = result.stats.subgoal_attempts


def test_q6_sips_shape():
    program = parse_program(HOSTILE_SIPS_PROGRAM)
    db = random_graph(15, 30, seed=1)
    db.update(random_graph(15, 30, seed=2, predicate="B"))
    query = parse_atom("P(x, 5)")
    ltr_answers, ltr = answer_query(program, db, query, sips="left-to-right")
    mb_answers, mb = answer_query(program, db, query, sips="most-bound")
    assert set(ltr_answers.tuples("P")) == set(mb_answers.tuples("P"))
    assert mb.stats.subgoal_attempts < ltr.stats.subgoal_attempts


def test_q6_magic_beats_full_evaluation(benchmark):
    """The baseline goal-directed win on a graph with irrelevant regions."""
    program = parse_program(
        """
        G(x, z) :- A(x, z).
        G(x, z) :- A(x, y), G(y, z).
        """
    )
    db = chain(50)
    db.update(chain(50, offset=1000))  # an unreachable component
    query = parse_atom("G(1000, x)")

    answers, magic_result = benchmark(lambda: answer_query(program, db, query))
    full = evaluate(program, db)
    assert magic_result.stats.facts_derived < full.stats.facts_derived
    benchmark.extra_info["magic_derived"] = magic_result.stats.facts_derived
    benchmark.extra_info["full_derived"] = full.stats.facts_derived
