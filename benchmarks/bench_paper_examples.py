"""Experiment E01-E19: every worked example of the paper, timed.

The paper's evaluation artifacts are its worked examples; each bench
re-derives the paper's hand-computed outcome and times the procedure
involved.  Assertions make the bench double as a regression gate: a
timing run that produces the wrong answer fails loudly.
"""

from __future__ import annotations

import pytest

from repro import (
    apply_once,
    check_model_containment,
    evaluate,
    minimize_program,
    optimize,
    preserves_nonrecursively,
    prove_equivalence_with_constraints,
    uniformly_contains,
)
from repro import paper
from repro.core.chase import Verdict
from repro.core.minimize import minimize_rule
from repro.core.preservation import preliminary_db_satisfies
from repro.paper import single_rule_program


def test_e02_bottom_up_output(benchmark):
    out = benchmark(lambda: evaluate(paper.TC_NONLINEAR, paper.EX2_EDB).database)
    assert out == paper.EX2_OUTPUT


def test_e03_idb_input(benchmark):
    out = benchmark(lambda: evaluate(paper.TC_NONLINEAR, paper.EX3_INPUT).database)
    assert out == paper.EX3_OUTPUT


def test_e04_uniform_containment_holds(benchmark):
    holds = benchmark(
        lambda: uniformly_contains(paper.TC_NONLINEAR, paper.TC_LINEAR)
    )
    assert holds


def test_e04_uniform_containment_fails(benchmark):
    holds = benchmark(
        lambda: uniformly_contains(paper.TC_LINEAR, paper.TC_NONLINEAR)
    )
    assert not holds


def test_e05_containment_with_idb_edb_mix(benchmark):
    holds = benchmark(lambda: uniformly_contains(paper.EX5_P2, paper.TC_NONLINEAR))
    assert holds


def test_e07_redundant_atom_containment(benchmark):
    holds = benchmark(lambda: uniformly_contains(paper.EX7_P1, paper.EX7_P2))
    assert holds


def test_e08_fig1_minimization(benchmark):
    minimized = benchmark(lambda: minimize_rule(paper.EX7_P1.rules[0]))
    assert minimized == paper.EX7_P2.rules[0]


def test_e08_fig2_minimization(benchmark):
    result = benchmark(lambda: minimize_program(paper.EX7_P1))
    assert result.program == paper.EX7_P2


def test_e09_tgd_satisfaction(benchmark):
    def check():
        return (
            paper.EX9_TGD_VIOLATED.is_satisfied_by(paper.EX2_OUTPUT),
            paper.EX9_TGD_SATISFIED.is_satisfied_by(paper.EX2_OUTPUT),
        )

    violated, satisfied = benchmark(check)
    assert (violated, satisfied) == (False, True)


def test_e11_chase_model_containment(benchmark):
    report = benchmark(
        lambda: check_model_containment(paper.EX11_P1, [paper.EX11_TGD], paper.EX11_P2)
    )
    assert report.verdict is Verdict.PROVED


def test_e12_nonrecursive_application(benchmark):
    pn = benchmark(lambda: apply_once(paper.TC_NONLINEAR, paper.EX12_INPUT))
    assert pn == set(paper.EX12_PN)


def test_e13_single_rule_preservation(benchmark):
    report = benchmark(
        lambda: preserves_nonrecursively(
            single_rule_program(paper.EX13_RULE), [paper.EX11_TGD]
        )
    )
    assert report.verdict is Verdict.PROVED


def test_e14_program_preservation(benchmark):
    report = benchmark(
        lambda: preserves_nonrecursively(paper.EX11_P1, [paper.EX11_TGD])
    )
    assert report.verdict is Verdict.PROVED
    assert report.combinations_examined == 3


def test_e15_two_atom_lhs_preservation(benchmark):
    report = benchmark(
        lambda: preserves_nonrecursively(
            single_rule_program(paper.EX13_RULE), [paper.EX15_TGD]
        )
    )
    assert report.verdict is Verdict.PROVED
    assert report.combinations_examined == 4


def test_e16_embedded_rhs_preservation(benchmark):
    report = benchmark(
        lambda: preserves_nonrecursively(
            single_rule_program(paper.EX16_RULE), [paper.EX16_TGD]
        )
    )
    assert report.verdict is Verdict.PROVED


def test_e17_preliminary_db(benchmark):
    init = paper.TC_NONLINEAR.initialization_program()
    pi = benchmark(lambda: apply_once(init, paper.EX17_EDB))
    assert pi == set(paper.EX17_PI)


def test_e18_full_equivalence_proof(benchmark):
    proof = benchmark(
        lambda: prove_equivalence_with_constraints(
            paper.EX11_P1, paper.EX11_P2, [paper.EX11_TGD]
        )
    )
    assert proof.verdict is Verdict.PROVED


def test_e18_condition_3prime(benchmark):
    report = benchmark(
        lambda: preliminary_db_satisfies(paper.EX11_P1, [paper.EX11_TGD])
    )
    assert report.verdict is Verdict.PROVED


def test_e19_heuristic_optimizer(benchmark):
    report = benchmark(lambda: optimize(paper.EX19_P1))
    assert report.optimized == paper.EX19_P2
