"""Experiment Q10 (extension): incremental maintenance vs recomputation.

The substrate claim that justifies materializing optimized programs:
after a small EDB change, delete-and-rederive (DRed) maintenance beats
recomputing the fixpoint from scratch, and both agree exactly.
"""

from __future__ import annotations

import pytest

from repro import Database, evaluate
from repro.engine.incremental import MaterializedView
from repro.lang import Atom
from repro.workloads import chain, random_graph, tc_nonlinear


@pytest.mark.parametrize("n", [30, 60])
def test_q10_insert_maintenance(benchmark, n):
    program = tc_nonlinear()
    base = chain(n)

    def run():
        view = MaterializedView(program, base)
        view.insert(Atom.of("A", n, n + 1))
        return view

    view = benchmark(run)
    assert Atom.of("G", 0, n + 1) in view


@pytest.mark.parametrize("n", [30, 60])
def test_q10_recompute_after_insert(benchmark, n):
    program = tc_nonlinear()
    base = chain(n)

    def run():
        grown = base.copy()
        grown.add(Atom.of("A", n, n + 1))
        return evaluate(program, grown).database

    db = benchmark(run)
    assert Atom.of("G", 0, n + 1) in db


def test_q10_single_insert_cheaper_than_recompute():
    """One appended edge: maintenance touches only the new suffix facts."""
    program = tc_nonlinear()
    base = chain(40)
    view = MaterializedView(program, base)
    stats = view.insert(Atom.of("A", 40, 41))
    # Maintenance adds exactly the new edge plus its 41 closure facts,
    # far fewer than the full 861-fact closure a recomputation derives.
    assert stats.inserted == 42
    full = evaluate(program, chain(41))
    assert full.stats.facts_derived > 10 * stats.inserted


@pytest.mark.parametrize("n", [20, 40])
def test_q10_delete_maintenance(benchmark, n):
    program = tc_nonlinear()
    base = random_graph(n, 2 * n, seed=21)
    victim = next(iter(base.atoms()))

    def run():
        view = MaterializedView(program, base)
        view.delete(victim)
        return view

    view = benchmark(run)
    remaining = Database(a for a in base.atoms() if a != victim)
    assert view.database == evaluate(program, remaining).database


def test_q10_agreement_over_mixed_workload():
    program = tc_nonlinear()
    base = random_graph(10, 20, seed=5)
    view = MaterializedView(program, base)
    live = set(base.atoms())
    script = [
        ("del", Atom.of("A", 1, 2)),
        ("ins", Atom.of("A", 0, 9)),
        ("del", Atom.of("A", 0, 9)),
        ("ins", Atom.of("A", 3, 3)),
    ]
    for op, atom in script:
        if op == "ins":
            view.insert(atom)
            live.add(atom)
        else:
            view.delete(atom)
            live.discard(atom)
        assert view.database == evaluate(program, Database(live)).database
