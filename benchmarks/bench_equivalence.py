"""Experiment Q8: cost and benefit of equivalence-based optimization.

Paper, Sections X-XI: the tgd recipe is "just a matter of syntactical
manipulation, which is conceptually easy" but may run long, so one
spends "a predetermined amount of time" on it.  Series: proof cost on
the Example-18/19 families as the guard count grows, plus the join-work
payoff of the deletions the proofs license.
"""

from __future__ import annotations

import pytest

from repro import evaluate, optimize, paper, prove_equivalence_with_constraints
from repro.core.chase import Verdict
from repro.workloads import chain, guarded_tc, tc_nonlinear


@pytest.mark.parametrize("guards", [1, 2, 3])
def test_q8_proof_cost_vs_guards(benchmark, guards):
    p1 = guarded_tc(guards)
    p2 = tc_nonlinear()
    proof = benchmark(
        lambda: prove_equivalence_with_constraints(p1, p2, [paper.EX11_TGD])
    )
    assert proof.verdict is Verdict.PROVED
    benchmark.extra_info["guards"] = guards


@pytest.mark.parametrize("guards", [1, 2])
def test_q8_optimizer_end_to_end(benchmark, guards):
    program = guarded_tc(guards)
    report = benchmark(lambda: optimize(program))
    assert report.optimized == tc_nonlinear()
    benchmark.extra_info["attempts"] = report.equivalence_attempts


def test_q8_example19_full_pipeline(benchmark):
    report = benchmark(lambda: optimize(paper.EX19_P1))
    assert report.optimized == paper.EX19_P2


def test_q8_payoff_on_evaluation():
    """The deletions licensed only by the §X proof pay off at query time."""
    program = guarded_tc(3)
    optimized = optimize(program).optimized
    for n in (25, 50):
        edb = chain(n)
        raw = evaluate(program, edb)
        opt = evaluate(optimized, edb)
        assert raw.database == opt.database
        assert opt.stats.subgoal_attempts < raw.stats.subgoal_attempts


def test_q8_uniform_layer_alone_cannot(benchmark):
    """Control: Fig. 2 alone cannot remove the *last* guard (it is not
    redundant under uniform equivalence); with several guards the
    duplicates fold into one another, so exactly one survives."""
    program = guarded_tc(2)
    report = benchmark(lambda: optimize(program, use_equivalence=False))
    recursive = [r for r in report.optimized.rules if len(r.body) > 1]
    (rule,) = recursive
    guards = [a for a in rule.body_atoms() if a.predicate == "A"]
    assert len(guards) == 1  # folded to one, never to zero
