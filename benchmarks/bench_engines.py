"""Experiment Q7: engine substrate sanity -- semi-naive vs naive.

Not a claim of the paper itself, but the substrate its cost model rides
on: bottom-up evaluation is polynomial in the EDB (Section III), and
semi-naive evaluation dominates naive re-derivation.  Series: both
engines on chains, cycles, and random graphs.
"""

from __future__ import annotations

import pytest

from repro.engine import naive_fixpoint, seminaive_fixpoint
from repro.workloads import chain, cycle, random_graph, tc_nonlinear


def _edb(kind: str, n: int):
    if kind == "chain":
        return chain(n)
    if kind == "cycle":
        return cycle(n)
    return random_graph(n, 2 * n, seed=3)


@pytest.mark.parametrize("kind", ["chain", "cycle", "random"])
@pytest.mark.parametrize("n", [20, 40])
def test_q7_seminaive(benchmark, kind, n):
    program = tc_nonlinear()
    edb = _edb(kind, n)
    result = benchmark(lambda: seminaive_fixpoint(program, edb))
    benchmark.extra_info["rule_firings"] = result.stats.rule_firings
    benchmark.extra_info["facts"] = len(result.database)


@pytest.mark.parametrize("kind", ["chain", "cycle", "random"])
@pytest.mark.parametrize("n", [20, 40])
def test_q7_naive(benchmark, kind, n):
    program = tc_nonlinear()
    edb = _edb(kind, n)
    result = benchmark(lambda: naive_fixpoint(program, edb))
    benchmark.extra_info["rule_firings"] = result.stats.rule_firings
    benchmark.extra_info["facts"] = len(result.database)


@pytest.mark.parametrize("kind", ["chain", "cycle", "random"])
def test_q7_shape(kind):
    """Semi-naive agrees with naive and re-derives strictly less."""
    program = tc_nonlinear()
    for n in (15, 30):
        edb = _edb(kind, n)
        naive = naive_fixpoint(program, edb)
        semi = seminaive_fixpoint(program, edb)
        assert naive.database == semi.database
        assert semi.stats.rule_firings < naive.stats.rule_firings


def test_q7_polynomial_growth():
    """Section III's claim: bottom-up is polynomial in the EDB.
    Chain closure has Θ(n²) facts; firings should grow polynomially,
    not exponentially: doubling n must scale firings by far less than 2^n."""
    program = tc_nonlinear()
    f20 = seminaive_fixpoint(program, chain(20)).stats.rule_firings
    f40 = seminaive_fixpoint(program, chain(40)).stats.rule_firings
    assert f40 / f20 < 20  # Θ(n³)-ish ratio ≈ 8, nowhere near exponential
