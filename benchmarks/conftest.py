"""Shared helpers for the benchmark harness.

Every benchmark both *times* its subject (pytest-benchmark fixture) and
*asserts the paper's qualitative claim* (who wins, roughly by how much,
where the crossover is).  Measured series are attached to
``benchmark.extra_info`` so ``--benchmark-json`` output carries the
data EXPERIMENTS.md reports.
"""

from __future__ import annotations

import pytest


def record_series(benchmark, **series):
    """Attach named data series to the benchmark's extra_info."""
    for key, value in series.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def series_recorder():
    return record_series
