"""Experiment Q2: removing redundant parts reduces joins and time.

Paper, Section I: "In most cases, removing redundant parts can only
reduce the time needed to evaluate the query, because it reduces the
number of joins done during the evaluation."

Series: original vs minimized program over growing EDBs, on both the
redundant-atom family and the redundant-rule family, on chain and
random graphs.  The shape claim asserted: the minimized program never
does more subgoal work and produces identical results.
"""

from __future__ import annotations

import pytest

from repro import evaluate, minimize_program
from repro.workloads import (
    chain,
    random_graph,
    tc_with_redundant_atoms,
    tc_with_redundant_rules,
)


def _edb(kind: str, n: int):
    if kind == "chain":
        return chain(n)
    return random_graph(n, 2 * n, seed=7)


@pytest.mark.parametrize("kind", ["chain", "random"])
@pytest.mark.parametrize("n", [12, 24])
def test_q2_redundant_atoms_original(benchmark, kind, n):
    program = tc_with_redundant_atoms(2)
    edb = _edb(kind, n)
    result = benchmark(lambda: evaluate(program, edb))
    benchmark.extra_info["subgoal_attempts"] = result.stats.subgoal_attempts
    benchmark.extra_info["facts"] = len(result.database)


@pytest.mark.parametrize("kind", ["chain", "random"])
@pytest.mark.parametrize("n", [12, 24])
def test_q2_redundant_atoms_minimized(benchmark, kind, n):
    program = minimize_program(tc_with_redundant_atoms(2)).program
    edb = _edb(kind, n)
    result = benchmark(lambda: evaluate(program, edb))
    benchmark.extra_info["subgoal_attempts"] = result.stats.subgoal_attempts
    benchmark.extra_info["facts"] = len(result.database)


@pytest.mark.parametrize("kind", ["chain", "random"])
def test_q2_shape_atoms(kind):
    """Shape claim: minimized never does more join work, same answers."""
    program = tc_with_redundant_atoms(2)
    minimized = minimize_program(program).program
    for n in (10, 20, 30):
        edb = _edb(kind, n)
        raw = evaluate(program, edb)
        opt = evaluate(minimized, edb)
        assert raw.database == opt.database
        assert opt.stats.subgoal_attempts <= raw.stats.subgoal_attempts


@pytest.mark.parametrize("n", [12, 24])
def test_q2_redundant_rules_original(benchmark, n):
    program = tc_with_redundant_rules(3)
    edb = chain(n)
    result = benchmark(lambda: evaluate(program, edb))
    benchmark.extra_info["subgoal_attempts"] = result.stats.subgoal_attempts


@pytest.mark.parametrize("n", [12, 24])
def test_q2_redundant_rules_minimized(benchmark, n):
    program = minimize_program(tc_with_redundant_rules(3)).program
    edb = chain(n)
    result = benchmark(lambda: evaluate(program, edb))
    benchmark.extra_info["subgoal_attempts"] = result.stats.subgoal_attempts


def test_q2_shape_rules():
    program = tc_with_redundant_rules(3)
    minimized = minimize_program(program).program
    for n in (10, 20, 30):
        edb = chain(n)
        raw = evaluate(program, edb)
        opt = evaluate(minimized, edb)
        assert raw.database == opt.database
        assert opt.stats.subgoal_attempts <= raw.stats.subgoal_attempts
        assert opt.stats.rule_firings <= raw.stats.rule_firings


def test_q2_optimize_plus_evaluate_beats_evaluate(benchmark):
    """The paper's total-cost argument: on a large enough EDB, paying
    for minimization up front is cheaper than evaluating the fat
    program."""
    from repro.core.minimize import minimize_program as minimize

    program = tc_with_redundant_atoms(2)
    edb = chain(40)

    def optimized_pipeline():
        lean = minimize(program).program
        return evaluate(lean, edb)

    result = benchmark(optimized_pipeline)
    raw = evaluate(program, edb)
    assert result.database == raw.database
    benchmark.extra_info["raw_subgoals"] = raw.stats.subgoal_attempts
    benchmark.extra_info["optimized_subgoals"] = result.stats.subgoal_attempts
