"""Experiment Q4: chase behaviour with full and embedded tgds.

Paper, Section VIII / Theorem 1: the chase with ``[P, T]`` proves
``SAT(T) ∩ M(P1) ⊆ M(P2)``; with embedded tgds it may diverge, so the
implementation is budgeted and three-valued.  Series: chase cost for
full tgds (always terminates), benign embedded tgds (terminate), and a
deliberately diverging family (hits the budget, verdict UNKNOWN).
"""

from __future__ import annotations

import pytest

from repro import Database, paper, parse_program, parse_tgd
from repro.core.chase import (
    ChaseBudget,
    Verdict,
    chase,
    check_model_containment,
    termination_certificate,
)
from repro.core.tgds import satisfies_all
from repro.workloads import chain
from repro.workloads.suites import load


@pytest.mark.parametrize("facts", [10, 40])
def test_q4_full_tgd_chase(benchmark, facts):
    tgd = parse_tgd("A(x, y) -> B(x, y)")
    db = chain(facts)
    outcome = benchmark(lambda: chase(db, None, [tgd]))
    assert outcome.saturated
    assert outcome.nulls_created == 0
    assert satisfies_all(outcome.database, [tgd])


@pytest.mark.parametrize("facts", [10, 40])
def test_q4_embedded_tgd_chase_terminating(benchmark, facts):
    # One null per G fact; no cascade.
    tgd = parse_tgd("G(x, y) -> A(x, w)")
    db = Database.from_facts({"G": [(i, i + 1) for i in range(facts)]})
    outcome = benchmark(lambda: chase(db, None, [tgd]))
    assert outcome.saturated
    assert outcome.nulls_created == facts


def test_q4_diverging_embedded_tgd_budgeted(benchmark):
    # Every repair spawns a fresh violation: the budget must stop it.
    tgd = parse_tgd("G(x, y) -> G(y, w)")
    db = Database.from_facts({"G": [(0, 1)]})
    budget = ChaseBudget(max_rounds=25, max_nulls=200)
    outcome = benchmark(lambda: chase(db, None, [tgd], budget=budget))
    assert not outcome.saturated
    benchmark.extra_info["nulls_created"] = outcome.nulls_created


def test_q4_example11_proof(benchmark):
    report = benchmark(
        lambda: check_model_containment(paper.EX11_P1, [paper.EX11_TGD], paper.EX11_P2)
    )
    assert report.verdict is Verdict.PROVED


def test_q4_unknown_verdict_on_budget(benchmark):
    p1 = parse_program("G(x, z) :- A(x, z).")
    p2 = parse_program("G(x, z) :- B(x, z).")
    tgd = parse_tgd("B(x, y) -> B(y, w)")
    budget = ChaseBudget(max_rounds=5, max_nulls=20)
    report = benchmark(
        lambda: check_model_containment(p1, [tgd], p2, budget=budget)
    )
    assert report.verdict is Verdict.UNKNOWN


@pytest.mark.parametrize("suite", ["de-copy", "de-fusion", "de-chain"])
def test_q4_data_exchange_suite_saturates(benchmark, suite):
    """The Grahne-Onet shapes are all certified terminating, so the
    certificate-widened chase reaches genuine saturation."""
    workload = load(suite)
    tgds = list(workload.tgds)
    certificate = termination_certificate(tgds, workload.program)
    assert certificate is not None and certificate.guarantees_termination
    edb = workload.edb(20)
    outcome = benchmark(
        lambda: chase(edb, workload.program, tgds, certificate=certificate)
    )
    assert outcome.saturated
    assert satisfies_all(outcome.database, tgds)
    benchmark.extra_info["classification"] = certificate.classification
    benchmark.extra_info["nulls_created"] = outcome.nulls_created


def test_q4_certificate_upgrades_unknown_to_disproved(benchmark):
    """Differential: under a tiny budget the uncertified chase stops at
    UNKNOWN, while the weak-acyclicity certificate widens the budget to
    saturation and the same containment question becomes DISPROVED."""
    p1 = parse_program("G(x, y) :- B(x, y).")
    p2 = parse_program("G(x, y) :- A(x, y).")
    levels = ["A", "H", "K", "L", "M", "N", "O"]
    tgds = [
        parse_tgd(f"{src}(x, y) -> {dst}(x, v) & {dst}(v, y)")
        for src, dst in zip(levels, levels[1:])
    ]
    budget = ChaseBudget(max_rounds=5, max_nulls=20)
    blind = check_model_containment(p1, tgds, p2, budget=budget, use_certificate=False)
    assert blind.verdict is Verdict.UNKNOWN
    report = benchmark(
        lambda: check_model_containment(p1, tgds, p2, budget=budget)
    )
    assert report.verdict is Verdict.DISPROVED


def test_q4_target_short_circuit_beats_saturation(benchmark):
    """Stopping at the target head (the paper's optimization note) must
    beat chasing to saturation on a workload where the head appears
    early."""
    program = paper.TC_NONLINEAR
    db = chain(40)
    from repro.lang import Atom

    target = Atom.of("G", 0, 1)

    outcome = benchmark(lambda: chase(db, program, [], target=target))
    assert outcome.target_found
    full = chase(db, program, [])
    assert full.rounds >= outcome.rounds
