"""Lint throughput: the containment-backed rules dominate lint cost.

The redundant-atom / redundant-rule passes run the Fig. 1 / Fig. 2
uniform-containment tests (Section VII), which evaluate the program on a
frozen body -- everything else in the linter is purely syntactic.  Two
claims substantiated here:

* lint with the containment rules disabled is near-instant on every
  workload program (the syntactic passes are linear in program size);
* ``--max-containment-checks`` bounds the expensive passes, keeping a
  full lint sub-second on all workloads even where exhaustive checking
  would be quadratic in rule-body size.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import LintConfig, lint
from repro.workloads.suites import SUITES

CONTAINMENT_RULES = frozenset({"redundant-atom", "redundant-rule"})

SYNTACTIC_ONLY = LintConfig(ignore=CONTAINMENT_RULES)
FULL_DEFAULT = LintConfig()  # max_containment_checks=64


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_lint_syntactic_rules_only(benchmark, suite):
    """Every pass except the containment-backed two."""
    program = SUITES[suite]().program
    diagnostics = benchmark(lambda: lint(program, SYNTACTIC_ONLY))
    assert all(d.rule_id not in CONTAINMENT_RULES for d in diagnostics)
    benchmark.extra_info["suite"] = suite
    benchmark.extra_info["rule_count"] = len(program)
    benchmark.extra_info["findings"] = len(diagnostics)


@pytest.mark.parametrize("suite", sorted(SUITES))
def test_lint_with_containment_rules(benchmark, suite):
    """Full lint under the default containment budget."""
    program = SUITES[suite]().program
    diagnostics = benchmark(lambda: lint(program, FULL_DEFAULT))
    benchmark.extra_info["suite"] = suite
    benchmark.extra_info["rule_count"] = len(program)
    benchmark.extra_info["findings"] = len(diagnostics)
    benchmark.extra_info["by_rule"] = sorted({d.rule_id for d in diagnostics})


def test_lint_budget_keeps_full_sweep_sub_second():
    """Acceptance claim: one budgeted lint of *every* workload program
    stays under a second wall-clock, and the budget is what guarantees
    it (checks actually get spent, some workloads plant redundancy)."""
    config = LintConfig(max_containment_checks=64)
    start = time.perf_counter()
    findings = {name: lint(factory().program, config) for name, factory in SUITES.items()}
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0, f"budgeted lint sweep took {elapsed:.2f}s"
    planted = [
        name
        for name, diags in findings.items()
        if any(d.rule_id in CONTAINMENT_RULES for d in diags)
    ]
    assert planted, "redundancy-planting workloads must surface findings"


def test_lint_cost_tracks_containment_budget(benchmark):
    """Raising the budget raises the work done -- the knob is live."""
    program = SUITES["tc+4atoms/chain"]().program
    low = lint(program, LintConfig(max_containment_checks=2))
    high = lint(program, LintConfig(max_containment_checks=256))
    assert any(d.rule_id == "containment-budget" for d in low)
    assert sum(d.rule_id == "redundant-atom" for d in high) == 4
    diagnostics = benchmark(
        lambda: lint(program, LintConfig(max_containment_checks=256))
    )
    benchmark.extra_info["findings"] = len(diagnostics)
