"""Experiment Q9 (extension): goal-directed strategies compared.

The paper situates its optimization alongside the goal-directed
evaluation methods of the era -- bottom-up magic sets (Bancilhon et
al.) and top-down memoing (Henschen--Naqvi, McKay--Shapiro, Vieille's
QSQ).  Both are implemented here; this bench compares them against each
other and against full bottom-up evaluation, and shows that the paper's
minimization composes with *either* strategy.
"""

from __future__ import annotations

import pytest

from repro import evaluate, minimize_program, parse_program
from repro.engine.magic import answer_query
from repro.engine.supplementary import answer_query_supplementary
from repro.engine.topdown import tabled_query
from repro.lang import parse_atom
from repro.workloads import chain, random_graph, tc_linear


def _db(n: int):
    return random_graph(n, 2 * n, seed=13)


@pytest.mark.parametrize("n", [30, 60])
def test_q9_magic(benchmark, n):
    program = tc_linear()
    db = _db(n)
    query = parse_atom("G(0, x)")
    answers, result = benchmark(lambda: answer_query(program, db, query))
    benchmark.extra_info["answers"] = len(answers)
    benchmark.extra_info["subgoals"] = result.stats.subgoal_attempts


@pytest.mark.parametrize("n", [30, 60])
def test_q9_tabled_topdown(benchmark, n):
    program = tc_linear()
    db = _db(n)
    query = parse_atom("G(0, x)")
    result = benchmark(lambda: tabled_query(program, db, query))
    benchmark.extra_info["answers"] = len(result.answers)
    benchmark.extra_info["subgoals"] = result.stats.subgoal_attempts
    benchmark.extra_info["calls"] = result.calls_made


@pytest.mark.parametrize("n", [30, 60])
def test_q9_supplementary_magic(benchmark, n):
    program = tc_linear()
    db = _db(n)
    query = parse_atom("G(0, x)")
    answers, result = benchmark(
        lambda: answer_query_supplementary(program, db, query)
    )
    benchmark.extra_info["answers"] = len(answers)
    benchmark.extra_info["subgoals"] = result.stats.subgoal_attempts


def test_q9_supplementary_beats_plain_on_nonlinear():
    """Factored prefixes pay off when rules have several IDB subgoals."""
    from repro.workloads import tc_nonlinear

    program = tc_nonlinear()
    db = _db(25)
    query = parse_atom("G(0, x)")
    _, plain = answer_query(program, db, query)
    sup_answers, sup = answer_query_supplementary(program, db, query)
    plain_answers, _ = answer_query(program, db, query)
    assert set(sup_answers.tuples("G")) == set(plain_answers.tuples("G"))
    assert sup.stats.subgoal_attempts < plain.stats.subgoal_attempts


@pytest.mark.parametrize("n", [30, 60])
def test_q9_full_bottom_up(benchmark, n):
    program = tc_linear()
    db = _db(n)

    def run():
        full = evaluate(program, db)
        from repro.lang.terms import Constant

        return {r for r in full.database.tuples("G") if r[0] == Constant(0)}

    answers = benchmark(run)
    benchmark.extra_info["answers"] = len(answers)


def test_q9_strategies_agree():
    program = tc_linear()
    db = _db(25)
    for query_text in ("G(0, x)", "G(x, 7)", "G(2, 9)"):
        query = parse_atom(query_text)
        magic_answers, _ = answer_query(program, db, query)
        tabled = tabled_query(program, db, query)
        assert set(magic_answers.tuples("G")) == set(tabled.answers.tuples("G"))


def test_q9_minimization_composes_with_topdown(benchmark):
    """The §I claim holds for the top-down strategy too."""
    fat = parse_program(
        """
        G(x, z) :- A(x, z), A(x, w).
        G(x, z) :- A(x, y), G(y, z).
        """
    )
    lean = minimize_program(fat).program
    db = chain(40)
    query = parse_atom("G(0, x)")

    result = benchmark(lambda: tabled_query(lean, db, query))
    raw = tabled_query(fat, db, query)
    assert set(result.answers.tuples("G")) == set(raw.answers.tuples("G"))
    assert result.stats.subgoal_attempts <= raw.stats.subgoal_attempts
