"""Experiment Q5: the preservation test enumerates unification combinations.

Paper, Section IX: "if there are n ground atoms in Pⁿ(d) and each can
be unified with m rules, then there are [m^n] combinations to
consider."  Series: combinations examined and wall-clock as the tgd's
LHS atom count and the program's rule count grow; the combination count
must match the m^n formula exactly (with m = rules-for-predicate + 1
trivial rule).
"""

from __future__ import annotations

import pytest

from repro import parse_program, parse_tgd
from repro.core.chase import Verdict
from repro.core.preservation import preserves_nonrecursively
from repro.lang import Program
from repro.paper import EX13_RULE, EX11_TGD


def _guard_tgd(lhs_atoms: int):
    """A tgd with `lhs_atoms` chained G atoms and the A(y1,w) RHS."""
    atoms = [f"G(y{i}, y{i + 1})" for i in range(lhs_atoms)]
    return parse_tgd(", ".join(atoms) + " -> A(y1, w)")


@pytest.mark.parametrize("lhs_atoms", [1, 2, 3])
def test_q5_combinations_vs_lhs_size(benchmark, lhs_atoms):
    program = Program.of(EX13_RULE)  # one rule for G, plus implicit trivial
    tgd = _guard_tgd(lhs_atoms)
    report = benchmark(
        lambda: preserves_nonrecursively(program, [tgd], stop_at_violation=False)
    )
    # m = 2 (the rule + the trivial rule); n = lhs_atoms.
    assert report.combinations_examined == 2 ** lhs_atoms
    benchmark.extra_info["combinations"] = report.combinations_examined


@pytest.mark.parametrize("rules", [1, 2, 3])
def test_q5_combinations_vs_rule_count(benchmark, rules):
    # `rules` alternative derivations of G, all guard-preserving.
    sources = ["A", "B", "C"][:rules]
    text = "".join(
        f"G(x, z) :- {s}(x, z), A(x, w).\n" for s in sources
    )
    program = parse_program(text)
    tgd = parse_tgd("G(x, z) -> A(x, w)")
    report = benchmark(
        lambda: preserves_nonrecursively(program, [tgd], stop_at_violation=False)
    )
    # One LHS atom; m = rules + 1 trivial.
    assert report.combinations_examined == rules + 1
    assert report.verdict is Verdict.PROVED


def test_q5_example14_three_cases(benchmark):
    from repro import paper

    report = benchmark(
        lambda: preserves_nonrecursively(paper.EX11_P1, [EX11_TGD])
    )
    assert report.combinations_examined == 3
    assert report.verdict is Verdict.PROVED


def test_q5_violation_short_circuits(benchmark):
    """stop_at_violation must terminate the scan at the first failure."""
    program = parse_program(
        """
        H(x, y) :- A(x, y).
        H(x, y) :- B(x, y).
        H(x, y) :- C(x, y).
        """
    )
    tgd = parse_tgd("H(x, y) -> Mark(y)")
    stopped = benchmark(lambda: preserves_nonrecursively(program, [tgd]))
    assert stopped.verdict is Verdict.DISPROVED
    exhaustive = preserves_nonrecursively(program, [tgd], stop_at_violation=False)
    assert stopped.combinations_examined <= exhaustive.combinations_examined
