"""Command-line interface: ``repro-datalog``.

Subcommands::

    repro-datalog parse      PROGRAM            # validate + profile
    repro-datalog lint       PROGRAM            # static diagnostics
    repro-datalog analyze    PROGRAM            # abstract-interpretation report
    repro-datalog advise     PROGRAM            # specialization plans per query form
    repro-datalog eval       PROGRAM --edb F    # bottom-up evaluation
    repro-datalog resume     CHECKPOINT         # continue an interrupted eval
    repro-datalog minimize   PROGRAM            # Fig. 2 minimization
    repro-datalog optimize   PROGRAM            # + Section X/XI layer
    repro-datalog contains   P1 P2              # uniform containment, both ways
    repro-datalog preserves  PROGRAM --tgds F   # Fig. 3 preservation
    repro-datalog prove      P1 P2 --tgds F     # Section X equivalence proof
    repro-datalog query      PROGRAM --edb F Q  # goal-directed query (magic sets)
    repro-datalog explain    PROGRAM --edb F A  # why-provenance proof of a fact
    repro-datalog bounded    PROGRAM            # recursion-elimination search
    repro-datalog profile    PROGRAM --edb F    # per-rule/per-span work breakdown
    repro-datalog bench                         # workload suites -> BENCH_<date>.json
    repro-datalog examples                      # run the paper's examples

Programs and EDB files use the Datalog syntax of
:mod:`repro.lang.parser`; an EDB file is simply a program of ground
facts (``A(1, 2).``).  Tgd files hold one tgd per line
(``G(x, z) -> A(x, w)``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import profile
from .core import (
    check_uniform_containment,
    minimize_program,
    optimize,
    preserves_nonrecursively,
)
from .core.tgds import Tgd
from .data.database import Database
from .engine import engine_names, evaluate, get_engine
from .errors import ReproError
from .lang import format_database, format_program, parse_program, parse_tgds
from .lang.programs import Program

#: Exit code for a run that completed PARTIALLY under a resource limit:
#: the printed facts are sound but the fixpoint was not reached.
EXIT_PARTIAL = 3

#: Exit code for ``bench --compare`` when a shared entry regressed past
#: the threshold (see :data:`repro.obs.benchrun.REGRESSION_THRESHOLD`).
EXIT_REGRESSION = 4


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _add_governor_flags(p: argparse.ArgumentParser, with_on_limit: bool = True) -> None:
    """Resource-governance flags shared by evaluation-driving verbs."""
    p.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; on expiry the run degrades or raises (see --on-limit)",
    )
    p.add_argument(
        "--max-facts", type=int, metavar="N", help="cap on facts derived during the run"
    )
    p.add_argument(
        "--max-rounds", type=int, metavar="N", help="cap on fixpoint rounds/passes"
    )
    if with_on_limit:
        p.add_argument(
            "--on-limit",
            choices=["partial", "raise"],
            default="partial",
            help="what a tripped limit does: print the sound partial result and "
            f"exit {EXIT_PARTIAL} (default), or raise and exit 2",
        )


def _governor_from_args(args: argparse.Namespace):
    """Build a ResourceGovernor from the shared flags, or None if unset."""
    if args.deadline is None and args.max_facts is None and args.max_rounds is None:
        return None
    from .resilience import ResourceGovernor

    return ResourceGovernor(
        deadline_s=args.deadline,
        max_facts=args.max_facts,
        max_rounds=args.max_rounds,
    )


def _add_chase_flags(p: argparse.ArgumentParser) -> None:
    """ChaseBudget flags for the chase-backed verbs."""
    p.add_argument(
        "--chase-rounds",
        type=int,
        metavar="N",
        help="chase budget: max rounds per chase run (default 200)",
    )
    p.add_argument(
        "--chase-nulls",
        type=int,
        metavar="N",
        help="chase budget: max labelled nulls per chase run (default 2000)",
    )


def _chase_budget_from_args(args: argparse.Namespace):
    from .core.chase import DEFAULT_BUDGET, ChaseBudget

    if args.chase_rounds is None and args.chase_nulls is None:
        return DEFAULT_BUDGET
    return ChaseBudget(
        max_rounds=args.chase_rounds if args.chase_rounds is not None else DEFAULT_BUDGET.max_rounds,
        max_nulls=args.chase_nulls if args.chase_nulls is not None else DEFAULT_BUDGET.max_nulls,
    )


def _load_program(path: str) -> Program:
    return parse_program(_read(path))


def _load_edb(path: str, backend: str = "rows") -> Database:
    facts_program = parse_program(_read(path))
    db = Database(backend=backend)
    for rule in facts_program.rules:
        if not rule.is_fact:
            raise ReproError(f"EDB file {path} contains a non-fact rule: {rule}")
        db.add(rule.head)
    return db


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """The storage-backend selector shared by the EDB-loading verbs."""
    p.add_argument(
        "--backend",
        choices=["rows", "columnar"],
        default="rows",
        help="storage backend for the EDB and evaluation "
        "(columnar = interned-int columns; see docs/STORAGE.md)",
    )


def _add_workers_flag(p: argparse.ArgumentParser) -> None:
    """The worker-pool selector shared by the evaluation verbs."""
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate on a pool of N worker processes (seminaive shards "
        "each round's delta, stratified schedules independent SCCs "
        "concurrently; results are identical to --workers 1)",
    )


def _load_tgds(path: str) -> list[Tgd]:
    return parse_tgds(_read(path))


def _cmd_parse(args: argparse.Namespace) -> int:
    import json

    program = _load_program(args.program)
    if args.json:
        print(json.dumps(profile(program).to_dict(), indent=2))
        return 0
    print(format_program(program))
    print()
    print(profile(program))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import known_rule_ids, lint_source, severity_at_least
    from .analysis.lint import LintConfig
    from .analysis.lint_report import render_json, render_text

    select = frozenset(args.select.split(",")) if args.select else None
    ignore = frozenset(args.ignore.split(",")) if args.ignore else frozenset()
    unknown = ((select or frozenset()) | ignore) - known_rule_ids()
    if unknown:
        known = ", ".join(sorted(known_rule_ids()))
        print(
            f"error: unknown lint rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2
    config = LintConfig(
        select=select,
        ignore=ignore,
        max_containment_checks=args.max_containment_checks,
        exported=frozenset(args.export) if args.export else None,
    )
    diagnostics = lint_source(_read(args.program), config)
    if args.format == "json":
        print(render_json(diagnostics, filename=args.program))
    else:
        print(render_text(diagnostics, filename=args.program))
    if args.fail_on != "never" and any(
        severity_at_least(d.severity, args.fail_on) for d in diagnostics
    ):
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import known_rule_ids, severity_at_least
    from .analysis.absint.report import (
        ABSINT_LINT_RULES,
        analyze_program,
        render_analysis_json,
        render_analysis_text,
    )
    from .analysis.lint import LintConfig, lint_source
    from .analysis.lint_report import render_json, render_text
    from .errors import ArityError, ParseError, UnsafeRuleError
    from .lang import parse_atom
    from .lang.parser import parse_program_with_spans

    # ``termination`` selects the chase-termination lint pair in one
    # word; the termination JSON/text block itself is always present.
    termination_alias = frozenset(
        {"weakly-acyclic-certified", "nonterminating-chase-risk"}
    )
    select = (
        frozenset(args.select.split(",")) if args.select else ABSINT_LINT_RULES
    )
    ignore = frozenset(args.ignore.split(",")) if args.ignore else frozenset()
    if "termination" in select:
        select = (select - {"termination"}) | termination_alias
    if "termination" in ignore:
        ignore = (ignore - {"termination"}) | termination_alias
    unknown = (select | ignore) - known_rule_ids()
    if unknown:
        known = ", ".join(sorted(known_rule_ids() | {"termination"}))
        print(
            f"error: unknown lint rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2
    tgds = tuple(_load_tgds(args.tgds)) if args.tgds else ()
    config = LintConfig(
        select=select,
        ignore=ignore,
        max_containment_checks=args.max_containment_checks,
        tgds=tgds,
    )
    source = _read(args.program)
    try:
        parsed = parse_program_with_spans(source)
    except (ParseError, ArityError, UnsafeRuleError):
        # An unconstructible program gets the same construction
        # diagnostics (and exit 1) the lint verb would produce.
        diagnostics = lint_source(
            source, LintConfig(select=frozenset({"syntax", "arity", "safety"}))
        )
        if args.format == "json":
            print(render_json(diagnostics, filename=args.program))
        else:
            print(render_text(diagnostics, filename=args.program))
        return 1
    query = parse_atom(args.query) if args.query else None
    report = analyze_program(
        parsed.program,
        parsed.spans,
        query=query,
        config=config,
        default_edb=args.assume_edb,
        tgds=tgds,
    )
    if args.format == "json":
        print(render_analysis_json(report, filename=args.program))
    else:
        print(render_analysis_text(report, filename=args.program))
    if args.fail_on != "never" and any(
        severity_at_least(d.severity, args.fail_on) for d in report.diagnostics
    ):
        return 1
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .analysis import severity_at_least
    from .analysis.lint import LintConfig, lint_source
    from .analysis.specialize import (
        QueryFormError,
        advise_program,
        parse_query_form,
        save_certificate,
    )
    from .analysis.specialize.report import render_advise_json, render_advise_text

    source = _read(args.program)
    program = parse_program(source)
    forms = None
    if args.query:
        try:
            forms = [parse_query_form(q, program) for q in args.query]
        except QueryFormError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    config = LintConfig(
        select=frozenset({"adornment-space-explosion", "magic-unstratifiable"}),
        adornment_budget=args.adornment_budget,
    )
    diagnostics = lint_source(source, config)
    certificate = advise_program(
        program,
        forms,
        sips=args.sips,
        assume_edb=args.assume_edb,
        source=args.program,
    )
    if args.export:
        save_certificate(certificate, args.export)
        print(f"wrote certificate {args.export}", file=sys.stderr)
    if args.json:
        print(render_advise_json(certificate, diagnostics, filename=args.program))
    else:
        print(render_advise_text(certificate, diagnostics, filename=args.program))
    if args.fail_on != "never" and any(
        severity_at_least(d.severity, args.fail_on) for d in diagnostics
    ):
        return 1
    return 0


def _add_checkpoint_flags(p: argparse.ArgumentParser) -> None:
    """Durable-checkpoint flags shared by ``eval`` and ``bench``."""
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="write a durable checkpoint of the evaluation at round "
        "boundaries; an interrupted run continues with 'resume PATH' "
        "(see docs/STORAGE.md for the file format)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in fixpoint rounds (default 1)",
    )


def _checkpointed_governor(args: argparse.Namespace, governor, program, engine: str):
    """Wire a CheckpointManager into *governor* when --checkpoint is set.

    Checkpoints ride the governor's round hook, so a limitless governor
    is created if the user set no limits.  Returns (governor, manager).
    """
    if not getattr(args, "checkpoint", None):
        return governor, None
    from .resilience import CheckpointManager, ResourceGovernor

    manager = CheckpointManager(
        args.checkpoint, program=program, engine=engine, every=args.checkpoint_every
    )
    if governor is None:
        governor = ResourceGovernor()
    governor.on_round = manager.on_round
    return governor, manager


def _result_document(result, database=None) -> dict:
    """The --json document shared by eval/query/resume.

    ``degradation`` is present (non-null) exactly on PARTIAL runs, so
    machine consumers see which limit tripped and where without parsing
    stderr.
    """
    from .lang.serialize import database_to_dict

    return {
        "status": result.status.value,
        "database": database_to_dict(database if database is not None else result.database),
        "stats": result.stats.to_dict(),
        "degradation": (
            result.degradation.to_dict() if result.degradation is not None else None
        ),
    }


def _emit_result(args: argparse.Namespace, result, database=None) -> int:
    """Shared output tail of eval/resume: text or JSON, PARTIAL exit code."""
    import json

    if getattr(args, "json", False):
        print(json.dumps(_result_document(result, database), indent=2))
    else:
        print(format_database(database if database is not None else result.database))
        if args.stats:
            print()
            print(result.stats.summary())
    if result.is_partial:
        print(result.degradation.summary(), file=sys.stderr)
        return EXIT_PARTIAL
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    edb = _load_edb(args.edb, args.backend)
    governor = _governor_from_args(args)
    governor, _manager = _checkpointed_governor(args, governor, program, args.engine)
    result = evaluate(
        program,
        edb,
        engine=args.engine,
        governor=governor,
        on_limit=args.on_limit,
        workers=args.workers,
    )
    return _emit_result(args, result)


def _cmd_resume(args: argparse.Namespace) -> int:
    from .resilience import CheckpointManager, resume_evaluation

    every = args.checkpoint_every
    manager = CheckpointManager(args.checkpoint, every=every or 1)
    checkpoint = manager.latest()
    if checkpoint is None:
        print(
            f"error: no valid checkpoint generation at {args.checkpoint}",
            file=sys.stderr,
        )
        return 2
    program = _load_program(args.program) if args.program else None
    governor = _governor_from_args(args)
    if not args.no_checkpoint:
        from .resilience import ResourceGovernor

        manager.adopt(checkpoint, every=every)
        if governor is None:
            governor = ResourceGovernor()
        governor.on_round = manager.on_round
    if governor is not None:
        state = checkpoint.governor_state or {}
        governor.restore(facts=state.get("facts", 0), rounds=state.get("rounds", 0))
    if not args.json:
        print(
            f"resuming {checkpoint.engine} evaluation from round "
            f"{checkpoint.round} ({len(checkpoint.database)} facts, "
            f"backend {checkpoint.backend})",
            file=sys.stderr,
        )
    result = resume_evaluation(
        checkpoint, governor=governor, program=program, workers=args.workers
    )
    if args.on_limit == "raise" and result.is_partial:
        from .errors import ResourceLimitExceeded

        raise ResourceLimitExceeded(
            result.degradation.summary(), report=result.degradation
        )
    return _emit_result(args, result)


def _cmd_minimize(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    governor = _governor_from_args(args)
    result = minimize_program(program, governor=governor)
    print(format_program(result.program))
    print()
    print(result.summary())
    if result.degradation is not None:
        print(result.degradation.summary(), file=sys.stderr)
        return EXIT_PARTIAL
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    import json

    program = _load_program(args.program)
    governor = _governor_from_args(args)
    report = optimize(
        program,
        use_equivalence=not args.uniform_only,
        budget=_chase_budget_from_args(args),
        governor=governor,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_program(report.optimized))
        print()
        print(report.summary())
    if report.degradation is not None:
        print(report.degradation.summary(), file=sys.stderr)
        return EXIT_PARTIAL
    return 0


def _cmd_contains(args: argparse.Namespace) -> int:
    p1 = _load_program(args.p1)
    p2 = _load_program(args.p2)
    forward = check_uniform_containment(container=p1, contained=p2)
    backward = check_uniform_containment(container=p2, contained=p1)
    if args.verbose:
        from .core.transcripts import render_uniform_containment

        print(render_uniform_containment(forward))
        print()
        print(
            render_uniform_containment(
                backward, container_name="P2", contained_name="P1"
            )
        )
        print()
    print(f"P2 ⊑u P1: {'yes' if forward.holds else 'no'}")
    for witness in forward.witnesses:
        if not witness.holds:
            print(f"  fails for: {witness.rule}")
    print(f"P1 ⊑u P2: {'yes' if backward.holds else 'no'}")
    for witness in backward.witnesses:
        if not witness.holds:
            print(f"  fails for: {witness.rule}")
    if forward.holds and backward.holds:
        print("P1 ≡u P2")
    return 0


def _cmd_preserves(args: argparse.Namespace) -> int:
    from .core.chase import termination_certificate

    program = _load_program(args.program)
    tgds = _load_tgds(args.tgds)
    certificate = termination_certificate(tgds, program)
    report = preserves_nonrecursively(
        program,
        tgds,
        budget=_chase_budget_from_args(args),
        certificate=certificate,
    )
    if args.verbose:
        from .core.transcripts import render_preservation

        print(render_preservation(report))
        print()
    print(f"termination certificate: {certificate.describe()}")
    print(f"non-recursive preservation: {report.verdict.value}")
    print(f"combinations examined: {report.combinations_examined}")
    if report.exhausted:
        print(f"chase budget exhausted: {report.exhausted}")
    return 0 if report.verdict.value == "proved" else 1


def _cmd_prove(args: argparse.Namespace) -> int:
    from .core import prove_equivalence_with_constraints
    from .core.transcripts import render_equivalence_proof

    p1 = _load_program(args.p1)
    p2 = _load_program(args.p2)
    tgds = _load_tgds(args.tgds)
    proof = prove_equivalence_with_constraints(
        p1, p2, tgds, budget=_chase_budget_from_args(args)
    )
    if args.verbose:
        if proof.certificate is not None:
            print(f"termination certificate: {proof.certificate.describe()}")
        print(render_equivalence_proof(proof))
    else:
        print(proof.explain())
    return 0 if proof.verdict.value == "proved" else 1


def _cmd_query(args: argparse.Namespace) -> int:
    from .lang import parse_atom

    program = _load_program(args.program)
    edb = _load_edb(args.edb, args.backend)
    query = parse_atom(args.query)
    governor = _governor_from_args(args)
    plan = None
    certificate = None
    if args.certificate:
        from .analysis.specialize import (
            CertificateError,
            apply_certificate,
            load_certificate,
        )

        try:
            certificate = load_certificate(args.certificate)
            plan = apply_certificate(certificate, program, query)
        except CertificateError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if plan is None:
            print(
                "note: certificate holds no plan for this query form; "
                "analyzing fresh",
                file=sys.stderr,
            )
    if plan is not None and args.method is None:
        from .analysis.specialize import execute_plan

        if args.stats and not args.json:
            rec = plan.recommendation
            print(
                f"certificate plan {plan.query}: rewrite={rec.rewrite} "
                f"method={rec.method} engine={rec.engine}",
                file=sys.stderr,
            )
        answers, result = execute_plan(
            program,
            edb,
            query,
            plan,
            sips=certificate.sips,
            governor=governor,
            workers=args.workers,
        )
    else:
        method = args.method or "magic"
        spec = get_engine(method)
        kwargs = {"governor": governor}
        if method in ("magic", "supplementary"):
            kwargs["engine"] = args.engine
            if args.workers > 1:
                kwargs["workers"] = args.workers
        elif args.workers > 1:
            print(
                f"note: --workers applies to magic/supplementary only; "
                f"{method} runs in-process",
                file=sys.stderr,
            )
        answers, result = spec.answer(program, edb, query, **kwargs)
    if args.on_limit == "raise" and result.is_partial:
        from .errors import ResourceLimitExceeded

        raise ResourceLimitExceeded(
            result.degradation.summary(), report=result.degradation
        )
    if args.json:
        import json

        print(json.dumps(_result_document(result, database=answers), indent=2))
    else:
        for atom in sorted(answers.atoms(), key=lambda a: a.sort_key()):
            print(atom)
        if args.stats:
            print()
            print(result.stats.summary())
    if result.is_partial:
        print(result.degradation.summary(), file=sys.stderr)
        return EXIT_PARTIAL
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .engine.provenance import evaluate_with_provenance, explain
    from .lang import parse_atom

    program = _load_program(args.program)
    edb = _load_edb(args.edb)
    fact = parse_atom(args.fact)
    provenance = evaluate_with_provenance(program, edb)
    try:
        print(explain(provenance, fact))
    except KeyError:
        print(f"{fact} does not hold", file=sys.stderr)
        return 1
    return 0


def _cmd_bounded(args: argparse.Namespace) -> int:
    from .core.boundedness import uniform_boundedness

    program = _load_program(args.program)
    report = uniform_boundedness(program, max_depth=args.max_depth)
    if report.verdict.value == "proved":
        print(f"recursion eliminable: uniformly bounded at depth {report.depth}")
        print()
        print(format_program(report.nonrecursive))
        return 0
    print(
        f"not shown bounded up to depth {args.max_depth} "
        "(the program may be unbounded, or bounded only deeper)"
    )
    return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .lang import parse_atom
    from .obs.profiler import (
        profile_comparison,
        profile_evaluation,
        render_comparison,
        render_profile,
    )

    if args.engine in ("magic", "supplementary", "topdown") and not args.query:
        print(f"error: engine {args.engine!r} requires a query atom (--query)", file=sys.stderr)
        return 2
    program = _load_program(args.program)
    edb = _load_edb(args.edb, args.backend)
    query = parse_atom(args.query) if args.query else None
    if args.compare_minimized:
        comparison = profile_comparison(program, edb, engine=args.engine, query=query)
        if args.json:
            print(json.dumps(comparison.to_dict(), indent=2))
        else:
            print(render_comparison(comparison))
        return 0
    report = profile_evaluation(program, edb, engine=args.engine, query=query)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(render_profile(report, max_depth=args.max_depth))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .obs.benchrun import diff_bench_documents, render_diff, run_bench
    from .obs.schema import validate_bench_document

    if args.validate:
        document = json.loads(_read(args.validate))
        errors = validate_bench_document(document)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid ({len(document['entries'])} entries)")
        return 0

    compare = args.compare or []
    if len(compare) > 2:
        print("error: --compare takes one baseline or OLD NEW", file=sys.stderr)
        return 2
    if len(compare) == 2:
        # Pure diff mode: no new run, compare two existing documents.
        old_path, new_path = compare
        documents = []
        for path in (old_path, new_path):
            document = json.loads(_read(path))
            errors = validate_bench_document(document)
            if errors:
                print(f"error: {path} is not a valid bench document", file=sys.stderr)
                return 2
            documents.append(document)
        records = diff_bench_documents(documents[0], documents[1])
        print(f"comparing {old_path} -> {new_path}:")
        print(render_diff(records))
        return _bench_gate(records)

    suites = args.suite if args.suite else None
    sizes = args.size if args.size else None
    backends = ("rows", "columnar") if args.backend == "both" else (args.backend,)
    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    try:
        document = run_bench(
            suites=suites,
            sizes=sizes,
            quick=args.quick,
            date=args.date,
            progress=progress,
            backends=backends,
            workers=tuple(args.workers) if args.workers else (1,),
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            advised=args.advised,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    out_path = Path(args.out) if args.out else Path(f"BENCH_{document['generated']}.json")
    out_path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path} ({len(document['entries'])} entries, "
          f"engines: {', '.join(document['engines'])})")
    if compare:
        baseline_path = compare[0]
        previous = json.loads(_read(baseline_path))
        errors = validate_bench_document(previous)
        if errors:
            print(f"error: {baseline_path} is not a valid bench document", file=sys.stderr)
            return 2
        records = diff_bench_documents(previous, document)
        print()
        print(f"comparison against {baseline_path}:")
        print(render_diff(records))
        return _bench_gate(records)
    return 0


def _bench_gate(records) -> int:
    """Non-zero exit when any shared bench entry regressed past the gate."""
    from .obs.benchrun import REGRESSION_THRESHOLD, regressions

    flagged = regressions(records)
    if not flagged:
        return 0
    print(
        f"performance regressions (>{REGRESSION_THRESHOLD:.0%} growth):",
        file=sys.stderr,
    )
    for line in flagged:
        print(f"  {line}", file=sys.stderr)
    return EXIT_REGRESSION


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .testing import run_differential_suite

    report = run_differential_suite(seeds=args.seeds, start_seed=args.start_seed)
    print(report.summary())
    for failure in report.failures:
        print(f"  {failure}")
    return 0 if report.ok else 1


def _cmd_examples(_args: argparse.Namespace) -> int:
    from . import paper

    for ident in sorted(paper.EXAMPLES):
        example = paper.EXAMPLES[ident]
        print(f"{ident} (§{example.section}): {example.claim}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-datalog",
        description="Datalog program optimization (Sagiv, PODS 1987 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("parse", help="validate and profile a program")
    p.add_argument("program")
    p.add_argument(
        "--json", action="store_true", help="emit the profile as machine-readable JSON"
    )
    p.set_defaults(func=_cmd_parse)

    p = sub.add_parser(
        "lint", help="static diagnostics: redundancy, stratification, tgd candidates"
    )
    p.add_argument("program")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--select",
        metavar="RULE_IDS",
        help="comma-separated lint rule ids to run (default: all)",
    )
    p.add_argument(
        "--ignore",
        metavar="RULE_IDS",
        help="comma-separated lint rule ids to skip",
    )
    p.add_argument(
        "--max-containment-checks",
        type=int,
        default=64,
        metavar="N",
        help="budget for the Fig. 1/2 uniform-containment tests (default 64)",
    )
    p.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "hint", "never"],
        default="warning",
        help="exit 1 when a finding at/above this severity exists (default warning)",
    )
    p.add_argument(
        "--export",
        action="append",
        metavar="PRED",
        help="declare an exported (output) predicate; enables the unused-idb rule",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="abstract-interpretation report: sorts, cardinality, recursion, "
        "binding, chase termination",
    )
    p.add_argument("program")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--query",
        metavar="ATOM",
        help="query atom for binding/adornment analysis, e.g. 'T(\"a\", y)'",
    )
    p.add_argument(
        "--tgds",
        metavar="FILE",
        help="file of tgds (one per line) for the chase-termination domain; "
        "also enables the weakly-acyclic-certified / "
        "nonterminating-chase-risk findings (--select termination)",
    )
    p.add_argument(
        "--assume-edb",
        type=int,
        default=1000,
        metavar="N",
        help="assumed facts per EDB relation for cardinality (default 1000)",
    )
    p.add_argument(
        "--select",
        metavar="RULE_IDS",
        help="comma-separated analysis lint rule ids to run "
        "(default: the abstract-interpretation passes)",
    )
    p.add_argument(
        "--ignore",
        metavar="RULE_IDS",
        help="comma-separated lint rule ids to skip",
    )
    p.add_argument(
        "--max-containment-checks",
        type=int,
        default=64,
        metavar="N",
        help="budget for §VI dead-rule certification (default 64)",
    )
    p.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "hint", "never"],
        default="error",
        help="exit 1 when a finding at/above this severity exists (default error)",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "advise",
        help="whole-program specialization analysis: per query form, the "
        "recommended rewrite and engine with evidence (a plan certificate)",
    )
    p.add_argument("program")
    p.add_argument(
        "--query",
        action="append",
        metavar="FORM",
        help="query form to plan for: an atom ('Tc(\"a\", y)') or an "
        "adornment pattern ('Tc(bf)', predicate case-insensitive); "
        "repeatable (default: the all-bound and all-free forms of every "
        "IDB predicate)",
    )
    p.add_argument(
        "--assume-edb",
        type=int,
        default=1000,
        metavar="N",
        help="assumed facts per EDB relation for cost estimates (default 1000)",
    )
    p.add_argument(
        "--sips",
        choices=["left-to-right", "most-bound"],
        default="left-to-right",
        help="sideways-information-passing strategy for the closure "
        "(default left-to-right)",
    )
    p.add_argument(
        "--export",
        metavar="FILE",
        help="write the plan certificate JSON to FILE; reuse it with "
        "'query --certificate FILE' to skip re-analysis",
    )
    p.add_argument(
        "--adornment-budget",
        type=int,
        default=64,
        metavar="N",
        help="closure size above which adornment-space-explosion warns "
        "(default 64)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "hint", "never"],
        default="error",
        help="exit 1 when a finding at/above this severity exists (default error)",
    )
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser("eval", help="bottom-up evaluation")
    p.add_argument("program")
    p.add_argument("--edb", required=True, help="file of ground facts")
    p.add_argument(
        "--engine", choices=list(engine_names("fixpoint")), default="seminaive"
    )
    p.add_argument("--stats", action="store_true", help="print join-work statistics")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the result (database, stats, status, and on PARTIAL "
        "the degradation report) as machine-readable JSON",
    )
    _add_backend_flag(p)
    _add_workers_flag(p)
    _add_governor_flags(p)
    _add_checkpoint_flags(p)
    p.set_defaults(func=_cmd_eval)

    p = sub.add_parser(
        "resume",
        help="continue an interrupted eval from its durable checkpoint "
        "(falls back to the previous generation if the latest is corrupt)",
    )
    p.add_argument(
        "checkpoint", help="checkpoint file written by eval --checkpoint"
    )
    p.add_argument(
        "--program",
        metavar="FILE",
        help="verify the checkpoint against this program's fingerprint "
        "before resuming (a mismatch aborts instead of computing the "
        "wrong model)",
    )
    p.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="do not keep checkpointing the resumed run",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint cadence for the resumed run "
        "(default: the cadence stored in the checkpoint)",
    )
    p.add_argument("--stats", action="store_true", help="print join-work statistics")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the result (database, stats, status, degradation) as JSON",
    )
    _add_workers_flag(p)
    _add_governor_flags(p)
    p.set_defaults(func=_cmd_resume)

    p = sub.add_parser("minimize", help="minimize under uniform equivalence (Fig. 2)")
    p.add_argument("program")
    _add_governor_flags(p, with_on_limit=False)
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser("optimize", help="minimize + equivalence-based optimization")
    p.add_argument("program")
    p.add_argument(
        "--uniform-only", action="store_true", help="skip the Section X/XI layer"
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full report (removals, certificates, budget "
        "exhaustion) as machine-readable JSON",
    )
    _add_governor_flags(p, with_on_limit=False)
    _add_chase_flags(p)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("contains", help="test uniform containment both ways")
    p.add_argument("p1")
    p.add_argument("p2")
    p.add_argument("--verbose", action="store_true", help="print the full freezing-test transcripts")
    p.set_defaults(func=_cmd_contains)

    p = sub.add_parser("preserves", help="test non-recursive tgd preservation (Fig. 3)")
    p.add_argument("program")
    p.add_argument("--tgds", required=True, help="file of tgds, one per line")
    p.add_argument("--verbose", action="store_true", help="print per-combination transcripts")
    _add_chase_flags(p)
    p.set_defaults(func=_cmd_preserves)

    p = sub.add_parser(
        "prove", help="prove P2 ⊑ P1 and P1 ≡ P2 under tgd constraints (Section X)"
    )
    p.add_argument("p1")
    p.add_argument("p2")
    p.add_argument("--tgds", required=True, help="file of tgds, one per line")
    p.add_argument("--verbose", action="store_true", help="print the full three-condition transcript")
    _add_chase_flags(p)
    p.set_defaults(func=_cmd_prove)

    p = sub.add_parser("query", help="answer a query goal-directed")
    p.add_argument("program")
    p.add_argument("query", help="query atom, e.g. 'G(0, x)'")
    p.add_argument("--edb", required=True, help="file of ground facts")
    p.add_argument(
        "--method",
        choices=list(engine_names("query")),
        default=None,
        help="query-evaluation strategy (default magic sets, or the "
        "certificate's recommendation under --certificate)",
    )
    p.add_argument(
        "--certificate",
        metavar="FILE",
        help="plan certificate from 'advise --export'; preloads the "
        "adornment closure and planner hints and runs the recommended "
        "plan, skipping query-time analysis",
    )
    p.add_argument(
        "--engine",
        choices=["naive", "seminaive"],
        default="seminaive",
        help="bottom-up engine under magic/supplementary (ignored by topdown)",
    )
    p.add_argument("--stats", action="store_true", help="print join-work statistics")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the answers (plus stats, status, and on PARTIAL the "
        "degradation report) as machine-readable JSON",
    )
    _add_backend_flag(p)
    _add_workers_flag(p)
    _add_governor_flags(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("explain", help="show a proof tree for a derived fact")
    p.add_argument("program")
    p.add_argument("fact", help="ground atom to explain, e.g. 'G(1, 3)'")
    p.add_argument("--edb", required=True, help="file of ground facts")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "bounded", help="search for a non-recursive uniformly-equivalent program"
    )
    p.add_argument("program")
    p.add_argument("--max-depth", type=int, default=4, help="unrolling depth bound")
    p.set_defaults(func=_cmd_bounded)

    p = sub.add_parser(
        "profile", help="profile one evaluation: per-rule and per-span breakdown"
    )
    p.add_argument("program")
    p.add_argument("--edb", required=True, help="file of ground facts")
    from .obs.profiler import PROFILE_ENGINES

    p.add_argument(
        "--engine",
        choices=list(PROFILE_ENGINES),
        default="seminaive",
    )
    p.add_argument("--query", help="query atom (required for magic/supplementary/topdown)")
    p.add_argument("--json", action="store_true", help="emit the profile as JSON")
    p.add_argument(
        "--compare-minimized",
        action="store_true",
        help="also minimize (Fig. 2) and profile both, reporting the join-work saving",
    )
    p.add_argument(
        "--max-depth", type=int, default=2, help="span-tree depth in text output"
    )
    _add_backend_flag(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench", help="run the workload suites and write a BENCH_<date>.json document"
    )
    p.add_argument(
        "--quick", action="store_true", help="small matrix for CI smoke (seconds)"
    )
    p.add_argument(
        "--suite", action="append", metavar="NAME", help="workload name (repeatable)"
    )
    p.add_argument(
        "--size", action="append", type=int, metavar="N", help="EDB size (repeatable)"
    )
    p.add_argument("--out", metavar="FILE", help="output path (default BENCH_<date>.json)")
    p.add_argument("--date", metavar="ISO", help="override the document date stamp")
    p.add_argument(
        "--backend",
        choices=["rows", "columnar", "both"],
        default="rows",
        help="storage backend(s) to measure; 'both' repeats every cell "
        "per backend (entries carry a 'backend' field)",
    )
    p.add_argument(
        "--workers",
        action="append",
        type=int,
        metavar="N",
        help="worker-process count to sweep (repeatable; default 1). "
        "Fixpoint cells are repeated per count and keyed by a "
        "'workers' entry field; other engines bench at 1 only",
    )
    p.add_argument(
        "--advised",
        action="store_true",
        help="add one advisor-picked cell per query-carrying workload "
        "(the specialization advisor chooses the rewrite/engine; entries "
        "carry 'advised: true')",
    )
    p.add_argument(
        "--compare",
        nargs="+",
        metavar="FILE",
        help="with one FILE: diff the new run against that baseline; "
        "with OLD NEW: diff two existing documents without running. "
        f"Exits {EXIT_REGRESSION} on a >20%% regression in rule_firings "
        "or elapsed_s",
    )
    p.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing document against the schema and exit",
    )
    p.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="write a durable checkpoint per fixpoint cell into DIR "
        "(one file per workload/size/engine/backend; resumable with "
        "the 'resume' verb)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in fixpoint rounds (default 1)",
    )
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "fuzz", help="differential-test the engines and optimizers on random inputs"
    )
    p.add_argument("--seeds", type=int, default=25)
    p.add_argument("--start-seed", type=int, default=0)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("examples", help="list the paper's worked examples")
    p.set_defaults(func=_cmd_examples)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
