"""Relation views and EDB/IDB splitting.

The paper treats a database interchangeably as one set of ground atoms
and as "an assignment of relations to predicates".  :class:`Relation`
is the second view: an immutable named snapshot of one predicate's
tuples, convenient for assertions in tests and for presenting results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..lang.atoms import Atom

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.programs import Program
    from .database import Database


@dataclass(frozen=True)
class Relation:
    """An immutable snapshot of one predicate's extension."""

    name: str
    arity: int
    rows: frozenset[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.rows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def atoms(self) -> Iterator[Atom]:
        for row in self.rows:
            yield Atom(self.name, row)

    def values(self) -> frozenset[tuple]:
        """Rows as raw Python values (constants unwrapped)."""
        out = set()
        for row in self.rows:
            out.add(tuple(getattr(t, "value", t) for t in row))
        return frozenset(out)

    def __str__(self) -> str:
        from ..lang.pretty import format_atoms

        return format_atoms(self.atoms())


def relation_of(db: "Database", predicate: str) -> Relation:
    """Snapshot one predicate of *db* as a :class:`Relation`."""
    rows = db.tuples(predicate)
    arity = db.arity(predicate) if rows else 0
    return Relation(predicate, arity, rows)


def split_edb_idb(db: "Database", program: "Program") -> tuple["Database", "Database"]:
    """Split *db* into its EDB-part and IDB-part relative to *program*.

    Predicates not mentioned by the program at all are grouped with the
    EDB (they are extensional from the program's point of view).
    """
    idb_preds = program.idb_predicates
    edb = db.restrict_to(db.predicates - idb_preds)
    idb = db.restrict_to(db.predicates & idb_preds)
    return edb, idb
