"""Hash indexes over stored relations.

Bottom-up Datalog evaluation spends nearly all of its time matching a
partially-bound body atom against a relation.  A
:class:`PredicateIndex` maintains, per argument position, a hash map
``value -> {tuples}`` so that a lookup with at least one bound position
touches only the matching bucket instead of scanning the relation.

Indexes are built lazily: the first probe on a position pays the build
cost, subsequent inserts maintain all built positions incrementally.
This matches the access pattern of semi-naive evaluation, where the same
positions are probed every iteration.
"""

from __future__ import annotations

from typing import Iterable

from ..lang.terms import Term

Tuple_ = tuple  # readability alias in annotations below


class PredicateIndex:
    """Per-position (and composite) hash index over one predicate's tuples.

    Besides the classic single-position maps, the index supports
    **composite** indexes over a *set* of positions: a map
    ``(v_1, ..., v_k) -> {tuples}`` keyed by the values at a sorted
    position tuple.  A probe with several bound positions then touches
    exactly the tuples matching *all* of them, instead of picking one
    position's bucket and filtering the rest tuple by tuple.  Composite
    indexes are built lazily per bound-position set (the compiled join
    kernels probe the same sets every round) and maintained on insert
    and removal like the single-position ones.
    """

    __slots__ = ("arity", "_positions", "_composites", "_probes")

    def __init__(self, arity: int):
        self.arity = arity
        #: position -> value -> set of tuples having that value there
        self._positions: dict[int, dict[Term, set[tuple[Term, ...]]]] = {}
        #: sorted position tuple -> value tuple -> set of tuples
        self._composites: dict[
            tuple[int, ...], dict[tuple[Term, ...], set[tuple[Term, ...]]]
        ] = {}
        self._probes = 0

    @property
    def probes(self) -> int:
        """Number of index probes served (for join-work accounting)."""
        return self._probes

    def built_positions(self) -> frozenset[int]:
        return frozenset(self._positions)

    def has_position(self, position: int) -> bool:
        """Is the single-position index for *position* built?  (Cheaper
        than :meth:`built_positions` on the per-probe hot path.)"""
        return position in self._positions

    def build(self, position: int, tuples: Iterable[tuple[Term, ...]]) -> None:
        """Build the index for *position* from the current tuples."""
        buckets: dict[Term, set[tuple[Term, ...]]] = {}
        for row in tuples:
            buckets.setdefault(row[position], set()).add(row)
        self._positions[position] = buckets

    def insert(self, row: tuple[Term, ...]) -> None:
        """Maintain all built positions (and composites) after an insert."""
        for position, buckets in self._positions.items():
            buckets.setdefault(row[position], set()).add(row)
        for positions, buckets in self._composites.items():
            key = tuple(row[p] for p in positions)
            buckets.setdefault(key, set()).add(row)

    def remove(self, row: tuple[Term, ...]) -> None:
        """Maintain all built positions (and composites) after a removal."""
        for position, buckets in self._positions.items():
            bucket = buckets.get(row[position])
            if bucket is not None:
                bucket.discard(row)
        for positions, buckets in self._composites.items():
            bucket = buckets.get(tuple(row[p] for p in positions))
            if bucket is not None:
                bucket.discard(row)

    def bucket(self, position: int, value: Term) -> set[tuple[Term, ...]] | None:
        """The tuples with *value* at *position*, or ``None`` if not built."""
        buckets = self._positions.get(position)
        if buckets is None:
            return None
        self._probes += 1
        return buckets.get(value, _EMPTY)

    def bucket_size(self, position: int, value: Term) -> int | None:
        """Size of the bucket without counting as a probe (for planning)."""
        buckets = self._positions.get(position)
        if buckets is None:
            return None
        hit = buckets.get(value)
        return len(hit) if hit is not None else 0

    # -- composite (multi-position) indexes ------------------------------------
    def composite_positions(self) -> frozenset[tuple[int, ...]]:
        """The built composite position sets (as sorted tuples)."""
        return frozenset(self._composites)

    def composite_count(self) -> int:
        return len(self._composites)

    def build_composite(
        self, positions: tuple[int, ...], tuples: Iterable[tuple[Term, ...]]
    ) -> None:
        """Build the composite index for the sorted *positions* tuple."""
        buckets: dict[tuple[Term, ...], set[tuple[Term, ...]]] = {}
        for row in tuples:
            buckets.setdefault(tuple(row[p] for p in positions), set()).add(row)
        self._composites[positions] = buckets

    def composite_bucket(
        self, positions: tuple[int, ...], values: tuple[Term, ...]
    ) -> set[tuple[Term, ...]] | None:
        """Tuples matching *values* at *positions*, or ``None`` if not built."""
        buckets = self._composites.get(positions)
        if buckets is None:
            return None
        self._probes += 1
        return buckets.get(values, _EMPTY)


_EMPTY: set = set()
