"""Hash indexes over stored relations.

Bottom-up Datalog evaluation spends nearly all of its time matching a
partially-bound body atom against a relation.  A
:class:`PredicateIndex` maintains, per argument position, a hash map
``value -> {tuples}`` so that a lookup with at least one bound position
touches only the matching bucket instead of scanning the relation.

Indexes are built lazily: the first probe on a position pays the build
cost, subsequent inserts maintain all built positions incrementally.
This matches the access pattern of semi-naive evaluation, where the same
positions are probed every iteration.
"""

from __future__ import annotations

from typing import Iterable

from ..lang.terms import Term

Tuple_ = tuple  # readability alias in annotations below


class PredicateIndex:
    """Per-position hash index over the tuples of one predicate."""

    __slots__ = ("arity", "_positions", "_probes")

    def __init__(self, arity: int):
        self.arity = arity
        #: position -> value -> set of tuples having that value there
        self._positions: dict[int, dict[Term, set[tuple[Term, ...]]]] = {}
        self._probes = 0

    @property
    def probes(self) -> int:
        """Number of index probes served (for join-work accounting)."""
        return self._probes

    def built_positions(self) -> frozenset[int]:
        return frozenset(self._positions)

    def build(self, position: int, tuples: Iterable[tuple[Term, ...]]) -> None:
        """Build the index for *position* from the current tuples."""
        buckets: dict[Term, set[tuple[Term, ...]]] = {}
        for row in tuples:
            buckets.setdefault(row[position], set()).add(row)
        self._positions[position] = buckets

    def insert(self, row: tuple[Term, ...]) -> None:
        """Maintain all built positions after an insert."""
        for position, buckets in self._positions.items():
            buckets.setdefault(row[position], set()).add(row)

    def remove(self, row: tuple[Term, ...]) -> None:
        """Maintain all built positions after a removal."""
        for position, buckets in self._positions.items():
            bucket = buckets.get(row[position])
            if bucket is not None:
                bucket.discard(row)

    def bucket(self, position: int, value: Term) -> set[tuple[Term, ...]] | None:
        """The tuples with *value* at *position*, or ``None`` if not built."""
        buckets = self._positions.get(position)
        if buckets is None:
            return None
        self._probes += 1
        return buckets.get(value, _EMPTY)

    def bucket_size(self, position: int, value: Term) -> int | None:
        """Size of the bucket without counting as a probe (for planning)."""
        buckets = self._positions.get(position)
        if buckets is None:
            return None
        hit = buckets.get(value)
        return len(hit) if hit is not None else 0


_EMPTY: set = set()
