"""Columnar storage: interned constants, ``array('q')`` columns, int views.

ROADMAP item 2: constants are interned to dense ints in a process-wide
:class:`SymbolTable` at load time, and every relation stores its facts
as per-position ``array('q')`` column logs plus a live set of int
tuples.  Join probes then compare machine ints instead of hashing Term
dataclasses, which is where the compiled kernels
(:mod:`repro.engine.compile`) get their throughput.

The backend is selected through the existing :class:`~.database.Database`
constructor -- ``Database(backend="columnar")`` -- and preserves the five
documented storage seams (``candidates`` / ``_add_row`` /
``__contains__`` / ``empty_like`` / ``copy``) bit-for-bit in behaviour;
see ``docs/STORAGE.md`` for the full contract.

**Representation convention ("ints pass through, Terms encode").**
Inside a columnar database a row is a tuple of interned ints.  Every
seam accepts both representations: an ``int`` argument is already
storage-encoded and passes through untouched, a
:class:`~repro.lang.terms.Term` argument is interned on the way in.
Decoding back to Terms happens only at output boundaries --
:meth:`ColumnarDatabase.atoms`, :meth:`ColumnarDatabase.decode_row`,
serialization, and pretty printing.  Engines therefore run their entire
fixpoint on ints and pay the decode cost once, on the final answers.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Mapping

from ..errors import ArityError, GroundnessError, ReproError
from ..lang.atoms import Atom
from ..lang.terms import Term, Variable
from ..obs.metrics import metrics_registry
from .database import _COMPOSITE_CAP, Database

_EMPTY: set = set()


class SymbolTable:
    """Process-wide interning of ground terms to dense ints.

    ``intern`` is idempotent and dense: the *n*-th distinct term ever
    interned gets id ``n``.  ``decode`` is the exact inverse.  All
    columnar databases in a process share one table (obtained through
    :func:`symbol_table`), so int rows can flow between databases --
    snapshots, deltas, copies -- without re-encoding.

    Interning accepts every ground term kind the parser produces:
    :class:`~repro.lang.terms.Constant` (int- and string-valued),
    :class:`~repro.lang.terms.Null`, and
    :class:`~repro.lang.terms.FrozenConstant`.  Variables are rejected.

    **Fork-safety.**  Ids are allocated in interning order and never
    reassigned, so a ``fork``-started worker inherits a table whose ids
    agree with the master's forever after -- new ids allocated on either
    side never collide with inherited ones the other side relies on,
    because the parallel engine pre-interns every term a worker will
    compile against *before* the pool starts.  ``spawn``-started workers
    get no memory snapshot; they replay the master's allocation order
    from :meth:`snapshot` via :meth:`preload` instead, which verifies id
    agreement.  While any worker pool is live,
    :func:`reset_symbol_table` refuses to run (the workers' int rows
    would silently decode through the wrong table).
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: Term) -> int:
        """The dense id of *term*, allocating one on first sight."""
        ident = self._ids.get(term)
        if ident is None:
            if isinstance(term, Variable) or not term.is_ground:
                raise GroundnessError(f"cannot intern non-ground term {term!r}")
            ident = len(self._terms)
            self._ids[term] = ident
            self._terms.append(term)
        return ident

    def lookup(self, term: Term) -> int | None:
        """The id of *term* if already interned, else ``None``."""
        return self._ids.get(term)

    def decode(self, ident: int) -> Term:
        """The term behind *ident* (inverse of :meth:`intern`)."""
        return self._terms[ident]

    def snapshot(self) -> tuple[Term, ...]:
        """Every interned term, in id order (id ``i`` = element ``i``).

        Ship this to a ``spawn``-started worker and :meth:`preload` it
        there to reproduce the master's id assignment exactly.
        """
        return tuple(self._terms)

    def preload(self, terms: Iterable[Term]) -> None:
        """Replay an interning order, verifying id agreement.

        Raises :class:`~repro.errors.ReproError` if any term lands on a
        different id than its position in *terms* -- that means this
        table already interned terms in another order and int rows
        would decode to the wrong constants.
        """
        for expected, term in enumerate(terms):
            got = self.intern(term)
            if got != expected:
                raise ReproError(
                    f"symbol table preload mismatch: {term!r} interned as id "
                    f"{got}, expected {expected}; the worker table was not "
                    "empty or diverged from the master's allocation order"
                )


_GLOBAL_TABLE = SymbolTable()

# Live worker pools holding forked/spawned copies of the table.  See
# note_pool_started / note_pool_stopped (called by the parallel engine's
# WorkerPool) and the reset_symbol_table guard below.
_LIVE_POOLS = 0


def note_pool_started() -> None:
    """Record that a worker pool sharing the process table went live."""
    global _LIVE_POOLS
    _LIVE_POOLS += 1


def note_pool_stopped() -> None:
    """Record that a worker pool shut down."""
    global _LIVE_POOLS
    _LIVE_POOLS = max(0, _LIVE_POOLS - 1)


def live_pool_count() -> int:
    """How many worker pools currently share the process table."""
    return _LIVE_POOLS


def symbol_table() -> SymbolTable:
    """The process-wide symbol table shared by all columnar databases."""
    return _GLOBAL_TABLE


def reset_symbol_table() -> SymbolTable:
    """Install a fresh process-wide table; returns it.  **Tests only.**

    Databases created before the reset keep their old table, so never
    mix pre- and post-reset databases in one evaluation.  Refuses to
    run while a parallel worker pool is live: the workers carry copies
    of the current table, and rows they return would decode through the
    replacement's unrelated id space.
    """
    global _GLOBAL_TABLE
    if _LIVE_POOLS > 0:
        raise ReproError(
            f"cannot reset the symbol table while {_LIVE_POOLS} worker "
            "pool(s) are live; close the pools first (their workers hold "
            "copies of the current table and their int rows would decode "
            "through the wrong ids)"
        )
    _GLOBAL_TABLE = SymbolTable()
    return _GLOBAL_TABLE


class ColumnarRelation:
    """One predicate's facts as column logs plus a live int-row set.

    * ``columns`` -- per-position ``array('q')`` append-order logs.
      Appends are O(arity); :meth:`discard` leaves the logged values in
      place (stale) and :meth:`copy` compacts them away.  The logs back
      the honest byte model (:meth:`approximate_bytes`) and cheap
      slice-copies of grow-only relations.
    * ``rows`` -- the authoritative live set of int tuples.  Membership,
      iteration, and equality all read it.
    * index **views** -- lazily built ``int -> {rows}`` maps per single
      position, and ``(int, ...) -> {rows}`` maps per sorted composite
      position tuple (capped like the row backend's
      :class:`~.indexes.PredicateIndex`), maintained on insert/discard.
    """

    __slots__ = ("arity", "columns", "rows", "appended", "probes", "_views", "_composites")

    def __init__(self, arity: int):
        self.arity = arity
        self.columns: tuple[array, ...] = tuple(array("q") for _ in range(arity))
        self.rows: set[tuple[int, ...]] = set()
        #: Total appends ever logged; ``appended > len(rows)`` means the
        #: column logs carry stale (discarded) entries.
        self.appended = 0
        self.probes = 0
        self._views: dict[int, dict[int, set]] = {}
        self._composites: dict[tuple[int, ...], dict[tuple, set]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.rows)

    def __contains__(self, row: tuple) -> bool:
        return row in self.rows

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarRelation):
            return self.rows == other.rows
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def add(self, row: tuple[int, ...]) -> bool:
        """Insert an int row; returns ``True`` iff it was new."""
        if row in self.rows:
            return False
        self.rows.add(row)
        for column, value in zip(self.columns, row):
            column.append(value)
        self.appended += 1
        for pos, view in self._views.items():
            view.setdefault(row[pos], set()).add(row)
        for positions, view in self._composites.items():
            view.setdefault(tuple(row[p] for p in positions), set()).add(row)
        return True

    def discard(self, row: tuple[int, ...]) -> bool:
        """Remove an int row from the live set and all built views.

        The column logs keep the stale values until the next
        :meth:`copy` compacts them (grow-only evaluation never pays).
        """
        if row not in self.rows:
            return False
        self.rows.discard(row)
        for pos, view in self._views.items():
            bucket = view.get(row[pos])
            if bucket is not None:
                bucket.discard(row)
        for positions, view in self._composites.items():
            bucket = view.get(tuple(row[p] for p in positions))
            if bucket is not None:
                bucket.discard(row)
        return True

    # -- index views -----------------------------------------------------------
    def bucket(self, position: int, value: int) -> set:
        """Live rows holding *value* at *position* (view built lazily)."""
        view = self._views.get(position)
        if view is None:
            view = {}
            for row in self.rows:
                view.setdefault(row[position], set()).add(row)
            self._views[position] = view
        self.probes += 1
        return view.get(value, _EMPTY)

    def composite_count(self) -> int:
        return len(self._composites)

    def build_composite(self, positions: tuple[int, ...]) -> None:
        view: dict[tuple, set] = {}
        for row in self.rows:
            view.setdefault(tuple(row[p] for p in positions), set()).add(row)
        self._composites[positions] = view

    def composite_bucket(
        self, positions: tuple[int, ...], values: tuple
    ) -> set | None:
        """Rows matching *values* at *positions*, or ``None`` if not built."""
        view = self._composites.get(positions)
        if view is None:
            return None
        self.probes += 1
        return view.get(values, _EMPTY)

    def filtered(self, bound: Mapping[int, int]) -> Iterable[tuple]:
        """Past-the-cap fallback: smallest single bucket, filter the rest."""
        best_pos = None
        best_bucket = None
        for pos, value in bound.items():
            bucket = self.bucket(pos, value)
            if not bucket:
                return ()
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_pos, best_bucket = pos, bucket
        remaining = [(p, v) for p, v in bound.items() if p != best_pos]
        return (row for row in best_bucket if all(row[p] == v for p, v in remaining))

    # -- lifecycle -------------------------------------------------------------
    def copy(self) -> "ColumnarRelation":
        """An independent compacted copy (views are rebuilt on demand)."""
        new = ColumnarRelation(self.arity)
        new.rows = set(self.rows)
        if self.appended == len(self.rows):
            # Grow-only: the logs are exactly the live rows; slice-copy.
            new.columns = tuple(array("q", column) for column in self.columns)
        else:
            # Discards happened: rebuild the logs from the live set.
            for row in new.rows:
                for column, value in zip(new.columns, row):
                    column.append(value)
        new.appended = len(new.rows)
        return new

    def approximate_bytes(self) -> int:
        """Column payload plus a per-live-row bookkeeping share."""
        return sum(len(column) for column in self.columns) * 8 + len(self.rows) * 24


class ColumnarDatabase(Database):
    """A :class:`Database` storing interned-int rows in columnar relations.

    Behaves identically through the five storage seams; see the module
    docstring for the int/Term representation convention and
    ``docs/STORAGE.md`` for the contract.  Construct directly, or via
    ``Database(backend="columnar")``.
    """

    __slots__ = ("_table",)

    def __init__(self, atoms: Iterable[Atom] = (), backend: str | None = None):
        if backend not in (None, "columnar"):
            raise ValueError(
                f"ColumnarDatabase only supports backend='columnar', got {backend!r}"
            )
        self._table = symbol_table()
        Database.__init__(self, atoms)

    # -- backend contract ------------------------------------------------------
    @property
    def backend(self) -> str:
        return "columnar"

    def store_term(self, value):
        """Storage representation of one ground value (int passes through)."""
        return value if type(value) is int else self._table.intern(value)

    def store_row(self, row: tuple) -> tuple:
        intern = self._table.intern
        return tuple(v if type(v) is int else intern(v) for v in row)

    def adapt_atom(self, atom: Atom) -> Atom:
        """*atom* with ground arguments in storage representation.

        Variables survive untouched, so the result is usable as a match
        pattern against stored rows.
        """
        intern = self._table.intern
        return Atom(
            atom.predicate,
            tuple(
                t if isinstance(t, Variable) or type(t) is int else intern(t)
                for t in atom.args
            ),
        )

    def decode_row(self, row: tuple) -> tuple:
        decode = self._table.decode
        return tuple(decode(v) if type(v) is int else v for v in row)

    def symbol_cardinality(self) -> int:
        return len(self._table)

    def approximate_bytes(self) -> int:
        return sum(rel.approximate_bytes() for rel in self._relations.values())

    # -- construction ----------------------------------------------------------
    def copy(self) -> "ColumnarDatabase":
        new = ColumnarDatabase.__new__(ColumnarDatabase)
        new._table = self._table
        new._relations = {p: rel.copy() for p, rel in self._relations.items()}
        new._arities = dict(self._arities)
        new._indexes = {}
        new._size = self._size
        new._scans = 0
        return new

    def empty_like(self) -> "ColumnarDatabase":
        new = ColumnarDatabase.__new__(ColumnarDatabase)
        new._table = self._table
        new._relations = {}
        new._arities = {}
        new._indexes = {}
        new._size = 0
        new._scans = 0
        return new

    # -- mutation --------------------------------------------------------------
    def add(self, atom: Atom) -> bool:
        for term in atom.args:
            if type(term) is not int and not term.is_ground:
                raise GroundnessError(f"cannot store non-ground atom {atom}")
        return self._add_row(atom.predicate, atom.args)

    def _add_row(self, predicate: str, row: tuple) -> bool:
        known_arity = self._arities.get(predicate)
        if known_arity is None:
            self._arities[predicate] = len(row)
            self._relations[predicate] = ColumnarRelation(len(row))
        elif known_arity != len(row):
            raise ArityError(
                f"predicate {predicate} has arity {known_arity}, got a {len(row)}-tuple"
            )
        intern = self._table.intern
        encoded = tuple(v if type(v) is int else intern(v) for v in row)
        if self._relations[predicate].add(encoded):
            self._size += 1
            return True
        return False

    def discard(self, atom: Atom) -> bool:
        rel = self._relations.get(atom.predicate)
        if rel is None:
            return False
        row = self._lookup_row(atom.args)
        if row is None or not rel.discard(row):
            return False
        self._size -= 1
        return True

    def _lookup_row(self, row: tuple) -> tuple | None:
        """*row* in storage representation, or ``None`` if any term is
        unknown to the table (then no stored row can match)."""
        lookup = self._table.lookup
        out = []
        for value in row:
            if type(value) is not int:
                value = lookup(value)
                if value is None:
                    return None
            out.append(value)
        return tuple(out)

    # -- queries ---------------------------------------------------------------
    def __contains__(self, atom: Atom) -> bool:
        rel = self._relations.get(atom.predicate)
        if rel is None:
            return False
        row = self._lookup_row(atom.args)
        return row is not None and row in rel.rows

    def contains_tuple(self, predicate: str, row: tuple) -> bool:
        rel = self._relations.get(predicate)
        if rel is None:
            return False
        encoded = self._lookup_row(row)
        return encoded is not None and encoded in rel.rows

    def atoms(self) -> Iterator[Atom]:
        decode = self._table.decode
        for pred, rel in self._relations.items():
            for row in rel.rows:
                yield Atom(pred, tuple(decode(v) for v in row))

    def atoms_for(self, predicate: str) -> Iterator[Atom]:
        decode = self._table.decode
        rel = self._relations.get(predicate)
        if rel is None:
            return
        for row in rel.rows:
            yield Atom(predicate, tuple(decode(v) for v in row))

    def difference(self, other: Database) -> frozenset[Atom]:
        if other.backend != self.backend:
            return frozenset(a for a in self.atoms() if a not in other)
        decode = self._table.decode
        out: set[Atom] = set()
        for pred, rel in self._relations.items():
            other_rel = other._relations.get(pred)
            other_rows = other_rel.rows if other_rel is not None else _EMPTY
            for row in rel.rows:
                if row not in other_rows:
                    out.add(Atom(pred, tuple(decode(v) for v in row)))
        return frozenset(out)

    def issubset(self, other: Database) -> bool:
        if other.backend != self.backend:
            return all(a in other for a in self.atoms())
        for pred, rel in self._relations.items():
            if not rel.rows:
                continue
            other_rel = other._relations.get(pred)
            if other_rel is None or not rel.rows <= other_rel.rows:
                return False
        return True

    # -- indexed matching ------------------------------------------------------
    def candidates(self, predicate: str, bound: Mapping[int, object]) -> Iterable[tuple]:
        rel = self._relations.get(predicate)
        if rel is None or not rel.rows:
            return ()
        if not bound:
            self._scans += 1
            return rel.rows
        lookup = self._table.lookup
        if len(bound) == 1:
            ((pos, value),) = bound.items()
            if type(value) is not int:
                value = lookup(value)
                if value is None:
                    return ()
            return rel.bucket(pos, value)
        encoded: dict[int, int] = {}
        for pos, value in bound.items():
            if type(value) is not int:
                value = lookup(value)
                if value is None:
                    return ()
            encoded[pos] = value
        positions = tuple(sorted(encoded))
        values = tuple(encoded[p] for p in positions)
        hit = rel.composite_bucket(positions, values)
        if hit is None:
            if rel.composite_count() < _COMPOSITE_CAP:
                rel.build_composite(positions)
                metrics_registry().increment("index.composite_built")
                hit = rel.composite_bucket(positions, values)
            else:
                return rel.filtered(encoded)
        return hit if hit is not None else ()

    def probe_count(self) -> int:
        return sum(rel.probes for rel in self._relations.values())
