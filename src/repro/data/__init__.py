"""Fact storage: databases of ground atoms, relations, and hash indexes."""

from __future__ import annotations

from .database import Database
from .indexes import PredicateIndex
from .relations import Relation, relation_of, split_edb_idb

__all__ = [
    "Database",
    "PredicateIndex",
    "Relation",
    "relation_of",
    "split_edb_idb",
]
