"""Fact storage: databases of ground atoms, relations, and hash indexes.

Two interchangeable backends live here (contract: ``docs/STORAGE.md``):
the row backend (:class:`Database`, Term-tuple sets with lazy
:class:`PredicateIndex` buckets) and the columnar backend
(:class:`ColumnarDatabase`, interned-int rows over ``array('q')``
column logs).  Select with ``Database(backend="columnar"|"rows")``.
"""

from __future__ import annotations

from .columnar import ColumnarDatabase, ColumnarRelation, SymbolTable, symbol_table
from .database import Database
from .indexes import PredicateIndex
from .relations import Relation, relation_of, split_edb_idb

__all__ = [
    "ColumnarDatabase",
    "ColumnarRelation",
    "Database",
    "PredicateIndex",
    "Relation",
    "SymbolTable",
    "relation_of",
    "split_edb_idb",
    "symbol_table",
]
