"""Databases of ground atoms.

Section III: "A collection of relations, such as a database, can be
viewed as a single set consisting of all the ground atoms of these
relations."  :class:`Database` is exactly that set, stored per-predicate
for efficient joins, with lazily-built per-position hash indexes.

The same class serves as

* the EDB / input of a program,
* the combined DB (EDB plus IDB) computed by a program,
* the canonical databases of the chase (which may contain
  :class:`~repro.lang.terms.Null` and
  :class:`~repro.lang.terms.FrozenConstant` terms).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import ArityError, GroundnessError
from ..lang.atoms import Atom, coerce_term
from ..obs.metrics import metrics_registry
from .indexes import PredicateIndex

#: Most composite (multi-position) indexes kept per predicate.  Compiled
#: join kernels probe a small, fixed family of bound-position sets, so a
#: modest cap covers them; past it, probes fall back to the
#: smallest-single-bucket + filter path.
_COMPOSITE_CAP = 16


class Database:
    """A mutable set of ground atoms, grouped by predicate.

    **Fault seams.** The engines reach storage through exactly three
    methods -- :meth:`candidates` (every join probe), :meth:`_add_row`
    (every insertion, via :meth:`add`/:meth:`add_fact`) and
    :meth:`__contains__` (membership tests).  The fault-injection
    harness (:class:`repro.resilience.faults.FaultyDatabase`) relies on
    this: it subclasses ``Database`` and overrides only those three
    seams, so any new storage entry point added here must either route
    through them or be mirrored in the harness.
    """

    __slots__ = ("_relations", "_arities", "_indexes", "_size", "_scans")

    def __new__(cls, atoms: Iterable[Atom] = (), backend: str | None = None):
        # ``Database(backend="columnar")`` dispatches to the columnar
        # subclass (see repro.data.columnar); subclasses constructed
        # directly are never redirected.
        if cls is Database and backend is not None and backend != "rows":
            if backend == "columnar":
                from .columnar import ColumnarDatabase

                return super().__new__(ColumnarDatabase)
            raise ValueError(
                f"unknown storage backend {backend!r}; expected 'rows' or 'columnar'"
            )
        return super().__new__(cls)

    def __init__(self, atoms: Iterable[Atom] = (), backend: str | None = None):
        self._relations: dict[str, set[tuple]] = {}
        self._arities: dict[str, int] = {}
        self._indexes: dict[str, PredicateIndex] = {}
        self._size = 0
        self._scans = 0
        for atom in atoms:
            self.add(atom)

    # -- backend contract ------------------------------------------------------
    @property
    def backend(self) -> str:
        """Storage backend name (``"rows"`` here; ``"columnar"`` in the
        columnar subclass).  Part of the contract in ``docs/STORAGE.md``."""
        return "rows"

    def store_term(self, value):
        """One ground value in this backend's storage representation.

        Identity on the row backend; the columnar backend interns Terms
        to dense ints (and passes already-encoded ints through).
        """
        return value

    def store_row(self, row: tuple) -> tuple:
        """A whole row in storage representation (identity here)."""
        return row

    def adapt_atom(self, atom: Atom) -> Atom:
        """*atom* with its ground arguments in storage representation,
        usable as a match pattern against rows of this database."""
        return atom

    def decode_row(self, row: tuple) -> tuple:
        """A stored row decoded back to Terms (identity here)."""
        return row

    def symbol_cardinality(self) -> int:
        """Distinct interned constants, or 0 when the backend does not
        intern (the cost model falls back to per-relation statistics)."""
        return 0

    def approximate_bytes(self) -> int:
        """Backend-honest memory estimate (see the resource governor).

        Row backend: tuple header + per-slot pointer + an amortized
        share of the Term objects, per stored row.
        """
        total = 0
        for pred, rows in self._relations.items():
            total += len(rows) * (56 + self._arities[pred] * 56)
        return total

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Database":
        return cls(atoms)

    @classmethod
    def from_facts(cls, facts: Mapping[str, Iterable[tuple]]) -> "Database":
        """Build from ``{"A": [(1, 2), (1, 4)], ...}`` with raw Python values."""
        db = cls()
        for pred, rows in facts.items():
            for row in rows:
                db.add_fact(pred, *row)
        return db

    def copy(self) -> "Database":
        """An independent copy (indexes are rebuilt lazily on demand).

        Deliberately constructs a plain ``Database``; subclasses that
        must survive the engines' defensive copies (e.g. the
        fault-injection wrapper) override this.
        """
        new = Database.__new__(Database)
        new._relations = {p: set(rows) for p, rows in self._relations.items()}
        new._arities = dict(self._arities)
        new._indexes = {}
        new._size = self._size
        new._scans = 0
        return new

    def empty_like(self) -> "Database":
        """A fresh empty database with the same storage behaviour.

        The semi-naive engines allocate their pre-round snapshots
        through this seam; the fault-injection wrapper overrides it so
        snapshots stay fault-wrapped under the same plan.
        """
        return Database()

    # -- mutation ----------------------------------------------------------------
    def add(self, atom: Atom) -> bool:
        """Add a ground atom; return ``True`` iff it was new."""
        if not atom.is_ground:
            raise GroundnessError(f"cannot store non-ground atom {atom}")
        return self._add_row(atom.predicate, atom.args)

    def add_fact(self, predicate: str, *args) -> bool:
        """Add a fact from raw Python values (ints/strings become constants)."""
        row = tuple(coerce_term(a) for a in args)
        for term in row:
            if not term.is_ground:
                raise GroundnessError(f"cannot store non-ground fact {predicate}{row}")
        return self._add_row(predicate, row)

    def _add_row(self, predicate: str, row: tuple) -> bool:
        known_arity = self._arities.get(predicate)
        if known_arity is None:
            self._arities[predicate] = len(row)
            self._relations[predicate] = set()
        elif known_arity != len(row):
            raise ArityError(
                f"predicate {predicate} has arity {known_arity}, got a {len(row)}-tuple"
            )
        relation = self._relations[predicate]
        if row in relation:
            return False
        relation.add(row)
        self._size += 1
        index = self._indexes.get(predicate)
        if index is not None:
            index.insert(row)
        return True

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Add many atoms; return how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    def discard(self, atom: Atom) -> bool:
        """Remove a ground atom; return ``True`` iff it was present.

        Built indexes are maintained.  Used by incremental view
        maintenance; most other code treats databases as grow-only.
        """
        rows = self._relations.get(atom.predicate)
        if rows is None or atom.args not in rows:
            return False
        rows.discard(atom.args)
        self._size -= 1
        index = self._indexes.get(atom.predicate)
        if index is not None:
            index.remove(atom.args)
        return True

    def discard_all(self, atoms: Iterable[Atom]) -> int:
        """Remove many atoms; return how many were present."""
        return sum(1 for atom in atoms if self.discard(atom))

    def update(self, other: "Database") -> int:
        """Union-in another database; return the number of new atoms.

        Same-backend unions move raw rows; across backends the atoms are
        decoded and re-encoded through :meth:`add`.
        """
        if other.backend != self.backend:
            return sum(1 for atom in other.atoms() if self.add(atom))
        added = 0
        for pred, rows in other._relations.items():
            for row in rows:
                if self._add_row(pred, row):
                    added += 1
        return added

    # -- queries ---------------------------------------------------------------------
    def __contains__(self, atom: Atom) -> bool:
        rows = self._relations.get(atom.predicate)
        return rows is not None and atom.args in rows

    def contains_tuple(self, predicate: str, row: tuple) -> bool:
        rows = self._relations.get(predicate)
        return rows is not None and row in rows

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if other.backend != self.backend:
            return self.as_atom_set() == other.as_atom_set()
        mine = {p: rows for p, rows in self._relations.items() if rows}
        theirs = {p: rows for p, rows in other._relations.items() if rows}
        return mine == theirs

    def __hash__(self):  # pragma: no cover - mutable containers are unhashable
        raise TypeError("Database is mutable and unhashable; use frozenset(db.atoms())")

    @property
    def predicates(self) -> frozenset[str]:
        """Predicates with at least one stored fact."""
        return frozenset(p for p, rows in self._relations.items() if rows)

    def arity(self, predicate: str) -> int:
        return self._arities[predicate]

    def count(self, predicate: str) -> int:
        rows = self._relations.get(predicate)
        return len(rows) if rows is not None else 0

    def tuples(self, predicate: str) -> frozenset[tuple]:
        """All tuples of one predicate (empty if unknown)."""
        rows = self._relations.get(predicate)
        return frozenset(rows) if rows is not None else frozenset()

    def atoms(self) -> Iterator[Atom]:
        """Iterate over every ground atom in the database."""
        for pred, rows in self._relations.items():
            for row in rows:
                yield Atom(pred, row)

    def atoms_for(self, predicate: str) -> Iterator[Atom]:
        for row in self._relations.get(predicate, ()):
            yield Atom(predicate, row)

    def as_atom_set(self) -> frozenset[Atom]:
        return frozenset(self.atoms())

    def restrict_to(self, predicates: Iterable[str]) -> "Database":
        """A copy containing only the given predicates' facts."""
        wanted = set(predicates)
        new = self.empty_like()
        for pred in wanted:
            for row in self._relations.get(pred, ()):
                new._add_row(pred, row)
        return new

    def difference(self, other: "Database") -> frozenset[Atom]:
        """Atoms in ``self`` but not in *other*."""
        if other.backend != self.backend:
            return frozenset(a for a in self.atoms() if a not in other)
        out: set[Atom] = set()
        for pred, rows in self._relations.items():
            other_rows = other._relations.get(pred, set())
            for row in rows:
                if row not in other_rows:
                    out.add(Atom(pred, row))
        return frozenset(out)

    def issubset(self, other: "Database") -> bool:
        if other.backend != self.backend:
            return all(a in other for a in self.atoms())
        for pred, rows in self._relations.items():
            if rows and not rows <= other._relations.get(pred, set()):
                return False
        return True

    # -- indexed matching -----------------------------------------------------------
    def candidates(self, predicate: str, bound: Mapping[int, object]) -> Iterable[tuple]:
        """Tuples of *predicate* consistent with the *bound* positions.

        *bound* maps argument positions to required ground terms.  With
        no bound positions this is a full scan.  A single bound position
        is served from that position's bucket; several bound positions
        are served from a composite index over exactly that position
        set, built lazily on first probe (capped at
        :data:`_COMPOSITE_CAP` per predicate, past which the probe falls
        back to the smallest single bucket plus per-tuple filtering).

        Returned tuples always satisfy **all** the bound positions.
        """
        rows = self._relations.get(predicate)
        if not rows:
            return ()
        if not bound:
            self._scans += 1
            return rows
        index = self._indexes.get(predicate)
        if index is None:
            index = PredicateIndex(self._arities[predicate])
            self._indexes[predicate] = index
        if len(bound) == 1:
            ((pos, value),) = bound.items()
            if not index.has_position(pos):
                index.build(pos, rows)
            return index.bucket(pos, value) or ()
        positions = tuple(sorted(bound))
        values = tuple(bound[p] for p in positions)
        hit = index.composite_bucket(positions, values)
        if hit is None:
            if index.composite_count() < _COMPOSITE_CAP:
                index.build_composite(positions, rows)
                metrics_registry().increment("index.composite_built")
                hit = index.composite_bucket(positions, values)
            else:
                return self._filtered_candidates(index, rows, bound)
        return hit or ()

    def _filtered_candidates(
        self, index: PredicateIndex, rows: set[tuple], bound: Mapping[int, object]
    ) -> Iterable[tuple]:
        """Multi-bound fallback: smallest single bucket, filter the rest.

        An empty bucket at *any* bound position means no tuple can
        satisfy all of them, so the probe exits immediately.
        """
        best_pos = None
        best_size = None
        for pos in bound:
            if not index.has_position(pos):
                index.build(pos, rows)
            size = index.bucket_size(pos, bound[pos])
            if not size:
                return ()
            if best_size is None or size < best_size:
                best_pos, best_size = pos, size
        bucket = index.bucket(best_pos, bound[best_pos])  # type: ignore[arg-type]
        if not bucket:
            return ()
        remaining = [(p, v) for p, v in bound.items() if p != best_pos]
        return (row for row in bucket if all(row[p] == v for p, v in remaining))

    def probe_count(self) -> int:
        """Total index probes across all predicates (join-work metric)."""
        return sum(ix.probes for ix in self._indexes.values())

    def scan_count(self) -> int:
        """Unindexed full-relation scans served by :meth:`candidates`.

        Together with :meth:`probe_count` this splits the join access
        pattern: probes hit an index bucket, scans walk a whole
        relation (a subgoal with no bound positions).  Engine root
        spans attach both (see :mod:`repro.obs.tracer`).
        """
        return self._scans

    # -- presentation ------------------------------------------------------------------
    def __str__(self) -> str:
        from ..lang.pretty import format_atoms

        return format_atoms(self.atoms())

    def __repr__(self) -> str:
        counts = ", ".join(f"{p}:{len(rows)}" for p, rows in sorted(self._relations.items()) if rows)
        return f"<Database {self._size} atoms ({counts})>"
