"""Reporters turning :class:`~repro.analysis.lint.Diagnostic` lists into output.

Two formats, mirroring the conventions of mainstream linters:

* **text** -- one ``path:line:col: severity rule-id message`` line per
  finding (flake8-style), fix suggestions indented beneath, and a
  one-line summary;
* **json** -- a single machine-readable object with a schema version,
  per-finding dictionaries (rule id, severity, message, rule index,
  ``rule_ref`` with the rule's full source extent, line/column, fix),
  and severity counts.  The output round-trips through ``json.loads``.

Each finding additionally carries a **stable identifier** (``id``):
``<rule-id>@r<rule-index>`` for rule-anchored findings and
``<rule-id>@program`` for program-level ones, with an ordinal suffix
(``#2``, ``#3``, ...) disambiguating repeats.  Identifiers depend on
the rule *index*, not on line numbers, so a CI diff of two reports
stays quiet when unrelated edits move rules down the file.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .lint import SEVERITIES, Diagnostic

#: Bumped when the JSON shape changes incompatibly.  2: added per-finding
#: stable ``id`` and structured ``rule_ref`` (index + full source span).
JSON_SCHEMA_VERSION = 2


def severity_counts(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Finding count per severity, every severity present (possibly 0)."""
    counts = {severity: 0 for severity in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def stable_id(diagnostic: Diagnostic, ordinal: int = 1) -> str:
    """The finding's line-move-tolerant identifier (see module docstring)."""
    anchor = (
        f"r{diagnostic.rule_index}"
        if diagnostic.rule_index is not None
        else "program"
    )
    base = f"{diagnostic.rule_id}@{anchor}"
    return base if ordinal == 1 else f"{base}#{ordinal}"


def diagnostic_payloads(diagnostics: Sequence[Diagnostic]) -> list[dict]:
    """JSON-ready finding dicts, each with its stable ``id`` injected."""
    ordinals: dict[str, int] = {}
    payloads: list[dict] = []
    for diagnostic in diagnostics:
        base = stable_id(diagnostic)
        ordinals[base] = ordinals.get(base, 0) + 1
        payload = {"id": stable_id(diagnostic, ordinals[base])}
        payload.update(diagnostic.to_dict())
        payloads.append(payload)
    return payloads


def render_text(diagnostics: Sequence[Diagnostic], filename: str = "<program>") -> str:
    """The human-readable report (one finding per line, then a summary)."""
    lines: list[str] = []
    for diagnostic in diagnostics:
        if diagnostic.span is not None:
            where = f"{filename}:{diagnostic.span.line}:{diagnostic.span.column}"
        elif diagnostic.rule_index is not None:
            where = f"{filename}:rule[{diagnostic.rule_index}]"
        else:
            where = filename
        lines.append(
            f"{where}: {diagnostic.severity} [{diagnostic.rule_id}] {diagnostic.message}"
        )
        if diagnostic.fix is not None:
            lines.append(f"    fix: {diagnostic.fix.description}")
            if diagnostic.fix.replacement is not None:
                lines.append(f"         {diagnostic.fix.replacement}")
    if not diagnostics:
        lines.append(f"{filename}: clean (no lint findings)")
    else:
        counts = severity_counts(diagnostics)
        summary = ", ".join(
            f"{counts[severity]} {severity}" for severity in SEVERITIES if counts[severity]
        )
        lines.append(f"{len(diagnostics)} finding(s): {summary}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], filename: str = "<program>") -> str:
    """The machine-readable report as a JSON string."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "filename": filename,
        "diagnostics": diagnostic_payloads(diagnostics),
        "counts": severity_counts(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


__all__ = [
    "JSON_SCHEMA_VERSION",
    "diagnostic_payloads",
    "render_json",
    "render_text",
    "severity_counts",
    "stable_id",
]
