"""Safety (range-restriction) diagnostics.

Rules already enforce safety at construction time
(:class:`~repro.errors.UnsafeRuleError`), so a well-typed
:class:`~repro.lang.programs.Program` is always safe.  This module
provides *diagnostic* entry points for tools that want to validate text
before construction, or to explain exactly which variables are loose.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError, UnsafeRuleError
from ..lang.rules import Rule
from ..lang.terms import Variable


@dataclass(frozen=True)
class SafetyViolation:
    """One loose variable in one rule.

    ``rule_index`` and ``line`` are filled by the whole-program entry
    point (:func:`check_program_source`); the single-rule entry point
    leaves them at their defaults.
    """

    rule_text: str
    variable: Variable
    location: str  # "head" or "negated literal"
    rule_index: int | None = None
    line: int | None = None

    def __str__(self) -> str:
        return f"variable {self.variable} in {self.location} of '{self.rule_text}' is not range-restricted"


def check_rule_source(source: str) -> list[SafetyViolation]:
    """Parse one rule from text and report violations instead of raising.

    Returns an empty list when the rule is safe; parse errors still
    raise :class:`~repro.errors.ParseError`.
    """
    from ..lang.parser import _Parser  # local import: diagnostic-only dependency

    parser = _Parser(source)
    head = parser.parse_atom()
    body = []
    if parser.current.kind == "implies":
        parser.advance()
        body.append(parser.parse_literal())
        while parser.accept_punct(","):
            body.append(parser.parse_literal())
    parser.expect("punct", ".")
    parser.finish()

    positive_vars: set[Variable] = set()
    for literal in body:
        if literal.positive:
            positive_vars.update(literal.atom.variables())

    text = _render(head, body)
    violations = [
        SafetyViolation(text, var, "head")
        for var in sorted(set(head.variables()) - positive_vars, key=lambda v: v.name)
    ]
    for literal in body:
        if not literal.positive:
            for var in sorted(literal.atom.variable_set() - positive_vars, key=lambda v: v.name):
                violations.append(SafetyViolation(text, var, "negated literal"))
    return violations


def check_program_source(source: str) -> list[SafetyViolation]:
    """Validate a whole program text, reporting every loose variable.

    Unlike :func:`repro.lang.parse_program` -- which raises
    :class:`~repro.errors.UnsafeRuleError` at the first unsafe rule --
    this walks *all* rules and collects every violation, annotated with
    the 0-based rule index and source line.  Parse errors still raise
    :class:`~repro.errors.ParseError` (malformed text has no rules to
    diagnose).
    """
    from ..lang.parser import _Parser  # local import: diagnostic-only dependency

    parser = _Parser(source)
    violations: list[SafetyViolation] = []
    rule_index = 0
    while parser.current.kind != "eof":
        line = parser.current.line
        head = parser.parse_atom()
        body = []
        if parser.current.kind == "implies":
            parser.advance()
            body.append(parser.parse_literal())
            while parser.accept_punct(","):
                body.append(parser.parse_literal())
        parser.expect("punct", ".")

        positive_vars: set[Variable] = set()
        for literal in body:
            if literal.positive:
                positive_vars.update(literal.atom.variables())
        text = _render(head, body)
        for var in sorted(set(head.variables()) - positive_vars, key=lambda v: v.name):
            violations.append(SafetyViolation(text, var, "head", rule_index, line))
        for literal in body:
            if not literal.positive:
                for var in sorted(
                    literal.atom.variable_set() - positive_vars, key=lambda v: v.name
                ):
                    violations.append(
                        SafetyViolation(text, var, "negated literal", rule_index, line)
                    )
        rule_index += 1
    parser.finish()
    return violations


def _render(head, body) -> str:
    if not body:
        return f"{head}."
    return f"{head} :- {', '.join(str(b) for b in body)}."


def assert_safe(rule: Rule) -> Rule:
    """Identity assertion; kept for symmetric, self-documenting call sites.

    :class:`~repro.lang.rules.Rule` construction already guarantees
    safety, so this never raises for a constructed rule.
    """
    if rule is None:  # pragma: no cover - defensive
        raise UnsafeRuleError("no rule given")
    return rule


__all__ = [
    "SafetyViolation",
    "assert_safe",
    "check_program_source",
    "check_rule_source",
    "ParseError",
]
