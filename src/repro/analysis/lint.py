"""A diagnostics framework for Datalog programs.

The paper's optimizations are, read statically, *lint findings*: a
redundant body atom or rule (Section VII, Figs. 1-2) is provable by a
cheap uniform-containment test, and the Section XI syntactic properties
point at candidate tgds before any equivalence proof is attempted.
This module packages those -- plus the purely structural checks the
``analysis`` package already knows how to do -- behind one pass:

* :class:`Diagnostic` -- one finding: lint-rule id, severity
  (``error`` > ``warning`` > ``info`` > ``hint``), message, the index
  of the offending program rule, its source span when the program was
  parsed with :func:`repro.lang.parse_program_with_spans`, and an
  optional :class:`Fix`.
* :class:`LintRule` -- one registered pass over a program; built-in
  rules live in :mod:`repro.analysis.lint_rules` (imported lazily so
  the registry is populated on first use).
* :class:`Linter` -- runs a configured subset of the registry and
  returns sorted diagnostics.
* :func:`lint` / :func:`lint_source` -- the one-call APIs.  The source
  variant additionally reports syntax, arity, and safety problems
  (rule ids ``syntax``, ``arity``, ``safety``) that make a program
  unconstructible, instead of raising.

Containment-backed rules (``redundant-atom``, ``redundant-rule``) share
one :class:`~repro.core.minimize.ContainmentBudget`; when it runs out a
single ``containment-budget`` info diagnostic reports how many tests
were skipped, so linting stays fast and honest on large programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..engine.fixpoint import EngineName
from ..errors import ArityError, ParseError, UnsafeRuleError
from ..lang.parser import SourceSpan, parse_program_with_spans
from ..lang.programs import Program
from ..lang.rules import Rule

#: Severities, most severe first.
SEVERITIES: tuple[str, ...] = ("error", "warning", "info", "hint")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Diagnostic ids that are produced outside the registered passes
#: (source-level problems and the budget notice).
PSEUDO_RULE_IDS: frozenset[str] = frozenset(
    {"syntax", "arity", "safety", "containment-budget"}
)


def severity_at_least(severity: str, threshold: str) -> bool:
    """Whether *severity* is as severe as *threshold* or more so."""
    return _SEVERITY_RANK[severity] <= _SEVERITY_RANK[threshold]


@dataclass(frozen=True)
class Fix:
    """A structured fix suggestion attached to a diagnostic.

    ``replacement`` is the source text the offending rule should become;
    ``None`` means the fix is to delete the rule.
    """

    description: str
    replacement: str | None = None

    def to_dict(self) -> dict:
        return {"description": self.description, "replacement": self.replacement}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule_id: str
    severity: str
    message: str
    rule_index: int | None = None
    span: SourceSpan | None = None
    fix: Fix | None = None

    def __post_init__(self):
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}; use one of {SEVERITIES}")

    def to_dict(self) -> dict:
        """A JSON-ready rendering (keys always present, ``None`` when absent).

        ``rule_ref`` carries the rule index together with the rule's
        full source extent; CI tooling diffing reports should key on it
        (or on the stable ``id`` that
        :func:`repro.analysis.lint_report.diagnostic_payloads` adds)
        rather than on raw line numbers, which move with every edit
        above the rule.
        """
        rule_ref = None
        if self.rule_index is not None or self.span is not None:
            rule_ref = {
                "index": self.rule_index,
                "span": (
                    {
                        "line": self.span.line,
                        "column": self.span.column,
                        "end_line": self.span.end_line,
                        "end_column": self.span.end_column,
                    }
                    if self.span
                    else None
                ),
            }
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "rule_index": self.rule_index,
            "rule_ref": rule_ref,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "fix": self.fix.to_dict() if self.fix else None,
        }

    def sort_key(self) -> tuple:
        return (
            self.rule_index if self.rule_index is not None else 1_000_000_000,
            _SEVERITY_RANK[self.severity],
            self.rule_id,
            self.message,
        )

    def __str__(self) -> str:
        where = f"rule {self.rule_index}" if self.rule_index is not None else "program"
        return f"[{self.rule_id}] {self.severity} at {where}: {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Configuration shared by every pass of one linter run."""

    select: frozenset[str] | None = None  # None = all registered rules
    ignore: frozenset[str] = frozenset()
    max_containment_checks: int | None = 64
    engine: EngineName = "seminaive"
    #: Exported (output) predicates for the ``unused-idb`` reachability
    #: check; ``None`` disables that rule (without export information
    #: every terminal predicate is presumed an output).
    exported: frozenset[str] | None = None
    max_tgd_candidates_per_rule: int = 3
    #: Tgds constraining the program; feed the chase-termination lint
    #: rules (``weakly-acyclic-certified``, ``nonterminating-chase-risk``),
    #: which stay silent when no tgds are supplied.
    tgds: tuple = ()
    #: Closure-size budget for the ``adornment-space-explosion`` rule
    #: (mirrors ``specialize.DEFAULT_ADORNMENT_BUDGET``).
    adornment_budget: int = 64

    def enables(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select


class LintContext:
    """Everything a :class:`LintRule` may consult while checking."""

    def __init__(
        self,
        program: Program,
        config: LintConfig,
        spans: Mapping[Rule, SourceSpan] | None = None,
    ):
        from ..core.minimize import ContainmentBudget

        self.program = program
        self.config = config
        self.spans: Mapping[Rule, SourceSpan] = spans or {}
        self.containment_budget = ContainmentBudget(config.max_containment_checks)
        self._index: dict[Rule, int] = {r: i for i, r in enumerate(program.rules)}
        self._facts = None
        self._sorts = None
        self._recursion = None
        self._termination = None

    @property
    def facts(self):
        """Shared :class:`~repro.analysis.absint.framework.ProgramFacts`.

        Built on first use and reused by every pass of the run, so the
        dependence graph and its SCCs are computed once per program
        rather than once per rule (or once per lint pass).
        """
        if self._facts is None:
            from .absint.framework import ProgramFacts

            self._facts = ProgramFacts(self.program)
        return self._facts

    def sorts(self):
        """The sort-propagation analysis, run once and shared."""
        if self._sorts is None:
            from .absint.sorts import analyze_sorts

            self._sorts = analyze_sorts(self.program, self.facts)
        return self._sorts

    def recursion(self):
        """The recursion classification, run once and shared."""
        if self._recursion is None:
            from .absint.recursion import classify_recursion

            self._recursion = classify_recursion(self.program, self.facts)
        return self._recursion

    def termination(self):
        """The chase-termination classification, run once and shared.

        Classifies ``config.tgds`` together with the program's rules;
        with no tgds configured the result is trivially ``full-only``.
        """
        if self._termination is None:
            from .absint.termination import classify_termination

            self._termination = classify_termination(
                self.config.tgds, self.program
            )
        return self._termination

    def index_of(self, rule: Rule) -> int | None:
        return self._index.get(rule)

    def diagnostic(
        self,
        rule_id: str,
        severity: str,
        message: str,
        rule: Rule | None = None,
        fix: Fix | None = None,
    ) -> Diagnostic:
        """Build a diagnostic, resolving the rule's index and span."""
        return Diagnostic(
            rule_id=rule_id,
            severity=severity,
            message=message,
            rule_index=self.index_of(rule) if rule is not None else None,
            span=self.spans.get(rule) if rule is not None else None,
            fix=fix,
        )


class LintRule:
    """One registered lint pass.

    Subclasses set ``rule_id``, ``severity`` (the default severity of
    their findings), a one-line ``description``, and implement
    :meth:`check`.  Passes must not mutate the program.
    """

    rule_id: str = ""
    severity: str = "warning"
    description: str = ""

    def check(self, context: LintContext) -> Iterable[Diagnostic]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, LintRule] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding an instance of *cls* to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {instance.rule_id!r}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def _ensure_builtin_rules() -> None:
    from . import lint_rules  # noqa: F401  (import populates the registry)
    from . import lint_absint  # noqa: F401  (abstract-interpretation passes)
    from . import lint_specialize  # noqa: F401  (specialization-analysis passes)


def registered_rules() -> dict[str, LintRule]:
    """The registry of lint passes, id -> instance (built-ins loaded)."""
    _ensure_builtin_rules()
    return dict(_REGISTRY)


def known_rule_ids() -> frozenset[str]:
    """Every id valid in ``select``/``ignore`` (passes + pseudo-rules)."""
    return frozenset(registered_rules()) | PSEUDO_RULE_IDS


class Linter:
    """Runs a registry of lint passes over a program."""

    def __init__(
        self,
        rules: Sequence[LintRule] | None = None,
        config: LintConfig | None = None,
    ):
        self.config = config or LintConfig()
        if rules is None:
            rules = list(registered_rules().values())
        self.rules = [r for r in rules if self.config.enables(r.rule_id)]

    def run(
        self,
        program: Program,
        spans: Mapping[Rule, SourceSpan] | None = None,
    ) -> list[Diagnostic]:
        context = LintContext(program, self.config, spans)
        diagnostics: list[Diagnostic] = []
        for rule in self.rules:
            diagnostics.extend(rule.check(context))
        if context.containment_budget.skipped and self.config.enables("containment-budget"):
            diagnostics.append(
                Diagnostic(
                    rule_id="containment-budget",
                    severity="info",
                    message=(
                        f"containment budget of {self.config.max_containment_checks} "
                        f"test(s) exhausted; {context.containment_budget.skipped} "
                        "check(s) skipped (raise --max-containment-checks for full coverage)"
                    ),
                )
            )
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics


def lint(
    program: Program,
    config: LintConfig | None = None,
    spans: Mapping[Rule, SourceSpan] | None = None,
) -> list[Diagnostic]:
    """Run every registered lint pass over *program*."""
    return Linter(config=config).run(program, spans)


def lint_source(source: str, config: LintConfig | None = None) -> list[Diagnostic]:
    """Lint program *text*, reporting construction problems as diagnostics.

    A program that cannot be parsed (``syntax``), uses a predicate with
    two arities (``arity``), or contains unsafe rules (``safety``) never
    becomes a :class:`~repro.lang.programs.Program`; those findings are
    returned instead of raised, with per-rule detail for safety via
    :func:`repro.analysis.safety.check_program_source`.
    """
    config = config or LintConfig()
    try:
        parsed = parse_program_with_spans(source)
    except ParseError as error:
        span = None
        if error.line is not None:
            span = SourceSpan(error.line, error.column or 1, error.line, error.column or 1)
        return _filtered(
            [Diagnostic("syntax", "error", str(error), span=span)], config
        )
    except ArityError as error:
        return _filtered([Diagnostic("arity", "error", str(error))], config)
    except UnsafeRuleError:
        from .safety import check_program_source

        diagnostics = []
        for violation in check_program_source(source):
            span = None
            if violation.line is not None:
                span = SourceSpan(violation.line, 1, violation.line, 1)
            diagnostics.append(
                Diagnostic(
                    rule_id="safety",
                    severity="error",
                    message=str(violation),
                    rule_index=violation.rule_index,
                    span=span,
                )
            )
        return _filtered(diagnostics, config)
    return Linter(config=config).run(parsed.program, parsed.spans)


def _filtered(diagnostics: list[Diagnostic], config: LintConfig) -> list[Diagnostic]:
    return [d for d in diagnostics if config.enables(d.rule_id)]


def max_severity(diagnostics: Iterable[Diagnostic]) -> str | None:
    """The most severe severity present, or ``None`` for a clean run."""
    best: str | None = None
    for diagnostic in diagnostics:
        if best is None or _SEVERITY_RANK[diagnostic.severity] < _SEVERITY_RANK[best]:
            best = diagnostic.severity
    return best


__all__ = [
    "Diagnostic",
    "Fix",
    "LintConfig",
    "LintContext",
    "LintRule",
    "Linter",
    "PSEUDO_RULE_IDS",
    "SEVERITIES",
    "known_rule_ids",
    "lint",
    "lint_source",
    "max_severity",
    "register",
    "registered_rules",
    "severity_at_least",
]
