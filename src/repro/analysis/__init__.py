"""Structural program analysis: dependence graphs, recursion, safety."""

from __future__ import annotations

from .classification import (
    ProgramProfile,
    is_initialization_rule,
    is_nonrecursive,
    profile,
    shares_initialization_rules,
)
from .dependence import DependenceGraph
from .relevance import (
    RelevanceResult,
    relevant_predicates,
    restrict_to_goal,
    unreachable_predicates,
)
from .safety import SafetyViolation, check_rule_source

__all__ = [
    "DependenceGraph",
    "ProgramProfile",
    "RelevanceResult",
    "SafetyViolation",
    "check_rule_source",
    "is_initialization_rule",
    "is_nonrecursive",
    "profile",
    "relevant_predicates",
    "restrict_to_goal",
    "shares_initialization_rules",
    "unreachable_predicates",
]
