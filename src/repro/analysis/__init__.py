"""Structural program analysis: dependence graphs, recursion, safety, linting."""

from __future__ import annotations

from .classification import (
    ProgramProfile,
    is_initialization_rule,
    is_nonrecursive,
    profile,
    shares_initialization_rules,
)
from .dependence import DependenceGraph
from .lint import (
    Diagnostic,
    Fix,
    LintConfig,
    LintRule,
    Linter,
    known_rule_ids,
    lint,
    lint_source,
    registered_rules,
    severity_at_least,
)
from .lint_report import render_json, render_text, severity_counts
from .relevance import (
    RelevanceResult,
    relevant_predicates,
    restrict_to_goal,
    unreachable_predicates,
)
from .safety import SafetyViolation, check_program_source, check_rule_source

__all__ = [
    "DependenceGraph",
    "Diagnostic",
    "Fix",
    "LintConfig",
    "LintRule",
    "Linter",
    "ProgramProfile",
    "RelevanceResult",
    "SafetyViolation",
    "check_program_source",
    "check_rule_source",
    "is_initialization_rule",
    "is_nonrecursive",
    "known_rule_ids",
    "lint",
    "lint_source",
    "profile",
    "registered_rules",
    "relevant_predicates",
    "render_json",
    "render_text",
    "restrict_to_goal",
    "severity_at_least",
    "severity_counts",
    "shares_initialization_rules",
    "unreachable_predicates",
]
