"""Query forms and specialization materialization (no execution).

A *query form* is a predicate plus an adornment — the unit the advisor
plans for.  The CLI accepts two spellings:

* a concrete atom, ``Tc("a", y)`` — the adornment is derived from which
  arguments are constants, exactly as :func:`repro.engine.magic
  .magic_transform` would;
* an adornment pattern, ``Tc(bf)`` (predicate resolved
  case-insensitively, so ``tc(bf)`` works too) — a synthetic *probe
  atom* with placeholder constants at the bound positions stands in for
  any concrete query of that shape.  The distinction is harmless: the
  rewriting's **rules** depend only on the boundness pattern; constants
  appear in the seed fact alone.

:func:`materialize_specialization` builds the magic-rewritten program
for a form *without evaluating it*.  For positive programs it is
:func:`~repro.engine.magic.magic_transform` verbatim (so the analyzed
program is byte-for-byte the one ``query --method magic`` runs).  For
programs with negation — which ``magic_transform`` rejects, since the
rewrite can break stratification — it runs the same demand-driven
rewriting but preserves literal polarity, producing an *analysis
artifact*: the specialize domain classifies it (the
``magic-unstratifiable`` lint reads the answer) but never recommends
executing it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...engine.magic import (
    Adornment,
    MagicRewriting,
    adorned_name,
    demanded_closure,
    magic_name,
    magic_transform,
    _apply_sips,
)
from ...lang.atoms import Atom, Literal
from ...lang.programs import Program
from ...lang.rules import Rule
from ...lang.terms import Constant, Variable

_PATTERN_FORM = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(\s*([bf]+)\s*\)\s*$"
)


class QueryFormError(ValueError):
    """A query form that cannot be resolved against the program."""


@dataclass(frozen=True)
class QueryForm:
    """A (predicate, adornment) pair with a probe atom to analyze."""

    predicate: str
    adornment: Adornment
    probe: Atom

    @property
    def suffix(self) -> str:
        return self.adornment.suffix

    @property
    def display(self) -> str:
        return f"{self.predicate}({self.suffix})"


def _probe_atom(predicate: str, adornment: Adornment) -> Atom:
    """A synthetic atom of the given shape: constants at bound slots."""
    return Atom(
        predicate,
        tuple(
            Constant(i) if bound else Variable(f"x{i}")
            for i, bound in enumerate(adornment.pattern)
        ),
    )


def parse_query_form(text: str, program: Program) -> QueryForm:
    """Resolve a ``--query`` argument against *program*.

    Tries the adornment-pattern spelling first (``Tc(bf)``, predicate
    case-insensitive, argument string over ``{b, f}`` matching the
    predicate's arity); anything else must parse as a plain atom.  An
    atom like ``P(bf)`` whose single argument is the *variable* ``bf``
    is taken as a pattern when ``P`` has arity 2 and as an atom when it
    has arity 1 — the arity check disambiguates.
    """
    arities = program.arities
    match = _PATTERN_FORM.match(text)
    if match is not None:
        name, suffix = match.groups()
        resolved = _resolve_predicate(name, program)
        if resolved is not None and arities.get(resolved) == len(suffix):
            adornment = Adornment(tuple(ch == "b" for ch in suffix))
            return QueryForm(resolved, adornment, _probe_atom(resolved, adornment))
    from ...lang.parser import parse_atom

    try:
        atom = parse_atom(text)
    except Exception as exc:
        raise QueryFormError(
            f"query form {text!r} is neither an adornment pattern "
            f"('Pred(bf)') nor a parseable atom: {exc}"
        ) from exc
    resolved = _resolve_predicate(atom.predicate, program)
    if resolved is None:
        raise QueryFormError(
            f"query predicate {atom.predicate!r} does not occur in the program"
        )
    if arities.get(resolved) != len(atom.args):
        raise QueryFormError(
            f"query {text!r} has arity {len(atom.args)}; "
            f"{resolved} has arity {arities.get(resolved)}"
        )
    if resolved != atom.predicate:
        atom = Atom(resolved, atom.args)
    return QueryForm(resolved, Adornment.for_atom(atom, frozenset()), atom)


def _resolve_predicate(name: str, program: Program) -> str | None:
    """Exact match first, then unique case-insensitive match."""
    if name in program.predicates:
        return name
    folded = [p for p in sorted(program.predicates) if p.lower() == name.lower()]
    return folded[0] if len(folded) == 1 else None


def default_query_forms(program: Program) -> list[QueryForm]:
    """The forms analyzed when ``--query`` is not given.

    For every IDB predicate: the fully-bound form (the point query a
    serving daemon answers) and the fully-free form (the full
    materialization baseline).
    """
    forms: list[QueryForm] = []
    arities = program.arities
    for pred in sorted(program.idb_predicates):
        arity = arities[pred]
        patterns = [Adornment((True,) * arity)]
        if arity:
            patterns.append(Adornment.all_free(arity))
        for adornment in patterns:
            forms.append(QueryForm(pred, adornment, _probe_atom(pred, adornment)))
    return forms


def materialize_specialization(
    program: Program, query: Atom, sips: str = "left-to-right"
) -> MagicRewriting:
    """The magic rewriting of *program* for *query*, never executed.

    Positive programs delegate to :func:`magic_transform` (identical
    output, shared closure cache).  With negation, the same demand set
    drives a polarity-preserving variant; its stratifiability is the
    ``stratifiable_after_magic`` verdict.
    """
    if program.is_positive:
        return magic_transform(program, query, sips=sips)

    query_adornment, closure = demanded_closure(program, query, sips=sips)
    seed_args = tuple(query.args[i] for i in query_adornment.bound_positions)
    seed = Atom(magic_name(query.predicate, query_adornment), seed_args)
    idb = program.idb_predicates
    out_rules: list[Rule] = []
    for pred, adornment in closure:
        for rule in program.rules_for(pred):
            ordered = _apply_sips(rule, adornment, sips)
            out_rules.extend(_rewrite_rule_with_negation(ordered, adornment, idb))
    return MagicRewriting(
        program=Program(out_rules),
        seed=seed,
        query_atom=query,
        adorned_query_predicate=adorned_name(query.predicate, query_adornment),
    )


def _rewrite_rule_with_negation(
    rule: Rule, head_adornment: Adornment, idb: frozenset[str]
) -> list[Rule]:
    """``magic._rewrite_rule`` generalized to keep literal polarity.

    Binding propagation mirrors ``binding_analysis`` exactly (negated
    literals contribute their variables too — in a safe rule they are
    bound elsewhere anyway), so the generated adornments stay within
    the demanded closure.
    """
    head = rule.head
    bound_vars: set[Variable] = set()
    for pos in head_adornment.bound_positions:
        term = head.args[pos]
        if isinstance(term, Variable):
            bound_vars.add(term)

    magic_head_args = tuple(head.args[pos] for pos in head_adornment.bound_positions)
    guard = Atom(magic_name(head.predicate, head_adornment), magic_head_args)

    transformed: list[Literal] = []
    magic_rules: list[Rule] = []
    for literal in rule.body:
        atom = literal.atom
        if atom.predicate in idb:
            sub_adornment = Adornment.for_atom(atom, frozenset(bound_vars))
            magic_args = tuple(atom.args[i] for i in sub_adornment.bound_positions)
            magic_rules.append(
                Rule(
                    Atom(magic_name(atom.predicate, sub_adornment), magic_args),
                    [Literal(guard), *(Literal(lit.atom) for lit in transformed if lit.positive)],
                )
            )
            transformed.append(
                Literal(
                    Atom(adorned_name(atom.predicate, sub_adornment), atom.args),
                    positive=literal.positive,
                )
            )
        else:
            transformed.append(literal)
        bound_vars.update(atom.variables())

    modified = Rule(
        Atom(adorned_name(head.predicate, head_adornment), head.args),
        [Literal(guard), *transformed],
    )
    return [modified, *magic_rules]


__all__ = [
    "QueryForm",
    "QueryFormError",
    "default_query_forms",
    "materialize_specialization",
    "parse_query_form",
]
