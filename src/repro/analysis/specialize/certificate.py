"""Plan certificates: the advisor's checkable, loadable output.

A :class:`PlanCertificate` is the prepared-program cache entry ROADMAP
item 4's serving daemon loads: per query form, the recommended rewrite
and engine plus the *evidence* that justifies them (adornment closure,
stratification status, cost intervals, classification flags).  It is
keyed by :func:`repro.lang.canonical.canonical_program_key`, so any
program in the same isomorphism class — same rules up to variable
renaming and rule order — can consume it.

The JSON document is schema-versioned (``ADVISE_SCHEMA_VERSION``);
consumers must validate with :func:`validate_certificate_document`
before trusting a file from disk.  The certificate carries everything
needed to *skip* re-analysis at query time:

* ``closure`` per plan — preloaded into the magic adornment-closure
  cache, so ``magic_transform`` never reruns ``binding_analysis``;
* ``hints`` (original program) and per-plan ``hints`` (rewritten
  program) — installed into the kernel planner, so ``KernelCache``
  never reruns the cardinality analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Bump when the certificate document shape changes incompatibly.
ADVISE_SCHEMA_VERSION = 1

#: Values the ``recommendation.rewrite`` field may take.
REWRITES = ("magic", "none")
#: Values the ``recommendation.method`` field may take: registry query
#: methods plus ``evaluate`` (bottom-up fixpoint, answers selected).
METHODS = ("magic", "supplementary", "topdown", "evaluate")


class CertificateError(ValueError):
    """A certificate document that fails schema validation."""


@dataclass(frozen=True)
class Recommendation:
    """How to run one query form: rewrite × method × inner engine."""

    rewrite: str  # "magic" | "none"
    method: str  # "magic" | "supplementary" | "topdown" | "evaluate"
    engine: str  # inner fixpoint engine, e.g. "seminaive" | "stratified"
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "rewrite": self.rewrite,
            "method": self.method,
            "engine": self.engine,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Recommendation":
        return cls(
            rewrite=doc["rewrite"],
            method=doc["method"],
            engine=doc["engine"],
            reason=doc.get("reason", ""),
        )


@dataclass
class SpecializationPlan:
    """One query form's analyzed specialization."""

    predicate: str
    adornment: str  # suffix, e.g. "bf"
    query: str  # display form, e.g. "Tc(bf)"
    #: Demanded (predicate, adornment-suffix) pairs in discovery order —
    #: exactly the magic closure, preloadable into engine/magic's cache.
    closure: tuple[tuple[str, str], ...]
    recommendation: Recommendation
    #: Class-membership verdicts for the rewritten program.
    classification: dict[str, bool] = field(default_factory=dict)
    stratification: dict[str, Any] = field(default_factory=dict)
    #: Static cost evidence: per candidate, an interval string and an
    #: integer estimate comparable across candidates.
    cost: dict[str, Any] = field(default_factory=dict)
    issues: list[dict] = field(default_factory=list)
    #: Canonical key of the rewritten program (None when rewrite="none").
    rewritten_program_key: str | None = None
    rewritten_rules: int = 0
    #: Planner hints for the rewritten program.
    hints: dict[str, int] = field(default_factory=dict)

    @property
    def closure_size(self) -> int:
        return len(self.closure)

    def to_dict(self) -> dict:
        return {
            "predicate": self.predicate,
            "adornment": self.adornment,
            "query": self.query,
            "closure": [list(pair) for pair in self.closure],
            "closure_size": self.closure_size,
            "recommendation": self.recommendation.to_dict(),
            "classification": dict(self.classification),
            "stratification": dict(self.stratification),
            "cost": dict(self.cost),
            "issues": list(self.issues),
            "rewritten_program_key": self.rewritten_program_key,
            "rewritten_rules": self.rewritten_rules,
            "hints": dict(self.hints),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SpecializationPlan":
        return cls(
            predicate=doc["predicate"],
            adornment=doc["adornment"],
            query=doc.get("query", f"{doc['predicate']}({doc['adornment']})"),
            closure=tuple((p, a) for p, a in doc["closure"]),
            recommendation=Recommendation.from_dict(doc["recommendation"]),
            classification=dict(doc.get("classification", {})),
            stratification=dict(doc.get("stratification", {})),
            cost=dict(doc.get("cost", {})),
            issues=list(doc.get("issues", [])),
            rewritten_program_key=doc.get("rewritten_program_key"),
            rewritten_rules=int(doc.get("rewritten_rules", 0)),
            hints={p: int(n) for p, n in doc.get("hints", {}).items()},
        )


@dataclass
class PlanCertificate:
    """The advisor's output for one program: plans per query form."""

    program_key: str
    sips: str
    assume_edb: int
    plans: list[SpecializationPlan]
    #: Planner hints for the *original* program.
    hints: dict[str, int] = field(default_factory=dict)
    source: str | None = None
    version: int = ADVISE_SCHEMA_VERSION

    def plan_for(self, predicate: str, adornment_suffix: str) -> SpecializationPlan | None:
        for plan in self.plans:
            if plan.predicate == predicate and plan.adornment == adornment_suffix:
                return plan
        return None

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "schema": f"repro.advise/{self.version}",
            "program_key": self.program_key,
            "sips": self.sips,
            "assume_edb": self.assume_edb,
            "source": self.source,
            "hints": dict(self.hints),
            "plans": [plan.to_dict() for plan in self.plans],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "PlanCertificate":
        errors = validate_certificate_document(doc)
        if errors:
            raise CertificateError("; ".join(errors))
        return cls(
            program_key=doc["program_key"],
            sips=doc["sips"],
            assume_edb=int(doc["assume_edb"]),
            plans=[SpecializationPlan.from_dict(p) for p in doc["plans"]],
            hints={p: int(n) for p, n in doc.get("hints", {}).items()},
            source=doc.get("source"),
            version=int(doc["version"]),
        )


def validate_certificate_document(doc: Any) -> list[str]:
    """Schema-validate a certificate document; returns human findings."""
    errors: list[str] = []
    if not isinstance(doc, Mapping):
        return ["certificate must be a JSON object"]
    version = doc.get("version")
    if version != ADVISE_SCHEMA_VERSION:
        errors.append(
            f"unsupported certificate version {version!r}; "
            f"this build reads version {ADVISE_SCHEMA_VERSION}"
        )
        return errors
    for key in ("program_key", "sips"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"missing or non-string field {key!r}")
    if not isinstance(doc.get("assume_edb"), int) or doc.get("assume_edb", 0) <= 0:
        errors.append("assume_edb must be a positive integer")
    plans = doc.get("plans")
    if not isinstance(plans, list):
        return errors + ["plans must be a list"]
    seen: set[tuple[str, str]] = set()
    for i, plan in enumerate(plans):
        where = f"plans[{i}]"
        if not isinstance(plan, Mapping):
            errors.append(f"{where} must be an object")
            continue
        pred = plan.get("predicate")
        suffix = plan.get("adornment")
        if not isinstance(pred, str) or not pred:
            errors.append(f"{where}.predicate missing")
            continue
        if not isinstance(suffix, str) or any(ch not in "bf" for ch in suffix):
            errors.append(f"{where}.adornment must be a string over 'b'/'f'")
            continue
        if (pred, suffix) in seen:
            errors.append(f"{where} duplicates query form {pred}({suffix})")
        seen.add((pred, suffix))
        closure = plan.get("closure")
        if not isinstance(closure, list) or not all(
            isinstance(pair, (list, tuple))
            and len(pair) == 2
            and isinstance(pair[0], str)
            and isinstance(pair[1], str)
            and all(ch in "bf" for ch in pair[1])
            for pair in closure
        ):
            errors.append(f"{where}.closure must be a list of [predicate, adornment] pairs")
        rec = plan.get("recommendation")
        if not isinstance(rec, Mapping):
            errors.append(f"{where}.recommendation missing")
        else:
            if rec.get("rewrite") not in REWRITES:
                errors.append(f"{where}.recommendation.rewrite must be one of {REWRITES}")
            if rec.get("method") not in METHODS:
                errors.append(f"{where}.recommendation.method must be one of {METHODS}")
            if not isinstance(rec.get("engine"), str) or not rec.get("engine"):
                errors.append(f"{where}.recommendation.engine missing")
        hints = plan.get("hints", {})
        if not isinstance(hints, Mapping) or not all(
            isinstance(k, str) and isinstance(v, int) for k, v in hints.items()
        ):
            errors.append(f"{where}.hints must map predicates to integers")
    return errors


def load_certificate(path: str) -> PlanCertificate:
    """Read, schema-validate, and deserialize a certificate file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CertificateError(f"cannot read certificate {path}: {exc}") from exc
    return PlanCertificate.from_dict(doc)


def save_certificate(certificate: PlanCertificate, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(certificate.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "ADVISE_SCHEMA_VERSION",
    "CertificateError",
    "PlanCertificate",
    "Recommendation",
    "SpecializationPlan",
    "load_certificate",
    "save_certificate",
    "validate_certificate_document",
]
