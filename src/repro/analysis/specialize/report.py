"""Reporters for the ``advise`` verb (text and JSON).

The JSON document embeds the plan certificate verbatim (same keys a
``--export`` file holds, so the two never drift) plus the findings of
the specialization lint pair and their severity counts — the same
finding payloads, stable ids included, that ``lint --format json``
emits.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..lint import Diagnostic
from ..lint_report import diagnostic_payloads, severity_counts
from .certificate import PlanCertificate


def render_advise_json(
    certificate: PlanCertificate,
    diagnostics: Sequence[Diagnostic],
    filename: str = "<program>",
) -> str:
    document = certificate.to_dict()
    document["filename"] = filename
    document["diagnostics"] = diagnostic_payloads(diagnostics)
    document["counts"] = severity_counts(diagnostics)
    return json.dumps(document, indent=2, sort_keys=True)


def render_advise_text(
    certificate: PlanCertificate,
    diagnostics: Sequence[Diagnostic],
    filename: str = "<program>",
) -> str:
    lines = [
        f"{filename}: specialization advice "
        f"(sips={certificate.sips}, assume-edb={certificate.assume_edb}, "
        f"program key {certificate.program_key[:12]}...)"
    ]
    for plan in certificate.plans:
        rec = plan.recommendation
        lines.append(f"  {plan.query}:")
        lines.append(
            f"    recommend: rewrite={rec.rewrite} method={rec.method} "
            f"engine={rec.engine}"
        )
        if rec.reason:
            lines.append(f"      ({rec.reason})")
        lines.append(
            "    closure: "
            + (
                ", ".join(f"{p}({a})" for p, a in plan.closure)
                if plan.closure
                else "(none)"
            )
            + f" [{plan.closure_size} adorned predicate"
            + ("s" if plan.closure_size != 1 else "")
            + "]"
        )
        if plan.classification:
            flags = ", ".join(
                f"{name}={'yes' if value else 'no'}"
                for name, value in sorted(plan.classification.items())
            )
            lines.append(f"    class: {flags}")
        if plan.cost:
            parts = []
            for candidate in ("none", "magic"):
                entry = plan.cost.get(candidate)
                if entry:
                    parts.append(
                        f"{candidate}: {entry['interval']} "
                        f"(est {entry['estimate']})"
                    )
            lines.append("    cost: " + "; ".join(parts))
        if plan.stratification.get("status") == "unstratifiable":
            cycle = ", ".join(plan.stratification.get("negative_cycle", []))
            lines.append(f"    stratification: BROKEN by rewrite ({cycle})")
        for issue in plan.issues:
            lines.append(f"    issue [{issue['kind']}]: {issue['message']}")
    if diagnostics:
        lines.append("")
        for diagnostic in diagnostics:
            lines.append(f"  {diagnostic}")
    counts = severity_counts(diagnostics)
    summary = ", ".join(
        f"{n} {severity}{'s' if n != 1 else ''}"
        for severity, n in counts.items()
        if n
    )
    lines.append("")
    lines.append(
        f"{len(certificate.plans)} plan"
        + ("s" if len(certificate.plans) != 1 else "")
        + (f"; {summary}" if summary else "; no findings")
    )
    return "\n".join(lines)


__all__ = ["render_advise_json", "render_advise_text"]
