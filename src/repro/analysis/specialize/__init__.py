"""Whole-program specialization analysis (the ``advise`` verb).

Statically decides, per query form (predicate + adornment), how a query
should be run — which rewrite, which engine — and emits a
schema-versioned :class:`~.certificate.PlanCertificate` carrying the
evidence.  The certificate is keyed by the program's canonical
isomorphism class and is exactly the prepared-program cache entry a
query-serving daemon loads: ``query --certificate`` consumes it to skip
re-analysis (ROADMAP item 4).
"""

from .advisor import (
    DEFAULT_ADORNMENT_BUDGET,
    advise_form,
    advise_program,
    apply_certificate,
    execute_plan,
    select_answers,
)
from .certificate import (
    ADVISE_SCHEMA_VERSION,
    CertificateError,
    PlanCertificate,
    Recommendation,
    SpecializationPlan,
    load_certificate,
    save_certificate,
    validate_certificate_document,
)
from .rewrite import (
    QueryForm,
    QueryFormError,
    default_query_forms,
    materialize_specialization,
    parse_query_form,
)

__all__ = [
    "ADVISE_SCHEMA_VERSION",
    "CertificateError",
    "DEFAULT_ADORNMENT_BUDGET",
    "PlanCertificate",
    "QueryForm",
    "QueryFormError",
    "Recommendation",
    "SpecializationPlan",
    "advise_form",
    "advise_program",
    "apply_certificate",
    "default_query_forms",
    "execute_plan",
    "load_certificate",
    "materialize_specialization",
    "parse_query_form",
    "save_certificate",
    "select_answers",
    "validate_certificate_document",
]
