"""The specialization advisor: static engine/rewrite selection per query form.

For each query form the advisor

1. computes the reachable adornment closure (the groundness domain's
   demanded-adornment fixpoint, shared with ``engine/magic.py`` through
   its closure cache);
2. materializes the magic-rewritten specialization **without executing
   it** (:func:`.rewrite.materialize_specialization`);
3. runs the existing absint domains over the rewriting to classify it —
   ``stratifiable_after_magic`` (dependence graph of the rewriting has
   no negative cycle), ``linear`` (recursion domain), ``bounded_depth``
   (no recursive SCC survives the rewriting), ``chase_terminating``
   (termination domain, rules as full tgds);
4. costs both candidates from cardinality intervals: the unrestricted
   bottom-up fixpoint over the query's relevant subprogram vs. the
   specialized program, where a bound argument position divides the
   domain-size estimate (each bound column is one selection over an
   active domain of ``assume_edb`` constants);
5. emits a :class:`~.certificate.SpecializationPlan` with the
   recommendation and all the evidence.

The advisor only ever recommends methods it can *execute faithfully*
(:func:`execute_plan`): ``magic`` (positive programs, rewriting
identical to ``query --method magic``) or ``evaluate`` (bottom-up
fixpoint, answers selected by matching).  ``supplementary`` and
``topdown`` remain user-selectable via ``query --method``; their
rewritings differ from the analyzed one, so the certificate makes no
claim about them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...data.database import Database
from ...engine.fixpoint import EvaluationResult, evaluate
from ...engine.magic import Adornment, answer_query, preload_closure
from ...lang.atoms import Atom
from ...lang.canonical import canonical_program_key
from ...lang.programs import Program
from ...lang.terms import Variable
from ...obs.metrics import metrics_registry
from ...obs.tracer import trace
from ...resilience.governor import ResourceGovernor
from ..absint.cardinality import CAP, DEFAULT_EDB_SIZE, analyze_cardinality
from ..absint.framework import ProgramFacts
from ..absint.groundness import binding_analysis
from ..absint.recursion import classify_recursion
from ..absint.termination import classify_termination
from ..dependence import DependenceGraph
from ..relevance import relevant_predicates
from .certificate import (
    CertificateError,
    PlanCertificate,
    Recommendation,
    SpecializationPlan,
)
from .rewrite import QueryForm, default_query_forms, materialize_specialization

#: The analysis name under which metrics are recorded.
DOMAIN_NAME = "specialize"

#: Closure sizes above this trip the adornment-space-explosion lint.
DEFAULT_ADORNMENT_BUDGET = 64


def advise_program(
    program: Program,
    query_forms: Sequence[QueryForm] | None = None,
    sips: str = "left-to-right",
    assume_edb: int = DEFAULT_EDB_SIZE,
    source: str | None = None,
    facts: ProgramFacts | None = None,
) -> PlanCertificate:
    """Analyze every query form and emit the program's plan certificate."""
    if facts is None:
        facts = ProgramFacts(program)
    if query_forms is None:
        query_forms = default_query_forms(program)
    program_key = canonical_program_key(program)
    base = analyze_cardinality(program, facts, default_edb=assume_edb)
    plans: list[SpecializationPlan] = []
    with trace("advise.program", forms=len(query_forms)) as span:
        for form in query_forms:
            plans.append(
                advise_form(
                    program,
                    form,
                    sips=sips,
                    assume_edb=assume_edb,
                    facts=facts,
                    program_key=program_key,
                    base_hints=base.hints,
                    base_values=base.values,
                )
            )
        if span:
            span.add("plans", len(plans))
    metrics_registry().record_analysis(DOMAIN_NAME, len(plans), 0)
    return PlanCertificate(
        program_key=program_key,
        sips=sips,
        assume_edb=assume_edb,
        plans=plans,
        hints=dict(base.hints),
        source=source,
    )


def advise_form(
    program: Program,
    form: QueryForm,
    sips: str = "left-to-right",
    assume_edb: int = DEFAULT_EDB_SIZE,
    facts: ProgramFacts | None = None,
    program_key: str | None = None,
    base_hints: dict[str, int] | None = None,
    base_values=None,
) -> SpecializationPlan:
    """Analyze one query form; the per-form half of :func:`advise_program`."""
    if facts is None:
        facts = ProgramFacts(program)
    if program_key is None:
        program_key = canonical_program_key(program)
    if base_hints is None or base_values is None:
        base = analyze_cardinality(program, facts, default_edb=assume_edb)
        base_hints, base_values = base.hints, base.values

    if form.predicate not in program.idb_predicates:
        return SpecializationPlan(
            predicate=form.predicate,
            adornment=form.suffix,
            query=form.display,
            closure=(),
            recommendation=Recommendation(
                "none",
                "evaluate",
                "seminaive",
                "EDB predicate: answers are selected directly, nothing to specialize",
            ),
            classification={},
            stratification={"status": "stratified", "negative_cycle": []},
            cost={},
        )

    analysis = binding_analysis(program, form.probe, sips=sips, facts=facts)
    closure = tuple((pred, a.suffix) for pred, a in analysis.demand)
    # Warm the magic closure cache: the materialization below — and any
    # later magic_transform for this form — reuses the demand set.
    preload_closure(program_key, form.predicate, form.suffix, sips, closure)
    issues = [issue.to_dict() for issue in analysis.issues]

    rewriting = materialize_specialization(program, form.probe, sips=sips)
    rewritten = rewriting.program
    rfacts = ProgramFacts(rewritten)
    negative_cycle = sorted(rfacts.dependence.negative_cycle_predicates())
    stratifiable = not negative_cycle
    recursion = classify_recursion(rewritten, rfacts)
    # Cost the rewriting with its seed in place: the magic predicate is
    # IDB there, so without the seed fact every interval collapses to 0.
    from ...lang.rules import Rule

    seeded = Program([*rewritten.rules, Rule(rewriting.seed, ())])
    rewritten_card = analyze_cardinality(seeded, default_edb=assume_edb)
    termination = classify_termination((), rewritten)

    classification = {
        "stratifiable_after_magic": stratifiable,
        "linear": recursion.linear,
        "bounded_depth": not recursion.recursive_sccs,
        "chase_terminating": termination.certificate.guarantees_termination,
    }
    stratification = {
        "status": "stratified" if stratifiable else "unstratifiable",
        "negative_cycle": negative_cycle,
    }

    relevant = relevant_predicates(program, form.predicate)
    idb = program.idb_predicates
    cost_none = sum(base_hints.get(p, assume_edb) for p in relevant if p in idb)
    cost_magic = _specialized_cost(analysis.demand, base_hints, program.arities, assume_edb)
    adorned_query = rewriting.adorned_query_predicate
    cost = {
        "none": {
            "interval": base_values[form.predicate].describe(),
            "estimate": cost_none,
        },
        "magic": {
            "interval": rewritten_card.values[adorned_query].describe(),
            "estimate": cost_magic,
        },
    }

    recommendation = _recommend(
        program, form, stratifiable, cost_none, cost_magic
    )
    return SpecializationPlan(
        predicate=form.predicate,
        adornment=form.suffix,
        query=form.display,
        closure=closure,
        recommendation=recommendation,
        classification=classification,
        stratification=stratification,
        cost=cost,
        issues=issues,
        rewritten_program_key=canonical_program_key(rewritten),
        rewritten_rules=len(rewritten.rules),
        hints=dict(rewritten_card.hints),
    )


def _specialized_cost(
    demand: Iterable[tuple[str, Adornment]],
    base_hints: dict[str, int],
    arities: dict[str, int],
    assume_edb: int,
) -> int:
    """Estimated fact volume of the magic-rewritten program.

    Each demanded adornment contributes its source predicate's estimate
    divided by ``assume_edb`` per bound position — a bound column is one
    selection over the active domain — plus one magic tuple.  The
    denominator mirrors the ∞-widening fallback of the cardinality
    domain (``domain ** arity``), so a fully-bound adornment of a
    widened predicate costs ``1`` and a fully-free one costs the same
    as not rewriting at all.
    """
    total = 0
    for pred, adornment in demand:
        hint = min(base_hints.get(pred, assume_edb), CAP)
        discount = assume_edb ** len(adornment.bound_positions)
        total += max(1, hint // max(1, discount)) + 1
    return total


def _recommend(
    program: Program,
    form: QueryForm,
    stratifiable: bool,
    cost_none: int,
    cost_magic: int,
) -> Recommendation:
    if not program.is_positive:
        if not stratifiable:
            reason = (
                "magic rewriting introduces a negative cycle; evaluate the "
                "original stratified program instead"
            )
        else:
            reason = (
                "program has negation; the magic execution path requires a "
                "positive program"
            )
        return Recommendation("none", "evaluate", "stratified", reason)
    if not form.adornment.bound_positions:
        return Recommendation(
            "none",
            "evaluate",
            "seminaive",
            "query binds no argument; rewriting cannot restrict the computation",
        )
    if cost_magic < cost_none:
        return Recommendation(
            "magic",
            "magic",
            "seminaive",
            f"specialized cost {cost_magic} beats unrestricted cost {cost_none}",
        )
    return Recommendation(
        "none",
        "evaluate",
        "seminaive",
        f"specialization is not cheaper ({cost_magic} >= {cost_none})",
    )


def execute_plan(
    program: Program,
    db: Database,
    query: Atom,
    plan: SpecializationPlan,
    sips: str = "left-to-right",
    governor: ResourceGovernor | None = None,
    workers: int = 1,
) -> tuple[Database, EvaluationResult]:
    """Run *query* the way *plan* recommends.

    ``rewrite="magic"`` delegates to :func:`repro.engine.magic
    .answer_query` (the rewriting is the analyzed one, via the shared
    closure cache); ``rewrite="none"`` evaluates the program bottom-up
    with the recommended engine and selects matching answers.  Under a
    governor, both paths degrade to a sound PARTIAL subset.
    """
    rec = plan.recommendation
    if rec.rewrite == "magic":
        return answer_query(
            program,
            db,
            query,
            engine=rec.engine,
            sips=sips,
            governor=governor,
            workers=workers,
        )
    result = evaluate(
        program, db, engine=rec.engine, governor=governor, workers=workers
    )
    return select_answers(result.database, query), result


def select_answers(computed: Database, query: Atom) -> Database:
    """Facts of the query's predicate matching its constants.

    Same matching rule as :meth:`repro.engine.magic.MagicRewriting
    .answers` — repeated query variables enforce equality.
    """
    from ...lang.substitution import match_atom

    pattern = computed.adapt_atom(query)
    out = Database()
    if computed.count(query.predicate):
        for row in computed.tuples(query.predicate):
            if match_atom(pattern, Atom(query.predicate, row)) is not None:
                out._add_row(query.predicate, computed.decode_row(row))
    return out


def apply_certificate(
    certificate: PlanCertificate, program: Program, query: Atom
) -> SpecializationPlan | None:
    """Prepare *program* for *query* from a certificate — no analysis.

    Verifies the certificate addresses the program's isomorphism class,
    then preloads the magic closure cache and installs planner hints for
    both the original and the rewritten program, so the subsequent
    evaluation never reruns ``binding_analysis`` or the cardinality
    domain.  Returns the matching plan, or ``None`` when the
    certificate holds no plan for this query form.
    """
    program_key = canonical_program_key(program)
    if certificate.program_key != program_key:
        raise CertificateError(
            "certificate was computed for a different program "
            f"(certificate key {certificate.program_key[:12]}..., "
            f"program key {program_key[:12]}...)"
        )
    suffix = Adornment.for_atom(query, frozenset()).suffix
    plan = certificate.plan_for(query.predicate, suffix)
    if plan is None:
        return None
    from ...engine.compile import install_certificate_hints

    preload_closure(
        program_key, query.predicate, suffix, certificate.sips, plan.closure
    )
    install_certificate_hints(program_key, certificate.hints)
    if plan.rewritten_program_key and plan.hints:
        install_certificate_hints(plan.rewritten_program_key, plan.hints)
    metrics_registry().increment("advise.certificate_loads")
    return plan


__all__ = [
    "DEFAULT_ADORNMENT_BUDGET",
    "DOMAIN_NAME",
    "advise_form",
    "advise_program",
    "apply_certificate",
    "execute_plan",
    "select_answers",
]
