"""Chase-termination certificates: the fifth abstract domain.

The chase with embedded tgds (Section VIII) is only semi-decidable:
:mod:`repro.core.chase` runs under a :class:`~repro.core.chase.ChaseBudget`
and answers ``UNKNOWN`` whenever the budget trips.  This domain
classifies a program + tgd set into a hierarchy of *syntactic* classes
that certify, before a single chase round runs, either that every chase
sequence terminates or that query answering is decidable anyway:

    full-only ⊂ weakly acyclic ⊂ jointly acyclic      (chase terminates)
    sticky ⊆ weakly sticky                            (answering decidable)
    unknown                                           (no certificate)

* **full-only** -- no tgd has an existential variable; no nulls are ever
  invented, so the chase is an ordinary Datalog fixpoint.
* **weakly acyclic** (Fagin-Kolaitis-Miller-Popa) -- the *position
  graph* (ordinary edges track value propagation between predicate
  positions, special edges track null creation) has no cycle through a
  special edge.  Every chase sequence terminates, and the rank
  stratification of positions yields a sound bound on the number of
  distinct values -- :meth:`TerminationCertificate.value_bound` -- that
  :func:`repro.core.chase.certified_budget` turns into a budget large
  enough to reach saturation.
* **jointly acyclic** (Krötzsch-Rudolph) -- the existential-variable
  dependency graph over move sets ``Ω(y)`` is acyclic; strictly more
  tgd sets than weak acyclicity, same termination guarantee.
* **sticky / weakly sticky** (Calì-Gottlob-Pieris; Milani-Bertossi) --
  the marked-variable propagation proves every join value "sticks" to
  all derived atoms (sticky), or does so except at finite-rank
  positions (weakly sticky).  The chase may still diverge, but query
  answering over the infinite canonical model is decidable, so a
  budget-tripped ``UNKNOWN`` is a true "don't know" only for the
  chase, not for the theory.

The classifier exports its *evidence* -- the position graph, the
offending special-edge cycle, the marked-variable trace -- in the
``analyze`` JSON schema, and two lint passes
(``weakly-acyclic-certified``, ``nonterminating-chase-risk``) surface
the verdict next to the other static findings.

Program rules participate as full tgds (body → head): they invent no
nulls but do move values between positions, so ranks and move sets
stay sound for the alternating rules-then-tgds chase of
:func:`repro.core.chase.chase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Optional, Sequence

from ...core.tgds import Tgd
from ...lang.programs import Program
from ...lang.terms import Variable

#: A predicate position ``(predicate, index)``, 1-based as in the
#: data-exchange literature: ``("A", 1)`` prints as ``A.1``.
Position = tuple[str, int]

#: Classification labels, strongest (smallest class) first.
FULL_ONLY = "full-only"
WEAKLY_ACYCLIC = "weakly-acyclic"
JOINTLY_ACYCLIC = "jointly-acyclic"
STICKY = "sticky"
WEAKLY_STICKY = "weakly-sticky"
UNKNOWN_CLASS = "unknown"

#: Labels that certify chase termination (every chase sequence finite).
TERMINATING_CLASSES = frozenset({FULL_ONLY, WEAKLY_ACYCLIC, JOINTLY_ACYCLIC})

#: Labels that certify decidable query answering without certifying a
#: finite chase.
DECIDABLE_CLASSES = TERMINATING_CLASSES | frozenset({STICKY, WEAKLY_STICKY})

#: Ceiling applied while iterating the value-bound recurrence, so a
#: certified-but-enormous bound cannot produce bignum blowups; a capped
#: bound is still *sound* (it only under-reports how far the chase may
#: safely run, never over-reports saturation).
VALUE_BOUND_CAP = 10**9


def format_position(position: Position) -> str:
    return f"{position[0]}.{position[1]}"


@dataclass(frozen=True)
class PositionEdge:
    """One position-graph edge, contributed by one dependency."""

    source: Position
    target: Position
    special: bool
    #: Human-readable origin, ``tgd[i]`` or ``rule[i]``.
    origin: str

    def describe(self) -> str:
        arrow = "-*->" if self.special else "--->"
        return f"{format_position(self.source)} {arrow} {format_position(self.target)}  ({self.origin})"

    def to_dict(self) -> dict:
        return {
            "from": format_position(self.source),
            "to": format_position(self.target),
            "special": self.special,
            "origin": self.origin,
        }


def _variable_positions(atoms: Sequence, var: Variable) -> Iterator[Position]:
    for atom in atoms:
        for index, term in enumerate(atom.args, start=1):
            if term == var:
                yield (atom.predicate, index)


def _all_positions(deps: Sequence[tuple[str, Tgd]]) -> frozenset[Position]:
    out: set[Position] = set()
    for _origin, dep in deps:
        for atom in dep.lhs + dep.rhs:
            for index in range(1, atom.arity + 1):
                out.add((atom.predicate, index))
    return frozenset(out)


class PositionGraph:
    """The Fagin et al. dependency graph over predicate positions.

    For every dependency ``φ(x̄) → ∃ȳ ψ(x̄, ȳ)`` and every universal
    variable ``x`` occurring in ``ψ``, from each lhs position ``p`` of
    ``x``:

    * an **ordinary** edge ``p → q`` to each rhs position ``q`` of ``x``
      (a value is copied);
    * a **special** edge ``p →* r`` to each rhs position ``r`` of each
      existential variable ``y`` (a fresh null's identity depends on
      the value at ``p``).
    """

    def __init__(self, deps: Sequence[tuple[str, Tgd]]):
        self.deps = tuple(deps)
        self.positions = _all_positions(self.deps)
        edges: list[PositionEdge] = []
        seen: set[tuple[Position, Position, bool]] = set()
        for origin, dep in self.deps:
            for x in sorted(dep.universal_variables, key=lambda v: v.name):
                rhs_positions = list(_variable_positions(dep.rhs, x))
                if not rhs_positions:
                    continue  # x is not propagated: no edges originate here
                lhs_positions = list(_variable_positions(dep.lhs, x))
                existential_positions = [
                    r
                    for y in sorted(dep.existential_variables, key=lambda v: v.name)
                    for r in _variable_positions(dep.rhs, y)
                ]
                for p in lhs_positions:
                    for q in rhs_positions:
                        key = (p, q, False)
                        if key not in seen:
                            seen.add(key)
                            edges.append(PositionEdge(p, q, False, origin))
                    for r in existential_positions:
                        key = (p, r, True)
                        if key not in seen:
                            seen.add(key)
                            edges.append(PositionEdge(p, r, True, origin))
        self.edges = tuple(edges)

    @cached_property
    def _adjacency(self) -> dict[Position, tuple[PositionEdge, ...]]:
        out: dict[Position, list[PositionEdge]] = {}
        for edge in self.edges:
            out.setdefault(edge.source, []).append(edge)
        return {p: tuple(es) for p, es in out.items()}

    @cached_property
    def _sccs(self) -> tuple[frozenset[Position], ...]:
        """Strongly connected components, in reverse topological order."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.positions)
        graph.add_edges_from((e.source, e.target) for e in self.edges)
        return tuple(frozenset(c) for c in nx.strongly_connected_components(graph))

    @cached_property
    def _scc_of(self) -> dict[Position, int]:
        return {p: i for i, scc in enumerate(self._sccs) for p in scc}

    @cached_property
    def special_cycle(self) -> Optional[tuple[PositionEdge, ...]]:
        """A cycle through a special edge, as evidence; ``None`` if WA.

        The witness is one special edge whose endpoints share an SCC,
        closed into a cycle by a shortest intra-SCC path back.
        """
        scc_of = self._scc_of
        for edge in self.edges:
            if not edge.special:
                continue
            if scc_of[edge.source] != scc_of[edge.target]:
                continue
            return (edge,) + tuple(
                self._path_within_scc(edge.target, edge.source)
            )
        return None

    def _path_within_scc(self, start: Position, goal: Position) -> list[PositionEdge]:
        """Shortest edge path ``start → goal`` inside one SCC (BFS)."""
        if start == goal:
            return []
        scc = self._scc_of[start]
        frontier = [start]
        came_from: dict[Position, PositionEdge] = {}
        while frontier:
            nxt: list[Position] = []
            for node in frontier:
                for edge in self._adjacency.get(node, ()):
                    if self._scc_of.get(edge.target) != scc or edge.target in came_from:
                        continue
                    came_from[edge.target] = edge
                    if edge.target == goal:
                        path = [edge]
                        while path[0].source != start:
                            path.insert(0, came_from[path[0].source])
                        return path
                    nxt.append(edge.target)
            frontier = nxt
        return []  # pragma: no cover - SCC membership guarantees a path

    @property
    def weakly_acyclic(self) -> bool:
        return self.special_cycle is None

    @cached_property
    def ranks(self) -> dict[Position, Optional[int]]:
        """Max special edges on any path into each position.

        ``None`` means infinite: the position is reachable from a cycle
        through a special edge, so unboundedly many fresh nulls may land
        there.  Every position is finite-ranked iff the set is weakly
        acyclic; the finite ranks also power the *weakly sticky* test on
        non-WA sets (Milani-Bertossi: a repeated marked variable is
        harmless at a finite-rank position).
        """
        scc_of = self._scc_of
        infinite_sccs = {
            scc_of[e.source]
            for e in self.edges
            if e.special and scc_of[e.source] == scc_of[e.target]
        }
        # SCC condensation edges, then one monotone pass in topological
        # order (self._sccs is reverse-topological).
        order = list(range(len(self._sccs)))[::-1]
        scc_rank: dict[int, Optional[int]] = {i: 0 for i in order}
        incoming: dict[int, list[tuple[int, bool]]] = {i: [] for i in order}
        for edge in self.edges:
            s, t = scc_of[edge.source], scc_of[edge.target]
            if s != t:
                incoming[t].append((s, edge.special))
        for scc in order:
            if scc in infinite_sccs:
                scc_rank[scc] = None
                continue
            best = 0
            for source, special in incoming[scc]:
                upstream = scc_rank[source]
                if upstream is None:
                    best = None
                    break
                best = max(best, upstream + (1 if special else 0))
            scc_rank[scc] = best
        # Infinity propagates downstream of an infinite SCC.
        for scc in order:
            if scc_rank[scc] is None:
                for target, pairs in incoming.items():
                    if any(s == scc for s, _sp in pairs):
                        scc_rank[target] = None
        return {p: scc_rank[scc_of[p]] for p in self.positions}

    @property
    def max_finite_rank(self) -> int:
        finite = [r for r in self.ranks.values() if r is not None]
        return max(finite, default=0)

    def to_dict(self) -> dict:
        ranks = self.ranks
        return {
            "positions": {
                format_position(p): ranks[p]
                for p in sorted(self.positions)
            },
            "edges": [e.to_dict() for e in self.edges],
        }


# -- stickiness ---------------------------------------------------------------


@dataclass(frozen=True)
class MarkStep:
    """One step of the Calì-Gottlob-Pieris marking procedure."""

    origin: str  # dependency whose body variable was marked
    variable: str
    reason: str

    def to_dict(self) -> dict:
        return {"dependency": self.origin, "variable": self.variable, "reason": self.reason}


@dataclass(frozen=True)
class StickyViolation:
    """A marked variable joining (≥2 lhs occurrences) in one dependency."""

    origin: str
    variable: str
    occurrences: tuple[str, ...]  # formatted positions
    #: Occurrence positions of finite rank (non-empty ⇒ weakly sticky OK
    #: for this violation).
    finite_rank_occurrences: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "dependency": self.origin,
            "variable": self.variable,
            "occurrences": list(self.occurrences),
            "finite_rank_occurrences": list(self.finite_rank_occurrences),
        }


def _sticky_marking(
    deps: Sequence[tuple[str, Tgd]]
) -> tuple[frozenset[tuple[int, Variable]], tuple[MarkStep, ...]]:
    """The marked body variables, with the trace of why each was marked."""
    marked: set[tuple[int, Variable]] = set()
    trace: list[MarkStep] = []

    def mark(index: int, var: Variable, reason: str) -> bool:
        if (index, var) in marked:
            return False
        marked.add((index, var))
        trace.append(MarkStep(deps[index][0], var.name, reason))
        return True

    # Initial step: a body variable absent from some head atom loses its
    # value on that derivation path -- mark it.
    for index, (_origin, dep) in enumerate(deps):
        for var in sorted(dep.universal_variables, key=lambda v: v.name):
            for atom in dep.rhs:
                if var not in atom.variable_set():
                    mark(index, var, f"missing from head atom {atom}")
                    break
    # Propagation: a value fed into a position where some dependency
    # reads a marked variable is itself at risk of being dropped later.
    marked_lhs_positions: set[Position] = set()

    def refresh_positions() -> None:
        marked_lhs_positions.clear()
        for index, var in marked:
            marked_lhs_positions.update(_variable_positions(deps[index][1].lhs, var))

    refresh_positions()
    changed = True
    while changed:
        changed = False
        for index, (_origin, dep) in enumerate(deps):
            for var in sorted(dep.universal_variables, key=lambda v: v.name):
                if (index, var) in marked:
                    continue
                hit = next(
                    (
                        q
                        for q in _variable_positions(dep.rhs, var)
                        if q in marked_lhs_positions
                    ),
                    None,
                )
                if hit is not None:
                    mark(
                        index,
                        var,
                        f"propagates into marked position {format_position(hit)}",
                    )
                    refresh_positions()
                    changed = True
    return frozenset(marked), tuple(trace)


def _sticky_violations(
    deps: Sequence[tuple[str, Tgd]],
    marked: frozenset[tuple[int, Variable]],
    ranks: dict[Position, Optional[int]],
) -> tuple[StickyViolation, ...]:
    violations: list[StickyViolation] = []
    for index, var in sorted(marked, key=lambda iv: (iv[0], iv[1].name)):
        origin, dep = deps[index]
        occurrences = [
            (atom.predicate, pos)
            for atom in dep.lhs
            for pos, term in enumerate(atom.args, start=1)
            if term == var
        ]
        if len(occurrences) < 2:
            continue
        finite = [p for p in occurrences if ranks.get(p) is not None]
        violations.append(
            StickyViolation(
                origin=origin,
                variable=var.name,
                occurrences=tuple(format_position(p) for p in occurrences),
                finite_rank_occurrences=tuple(format_position(p) for p in finite),
            )
        )
    return tuple(violations)


# -- joint acyclicity ---------------------------------------------------------


def _joint_acyclicity(
    deps: Sequence[tuple[str, Tgd]]
) -> tuple[bool, int, Optional[tuple[str, ...]]]:
    """Krötzsch-Rudolph joint acyclicity.

    Returns ``(acyclic, depth, cycle)`` where *depth* is the longest
    path in the existential dependency graph (drives the value-bound
    recurrence) and *cycle* names the offending existential variables
    when the test fails.
    """
    existentials: list[tuple[int, Variable]] = [
        (i, y)
        for i, (_o, dep) in enumerate(deps)
        for y in sorted(dep.existential_variables, key=lambda v: v.name)
    ]
    if not existentials:
        return True, 0, None
    # Move sets Ω(y): all positions a null created for y may reach.
    omegas: dict[tuple[int, Variable], set[Position]] = {}
    for key in existentials:
        index, y = key
        omega = set(_variable_positions(deps[index][1].rhs, y))
        changed = True
        while changed:
            changed = False
            for _origin, dep in deps:
                for x in dep.universal_variables:
                    lhs_pos = set(_variable_positions(dep.lhs, x))
                    if lhs_pos and lhs_pos <= omega:
                        rhs_pos = set(_variable_positions(dep.rhs, x))
                        if not rhs_pos <= omega:
                            omega |= rhs_pos
                            changed = True
        omegas[key] = omega
    # y → z when z's dependency can consume a y-null through one of its
    # *frontier* variables (universal, exported to the head) with all
    # body occurrences inside Ω(y).  Non-frontier variables cannot
    # transport the null into new atoms, so they contribute no edge.
    edges: dict[tuple[int, Variable], set[tuple[int, Variable]]] = {
        key: set() for key in existentials
    }
    for key in existentials:
        omega = omegas[key]
        for j, (_origin, dep) in enumerate(deps):
            if not dep.existential_variables:
                continue
            depends = any(
                (lhs_pos := set(_variable_positions(dep.lhs, x)))
                and lhs_pos <= omega
                for x in dep.universal_variables
                if any(True for _ in _variable_positions(dep.rhs, x))
            )
            if depends:
                for z in dep.existential_variables:
                    edges[key].add((j, z))
    # Longest path / cycle detection by DFS with colouring.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {key: WHITE for key in existentials}
    depth: dict[tuple[int, Variable], int] = {}
    cycle_witness: list[tuple[int, Variable]] = []

    def visit(key: tuple[int, Variable], stack: list) -> Optional[int]:
        colour[key] = GREY
        stack.append(key)
        best = 0
        for succ in edges[key]:
            if colour[succ] is GREY:
                start = stack.index(succ)
                cycle_witness.extend(stack[start:])
                return None
            if colour[succ] is WHITE:
                sub = visit(succ, stack)
                if sub is None:
                    return None
                best = max(best, sub)
            else:
                best = max(best, depth[succ])
        stack.pop()
        colour[key] = BLACK
        depth[key] = best + 1
        return depth[key]

    overall = 0
    for key in existentials:
        if colour[key] is WHITE:
            result = visit(key, [])
            if result is None:
                names = tuple(
                    f"{deps[i][0]}:{v.name}" for i, v in cycle_witness
                )
                return False, 0, names
            overall = max(overall, result)
    return True, overall, None


# -- the certificate ----------------------------------------------------------


@dataclass(frozen=True)
class TerminationCertificate:
    """One program + tgd set's place in the termination hierarchy."""

    classification: str
    #: Individual membership flags (a set can be, e.g., both weakly
    #: acyclic and sticky; ``classification`` is the strongest label).
    properties: dict[str, bool]
    graph: PositionGraph
    special_cycle: Optional[tuple[PositionEdge, ...]]
    marking_trace: tuple[MarkStep, ...]
    sticky_violations: tuple[StickyViolation, ...]
    ja_cycle: Optional[tuple[str, ...]]
    #: Recurrence parameters for :meth:`value_bound`.
    total_existentials: int = 0
    max_frontier: int = 1
    bound_depth: int = 0

    @property
    def guarantees_termination(self) -> bool:
        return self.classification in TERMINATING_CLASSES

    @property
    def guarantees_decidability(self) -> bool:
        return self.classification in DECIDABLE_CLASSES

    def value_bound(self, initial_values: int) -> Optional[int]:
        """Sound cap on distinct values any chase sequence can create.

        ``None`` when the certificate does not guarantee termination.
        For a full-only set no values are invented; for weakly/jointly
        acyclic sets the rank (resp. existential-dependency depth)
        stratification gives the textbook recurrence: values feeding
        level-``i+1`` null creation all live at levels ``≤ i``.  The
        result is capped at :data:`VALUE_BOUND_CAP` -- still sound,
        since a budget built from a capped bound can only be *smaller*
        than one the true bound would allow.
        """
        if not self.guarantees_termination:
            return None
        values = max(1, initial_values)
        if self.classification == FULL_ONLY:
            return values
        frontier = max(1, self.max_frontier)
        for _level in range(max(1, self.bound_depth)):
            if values >= VALUE_BOUND_CAP:
                return VALUE_BOUND_CAP
            created = self.total_existentials * min(
                values**frontier, VALUE_BOUND_CAP
            )
            values = min(values + created, VALUE_BOUND_CAP)
        return values

    def describe(self) -> str:
        """One-line human rendering for CLI output."""
        if self.classification == FULL_ONLY:
            detail = "no existential variables; the chase is a plain fixpoint"
        elif self.classification == WEAKLY_ACYCLIC:
            detail = (
                f"position graph has no special-edge cycle "
                f"(max rank {self.graph.max_finite_rank})"
            )
        elif self.classification == JOINTLY_ACYCLIC:
            detail = "existential dependency graph is acyclic"
        elif self.classification == STICKY:
            detail = "marked-variable test passes; query answering decidable"
        elif self.classification == WEAKLY_STICKY:
            detail = (
                "repeated marked variables only at finite-rank positions; "
                "query answering decidable"
            )
        else:
            parts = []
            if self.special_cycle:
                parts.append(
                    "special-edge cycle " + " ; ".join(e.describe() for e in self.special_cycle)
                )
            bad = [v for v in self.sticky_violations if not v.finite_rank_occurrences]
            if bad:
                v = bad[0]
                parts.append(
                    f"marked variable {v.variable} joins at infinite-rank "
                    f"position(s) {', '.join(v.occurrences)} in {v.origin}"
                )
            detail = "; ".join(parts) or "no syntactic certificate applies"
        return f"{self.classification}: {detail}"

    def to_dict(self) -> dict:
        return {
            "classification": self.classification,
            "terminating": self.guarantees_termination,
            "decidable": self.guarantees_decidability,
            "properties": {k: self.properties[k] for k in sorted(self.properties)},
            "position_graph": self.graph.to_dict(),
            "special_cycle": (
                [e.describe() for e in self.special_cycle]
                if self.special_cycle
                else None
            ),
            "ja_cycle": list(self.ja_cycle) if self.ja_cycle else None,
            "marking_trace": [s.to_dict() for s in self.marking_trace],
            "sticky_violations": [v.to_dict() for v in self.sticky_violations],
        }


@dataclass
class TerminationAnalysis:
    """Domain wrapper mirroring the other absint analyses."""

    program: Program
    tgds: tuple[Tgd, ...]
    certificate: TerminationCertificate

    def to_dict(self) -> dict:
        payload = self.certificate.to_dict()
        payload["tgds"] = [str(t) for t in self.tgds]
        return payload


def dependencies_of(
    tgds: Sequence[Tgd], program: Program | None = None
) -> list[tuple[str, Tgd]]:
    """The combined dependency list: tgds first, then rules as full tgds.

    Facts and negative literals contribute no value flow and are
    skipped; everything else is labelled with its origin for evidence.
    """
    deps: list[tuple[str, Tgd]] = [
        (f"tgd[{i}]", tgd) for i, tgd in enumerate(tgds)
    ]
    if program is not None:
        for index, rule in enumerate(program.rules):
            body = [lit.atom for lit in rule.body if lit.positive]
            if not body:
                continue
            deps.append((f"rule[{index}]", Tgd(body, [rule.head])))
    return deps


def classify_termination(
    tgds: Sequence[Tgd],
    program: Program | None = None,
) -> TerminationAnalysis:
    """Place ``program + tgds`` in the chase-termination hierarchy.

    Purely syntactic -- no chase round runs.  Registered with the
    metrics registry as the ``termination`` domain alongside the other
    abstract-interpretation fixpoints.
    """
    from ...obs.metrics import metrics_registry

    tgds = tuple(tgds)
    deps = dependencies_of(tgds, program)
    graph = PositionGraph(deps)
    full_only = all(tgd.is_full for tgd in tgds)
    weakly_acyclic = graph.weakly_acyclic
    jointly_acyclic, ja_depth, ja_cycle = _joint_acyclicity(deps)
    marked, trace = _sticky_marking(deps)
    violations = _sticky_violations(deps, marked, graph.ranks)
    sticky = not violations
    weakly_sticky = all(v.finite_rank_occurrences for v in violations)

    if full_only:
        classification = FULL_ONLY
    elif weakly_acyclic:
        classification = WEAKLY_ACYCLIC
    elif jointly_acyclic:
        classification = JOINTLY_ACYCLIC
    elif sticky:
        classification = STICKY
    elif weakly_sticky:
        classification = WEAKLY_STICKY
    else:
        classification = UNKNOWN_CLASS

    total_existentials = sum(len(t.existential_variables) for t in tgds)
    max_frontier = max(
        (
            len(
                {
                    v
                    for v in dep.universal_variables
                    if any(True for _ in _variable_positions(dep.rhs, v))
                }
            )
            for _origin, dep in deps
            if dep.existential_variables
        ),
        default=0,
    )
    if classification == WEAKLY_ACYCLIC:
        bound_depth = graph.max_finite_rank
    elif classification == JOINTLY_ACYCLIC:
        bound_depth = ja_depth
    else:
        bound_depth = 0

    certificate = TerminationCertificate(
        classification=classification,
        properties={
            "full_only": full_only,
            "weakly_acyclic": weakly_acyclic,
            "jointly_acyclic": jointly_acyclic,
            "sticky": sticky,
            "weakly_sticky": weakly_sticky,
        },
        graph=graph,
        special_cycle=graph.special_cycle,
        marking_trace=trace,
        sticky_violations=violations,
        ja_cycle=ja_cycle,
        total_existentials=total_existentials,
        max_frontier=max_frontier,
        bound_depth=bound_depth,
    )
    metrics_registry().record_analysis("termination", len(deps), 0)
    return TerminationAnalysis(
        program=program if program is not None else Program(),
        tgds=tgds,
        certificate=certificate,
    )


__all__ = [
    "DECIDABLE_CLASSES",
    "FULL_ONLY",
    "JOINTLY_ACYCLIC",
    "MarkStep",
    "Position",
    "PositionEdge",
    "PositionGraph",
    "STICKY",
    "StickyViolation",
    "TERMINATING_CLASSES",
    "TerminationAnalysis",
    "TerminationCertificate",
    "UNKNOWN_CLASS",
    "VALUE_BOUND_CAP",
    "WEAKLY_ACYCLIC",
    "WEAKLY_STICKY",
    "classify_termination",
    "dependencies_of",
    "format_position",
]
