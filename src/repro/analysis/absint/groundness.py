"""Binding/adornment (groundness) analysis for a query mode.

Given a query atom, which boundness patterns (*adornments*) does each
intensional predicate get asked under, and does the chosen sideways
information passing actually deliver bindings to every subgoal?  The
abstract value of a predicate is its *demanded adornment set* -- an
element of the powerset lattice over ``{b, f}^arity``, finite, so the
demand-driven worklist below is an ordinary least-fixpoint computation:
start from the query's adornment, and for every demanded
``(predicate, adornment)`` pair push bindings through each defining
rule's body (in SIPS order) to discover the adornments of its IDB
subgoals.

This is exactly the adornment propagation
:func:`repro.engine.magic.magic_transform` performs -- here computed
*without* generating a single magic rule, so the linter and the
``analyze`` verb can judge a query mode statically, and ``magic.py``
itself now consumes this analysis instead of interleaving discovery
with rule generation.

The validation half reports :class:`BindingIssue`\\ s:

* ``unbound-subgoal`` -- a subgoal is demanded all-free although its
  caller had bound arguments: the SIPS failed to pass any binding
  sideways, so magic evaluation of that subgoal degenerates to the full
  bottom-up fixpoint (often a body-order or SIPS-choice smell);
* ``free-query`` -- the query itself binds nothing, so the rewriting
  can restrict nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...lang.atoms import Atom
from ...lang.programs import Program
from ...lang.terms import Variable
from ...engine.magic import Adornment, _apply_sips
from .framework import ProgramFacts

#: The analysis name under which metrics are recorded.
DOMAIN_NAME = "groundness"


@dataclass(frozen=True)
class BindingIssue:
    """One finding of the SIPS validation (see module docstring)."""

    kind: str  # "unbound-subgoal" | "free-query"
    predicate: str
    adornment: str
    rule_index: int | None
    message: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "predicate": self.predicate,
            "adornment": self.adornment,
            "rule_index": self.rule_index,
            "message": self.message,
        }


@dataclass
class BindingAnalysis:
    """Demanded adornments per predicate, plus SIPS validation issues."""

    program: Program
    query: Atom
    sips: str
    query_adornment: Adornment
    #: IDB predicate -> every adornment it is demanded under.
    adornments: dict[str, frozenset[Adornment]]
    #: Demanded pairs in discovery order (deterministic); drives magic.
    demand: tuple[tuple[str, Adornment], ...]
    issues: list[BindingIssue] = field(default_factory=list)

    def adornments_of(self, predicate: str) -> frozenset[Adornment]:
        return self.adornments.get(predicate, frozenset())

    def to_dict(self) -> dict:
        return {
            "query": str(self.query),
            "sips": self.sips,
            "query_adornment": self.query_adornment.suffix,
            "adornments": {
                pred: sorted(a.suffix for a in adorns)
                for pred, adorns in sorted(self.adornments.items())
            },
            "issues": [issue.to_dict() for issue in self.issues],
        }


def binding_analysis(
    program: Program,
    query: Atom,
    sips: str = "left-to-right",
    facts: ProgramFacts | None = None,
) -> BindingAnalysis:
    """Compute the demanded-adornment fixpoint for *query* over *program*.

    Mirrors the propagation of ``magic_transform`` exactly (same SIPS,
    same ``Adornment.for_atom`` boundness rule) but produces judgments
    instead of rules.  Callers wanting the full magic preconditions
    (positivity, reserved prefixes) should validate first;
    the analysis itself only requires the query predicate to exist.
    """
    from ...obs.metrics import metrics_registry

    if facts is None:
        facts = ProgramFacts(program)
    idb = program.idb_predicates
    query_adornment = Adornment.for_atom(query, frozenset())

    pending: list[tuple[str, Adornment]] = [(query.predicate, query_adornment)]
    seen: set[tuple[str, Adornment]] = set()
    demand: list[tuple[str, Adornment]] = []
    issues: list[BindingIssue] = []
    flagged: set[tuple[str, str, int]] = set()
    iterations = 0

    while pending:
        pred, adornment = pending.pop()
        if (pred, adornment) in seen:
            continue
        seen.add((pred, adornment))
        demand.append((pred, adornment))
        iterations += 1
        for rule_index, rule in facts.rules_by_head.get(pred, ()):
            ordered = _apply_sips(rule, adornment, sips)
            bound: set[Variable] = set()
            for pos in adornment.bound_positions:
                term = ordered.head.args[pos]
                if isinstance(term, Variable):
                    bound.add(term)
            for literal in ordered.body:
                atom = literal.atom
                if atom.predicate in idb:
                    sub = Adornment.for_atom(atom, frozenset(bound))
                    pending.append((atom.predicate, sub))
                    if (
                        adornment.bound_positions
                        and atom.args
                        and not sub.bound_positions
                    ):
                        key = (atom.predicate, sub.suffix, rule_index)
                        if key not in flagged:
                            flagged.add(key)
                            issues.append(
                                BindingIssue(
                                    kind="unbound-subgoal",
                                    predicate=atom.predicate,
                                    adornment=sub.suffix,
                                    rule_index=rule_index,
                                    message=(
                                        f"subgoal {atom} in rule {rule_index} "
                                        f"receives no bindings although its "
                                        f"caller {pred}_{adornment.suffix} has "
                                        "bound arguments; magic evaluation of "
                                        "this subgoal is unrestricted"
                                    ),
                                )
                            )
                bound.update(atom.variables())

    if not query_adornment.bound_positions and query.args:
        issues.append(
            BindingIssue(
                kind="free-query",
                predicate=query.predicate,
                adornment=query_adornment.suffix,
                rule_index=None,
                message=(
                    f"query {query} binds no argument; magic-sets rewriting "
                    "cannot restrict the computation"
                ),
            )
        )

    adornments: dict[str, set[Adornment]] = {}
    for pred, adornment in demand:
        adornments.setdefault(pred, set()).add(adornment)
    metrics_registry().record_analysis(DOMAIN_NAME, iterations, 0)
    return BindingAnalysis(
        program=program,
        query=query,
        sips=sips,
        query_adornment=query_adornment,
        adornments={p: frozenset(a) for p, a in adornments.items()},
        demand=tuple(demand),
        issues=issues,
    )


__all__ = ["BindingAnalysis", "BindingIssue", "binding_analysis", "DOMAIN_NAME"]
