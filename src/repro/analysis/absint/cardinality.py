"""Cardinality intervals: how many facts can each predicate hold?

The abstract value of a predicate is an :class:`Interval` ``[lo, hi]``
of possible fact counts, with ``hi = None`` meaning unbounded.  The
lattice is ordered by interval inclusion; its height is infinite (upper
bounds can grow without limit round after round), which makes this the
one domain in the package that genuinely needs the framework's
widening: a recursive SCC whose upper bound is still growing after
``WIDEN_AFTER`` rounds is widened straight to ∞.

The transfer function bounds a rule's output by the product of its
positive body atoms' upper bounds -- the cartesian-product bound; join
over a predicate's rules *sums* upper bounds (each rule contributes its
own derivations).  The summing join is deliberately non-idempotent: it
models "one more round derives more facts", which is exactly the signal
widening converts into ∞ for recursive predicates.  The results are
therefore *hints*, not sound bounds, and are consumed only where a hint
is wanted: :func:`cardinality_hints` feeds
:func:`repro.engine.joins.plan_order` a static join-order key for
predicates on which the database has **no** statistics (count 0), the
exact situation where ``costs.py`` is blind today.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ...lang.programs import Program
from ...lang.rules import Rule
from .framework import AbstractDomain, FixpointResult, ProgramFacts, analyze

#: Upper bounds beyond this are treated as unbounded.  Far above any
#: realistic workload; exists so products cannot overflow into numbers
#: whose only information content is "huge".
CAP = 10**12

#: Fallback per-EDB-relation size when the caller supplies no counts.
DEFAULT_EDB_SIZE = 1000


@dataclass(frozen=True)
class Interval:
    """A fact-count range ``[lo, hi]``; ``hi=None`` is unbounded."""

    lo: int = 0
    hi: Optional[int] = 0

    @classmethod
    def empty(cls) -> "Interval":
        return cls(0, 0)

    @classmethod
    def unbounded(cls) -> "Interval":
        return cls(0, None)

    @classmethod
    def exactly(cls, n: int) -> "Interval":
        return cls(n, n)

    @property
    def bounded(self) -> bool:
        return self.hi is not None

    def describe(self) -> str:
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"


def _add_hi(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    total = a + b
    return None if total > CAP else total


def _mul_hi(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    product = a * b
    return None if product > CAP else product


class CardinalityDomain(AbstractDomain[Interval]):
    """Interval analysis over fact counts (see module docstring)."""

    name = "cardinality"

    def __init__(
        self,
        edb_counts: Mapping[str, int] | None = None,
        default_edb: int = DEFAULT_EDB_SIZE,
    ):
        self.edb_counts = dict(edb_counts or {})
        self.default_edb = default_edb

    def bottom(self, predicate: str, arity: int) -> Interval:
        return Interval.empty()

    def edb_value(self, predicate: str, arity: int) -> Interval:
        return Interval.exactly(self.edb_counts.get(predicate, self.default_edb))

    def join(self, old: Interval, new: Interval) -> Interval:
        # Sum of upper bounds, not max: each rule (and each extra
        # round) contributes its own derivations.  [0, 0] is the
        # identity, so non-contributing rules cost nothing.
        if old == Interval.empty():
            return new
        if new == Interval.empty():
            return old
        return Interval(max(old.lo, new.lo), _add_hi(old.hi, new.hi))

    def widen(self, old: Interval, new: Interval) -> Interval:
        if old.hi is not None and new.hi is not None and new.hi > old.hi:
            return Interval(new.lo, None)  # still growing: jump to ∞
        return self.join(old, new)

    def transfer(
        self, rule: Rule, state: Mapping[str, Interval], facts: ProgramFacts
    ) -> Interval | None:
        if not rule.body:
            return Interval.exactly(1)  # a fact is exactly one tuple
        hi: Optional[int] = 1
        for literal in rule.body:
            if not literal.positive:
                continue  # negation filters; it never multiplies
            value = state.get(literal.predicate, Interval.unbounded())
            if value.hi == 0:
                return None  # empty body atom: the rule derives nothing
            hi = _mul_hi(hi, value.hi)
        return Interval(0, hi)



@dataclass
class CardinalityAnalysis:
    """The interval fixpoint plus the derived planner hints."""

    program: Program
    result: FixpointResult[Interval]
    hints: dict[str, int]

    @property
    def values(self) -> dict[str, Interval]:
        return self.result.values

    def to_dict(self) -> dict:
        return {
            "values": {
                pred: self.values[pred].describe() for pred in sorted(self.values)
            },
            "hints": {pred: self.hints[pred] for pred in sorted(self.hints)},
        }


def analyze_cardinality(
    program: Program,
    facts: ProgramFacts | None = None,
    edb_counts: Mapping[str, int] | None = None,
    default_edb: int = DEFAULT_EDB_SIZE,
) -> CardinalityAnalysis:
    """Run the interval fixpoint and derive per-predicate planner hints.

    Hints map every predicate to a single estimated fact count usable
    as a join-order key: a bounded predicate's upper bound, and for
    predicates widened to ∞ the domain-size bound ``d**arity`` (capped)
    with ``d`` the total assumed EDB volume -- no relation can exceed
    the number of distinct tuples over the active domain.
    """
    if facts is None:
        facts = ProgramFacts(program)
    domain = CardinalityDomain(edb_counts=edb_counts, default_edb=default_edb)
    result = analyze(program, domain, facts)
    arities = program.arities
    total_edb = sum(
        domain.edb_counts.get(pred, domain.default_edb)
        for pred in program.edb_predicates
    )
    domain_size = max(total_edb, 1)
    hints: dict[str, int] = {}
    for pred, value in result.values.items():
        if value.hi is not None:
            hints[pred] = value.hi
        else:
            hints[pred] = min(domain_size ** arities.get(pred, 1), CAP)
    return CardinalityAnalysis(program=program, result=result, hints=hints)


def cardinality_hints(
    program: Program,
    db=None,
    default_edb: int = DEFAULT_EDB_SIZE,
    facts: ProgramFacts | None = None,
) -> dict[str, int]:
    """Static per-predicate size estimates for join planning.

    With a *db*, its actual counts seed the EDB values (so hints agree
    with reality where reality is known); otherwise every EDB relation
    is assumed to hold *default_edb* facts.  The interesting output is
    the IDB estimates, available before a single fact is derived.
    """
    edb_counts: dict[str, int] | None = None
    if db is not None:
        edb_counts = {
            pred: db.count(pred)
            for pred in program.edb_predicates
            if db.count(pred) > 0
        }
    analysis = analyze_cardinality(
        program, facts=facts, edb_counts=edb_counts, default_edb=default_edb
    )
    return analysis.hints


__all__ = [
    "CAP",
    "CardinalityAnalysis",
    "CardinalityDomain",
    "DEFAULT_EDB_SIZE",
    "Interval",
    "analyze_cardinality",
    "cardinality_hints",
]
