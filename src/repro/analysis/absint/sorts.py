"""Constant/sort propagation: which values can reach each position?

The abstract value of a predicate is either **empty** (no fact of the
predicate is derivable from any database) or a vector of per-position
*sorts*: a position's sort is ``None`` (⊤ -- any value, the only sound
answer for extensional data) or a finite set of ground terms of size at
most :data:`MAX_SORT_SIZE` (beyond which the set widens to ⊤).

The lattice per position is thus  ∅ ⊑ {c} ⊑ {c, d} ⊑ ... ⊑ ⊤, of
finite height; the per-predicate lattice is the product plus an
``EMPTY`` bottom element below all vectors.

The transfer function for a rule *meets* (intersects) the sorts that
flow into each variable from the body positions where it occurs, and is
**unsatisfiable** -- the rule is *dead* -- when

* some body predicate is provably empty,
* a constant argument falls outside the body predicate's position sort,
  or
* a variable's meet is the empty set (the joined relations are
  provably value-disjoint at the shared positions).

An intensional predicate all of whose rules are dead is provably empty,
which feeds back into the fixpoint (deadness propagates up the
dependence graph).

Soundness note: deadness here is relative to the *closed-world* reading
of intensional predicates (their facts come only from their rules).
Under the paper's Section VI **uniform** semantics -- where IDB facts
may also be given as input -- a dead rule may still fire, so dead-rule
findings are only promoted to error severity when the §VI
uniform-containment certificate (``P ⊑u P − rule``) passes; see
:func:`certify_dead_rule` and the ``dead-rule`` lint pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ...lang.programs import Program
from ...lang.rules import Rule
from ...lang.terms import Variable
from .framework import AbstractDomain, FixpointResult, ProgramFacts, analyze

#: A position set larger than this widens to ⊤ (any value).  Keeps the
#: lattice height -- and every transfer -- small on fact-heavy programs.
MAX_SORT_SIZE = 16

#: ⊤ for one position: any value may appear.
ANY = None

#: Sort of one position: a finite set of ground terms, or ``ANY``.
Sort = Optional[frozenset]


@dataclass(frozen=True)
class SortVector:
    """Abstract value of one predicate.

    ``empty=True`` is the bottom element (no derivable facts); the
    ``positions`` tuple is meaningful only when ``empty`` is false.
    """

    empty: bool
    positions: tuple[Sort, ...] = ()

    @classmethod
    def none(cls, arity: int) -> "SortVector":
        """Bottom: no fact derivable (yet)."""
        return cls(empty=True, positions=(frozenset(),) * arity)

    @classmethod
    def top(cls, arity: int) -> "SortVector":
        """⊤: anything may be stored (the sound value for EDB data)."""
        return cls(empty=False, positions=(ANY,) * arity)

    def sort(self, position: int) -> Sort:
        return self.positions[position]

    def describe(self) -> str:
        if self.empty:
            return "empty"
        parts = []
        for sort in self.positions:
            if sort is ANY:
                parts.append("*")
            else:
                parts.append("{" + ", ".join(sorted(str(t) for t in sort)) + "}")
        return "(" + ", ".join(parts) + ")"


def _join_sorts(a: Sort, b: Sort) -> Sort:
    if a is ANY or b is ANY:
        return ANY
    union = a | b
    if len(union) > MAX_SORT_SIZE:
        return ANY
    return union


def _meet_sorts(a: Sort, b: Sort) -> Sort:
    if a is ANY:
        return b
    if b is ANY:
        return a
    return a & b


class SortDomain(AbstractDomain[SortVector]):
    """Forward constant/sort propagation (see module docstring)."""

    name = "sorts"

    def bottom(self, predicate: str, arity: int) -> SortVector:
        return SortVector.none(arity)

    def edb_value(self, predicate: str, arity: int) -> SortVector:
        return SortVector.top(arity)

    def join(self, old: SortVector, new: SortVector) -> SortVector:
        if old.empty:
            return new
        if new.empty:
            return old
        return SortVector(
            empty=False,
            positions=tuple(
                _join_sorts(a, b) for a, b in zip(old.positions, new.positions)
            ),
        )

    def transfer(
        self, rule: Rule, state: Mapping[str, SortVector], facts: ProgramFacts
    ) -> SortVector | None:
        reason = dead_reason(rule, state)
        if reason is not None:
            return None
        meets = _variable_meets(rule, state)
        head_sorts: list[Sort] = []
        for term in rule.head.args:
            if isinstance(term, Variable):
                head_sorts.append(meets.get(term, ANY))
            else:
                head_sorts.append(frozenset({term}))
        return SortVector(empty=False, positions=tuple(head_sorts))


def _variable_meets(
    rule: Rule, state: Mapping[str, SortVector]
) -> dict[Variable, Sort]:
    """Meet, per variable, of the sorts flowing in from positive atoms."""
    meets: dict[Variable, Sort] = {}
    for literal in rule.body:
        if not literal.positive:
            continue  # a negated check constrains nothing upward
        value = state.get(literal.predicate)
        if value is None or value.empty:
            continue  # caller rejects empty-bodied atoms via dead_reason
        for position, term in enumerate(literal.atom.args):
            if isinstance(term, Variable):
                current = meets.get(term, ANY)
                meets[term] = _meet_sorts(current, value.sort(position))
    return meets


def dead_reason(rule: Rule, state: Mapping[str, SortVector]) -> str | None:
    """Why *rule* can never fire under *state*, or ``None`` if it can.

    Checked in order of increasing subtlety so the reported reason is
    the most direct one: an empty body predicate, then a constant
    outside its position's sort, then a variable whose inflowing sorts
    are disjoint.
    """
    for literal in rule.body:
        if not literal.positive:
            continue
        value = state.get(literal.predicate)
        if value is not None and value.empty:
            return f"body predicate {literal.predicate} is provably empty"
    for literal in rule.body:
        if not literal.positive:
            continue
        value = state.get(literal.predicate)
        if value is None or value.empty:
            continue
        for position, term in enumerate(literal.atom.args):
            if isinstance(term, Variable):
                continue
            sort = value.sort(position)
            if sort is not ANY and term not in sort:
                return (
                    f"constant {term} at position {position} of {literal.atom} "
                    f"can never be derived there (derivable sort "
                    f"{SortVector(False, (sort,)).describe()[1:-1]})"
                )
    meets = _variable_meets(rule, state)
    for var in sorted(meets, key=lambda v: v.name):
        sort = meets[var]
        if sort is not ANY and not sort:
            return (
                f"variable {var.name} joins value-disjoint positions "
                "(no constant can satisfy every occurrence)"
            )
    return None


@dataclass
class SortAnalysis:
    """The sorts fixpoint plus its derived judgments."""

    program: Program
    result: FixpointResult[SortVector]
    #: IDB predicates with no derivable facts on any database.
    empty_predicates: frozenset[str] = frozenset()
    #: rule index -> reason the rule can never fire.
    dead_rules: dict[int, str] = field(default_factory=dict)

    @property
    def values(self) -> dict[str, SortVector]:
        return self.result.values

    def to_dict(self) -> dict:
        return {
            "values": {
                pred: self.values[pred].describe() for pred in sorted(self.values)
            },
            "empty_predicates": sorted(self.empty_predicates),
            "dead_rules": {
                str(index): reason for index, reason in sorted(self.dead_rules.items())
            },
        }


def analyze_sorts(program: Program, facts: ProgramFacts | None = None) -> SortAnalysis:
    """Run the sorts fixpoint and extract empty-predicate/dead-rule claims."""
    if facts is None:
        facts = ProgramFacts(program)
    result = analyze(program, SortDomain(), facts)
    dead: dict[int, str] = {}
    for index, rule in enumerate(program.rules):
        reason = dead_reason(rule, result.values)
        if reason is not None:
            dead[index] = reason
    empty = frozenset(
        pred
        for pred in program.idb_predicates
        if result.values[pred].empty
    )
    return SortAnalysis(
        program=program, result=result, empty_predicates=empty, dead_rules=dead
    )


def certify_dead_rule(
    program: Program,
    rule: Rule,
    engine: str = "seminaive",
    budget=None,
) -> bool:
    """§VI certificate: is dropping *rule* uniformly sound?

    ``True`` iff ``program ⊑u program − rule``, i.e. the rest of the
    program derives everything the rule does even when intensional
    facts are supplied as input.  A passing certificate upgrades a
    dead-rule finding to error severity -- the claim is then backed by
    the paper's decision procedure, not only by the closed-world
    abstraction.

    A :class:`~repro.core.minimize.ContainmentBudget` *budget* is
    drawn from only when a containment test actually runs; an exhausted
    budget means no certificate (the finding stays a warning).
    """
    from ...core.containment import uniformly_contains

    reduced = program.without_rule(rule)
    if not len(reduced):
        return False
    if budget is not None and not budget.take():
        return False
    return uniformly_contains(container=reduced, contained=program, engine=engine)


__all__ = [
    "ANY",
    "MAX_SORT_SIZE",
    "Sort",
    "SortAnalysis",
    "SortDomain",
    "SortVector",
    "analyze_sorts",
    "certify_dead_rule",
    "dead_reason",
]
