"""A monotone dataflow framework over the predicate dependence graph.

Every program-level judgment this package makes -- "predicate ``P`` is
provably empty", "this rule can never fire", "``G`` holds at most
``n²`` facts", "querying ``Sg(c, x)`` adorns ``Sg`` as ``bf``" -- is an
instance of one scheme: assign each predicate a value from an abstract
*lattice*, interpret each rule as a monotone *transfer function* from
body values to a head value, and iterate to a fixpoint.  This module is
that scheme; the concrete lattices live in the sibling modules
(:mod:`.sorts`, :mod:`.cardinality`, :mod:`.groundness`,
:mod:`.recursion`).

The fixpoint is computed SCC by SCC in the topological order of the
dependence graph's condensation (Section III of the paper):

* a non-recursive SCC needs exactly one pass over its rules, since all
  body values are already final;
* a recursive SCC is iterated until its values stabilise, with
  *widening* (:meth:`AbstractDomain.widen`) applied after
  ``widen_after`` rounds so that infinite-height domains (cardinality
  intervals) still terminate.

:class:`ProgramFacts` is the shared structural precomputation -- the
dependence graph, its SCCs, per-rule join-graph components and variable
occurrence counts -- computed once and consumed by every domain *and* by
the structural lint passes, which previously each re-derived their own
copy per rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Generic, Mapping, TypeVar

from ...lang.programs import Program
from ...lang.rules import Rule
from ...lang.terms import Variable
from ...obs.metrics import metrics_registry
from ..dependence import DependenceGraph

V = TypeVar("V")

#: Rounds of plain joining inside a recursive SCC before the framework
#: switches to widening.  Small on purpose: every concrete domain here
#: either has finite height (so widening never fires) or gains nothing
#: from deeper plain iteration (intervals grow forever without it).
WIDEN_AFTER = 4

#: Hard backstop on rounds per SCC; reaching it means a domain's widen
#: is not an upper-bound operator (a bug), so we fail loudly.
MAX_ROUNDS_PER_SCC = 64


class ProgramFacts:
    """Structural facts about one program, computed once and shared.

    The lint passes and the abstract domains all need the same cheap
    structure: the dependence graph and its SCCs, which rules define
    which predicate, how a rule body partitions into variable-connected
    components, and how often each variable occurs.  Instances are
    cached per :class:`~repro.analysis.lint.LintContext` and per
    analysis run, so the graph is built once per program instead of
    once per pass.
    """

    def __init__(self, program: Program):
        self.program = program

    @cached_property
    def dependence(self) -> DependenceGraph:
        return DependenceGraph(self.program)

    @cached_property
    def scc_order(self) -> tuple[frozenset[str], ...]:
        """SCCs of the dependence graph in topological order."""
        return self.dependence.condensation_order()

    @cached_property
    def recursive_predicates(self) -> frozenset[str]:
        return self.dependence.recursive_predicates

    def is_recursive_scc(self, scc: frozenset[str]) -> bool:
        """Whether *scc* contains a cycle (size > 1 or a self-loop)."""
        if len(scc) > 1:
            return True
        (node,) = scc
        return node in self.recursive_predicates

    @cached_property
    def rules_by_head(self) -> dict[str, tuple[tuple[int, Rule], ...]]:
        """Head predicate -> ``(program index, rule)`` pairs."""
        out: dict[str, list[tuple[int, Rule]]] = {}
        for index, rule in enumerate(self.program.rules):
            out.setdefault(rule.head.predicate, []).append((index, rule))
        return {pred: tuple(pairs) for pred, pairs in out.items()}

    def reachable_from(self, goals: frozenset[str]) -> frozenset[str]:
        """Predicates from which some goal predicate is reachable.

        The reachability set of :mod:`repro.analysis.relevance`, but
        computed against the shared graph (one traversal per goal, no
        per-call graph construction).
        """
        import networkx as nx

        graph = self.dependence.graph
        out: set[str] = set()
        for goal in goals:
            if goal in graph:
                out |= nx.ancestors(graph, goal)
            out.add(goal)
        return frozenset(out)

    def join_components(self, rule: Rule) -> list[set[int]]:
        """Body-literal indexes grouped by shared variables.

        Only literals that carry variables participate (ground guards
        contribute a factor of 0 or 1 to a join and are exempt).  Two
        groups mean the body is a cartesian product.  Memoised per rule.
        """
        cached = self._component_cache.get(rule)
        if cached is None:
            indexed = [
                (i, lit.atom.variable_set())
                for i, lit in enumerate(rule.body)
                if lit.atom.variable_set()
            ]
            components: list[tuple[set[int], set]] = []
            for index, variables in indexed:
                touching = [c for c in components if c[1] & variables]
                merged_indexes = {index}
                merged_vars = set(variables)
                for component in touching:
                    merged_indexes |= component[0]
                    merged_vars |= component[1]
                    components.remove(component)
                components.append((merged_indexes, merged_vars))
            cached = [indexes for indexes, _vars in components]
            self._component_cache[rule] = cached
        return cached

    @cached_property
    def _component_cache(self) -> dict[Rule, list[set[int]]]:
        return {}

    def variable_occurrences(self, rule: Rule) -> dict[Variable, int]:
        """Occurrence count of every variable in *rule* (head + body)."""
        cached = self._occurrence_cache.get(rule)
        if cached is None:
            counts: dict[Variable, int] = {}
            for var in rule.head.variables():
                counts[var] = counts.get(var, 0) + 1
            for literal in rule.body:
                for var in literal.atom.variables():
                    counts[var] = counts.get(var, 0) + 1
            cached = counts
            self._occurrence_cache[rule] = cached
        return cached

    @cached_property
    def _occurrence_cache(self) -> dict[Rule, dict[Variable, int]]:
        return {}


class AbstractDomain(Generic[V]):
    """One abstract lattice plus its per-rule transfer function.

    Subclasses define:

    * ``name`` -- the metrics/reporting identifier;
    * :meth:`bottom` -- the least value (no facts proven derivable);
    * :meth:`edb_value` -- the value of an extensional predicate, about
      whose contents nothing is known statically;
    * :meth:`join` -- least upper bound;
    * :meth:`transfer` -- the head value one rule derives from the
      current state, or ``None`` when the body is unsatisfiable under
      the abstraction (the rule contributes nothing);
    * optionally :meth:`widen` -- an upper-bound operator that forces
      convergence on infinite-height lattices (defaults to ``join``).

    Values must support ``==``; the fixpoint driver detects stability
    through equality.
    """

    name: str = ""

    def bottom(self, predicate: str, arity: int) -> V:  # pragma: no cover
        raise NotImplementedError

    def edb_value(self, predicate: str, arity: int) -> V:  # pragma: no cover
        raise NotImplementedError

    def join(self, old: V, new: V) -> V:  # pragma: no cover
        raise NotImplementedError

    def widen(self, old: V, new: V) -> V:
        return self.join(old, new)

    def transfer(
        self, rule: Rule, state: Mapping[str, V], facts: ProgramFacts
    ) -> V | None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class FixpointResult(Generic[V]):
    """The stabilised predicate assignment plus fixpoint accounting."""

    values: dict[str, V]
    iterations: int
    widenings: int

    def __getitem__(self, predicate: str) -> V:
        return self.values[predicate]


def analyze(
    program: Program,
    domain: AbstractDomain[V],
    facts: ProgramFacts | None = None,
    widen_after: int = WIDEN_AFTER,
) -> FixpointResult[V]:
    """Run *domain* to fixpoint over *program*, SCC by SCC.

    Returns the least fixpoint of the domain's transfer functions (up
    to widening) as a predicate -> value mapping covering every
    predicate of the program.  Counters are published to the metrics
    registry under ``analysis.*``.
    """
    if facts is None:
        facts = ProgramFacts(program)
    arities = program.arities
    state: dict[str, V] = {}
    for pred in program.edb_predicates:
        state[pred] = domain.edb_value(pred, arities[pred])
    for pred in program.idb_predicates:
        state[pred] = domain.bottom(pred, arities[pred])

    iterations = 0
    widenings = 0
    for scc in facts.scc_order:
        scc_rules: list[Rule] = []
        for pred in sorted(scc):
            scc_rules.extend(rule for _i, rule in facts.rules_by_head.get(pred, ()))
        if not scc_rules:
            continue  # pure-EDB SCC: nothing to compute
        recursive = facts.is_recursive_scc(scc)
        rounds = 0
        changed = True
        while changed:
            rounds += 1
            iterations += 1
            if rounds > MAX_ROUNDS_PER_SCC:
                raise RuntimeError(
                    f"abstract domain {domain.name!r} failed to converge on "
                    f"SCC {sorted(scc)} after {MAX_ROUNDS_PER_SCC} rounds "
                    "(widen is not an upper bound?)"
                )
            changed = False
            for rule in scc_rules:
                value = domain.transfer(rule, state, facts)
                if value is None:
                    continue
                head = rule.head.predicate
                joined = domain.join(state[head], value)
                if rounds > widen_after:
                    widened = domain.widen(state[head], joined)
                    if widened != joined:
                        widenings += 1
                    joined = widened
                if joined != state[head]:
                    state[head] = joined
                    changed = True
            if not recursive:
                break  # one pass is the fixpoint: body values were final
    metrics_registry().record_analysis(domain.name, iterations, widenings)
    return FixpointResult(values=state, iterations=iterations, widenings=widenings)


__all__ = [
    "AbstractDomain",
    "FixpointResult",
    "MAX_ROUNDS_PER_SCC",
    "ProgramFacts",
    "WIDEN_AFTER",
    "analyze",
]
