"""Recursion-structure classification per SCC.

Classifies each strongly connected component of the dependence graph as
**nonrecursive**, **linear** (every rule of the SCC uses at most one
in-SCC body atom -- transitive closure, same-generation) or
**nonlinear** (some rule joins two or more in-SCC atoms -- the doubling
formulation of closure), and marks SCCs of size greater than one as
**mutually recursive**.  The classification is the simplest abstract
domain in the package -- each SCC's value is one of three constants,
computed in a single pass -- but it steers two consumers:

* :func:`repro.core.boundedness.uniform_boundedness` takes its
  candidate unrolling depths from :meth:`RecursionAnalysis.candidate_depths`:
  linear recursion unrolls additively (rule count grows by a constant
  per round), so the full depth budget is spent; nonlinear recursion
  multiplies the rule set each round, so deep unrollings mostly abort
  on the ``max_rules`` guard -- the search caps its depth at
  :data:`NONLINEAR_MAX_DEPTH` and spends the budget where it can pay
  off;
* the ``linear-recursion`` and ``mutual-recursion`` lint notes, which
  surface where specialised linear-recursion strategies apply and where
  evaluation must iterate several predicates together.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang.programs import Program
from .framework import ProgramFacts

#: Nonrecursive SCC / rule-free predicate.
NONRECURSIVE = "nonrecursive"
#: Every rule of the SCC has at most one in-SCC body atom.
LINEAR = "linear"
#: Some rule joins two or more in-SCC body atoms.
NONLINEAR = "nonlinear"

#: Depth cap for boundedness search on nonlinear recursion: each
#: unrolling round multiplies the rule set, so depths beyond this
#: almost always trip the ``max_rules`` guard instead of proving
#: anything.
NONLINEAR_MAX_DEPTH = 3


@dataclass(frozen=True)
class SccInfo:
    """Classification of one dependence-graph SCC."""

    predicates: frozenset[str]
    kind: str  # NONRECURSIVE | LINEAR | NONLINEAR
    #: More than one predicate in the component.
    mutual: bool
    #: Program indexes of the rules with at least one in-SCC body atom.
    recursive_rule_indexes: tuple[int, ...] = ()

    @property
    def recursive(self) -> bool:
        return self.kind != NONRECURSIVE

    def to_dict(self) -> dict:
        return {
            "predicates": sorted(self.predicates),
            "kind": self.kind,
            "mutual": self.mutual,
            "recursive_rules": list(self.recursive_rule_indexes),
        }


@dataclass
class RecursionAnalysis:
    """Per-SCC classification in dependence (topological) order."""

    program: Program
    sccs: tuple[SccInfo, ...]

    @property
    def recursive_sccs(self) -> tuple[SccInfo, ...]:
        return tuple(scc for scc in self.sccs if scc.recursive)

    @property
    def linear(self) -> bool:
        """Whole-program linearity: no SCC is nonlinear."""
        return all(scc.kind != NONLINEAR for scc in self.sccs)

    def kind_of(self, predicate: str) -> str:
        for scc in self.sccs:
            if predicate in scc.predicates:
                return scc.kind
        return NONRECURSIVE

    def candidate_depths(self, max_depth: int) -> tuple[int, ...]:
        """Unrolling depths worth testing for uniform boundedness.

        Empty for a nonrecursive program (depth 0 is trivially enough).
        Otherwise ``1..max_depth``, capped at
        :data:`NONLINEAR_MAX_DEPTH` when any SCC is nonlinear (see
        module docstring).  Depth 1 always comes first: vacuous
        recursion proves there, and proofs only get more expensive with
        depth.
        """
        if not self.recursive_sccs:
            return ()
        effective = max_depth
        if any(scc.kind == NONLINEAR for scc in self.sccs):
            effective = min(max_depth, NONLINEAR_MAX_DEPTH)
        return tuple(range(1, effective + 1))

    def to_dict(self) -> dict:
        return {
            "linear": self.linear,
            "sccs": [scc.to_dict() for scc in self.sccs if scc.recursive],
        }


def classify_recursion(
    program: Program, facts: ProgramFacts | None = None
) -> RecursionAnalysis:
    """Classify every SCC of *program*'s dependence graph."""
    from ...obs.metrics import metrics_registry

    if facts is None:
        facts = ProgramFacts(program)
    sccs: list[SccInfo] = []
    for component in facts.scc_order:
        rules = [
            (index, rule)
            for pred in sorted(component)
            for index, rule in facts.rules_by_head.get(pred, ())
        ]
        if not facts.is_recursive_scc(component):
            sccs.append(
                SccInfo(component, NONRECURSIVE, mutual=False)
            )
            continue
        recursive_indexes: list[int] = []
        kind = LINEAR
        for index, rule in rules:
            in_scc = sum(
                1 for literal in rule.body if literal.predicate in component
            )
            if in_scc:
                recursive_indexes.append(index)
            if in_scc > 1:
                kind = NONLINEAR
        sccs.append(
            SccInfo(
                component,
                kind,
                mutual=len(component) > 1,
                recursive_rule_indexes=tuple(sorted(recursive_indexes)),
            )
        )
    metrics_registry().record_analysis("recursion", len(sccs), 0)
    return RecursionAnalysis(program=program, sccs=tuple(sccs))


__all__ = [
    "LINEAR",
    "NONLINEAR",
    "NONLINEAR_MAX_DEPTH",
    "NONRECURSIVE",
    "RecursionAnalysis",
    "SccInfo",
    "classify_recursion",
]
