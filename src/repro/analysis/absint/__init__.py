"""Abstract interpretation over Datalog programs.

A generic monotone dataflow framework (:mod:`.framework`) -- SCC-ordered
fixpoint over the predicate dependence graph, with widening for
infinite-height domains -- plus five concrete domains:

* :mod:`.sorts` -- constant/sort propagation per predicate position;
  proves predicates empty and rules dead, each dead-rule claim
  certifiable by the paper's Section VI uniform-containment check;
* :mod:`.groundness` -- binding/adornment analysis for a query mode;
  the demand computation behind :func:`repro.engine.magic.magic_transform`,
  runnable statically to validate sideways information passing;
* :mod:`.cardinality` -- fact-count intervals with widening; supplies
  static join-order hints to :func:`repro.engine.joins.plan_order` when
  no database statistics exist;
* :mod:`.recursion` -- linear/nonlinear/mutual classification per SCC;
  steers :func:`repro.core.boundedness.uniform_boundedness` candidate
  depths and the ``linear-recursion`` lint note;
* :mod:`.termination` -- chase-termination certificates over a program
  + tgd set (full-only / weakly acyclic / jointly acyclic / sticky /
  weakly sticky); :func:`repro.core.chase.certified_budget` consumes
  the certificate to widen chase budgets soundly, upgrading
  budget-induced ``UNKNOWN`` verdicts to ``DISPROVED``.

:mod:`.report` runs everything over one shared
:class:`~repro.analysis.absint.framework.ProgramFacts` and renders the
``repro-datalog analyze`` output.
"""

from __future__ import annotations

from .cardinality import (
    CAP,
    CardinalityAnalysis,
    CardinalityDomain,
    DEFAULT_EDB_SIZE,
    Interval,
    analyze_cardinality,
    cardinality_hints,
)
from .framework import (
    AbstractDomain,
    FixpointResult,
    ProgramFacts,
    analyze,
)
from .groundness import BindingAnalysis, BindingIssue, binding_analysis
from .recursion import (
    LINEAR,
    NONLINEAR,
    NONLINEAR_MAX_DEPTH,
    NONRECURSIVE,
    RecursionAnalysis,
    SccInfo,
    classify_recursion,
)
from .report import (
    ABSINT_LINT_RULES,
    ANALYZE_SCHEMA_VERSION,
    AnalysisReport,
    analyze_program,
    render_analysis_json,
    render_analysis_text,
)
from .sorts import (
    SortAnalysis,
    SortDomain,
    SortVector,
    analyze_sorts,
    certify_dead_rule,
)
from .termination import (
    DECIDABLE_CLASSES,
    FULL_ONLY,
    JOINTLY_ACYCLIC,
    PositionEdge,
    PositionGraph,
    STICKY,
    TERMINATING_CLASSES,
    TerminationAnalysis,
    TerminationCertificate,
    UNKNOWN_CLASS,
    WEAKLY_ACYCLIC,
    WEAKLY_STICKY,
    classify_termination,
)

__all__ = [
    "ABSINT_LINT_RULES",
    "ANALYZE_SCHEMA_VERSION",
    "AbstractDomain",
    "AnalysisReport",
    "DECIDABLE_CLASSES",
    "FULL_ONLY",
    "JOINTLY_ACYCLIC",
    "PositionEdge",
    "PositionGraph",
    "STICKY",
    "TERMINATING_CLASSES",
    "TerminationAnalysis",
    "TerminationCertificate",
    "UNKNOWN_CLASS",
    "WEAKLY_ACYCLIC",
    "WEAKLY_STICKY",
    "BindingAnalysis",
    "BindingIssue",
    "CAP",
    "CardinalityAnalysis",
    "CardinalityDomain",
    "DEFAULT_EDB_SIZE",
    "FixpointResult",
    "Interval",
    "LINEAR",
    "NONLINEAR",
    "NONLINEAR_MAX_DEPTH",
    "NONRECURSIVE",
    "ProgramFacts",
    "RecursionAnalysis",
    "SccInfo",
    "SortAnalysis",
    "SortDomain",
    "SortVector",
    "analyze",
    "analyze_cardinality",
    "analyze_program",
    "analyze_sorts",
    "binding_analysis",
    "cardinality_hints",
    "certify_dead_rule",
    "classify_recursion",
    "classify_termination",
    "render_analysis_json",
    "render_analysis_text",
]
