"""One-call whole-program analysis report for the ``analyze`` CLI verb.

:func:`analyze_program` runs every abstract domain of the package over a
single shared :class:`~repro.analysis.absint.framework.ProgramFacts`
(sorts, cardinality, recursion, and -- when a query atom is supplied --
groundness), plus the abstract-interpretation lint passes, and bundles
the results into an :class:`AnalysisReport` renderable as text or as a
versioned JSON document.

The JSON schema is versioned independently of the lint report's
(:data:`ANALYZE_SCHEMA_VERSION`); every mapping in the payload is sorted
by key so CI diffs of ``analyze --json`` output are deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

from ...core.tgds import Tgd
from ...lang.atoms import Atom
from ...lang.programs import Program
from ...lang.rules import Rule
from ..lint import Diagnostic, LintConfig, Linter, SEVERITIES
from ..lint_report import diagnostic_payloads, severity_counts
from .cardinality import DEFAULT_EDB_SIZE, CardinalityAnalysis, analyze_cardinality
from .framework import ProgramFacts
from .groundness import BindingAnalysis, binding_analysis
from .recursion import RecursionAnalysis, classify_recursion
from .sorts import SortAnalysis, analyze_sorts
from .termination import TerminationAnalysis, classify_termination

#: Bumped when the ``analyze --json`` shape changes incompatibly.
#: Version history:
#:
#: 1. initial shape (sorts/cardinality/recursion/binding/diagnostics);
#: 2. adds the always-present ``termination`` block (chase-termination
#:    certificate: classification, position graph, evidence).  Existing
#:    version-1 keys are unchanged, so version-1 consumers that ignore
#:    unknown keys keep working.
ANALYZE_SCHEMA_VERSION = 2

#: The lint passes built on this package; ``analyze`` reports exactly
#: these (the structural passes stay with the ``lint`` verb).
ABSINT_LINT_RULES: frozenset[str] = frozenset(
    {
        "empty-predicate",
        "dead-rule",
        "linear-recursion",
        "mutual-recursion",
        "unbound-subgoal",
        "containment-budget",
        "weakly-acyclic-certified",
        "nonterminating-chase-risk",
    }
)


@dataclass
class AnalysisReport:
    """Every domain's fixpoint over one program, plus lint findings."""

    program: Program
    sorts: SortAnalysis
    cardinality: CardinalityAnalysis
    recursion: RecursionAnalysis
    #: Present only when a query atom was supplied.
    binding: BindingAnalysis | None
    #: Always present; classifies the program alone (full-only) when no
    #: tgds were supplied.
    termination: TerminationAnalysis
    diagnostics: list[Diagnostic]

    def to_dict(self, filename: str = "<program>") -> dict:
        program = self.program
        return {
            "version": ANALYZE_SCHEMA_VERSION,
            "filename": filename,
            "predicates": {
                "edb": sorted(program.edb_predicates),
                "idb": sorted(program.idb_predicates),
            },
            "sorts": self.sorts.to_dict(),
            "cardinality": self.cardinality.to_dict(),
            "recursion": self.recursion.to_dict(),
            "binding": self.binding.to_dict() if self.binding else None,
            "termination": self.termination.to_dict(),
            "diagnostics": diagnostic_payloads(self.diagnostics),
            "counts": severity_counts(self.diagnostics),
        }


def analyze_program(
    program: Program,
    spans: Mapping[Rule, object] | None = None,
    query: Atom | None = None,
    sips: str = "left-to-right",
    config: LintConfig | None = None,
    edb_counts: Mapping[str, int] | None = None,
    default_edb: int = DEFAULT_EDB_SIZE,
    tgds: tuple[Tgd, ...] = (),
) -> AnalysisReport:
    """Run every abstract domain (and its lint passes) over *program*.

    One :class:`ProgramFacts` feeds all domains, so the dependence graph
    and SCC condensation are computed exactly once.  *config* defaults
    to the absint lint subset (:data:`ABSINT_LINT_RULES`); a caller
    passing its own config controls selection (and the containment
    budget behind dead-rule certification) fully.  *tgds* feed the
    termination domain (and the chase-termination lint rules, which stay
    silent without tgds).
    """
    facts = ProgramFacts(program)
    sorts = analyze_sorts(program, facts)
    cardinality = analyze_cardinality(
        program, facts, edb_counts=edb_counts, default_edb=default_edb
    )
    recursion = classify_recursion(program, facts)
    binding = (
        binding_analysis(program, query, sips=sips, facts=facts)
        if query is not None
        else None
    )
    termination = classify_termination(tgds, program)
    if config is None:
        config = LintConfig(select=ABSINT_LINT_RULES, tgds=tuple(tgds))
    diagnostics = Linter(config=config).run(program, spans)
    return AnalysisReport(
        program=program,
        sorts=sorts,
        cardinality=cardinality,
        recursion=recursion,
        binding=binding,
        termination=termination,
        diagnostics=diagnostics,
    )


def render_analysis_json(report: AnalysisReport, filename: str = "<program>") -> str:
    """The machine-readable report as a JSON string (stable key order)."""
    return json.dumps(report.to_dict(filename), indent=2, sort_keys=False)


def render_analysis_text(report: AnalysisReport, filename: str = "<program>") -> str:
    """The human-readable report, one section per domain."""
    program = report.program
    lines: list[str] = [f"{filename}: {len(program)} rule(s)"]

    lines.append("")
    lines.append("sorts (derivable values per position):")
    for pred in sorted(report.sorts.values):
        lines.append(f"  {pred}: {report.sorts.values[pred].describe()}")
    if report.sorts.empty_predicates:
        lines.append(
            "  provably empty: " + ", ".join(sorted(report.sorts.empty_predicates))
        )
    for index, reason in sorted(report.sorts.dead_rules.items()):
        lines.append(f"  dead rule[{index}]: {reason}")

    lines.append("")
    lines.append("cardinality (fact-count intervals and planner hints):")
    for pred in sorted(report.cardinality.values):
        interval = report.cardinality.values[pred]
        hint = report.cardinality.hints.get(pred)
        lines.append(f"  {pred}: {interval.describe()} hint={hint}")

    lines.append("")
    recursion = report.recursion
    if not recursion.recursive_sccs:
        lines.append("recursion: none (program is nonrecursive)")
    else:
        lines.append("recursion (per recursive SCC):")
        for scc in recursion.recursive_sccs:
            preds = ", ".join(sorted(scc.predicates))
            mutual = ", mutual" if scc.mutual else ""
            rules = ", ".join(f"rule[{i}]" for i in scc.recursive_rule_indexes)
            lines.append(f"  {{{preds}}}: {scc.kind}{mutual} ({rules})")

    if report.binding is not None:
        binding = report.binding
        lines.append("")
        lines.append(
            f"binding for query {binding.query} "
            f"(adornment {binding.query_adornment.suffix}, sips {binding.sips}):"
        )
        for pred in sorted(binding.adornments):
            suffixes = ", ".join(sorted(a.suffix for a in binding.adornments[pred]))
            lines.append(f"  {pred}: {suffixes}")
        for issue in binding.issues:
            lines.append(f"  {issue.kind}: {issue.message}")

    lines.append("")
    certificate = report.termination.certificate
    if report.termination.tgds:
        lines.append(
            f"termination ({len(report.termination.tgds)} tgd(s) + program rules):"
        )
    else:
        lines.append("termination (program rules only, no tgds supplied):")
    lines.append(f"  {certificate.describe()}")
    lines.append(
        "  chase terminates: "
        + ("yes" if certificate.guarantees_termination else "not certified")
        + "; query answering decidable: "
        + ("yes" if certificate.guarantees_decidability else "not certified")
    )
    if certificate.special_cycle:
        lines.append("  special-edge cycle:")
        for edge in certificate.special_cycle:
            lines.append(f"    {edge.describe()}")
    for violation in certificate.sticky_violations:
        if not violation.finite_rank_occurrences:
            lines.append(
                f"  marked variable {violation.variable} joins at "
                f"{', '.join(violation.occurrences)} in {violation.origin}"
            )

    lines.append("")
    if not report.diagnostics:
        lines.append("findings: none")
    else:
        counts = severity_counts(report.diagnostics)
        summary = ", ".join(
            f"{counts[s]} {s}" for s in SEVERITIES if counts[s]
        )
        lines.append(f"findings ({summary}):")
        for diagnostic in report.diagnostics:
            lines.append(f"  {diagnostic}")
    return "\n".join(lines)


__all__ = [
    "ABSINT_LINT_RULES",
    "ANALYZE_SCHEMA_VERSION",
    "AnalysisReport",
    "analyze_program",
    "render_analysis_json",
    "render_analysis_text",
]
