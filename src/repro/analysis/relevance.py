"""Query relevance: dead-rule elimination relative to a goal predicate.

Complementary to the paper's semantic minimization: a rule can be
useless for a *query* without being redundant in the program -- nothing
derivable from it ever reaches the query predicate.  Relevance is a
purely structural (dependence-graph) property, decidable in linear
time, and removing irrelevant rules preserves the query answer exactly.

This is the static skeleton of what magic sets does dynamically; the
optimizer pipeline runs it before the (much costlier) semantic passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..lang.programs import Program
from ..lang.rules import Rule
from .dependence import DependenceGraph


@dataclass
class RelevanceResult:
    """Predicates and rules that can influence the goal."""

    goal: str
    relevant_predicates: frozenset[str]
    program: Program
    removed_rules: tuple[Rule, ...]

    @property
    def changed(self) -> bool:
        return bool(self.removed_rules)


def relevant_predicates(program: Program, goal: str) -> frozenset[str]:
    """Predicates from which the *goal* predicate is reachable.

    Includes the goal itself.  Unknown goals are their own (singleton)
    answer -- querying a predicate the program never mentions is legal
    and returns only stored facts.
    """
    graph = DependenceGraph(program).graph
    if goal not in graph:
        return frozenset({goal})
    reachable = nx.ancestors(graph, goal)
    reachable.add(goal)
    return frozenset(reachable)


def restrict_to_goal(program: Program, goal: str) -> RelevanceResult:
    """Drop every rule whose head cannot influence the *goal*.

    The result computes exactly the same relation for ``goal`` (and for
    every retained predicate) on every input database: removed rules
    only populate predicates the goal never reads.
    """
    relevant = relevant_predicates(program, goal)
    kept = [r for r in program.rules if r.head.predicate in relevant]
    removed = tuple(r for r in program.rules if r.head.predicate not in relevant)
    return RelevanceResult(
        goal=goal,
        relevant_predicates=relevant,
        program=Program(kept),
        removed_rules=removed,
    )


def unreachable_predicates(program: Program, goal: str) -> frozenset[str]:
    """IDB predicates that cannot influence the goal (diagnostics)."""
    return program.idb_predicates - relevant_predicates(program, goal)
