"""Dependence graphs and recursion analysis (Section III).

"A program P has an associated directed graph, called the dependence
graph, that has a node for each predicate of the program, and an edge
from predicate Q to predicate R whenever predicate Q is in the body of
some rule and predicate R is in the head of that same rule."

* ``P`` is *recursive* if the graph has a cycle.
* A *predicate* is recursive if it lies on a cycle through itself.
* A *rule* is recursive if some cycle includes the head predicate and a
  body predicate of that rule -- in particular whenever the head
  predicate also occurs in the body.
* A program is *linear* if each rule's body contains at most one
  recursive predicate (the class for which the paper notes the
  undecidability results already hold).
"""

from __future__ import annotations

from functools import cached_property

import networkx as nx

from ..lang.programs import Program
from ..lang.rules import Rule


class DependenceGraph:
    """The paper's dependence graph, with recursion queries.

    Edges are labelled with the polarity of the body occurrence that
    induced them (``negative=True`` if *any* inducing occurrence is
    negated), which the stratified extension uses.
    """

    def __init__(self, program: Program):
        self.program = program
        graph = nx.DiGraph()
        graph.add_nodes_from(program.predicates)
        for rule in program.rules:
            head = rule.head.predicate
            for literal in rule.body:
                body_pred = literal.predicate
                if graph.has_edge(body_pred, head):
                    if not literal.positive:
                        graph[body_pred][head]["negative"] = True
                else:
                    graph.add_edge(body_pred, head, negative=not literal.positive)
        self.graph = graph

    @cached_property
    def _cyclic_components(self) -> tuple[frozenset[str], ...]:
        out = []
        for component in nx.strongly_connected_components(self.graph):
            if len(component) > 1:
                out.append(frozenset(component))
            else:
                (node,) = component
                if self.graph.has_edge(node, node):
                    out.append(frozenset(component))
        return tuple(out)

    @cached_property
    def recursive_predicates(self) -> frozenset[str]:
        """Predicates lying on some cycle (necessarily intensional)."""
        out: set[str] = set()
        for component in self._cyclic_components:
            out.update(component)
        return frozenset(out)

    @property
    def is_recursive(self) -> bool:
        """Whether the *program* is recursive (graph has a cycle)."""
        return bool(self._cyclic_components)

    def is_recursive_rule(self, rule: Rule) -> bool:
        """Whether some cycle joins the rule's head and a body predicate."""
        head = rule.head.predicate
        for component in self._cyclic_components:
            if head in component and any(
                lit.predicate in component for lit in rule.body
            ):
                return True
        return False

    def recursive_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.program.rules if self.is_recursive_rule(r))

    @property
    def is_linear(self) -> bool:
        """At most one recursive-predicate occurrence per rule body."""
        recursive = self.recursive_predicates
        for rule in self.program.rules:
            count = sum(1 for lit in rule.body if lit.predicate in recursive)
            if count > 1:
                return False
        return True

    def condensation_order(self) -> tuple[frozenset[str], ...]:
        """SCCs in a topological order (useful for stratified planning)."""
        condensed = nx.condensation(self.graph)
        order = []
        for node in nx.topological_sort(condensed):
            order.append(frozenset(condensed.nodes[node]["members"]))
        return tuple(order)

    def has_negative_cycle(self) -> bool:
        """Whether any cycle contains a negative edge (unstratifiable)."""
        return bool(self.negative_cycle_predicates())

    def negative_cycle_predicates(self) -> frozenset[str]:
        """The predicates of every SCC whose cycle crosses a negative edge.

        Non-empty exactly when the program is unstratifiable; the linter
        names these predicates in its ``unstratifiable`` diagnostic.
        """
        out: set[str] = set()
        for component in self._cyclic_components:
            for u, v, data in self.graph.edges(data=True):
                if data.get("negative") and u in component and v in component:
                    out.update(component)
                    break
        return frozenset(out)
