"""Lint passes built on the specialization (advise) analysis.

Both rules probe every IDB predicate under its fully-bound adornment —
the most demanding query form a serving workload produces — and judge
the magic rewriting that form would trigger:

* ``adornment-space-explosion`` (warning) — the reachable adornment
  closure exceeds the configured budget
  (:attr:`~repro.analysis.lint.LintConfig.adornment_budget`), so every
  specialized evaluation pays for a blown-up rewritten program and a
  prepared-program cache holds that many adorned predicates per entry.
* ``magic-unstratifiable`` (error) — the program itself stratifies, but
  its magic rewriting does not: the magic predicates introduce a cycle
  through negation, so ``query``-time goal-directed evaluation of this
  form is unsound to attempt.  Programs that are already unstratifiable
  are skipped (the stratified engine rejects them regardless of any
  rewriting; this rule is about damage *caused by* the rewrite).
"""

from __future__ import annotations

from typing import Iterable

from .lint import Diagnostic, LintContext, LintRule, register
from .specialize.rewrite import QueryForm, materialize_specialization
from ..engine.magic import Adornment, _ADORN_SEP, _MAGIC_PREFIX


def _probe_forms(context: LintContext) -> list[QueryForm]:
    from .specialize.rewrite import _probe_atom

    forms: list[QueryForm] = []
    arities = context.program.arities
    for pred in sorted(context.program.idb_predicates):
        # Generated adorned/magic names would collide with a second
        # round of rewriting; lint the source program only.
        if pred.startswith(_MAGIC_PREFIX) or _ADORN_SEP in pred:
            return []
        adornment = Adornment((True,) * arities[pred])
        forms.append(QueryForm(pred, adornment, _probe_atom(pred, adornment)))
    return forms


@register
class AdornmentSpaceExplosionLint(LintRule):
    rule_id = "adornment-space-explosion"
    severity = "warning"
    description = (
        "a query form's reachable adornment closure exceeds the budget; "
        "specialized plans and caches blow up with it"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        from .absint.groundness import binding_analysis

        budget = context.config.adornment_budget
        for form in _probe_forms(context):
            analysis = binding_analysis(
                context.program, form.probe, facts=context.facts
            )
            size = len(analysis.demand)
            if size > budget:
                anchor = context.facts.rules_by_head.get(form.predicate, ())
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"query form {form.display} demands {size} adorned "
                    f"predicates (budget {budget}); the magic rewriting "
                    "multiplies the program by that factor — consider a "
                    "different SIPS or body order",
                    rule=anchor[0][1] if anchor else None,
                )


@register
class MagicUnstratifiableLint(LintRule):
    rule_id = "magic-unstratifiable"
    severity = "error"
    description = (
        "magic-sets rewriting of a stratified program breaks "
        "stratification for some query form"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        program = context.program
        if program.is_positive:
            return
        if context.facts.dependence.has_negative_cycle():
            return  # already unstratifiable before any rewriting
        from .absint.framework import ProgramFacts

        for form in _probe_forms(context):
            rewriting = materialize_specialization(program, form.probe)
            cycle = sorted(
                ProgramFacts(rewriting.program).dependence.negative_cycle_predicates()
            )
            if cycle:
                anchor = context.facts.rules_by_head.get(form.predicate, ())
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"magic rewriting for query form {form.display} is "
                    f"unstratifiable (negative cycle through "
                    f"{', '.join(cycle)}); goal-directed evaluation of "
                    "this form must fall back to full bottom-up "
                    "stratified evaluation",
                    rule=anchor[0][1] if anchor else None,
                )


__all__ = ["AdornmentSpaceExplosionLint", "MagicUnstratifiableLint"]
