"""Built-in lint passes (imported by the registry on first use).

Nine paper-grounded rules, cheapest first:

===================== ========= ==================================================
id                    severity  grounding
===================== ========= ==================================================
``duplicate-rule``    warning   canonical renaming (:mod:`repro.lang.canonical`)
``cartesian-product`` warning   disconnected join graph in a rule body
``singleton-variable`` hint     existential variable used exactly once
``undefined-predicate`` warning near-miss of a defined predicate (likely typo)
``unused-idb``        warning   unreachable from any exported predicate
                                (:mod:`repro.analysis.relevance`)
``unstratifiable``    error     negation through recursion
                                (:mod:`repro.analysis.dependence`)
``redundant-atom``    warning   Fig. 1 uniform-containment test (Section VII)
``redundant-rule``    warning   Fig. 2 uniform-containment test (Section VII)
``tgd-candidate``     info      Section XI syntactic properties
                                (:mod:`repro.core.heuristics`)
===================== ========= ==================================================

The two containment-backed rules draw from the context's shared
:class:`~repro.core.minimize.ContainmentBudget`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..lang.canonical import modulo_body_order
from ..lang.pretty import format_rule
from ..lang.rules import Rule
from .lint import Diagnostic, Fix, LintContext, LintRule, register


@register
class DuplicateRuleLint(LintRule):
    rule_id = "duplicate-rule"
    severity = "warning"
    description = "rule is a variable-renaming/body-reordering variant of an earlier rule"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        seen: dict[Rule, int] = {}
        for index, rule in enumerate(context.program.rules):
            key = modulo_body_order(rule)
            if key in seen:
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"rule '{rule}' duplicates rule {seen[key]} up to variable "
                    "renaming and body order",
                    rule=rule,
                    fix=Fix("delete the duplicate rule"),
                )
            else:
                seen[key] = index


@register
class CartesianProductLint(LintRule):
    rule_id = "cartesian-product"
    severity = "warning"
    description = "rule body joins disconnected groups of atoms (cross product)"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for rule in context.program.rules:
            # The join-graph components come from the shared ProgramFacts
            # (one memoised computation per rule, reused by the abstract
            # domains); ground guards are exempt there -- they contribute
            # a factor of 0 or 1, not a cross product.
            components = context.facts.join_components(rule)
            if len(components) > 1:
                groups = " x ".join(
                    "{" + ", ".join(str(rule.body[i].atom) for i in sorted(c)) + "}"
                    for c in components
                )
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"body of '{rule}' is a cartesian product of variable-disjoint "
                    f"groups {groups}; the join computes every combination",
                    rule=rule,
                )


@register
class SingletonVariableLint(LintRule):
    rule_id = "singleton-variable"
    severity = "hint"
    description = "variable occurs exactly once (existential guard or typo)"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for rule in context.program.rules:
            counts = context.facts.variable_occurrences(rule)
            singles = sorted(v.name for v, n in counts.items() if n == 1)
            if singles:
                names = ", ".join(singles)
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"variable(s) {names} of '{rule}' occur only once; fine as an "
                    "existential guard, suspicious if a join was intended",
                    rule=rule,
                )


@register
class UndefinedPredicateLint(LintRule):
    rule_id = "undefined-predicate"
    severity = "warning"
    description = "used-but-undefined predicate that is a near-miss of a defined one"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        program = context.program
        # Body-only predicates are EDB by convention, so "undefined" alone
        # is not a finding -- a near-miss of a *defined* predicate is: the
        # misspelling silently reads an empty relation instead of the IDB.
        for rule in program.rules:
            flagged: set[str] = set()
            for literal in rule.body:
                name = literal.predicate
                if name in program.idb_predicates or name in flagged:
                    continue
                suggestion = self._best_match(name, program.idb_predicates)
                if suggestion is not None:
                    flagged.add(name)
                    yield context.diagnostic(
                        self.rule_id,
                        self.severity,
                        f"predicate {name} in '{rule}' has no defining rule; "
                        f"did you mean {suggestion}?",
                        rule=rule,
                    )

    @staticmethod
    def _best_match(name: str, defined) -> str | None:
        candidates = []
        for other in sorted(defined):
            if other == name:
                continue
            # Distance-1 matches are only meaningful for names long enough
            # that a collision is unlikely to be intentional (A vs G is not
            # a typo; Addr vs Adr almost certainly is).
            close = (
                min(len(other), len(name)) >= 3 and _edit_distance(other, name) <= 1
            )
            if other.lower() == name.lower() or close:
                candidates.append(other)
        return candidates[0] if candidates else None


def _edit_distance(a: str, b: str) -> int:
    """Plain Levenshtein distance (names are short; O(len*len) is fine)."""
    if abs(len(a) - len(b)) > 1:
        return 2  # callers only care about <= 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        previous = current
    return previous[-1]


@register
class UnusedIdbLint(LintRule):
    rule_id = "unused-idb"
    severity = "warning"
    description = "IDB predicate unreachable from any exported predicate"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        exported = context.config.exported
        if exported is None:
            # Without export declarations any sink predicate could be the
            # intended output, so there is nothing sound to report.
            return
        program = context.program
        # One traversal of the shared dependence graph covers all goals
        # (previously one full relevant_predicates graph build per goal).
        relevant = context.facts.reachable_from(frozenset(exported))
        for pred in sorted(program.idb_predicates - relevant):
            rule = next(r for r in program.rules if r.head.predicate == pred)
            yield context.diagnostic(
                self.rule_id,
                self.severity,
                f"IDB predicate {pred} cannot reach any exported predicate "
                f"({', '.join(sorted(exported))}); its rules are dead code",
                rule=rule,
                fix=Fix(f"delete the rules defining {pred}"),
            )


@register
class UnstratifiableLint(LintRule):
    rule_id = "unstratifiable"
    severity = "error"
    description = "negation through recursion (no stratified evaluation exists)"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        program = context.program
        if program.is_positive:
            return
        offenders = context.facts.dependence.negative_cycle_predicates()
        if not offenders:
            return
        names = ", ".join(sorted(offenders))
        rule = next((r for r in program.rules if r.head.predicate in offenders), None)
        yield context.diagnostic(
            self.rule_id,
            self.severity,
            f"negation through recursion among {{{names}}}: the program has no "
            "stratification and cannot be evaluated with stratified semantics",
            rule=rule,
        )


@register
class RedundantAtomLint(LintRule):
    rule_id = "redundant-atom"
    severity = "warning"
    description = "body atom provably redundant under uniform equivalence (Fig. 1)"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        from ..core.minimize import scan_redundancy

        program = context.program
        if not program.is_positive:
            return
        scan = scan_redundancy(
            program,
            engine=context.config.engine,
            atoms=True,
            rules=False,
            budget=context.containment_budget,
        )
        for finding in scan.redundant_atoms:
            yield context.diagnostic(
                self.rule_id,
                self.severity,
                f"body atom {finding.atom} of '{finding.rule}' is redundant: the "
                "rule without it is uniformly contained in the program "
                "(Section VII, Fig. 1)",
                rule=finding.rule,
                fix=Fix(
                    f"drop {finding.atom} from the body",
                    replacement=format_rule(finding.reduced),
                ),
            )


@register
class RedundantRuleLint(LintRule):
    rule_id = "redundant-rule"
    severity = "warning"
    description = "whole rule provably redundant under uniform equivalence (Fig. 2)"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        from ..core.minimize import scan_redundancy

        program = context.program
        if not program.is_positive or len(program) < 2:
            return
        scan = scan_redundancy(
            program,
            engine=context.config.engine,
            atoms=False,
            rules=True,
            budget=context.containment_budget,
        )
        for rule in scan.redundant_rules:
            yield context.diagnostic(
                self.rule_id,
                self.severity,
                f"rule '{rule}' is redundant: it is uniformly contained in "
                "the rest of the program (Section VII, Fig. 2)",
                rule=rule,
                fix=Fix("delete the rule"),
            )


@register
class TgdCandidateLint(LintRule):
    rule_id = "tgd-candidate"
    severity = "info"
    description = "candidate tgd satisfying the Section XI syntactic properties"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        from ..core.heuristics import candidate_tgds

        program = context.program
        if not program.is_positive:
            return
        limit = context.config.max_tgd_candidates_per_rule
        if limit <= 0:
            return
        for rule in program.rules:
            if len(rule.body) < 2:
                continue
            for candidate in itertools.islice(candidate_tgds(rule), limit):
                positions = ", ".join(str(i) for i in candidate.rhs_body_positions)
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"candidate tgd {candidate.tgd} satisfies the Section XI "
                    f"properties for '{rule}'; if it holds in your data, body "
                    f"position(s) {positions} become removable under plain "
                    "equivalence (try `repro-datalog prove`)",
                    rule=rule,
                )


__all__ = [
    "CartesianProductLint",
    "DuplicateRuleLint",
    "RedundantAtomLint",
    "RedundantRuleLint",
    "SingletonVariableLint",
    "TgdCandidateLint",
    "UndefinedPredicateLint",
    "UnstratifiableLint",
    "UnusedIdbLint",
]
