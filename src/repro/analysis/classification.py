"""Program and rule classification helpers.

Thin, well-named predicates over :class:`~repro.lang.programs.Program`
capturing the classifications the paper relies on: intensional versus
extensional predicates (Section III), initialization rules (Section X),
recursive/linear programs (Sections III and V).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.programs import Program
from ..lang.rules import Rule
from .dependence import DependenceGraph


@dataclass(frozen=True)
class ProgramProfile:
    """A one-stop structural summary of a program."""

    rule_count: int
    atom_count: int
    idb_predicates: frozenset[str]
    edb_predicates: frozenset[str]
    recursive_predicates: frozenset[str]
    is_recursive: bool
    is_linear: bool
    initialization_rule_count: int

    def __str__(self) -> str:
        kind = "recursive" if self.is_recursive else "non-recursive"
        linear = " linear" if self.is_recursive and self.is_linear else ""
        return (
            f"{self.rule_count} rules / {self.atom_count} atoms, {kind}{linear}, "
            f"IDB={sorted(self.idb_predicates)}, EDB={sorted(self.edb_predicates)}"
        )

    def to_dict(self) -> dict:
        """A JSON-ready rendering (predicate sets become sorted lists)."""
        return {
            "rule_count": self.rule_count,
            "atom_count": self.atom_count,
            "idb_predicates": sorted(self.idb_predicates),
            "edb_predicates": sorted(self.edb_predicates),
            "recursive_predicates": sorted(self.recursive_predicates),
            "is_recursive": self.is_recursive,
            "is_linear": self.is_linear,
            "initialization_rule_count": self.initialization_rule_count,
        }


def profile(program: Program) -> ProgramProfile:
    """Compute the full structural profile of *program*."""
    graph = DependenceGraph(program)
    return ProgramProfile(
        rule_count=len(program),
        atom_count=program.size(),
        idb_predicates=program.idb_predicates,
        edb_predicates=program.edb_predicates,
        recursive_predicates=graph.recursive_predicates,
        is_recursive=graph.is_recursive,
        is_linear=graph.is_linear,
        initialization_rule_count=len(program.initialization_rules()),
    )


def is_initialization_rule(program: Program, rule: Rule) -> bool:
    """Whether *rule*'s body mentions only extensional predicates."""
    return rule.body_predicates() <= program.edb_predicates


def is_nonrecursive(program: Program) -> bool:
    """Whether the dependence graph is acyclic."""
    return not DependenceGraph(program).is_recursive


def shares_initialization_rules(p1: Program, p2: Program) -> bool:
    """Whether two programs have identical sets of initialization rules.

    This is the syntactic shortcut for condition (3) of Section X: with
    identical initialization rules the two programs have the same
    preliminary DB for every EDB.  (Semantic equivalence of the
    initialization programs also suffices; see
    :func:`repro.core.cq.ucq_equivalent`.)
    """
    return set(p1.initialization_rules()) == set(p2.initialization_rules())
