"""Lint passes built on the abstract-interpretation framework.

Unlike the structural passes of :mod:`repro.analysis.lint_rules`, these
consume whole-program fixpoints from :mod:`repro.analysis.absint` via
the shared accessors on :class:`~repro.analysis.lint.LintContext`
(``context.sorts()``, ``context.recursion()``, ``context.facts``), so
one analysis run feeds every pass.

The ``dead-rule`` pass implements the certify-before-report soundness
gate: sort propagation proves deadness only under the closed-world
reading of IDB predicates, so a finding is reported at **warning** by
default and upgraded to **error** only when the paper's Section VI
uniform-containment check certifies that dropping the rule preserves
the program's meaning even when IDB facts arrive as input.  The
certificates draw from the run's shared containment budget.
"""

from __future__ import annotations

from typing import Iterable

from .lint import Diagnostic, Fix, LintContext, LintRule, register


@register
class EmptyPredicateLint(LintRule):
    rule_id = "empty-predicate"
    severity = "warning"
    description = (
        "intensional predicate provably derives no facts on any database"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        sorts = context.sorts()
        for pred in sorted(sorts.empty_predicates):
            rules = context.facts.rules_by_head.get(pred, ())
            anchor = rules[0][1] if rules else None
            yield context.diagnostic(
                self.rule_id,
                self.severity,
                f"predicate {pred} can never derive a fact "
                "(every defining rule is dead); queries against it are "
                "always empty",
                rule=anchor,
            )


@register
class DeadRuleLint(LintRule):
    rule_id = "dead-rule"
    severity = "warning"
    description = (
        "rule body is unsatisfiable under sort propagation; "
        "error severity when certified by uniform containment"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        sorts = context.sorts()
        if not sorts.dead_rules:
            return
        from .absint.sorts import certify_dead_rule

        for index, reason in sorted(sorts.dead_rules.items()):
            rule = context.program.rules[index]
            certified = certify_dead_rule(
                context.program,
                rule,
                engine=context.config.engine,
                budget=context.containment_budget,
            )
            if certified:
                severity = "error"
                suffix = (
                    "; removal is certified sound by the uniform-containment "
                    "check (§VI)"
                )
            else:
                severity = self.severity
                suffix = (
                    "; sound under the closed-world reading of IDB predicates"
                )
            yield context.diagnostic(
                self.rule_id,
                severity,
                f"rule can never fire: {reason}{suffix}",
                rule=rule,
                fix=Fix("delete the dead rule"),
            )


@register
class LinearRecursionLint(LintRule):
    rule_id = "linear-recursion"
    severity = "info"
    description = (
        "recursive component is linear; specialised linear-recursion "
        "strategies apply"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        from .absint.recursion import LINEAR

        for scc in context.recursion().recursive_sccs:
            if scc.kind != LINEAR:
                continue
            preds = ", ".join(sorted(scc.predicates))
            anchor = None
            if scc.recursive_rule_indexes:
                anchor = context.program.rules[scc.recursive_rule_indexes[0]]
            yield context.diagnostic(
                self.rule_id,
                self.severity,
                f"recursion over {{{preds}}} is linear (each rule uses at "
                "most one recursive subgoal); magic-sets and semi-naive "
                "evaluation specialise well here",
                rule=anchor,
            )


@register
class MutualRecursionLint(LintRule):
    rule_id = "mutual-recursion"
    severity = "info"
    description = "predicates are mutually recursive (SCC of size > 1)"

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        for scc in context.recursion().recursive_sccs:
            if not scc.mutual:
                continue
            preds = ", ".join(sorted(scc.predicates))
            anchor = None
            if scc.recursive_rule_indexes:
                anchor = context.program.rules[scc.recursive_rule_indexes[0]]
            yield context.diagnostic(
                self.rule_id,
                self.severity,
                f"predicates {{{preds}}} are mutually recursive and must be "
                "evaluated as one fixpoint stratum",
                rule=anchor,
            )


@register
class UnboundSubgoalLint(LintRule):
    rule_id = "unbound-subgoal"
    severity = "info"
    description = (
        "sideways information passing drops all bindings before some "
        "recursive subgoal"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        """Probe each IDB predicate under a fully-bound query mode.

        If even an all-bound call leaves some subgoal adorned all-free,
        no query mode can restrict that subgoal -- goal-directed
        (magic-sets) evaluation of it degenerates to the full fixpoint.
        """
        from ..lang.atoms import Atom
        from ..lang.terms import Constant
        from .absint.groundness import binding_analysis

        program = context.program
        arities = program.arities
        probed = (
            sorted(context.config.exported)
            if context.config.exported is not None
            else sorted(program.idb_predicates)
        )
        seen: set[tuple[str, str, int | None]] = set()
        for pred in probed:
            arity = arities.get(pred, 0)
            if not arity:
                continue
            probe = Atom(pred, tuple(Constant(i) for i in range(arity)))
            analysis = binding_analysis(
                program, probe, facts=context.facts
            )
            for issue in analysis.issues:
                if issue.kind != "unbound-subgoal":
                    continue
                key = (issue.predicate, issue.adornment, issue.rule_index)
                if key in seen:
                    continue
                seen.add(key)
                anchor = (
                    program.rules[issue.rule_index]
                    if issue.rule_index is not None
                    else None
                )
                yield context.diagnostic(
                    self.rule_id,
                    self.severity,
                    f"{issue.message} (observed probing {probe})",
                    rule=anchor,
                )


@register
class WeaklyAcyclicCertifiedLint(LintRule):
    rule_id = "weakly-acyclic-certified"
    severity = "info"
    description = (
        "the configured tgd set is certified terminating "
        "(full-only / weakly acyclic / jointly acyclic)"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        if not context.config.tgds:
            return
        certificate = context.termination().certificate
        if not certificate.guarantees_termination:
            return
        yield context.diagnostic(
            self.rule_id,
            self.severity,
            f"chase termination certified -- {certificate.describe()}; "
            "containment-under-constraints proofs will widen their budget "
            "to the certified bound and can answer DISPROVED honestly",
        )


@register
class NonterminatingChaseRiskLint(LintRule):
    rule_id = "nonterminating-chase-risk"
    severity = "warning"
    description = (
        "no syntactic certificate bounds the chase for the configured "
        "tgd set; containment proofs may return UNKNOWN"
    )

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        if not context.config.tgds:
            return
        certificate = context.termination().certificate
        if certificate.guarantees_termination:
            return
        if certificate.guarantees_decidability:
            # Sticky classes: answering is decidable, but the chase
            # itself may diverge -- worth a softer note.
            yield context.diagnostic(
                self.rule_id,
                "info",
                f"chase may not terminate ({certificate.describe()}); "
                "query answering stays decidable, but saturation-based "
                "DISPROVED verdicts are out of reach and budget-bound "
                "UNKNOWNs are expected",
            )
            return
        yield context.diagnostic(
            self.rule_id,
            self.severity,
            f"chase termination not certified -- {certificate.describe()}; "
            "containment-under-constraints proofs can exhaust their budget "
            "and return UNKNOWN",
        )


__all__ = [
    "DeadRuleLint",
    "EmptyPredicateLint",
    "LinearRecursionLint",
    "MutualRecursionLint",
    "NonterminatingChaseRiskLint",
    "UnboundSubgoalLint",
    "WeaklyAcyclicCertifiedLint",
]
