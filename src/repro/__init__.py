"""repro -- a reproduction of *Optimizing Datalog Programs* (Y. Sagiv, PODS 1987).

A production-quality Datalog toolkit centered on the paper's
contribution: **optimization by removing redundant parts** of a program.

Quickstart::

    import repro

    program = repro.parse_program('''
        G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).
    ''')
    result = repro.minimize_program(program)
    print(result.program)        # the redundant A(w, y) is gone
    print(result.summary())

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.lang`     -- terms, atoms, rules, programs, parser;
* :mod:`repro.data`     -- databases of ground atoms, indexes;
* :mod:`repro.engine`   -- naive / semi-naive / magic-sets / stratified
  bottom-up evaluation;
* :mod:`repro.analysis` -- dependence graphs, recursion, safety;
* :mod:`repro.core`     -- the paper's algorithms: uniform containment
  (§VI), minimization (§VII), tgds and the chase (§VIII),
  non-recursive preservation (§IX), equivalence proofs (§X),
  heuristic tgd discovery and the optimizer (§XI);
* :mod:`repro.obs`      -- tracing spans, the metrics registry, the
  profiler, and the bench runner;
* :mod:`repro.workloads` -- synthetic programs and EDBs for benchmarks;
* :mod:`repro.paper`    -- the paper's Examples 1-19 as executable data.
"""

from __future__ import annotations

from .analysis import Diagnostic, LintConfig, lint, lint_source
from .core import (
    ChaseBudget,
    EquivalenceProof,
    MinimizationResult,
    OptimizationReport,
    Tgd,
    Verdict,
    chase,
    check_model_containment,
    check_uniform_containment,
    is_minimal,
    minimize_program,
    minimize_rule,
    optimize,
    preliminary_db_satisfies,
    preserves_nonrecursively,
    prove_containment_with_constraints,
    prove_equivalence_with_constraints,
    rule_uniformly_contained_in,
    uniformly_contains,
    uniformly_equivalent,
)
from .data import Database, Relation, relation_of
from .engine import (
    EvaluationResult,
    EvaluationStats,
    MaterializedView,
    answer_query,
    answer_query_supplementary,
    apply_once,
    evaluate,
    evaluate_stratified,
    evaluate_with_provenance,
    magic_transform,
    tabled_query,
)
from .errors import (
    ArityError,
    BudgetExceededError,
    ParseError,
    ReproError,
    StratificationError,
    TgdError,
    UnsafeRuleError,
    ValidationError,
)
from .obs import metrics_registry, render_spans, trace, tracing

from .lang import (
    Atom,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
    format_program,
    parse_atom,
    parse_program,
    parse_rule,
    parse_tgd,
    parse_tgds,
    variables,
)

__version__ = "1.0.0"

__all__ = [
    "ArityError",
    "Atom",
    "BudgetExceededError",
    "ChaseBudget",
    "Constant",
    "Database",
    "Diagnostic",
    "EquivalenceProof",
    "EvaluationResult",
    "EvaluationStats",
    "LintConfig",
    "Literal",
    "MaterializedView",
    "MinimizationResult",
    "OptimizationReport",
    "ParseError",
    "Program",
    "Relation",
    "ReproError",
    "Rule",
    "StratificationError",
    "Tgd",
    "TgdError",
    "UnsafeRuleError",
    "ValidationError",
    "Variable",
    "Verdict",
    "__version__",
    "answer_query",
    "answer_query_supplementary",
    "apply_once",
    "chase",
    "check_model_containment",
    "check_uniform_containment",
    "evaluate",
    "evaluate_stratified",
    "evaluate_with_provenance",
    "format_program",
    "is_minimal",
    "lint",
    "lint_source",
    "magic_transform",
    "metrics_registry",
    "minimize_program",
    "minimize_rule",
    "optimize",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "parse_tgd",
    "parse_tgds",
    "preliminary_db_satisfies",
    "preserves_nonrecursively",
    "prove_containment_with_constraints",
    "prove_equivalence_with_constraints",
    "relation_of",
    "render_spans",
    "rule_uniformly_contained_in",
    "tabled_query",
    "trace",
    "tracing",
    "uniformly_contains",
    "uniformly_equivalent",
    "variables",
]
