"""The paper's algorithms: uniform containment, minimization, tgds, chase,
preservation, and equivalence-based optimization."""

from __future__ import annotations

from .augment import Augmentation, add_atom, addable_guards, atom_is_addable
from .boundedness import BoundednessReport, uniform_boundedness, unroll
from .stratified_opt import (
    StratifiedMinimizationResult,
    decode_negation,
    encode_negation,
    minimize_stratified,
    uniformly_contains_stratified,
)
from .chase import (
    ChaseBudget,
    ChaseOutcome,
    DEFAULT_BUDGET,
    ModelContainmentReport,
    RuleChaseEvidence,
    Verdict,
    chase,
    check_model_containment,
    rule_contained_under_constraints,
)
from .containment import (
    RuleContainmentWitness,
    UniformContainmentReport,
    canonical_database,
    check_rule_containment,
    check_uniform_containment,
    rule_uniformly_contained_in,
    uniformly_contains,
    uniformly_equivalent,
)
from .cq import (
    cq_contained_in,
    cq_equivalent,
    find_homomorphism,
    initialization_programs_equivalent,
    minimize_cq,
    nonrecursive_equivalent,
    ucq_contained_in,
    ucq_equivalent,
)
from .equivalence import (
    ContainmentProof,
    EquivalenceProof,
    prove_containment_with_constraints,
    prove_equivalence_with_constraints,
)
from .heuristics import TgdCandidate, candidate_tgds
from .minimize import (
    AtomRemoval,
    MinimizationResult,
    RuleRemoval,
    is_minimal,
    minimize_program,
    minimize_rule,
)
from .optimizer import EquivalenceRemoval, OptimizationReport, optimize
from .reductions import (
    add_seed_rules,
    has_seed_rules,
    plain_equals_uniform,
    seed_predicate,
)
from .preservation import (
    CombinationEvidence,
    PreservationReport,
    UnificationChoice,
    preliminary_db_satisfies,
    preserves_nonrecursively,
)
from .tgds import Tgd, first_violation, parse_tgds, satisfies_all
from .transcripts import (
    render_containment_proof,
    render_equivalence_proof,
    render_model_containment,
    render_preservation,
    render_uniform_containment,
)
from .unfold import UnfoldResult, unfold_and_minimize, unfold_atom

__all__ = [
    "Augmentation",
    "AtomRemoval",
    "BoundednessReport",
    "StratifiedMinimizationResult",
    "add_atom",
    "add_seed_rules",
    "addable_guards",
    "atom_is_addable",
    "decode_negation",
    "encode_negation",
    "minimize_stratified",
    "ChaseBudget",
    "ChaseOutcome",
    "CombinationEvidence",
    "ContainmentProof",
    "DEFAULT_BUDGET",
    "EquivalenceProof",
    "EquivalenceRemoval",
    "MinimizationResult",
    "ModelContainmentReport",
    "OptimizationReport",
    "PreservationReport",
    "RuleChaseEvidence",
    "RuleContainmentWitness",
    "RuleRemoval",
    "Tgd",
    "TgdCandidate",
    "UnfoldResult",
    "UnificationChoice",
    "UniformContainmentReport",
    "Verdict",
    "candidate_tgds",
    "canonical_database",
    "chase",
    "check_model_containment",
    "check_rule_containment",
    "check_uniform_containment",
    "cq_contained_in",
    "cq_equivalent",
    "find_homomorphism",
    "first_violation",
    "has_seed_rules",
    "initialization_programs_equivalent",
    "is_minimal",
    "minimize_cq",
    "minimize_program",
    "minimize_rule",
    "nonrecursive_equivalent",
    "optimize",
    "parse_tgds",
    "plain_equals_uniform",
    "preliminary_db_satisfies",
    "render_containment_proof",
    "render_equivalence_proof",
    "render_model_containment",
    "render_preservation",
    "render_uniform_containment",
    "preserves_nonrecursively",
    "prove_containment_with_constraints",
    "prove_equivalence_with_constraints",
    "rule_contained_under_constraints",
    "rule_uniformly_contained_in",
    "satisfies_all",
    "seed_predicate",
    "ucq_contained_in",
    "unfold_and_minimize",
    "unfold_atom",
    "uniform_boundedness",
    "uniformly_contains_stratified",
    "unroll",
    "ucq_equivalent",
    "uniformly_contains",
    "uniformly_equivalent",
]
