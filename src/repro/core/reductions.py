"""The paper's reduction from uniform to plain containment (end of §IV).

"Given programs P1 and P2, we can construct programs P1′ and P2′ such
that P2 ⊑u P1 if and only if P2′ ⊑ P1′.  The programs P1′ and P2′ are
obtained by adding rules that give arbitrary initial values to the
intentional predicates.  The rule added for an intentional predicate
``B(x1, ..., xn)`` is simply ``B(x1, ..., xn) :- B0(x1, ..., xn)``,
where ``B0`` is a predicate that does not appear in any other rule."

The construction matters in both directions:

* it shows uniform containment is a *special case* of plain
  containment (so deciding it is never harder);
* conversely, if both programs already contain such seed rules for
  every IDB predicate, plain and uniform containment coincide -- a
  syntactic condition under which the paper's decidable test answers
  the (generally undecidable) plain-containment question exactly.

:func:`add_seed_rules` builds ``P′``; :func:`has_seed_rules` recognizes
the syntactic condition; :func:`plain_equals_uniform` packages the
conclusion.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..lang.atoms import Atom, Literal
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.terms import Variable

#: Suffix for the fresh seed predicates (the paper's ``B0``).
SEED_SUFFIX = "0"


def seed_predicate(predicate: str, suffix: str = SEED_SUFFIX) -> str:
    return predicate + suffix


def add_seed_rules(program: Program, suffix: str = SEED_SUFFIX) -> Program:
    """The paper's ``P′``: one ``B(x̄) :- B0(x̄)`` rule per IDB predicate.

    Raises :class:`~repro.errors.ValidationError` when a seed name is
    already taken (the paper requires ``B0`` to "not appear in any
    other rule"); pass a different *suffix* in that case.
    """
    taken = program.predicates
    rules = list(program.rules)
    for pred in sorted(program.idb_predicates):
        seed = seed_predicate(pred, suffix)
        if seed in taken:
            raise ValidationError(
                f"seed predicate {seed!r} already occurs in the program; choose another suffix"
            )
        arity = program.arity(pred)
        args = tuple(Variable(f"x{i + 1}") for i in range(arity))
        rules.append(Rule(Atom(pred, args), [Literal(Atom(seed, args))]))
    return Program(rules)


def has_seed_rules(program: Program) -> bool:
    """Whether every IDB predicate has a private copy-from-EDB rule.

    The paper's condition: for each intensional ``B`` there is a rule
    ``B(x1, ..., xn) :- C(x1, ..., xn)`` whose body predicate ``C`` is
    extensional and appears in no other rule.  Under this condition,
    plain containment against another such program coincides with
    uniform containment.
    """
    edb = program.edb_predicates
    for pred in program.idb_predicates:
        if not any(
            _is_seed_rule(program, rule) for rule in program.rules_for(pred)
        ):
            return False
    return True


def _is_seed_rule(program: Program, rule: Rule) -> bool:
    if len(rule.body) != 1 or not rule.body[0].positive:
        return False
    body_atom = rule.body[0].atom
    if body_atom.predicate not in program.edb_predicates:
        return False
    # Head and body must carry the same tuple of distinct variables.
    if rule.head.args != body_atom.args:
        return False
    args = rule.head.args
    if not all(isinstance(t, Variable) for t in args):
        return False
    if len(set(args)) != len(args):
        return False
    # The seed predicate appears in no other rule.
    occurrences = 0
    for other in program.rules:
        for literal in other.body:
            if literal.predicate == body_atom.predicate:
                occurrences += 1
        if other.head.predicate == body_atom.predicate:
            occurrences += 1
    return occurrences == 1


def plain_equals_uniform(p1: Program, p2: Program) -> bool:
    """Whether plain and uniform containment provably coincide for the pair.

    True when both programs satisfy :func:`has_seed_rules` (the paper's
    sufficient condition).  When it holds, the decidable Section VI
    test answers plain containment exactly.
    """
    return has_seed_rules(p1) and has_seed_rules(p2)
