"""Human-readable transcripts of the paper's procedures.

The paper explains its procedures through narrated walkthroughs
(Examples 6, 11, 14, 15, 18); this module renders the machine results
in the same style, for the CLI's ``--verbose`` flags, notebooks, and
teaching.  Each renderer takes the *evidence* object the corresponding
procedure already returns -- transcripts never recompute anything.
"""

from __future__ import annotations

from typing import Iterable

from ..lang.atoms import Atom
from ..lang.pretty import format_atoms, format_tgd
from ..lang.programs import Program
from .chase import ModelContainmentReport, RuleChaseEvidence, Verdict
from .containment import RuleContainmentWitness, UniformContainmentReport
from .equivalence import ContainmentProof, EquivalenceProof
from .preservation import CombinationEvidence, PreservationReport


def _sorted_atoms(atoms: Iterable[Atom]) -> str:
    return format_atoms(atoms)


def render_rule_containment(witness: RuleContainmentWitness) -> str:
    """One rule's §VI freezing test, in the style of Example 6."""
    lines = [
        f"rule r:          {witness.rule}",
        f"frozen body bθ:  {_sorted_atoms(witness.canonical_input)}",
        f"P(bθ):           {_sorted_atoms(witness.canonical_output)}",
        f"frozen head hθ:  {witness.frozen_head}",
    ]
    if witness.holds:
        lines.append("hθ ∈ P(bθ)  =>  r ⊑u P")
    else:
        lines.append(
            "hθ ∉ P(bθ)  =>  r ⋢u P   (P(bθ) is a model of P but not of r)"
        )
    return "\n".join(lines)


def render_uniform_containment(
    report: UniformContainmentReport,
    container_name: str = "P1",
    contained_name: str = "P2",
) -> str:
    """The whole-program §VI test, rule by rule."""
    parts = [
        f"Testing {contained_name} ⊑u {container_name} "
        f"(each rule of {contained_name} against {container_name}):",
        "",
    ]
    for index, witness in enumerate(report.witnesses, start=1):
        parts.append(f"--- rule {index} ---")
        parts.append(render_rule_containment(witness))
        parts.append("")
    verdict = "holds" if report.holds else "does NOT hold"
    parts.append(f"=> {contained_name} ⊑u {container_name} {verdict}.")
    return "\n".join(parts)


def render_chase_evidence(evidence: RuleChaseEvidence) -> str:
    """One rule's Theorem-1 chase, in the style of Example 11."""
    lines = [
        f"rule r:            {evidence.rule}",
        f"target hθ:         {evidence.frozen_head}",
        f"[P, T](bθ) after {evidence.rounds} round(s), "
        f"{evidence.nulls_created} null(s):",
        f"                   {_sorted_atoms(evidence.chased_atoms)}",
    ]
    outcome = {
        Verdict.PROVED: "hθ derived  =>  SAT(T) ∩ M(P) ⊆ M(r)",
        Verdict.DISPROVED: "chase saturated without hθ  =>  containment REFUTED "
        "(the chased DB is a countermodel)",
        Verdict.UNKNOWN: "budget exhausted before saturation  =>  UNKNOWN",
    }[evidence.verdict]
    lines.append(outcome)
    return "\n".join(lines)


def render_model_containment(report: ModelContainmentReport) -> str:
    """The §VIII test ``SAT(T) ∩ M(P1) ⊆ M(P2)``, rule by rule."""
    parts = ["Chase test for SAT(T) ∩ M(P1) ⊆ M(P2):", ""]
    for index, evidence in enumerate(report.evidence, start=1):
        parts.append(f"--- rule {index} of P2 ---")
        parts.append(render_chase_evidence(evidence))
        parts.append("")
    parts.append(f"=> verdict: {report.verdict.value}")
    return "\n".join(parts)


def _render_combination(evidence: CombinationEvidence, index: int) -> str:
    lines = [f"Combination {index}."]
    if not evidence.choices:
        lines.append("  (left-hand side is purely extensional; nothing to unify)")
    for choice in evidence.choices:
        kind = "trivial rule" if choice.is_trivial else f"rule '{choice.rule}'"
        lines.append(f"  {choice.atom} unified with {kind}")
        lines.append(f"    adds to d: {_sorted_atoms(choice.body_atoms)}")
    outcome = {
        Verdict.PROVED: f"  no violation exhibited (after {evidence.rounds} tgd round(s))",
        Verdict.DISPROVED: "  violation persists after the tgd chase saturated: counterexample",
        Verdict.UNKNOWN: "  budget exhausted while a violation persisted: unknown",
    }[evidence.verdict]
    lines.append(outcome)
    return "\n".join(lines)


def render_preservation(report: PreservationReport) -> str:
    """The Fig. 3 procedure, in the style of Examples 14-15."""
    parts = [
        f"Non-recursive preservation test "
        f"({report.combinations_examined} combination(s) examined):",
        "",
    ]
    for index, evidence in enumerate(report.evidence, start=1):
        parts.append(_render_combination(evidence, index))
        parts.append("")
    parts.append(f"=> verdict: {report.verdict.value}")
    return "\n".join(parts)


def render_containment_proof(proof: ContainmentProof) -> str:
    """The whole §X recipe with all sub-transcripts (Example 18 style)."""
    tgds = "\n".join(f"  {format_tgd(t)}" for t in proof.tgds) or "  (none)"
    parts = [
        "Section X proof attempt: P2 ⊑ P1",
        "",
        "P1:",
        _indent(str(proof.p1)),
        "P2:",
        _indent(str(proof.p2)),
        "T:",
        tgds,
        "",
        "(1) " + "-" * 60,
        render_model_containment(proof.model_containment),
    ]
    if proof.preservation is not None:
        parts += ["", "(2) " + "-" * 60, render_preservation(proof.preservation)]
    if proof.preliminary is not None:
        parts += [
            "",
            "(3') " + "-" * 60,
            render_preservation(proof.preliminary),
        ]
    parts += ["", proof.explain()]
    return "\n".join(parts)


def render_equivalence_proof(proof: EquivalenceProof) -> str:
    """Both directions of the §X equivalence argument."""
    parts = [
        render_containment_proof(proof.containment),
        "",
        "Reverse direction (P1 ⊑u P2, decidable):",
        render_uniform_containment(
            proof.reverse_uniform, container_name="P2", contained_name="P1"
        ),
        "",
        f"=> P1 ≡ P2: {proof.verdict.value}",
    ]
    return "\n".join(parts)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
