"""Rule unfolding (partial evaluation of a body atom).

A classic equivalence-preserving transformation that composes with the
paper's minimization: *unfolding* an intensional body atom replaces it
by the bodies of its defining rules, producing one new rule per
definition.  Formally, for a rule ``r = h :- b1, ..., α, ..., bn`` with
``α`` an IDB atom, and defining rules ``α_i :- c_i`` (heads unifiable
with ``α``), the unfolded program replaces ``r`` by the rules
``(h :- b1, ..., c_i, ..., bn)·σ_i`` where ``σ_i`` unifies ``α`` with
the (renamed-apart) head of definition ``i``.

Unfolding a *non-recursive* atom preserves plain equivalence; it also
preserves **uniform** equivalence only in one direction
(``unfolded ⊑u original`` always; the converse fails because initial
IDB facts for ``α``'s predicate no longer feed ``r``).  Both facts are
surfaced: :func:`unfold_atom` reports which relation is guaranteed,
and the tests pin both.

Unfolding often *creates* redundancy that Fig. 2 can then remove --
the ``unfold + minimize`` loop is a standard optimization pipeline,
demonstrated in the tests and the integration suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.substitution import unify_atoms


@dataclass
class UnfoldResult:
    """The unfolded program plus the relationship guarantees."""

    original: Program
    program: Program
    unfolded_rule: Rule
    replacements: tuple[Rule, ...]
    #: The unfolded program is always uniformly contained in the
    #: original; full uniform equivalence would additionally require the
    #: unfolded atom's predicate to receive no initial IDB facts.
    uniform_direction: str = "unfolded ⊑u original"


def unfold_atom(program: Program, rule: Rule, position: int) -> UnfoldResult:
    """Unfold the *position*-th body literal of *rule* within *program*.

    The literal must be positive and its predicate intensional.  The
    rule is replaced by one rule per definition of that predicate; if a
    definition's head does not unify with the atom, it contributes
    nothing.

    Raises :class:`ValidationError` on a negated or extensional target,
    and ``ValueError`` if *rule* is not part of *program*.
    """
    if rule not in program:
        raise ValueError("rule to unfold must belong to the program")
    if not 0 <= position < len(rule.body):
        raise IndexError(f"rule has {len(rule.body)} body literals, no index {position}")
    literal = rule.body[position]
    if not literal.positive:
        raise ValidationError("cannot unfold a negated literal")
    predicate = literal.predicate
    if predicate not in program.idb_predicates:
        raise ValidationError(
            f"cannot unfold extensional atom {literal.atom}: no defining rules"
        )

    replacements: list[Rule] = []
    for index, definition in enumerate(program.rules_for(predicate)):
        renamed = definition.rename_variables(f"_u{index}")
        # Ensure freshness even against the unfolded rule's own names.
        while renamed.variables() & rule.variables():
            renamed = renamed.rename_variables("x")
        unifier = unify_atoms(literal.atom, renamed.head)
        if unifier is None:
            continue
        new_body = [
            *rule.body[:position],
            *renamed.body,
            *rule.body[position + 1:],
        ]
        new_rule = Rule(
            unifier.apply_atom(rule.head),
            [lit.substitute(unifier) for lit in new_body],
        )
        replacements.append(new_rule)

    new_program = program.without_rule(rule)
    for replacement in replacements:
        new_program = new_program.with_rule(replacement)
    return UnfoldResult(
        original=program,
        program=new_program,
        unfolded_rule=rule,
        replacements=tuple(replacements),
    )


def unfold_and_minimize(program: Program, rule: Rule, position: int):
    """Convenience pipeline: unfold, then run Fig. 2 minimization.

    Unfolding frequently duplicates atoms that minimization then
    removes; the combined step returns the
    :class:`~repro.core.minimize.MinimizationResult` of the unfolded
    program.
    """
    from .minimize import minimize_program

    unfolded = unfold_atom(program, rule, position)
    return minimize_program(unfolded.program)
