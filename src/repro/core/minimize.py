"""Minimization under uniform equivalence (Section VII, Figs. 1 and 2).

Two algorithms, faithful to the paper's figures:

* :func:`minimize_rule` (Fig. 1) -- delete redundant atoms from a single
  rule: for each body atom ``α`` (considered exactly once), let ``r̂``
  be the rule without ``α``; if ``r̂ ⊑u r`` replace ``r`` by ``r̂``.

* :func:`minimize_program` (Fig. 2) -- first minimize every rule's body
  against the *whole current program* (an atom may be redundant in the
  context of ``P`` even if not within its own rule alone), then delete
  redundant rules: if ``r ⊑u P̂`` where ``P̂ = P - r``, drop ``r``.

Theorem 2 (appendix) proves that considering each atom and each rule
exactly once suffices, *provided atoms are removed before rules* --
the implementation preserves that order.  The result is uniformly
equivalent to the input and has no redundant atom or rule, but is not
necessarily unique: it may depend on consideration order, which both
functions accept as a parameter to make that explicit (and testable).

Atoms whose deletion would strand a head variable are skipped: by the
paper's standing assumption (head variables must appear in the body) the
truncated rule would not be a Datalog rule, and such atoms can never be
redundant (a program cannot invent the frozen constant standing for the
stranded variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..engine.fixpoint import EngineName
from ..errors import ResourceLimitExceeded
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..lang.rules import Rule
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace
from ..resilience.governor import DegradationReport
from .containment import rule_uniformly_contained_in

#: An atom-consideration order: given a rule, the body indexes to try, in order.
AtomOrder = Callable[[Rule], Sequence[int]]
#: A rule-consideration order: given a program, the rules to try, in order.
RuleOrder = Callable[[Program], Sequence[Rule]]


def natural_atom_order(rule: Rule) -> Sequence[int]:
    """Body atoms in their written order (the default)."""
    return range(len(rule.body))


def natural_rule_order(program: Program) -> Sequence[Rule]:
    """Rules in their written order (the default)."""
    return program.rules


@dataclass(frozen=True)
class AtomRemoval:
    """One successful body-atom deletion."""

    rule_before: Rule
    atom: Atom
    rule_after: Rule

    def __str__(self) -> str:
        return f"removed {self.atom} from '{self.rule_before}'"


@dataclass(frozen=True)
class RuleRemoval:
    """One successful whole-rule deletion."""

    rule: Rule

    def __str__(self) -> str:
        return f"removed rule '{self.rule}'"


@dataclass
class MinimizationResult:
    """The outcome of Fig. 2 minimization with a full audit trail.

    ``degradation`` is set when a governed run's limit tripped before
    all candidates were considered.  The returned program is still
    uniformly equivalent to the input (every applied removal was
    individually verified); it just may not be *minimal*.
    """

    original: Program
    program: Program
    atom_removals: list[AtomRemoval] = field(default_factory=list)
    rule_removals: list[RuleRemoval] = field(default_factory=list)
    containment_tests: int = 0
    degradation: DegradationReport | None = None

    @property
    def changed(self) -> bool:
        return bool(self.atom_removals or self.rule_removals)

    def summary(self) -> str:
        suffix = ""
        if self.degradation is not None:
            suffix = f"; INCOMPLETE ({self.degradation.limit} tripped)"
        return (
            f"{len(self.atom_removals)} atom(s) and {len(self.rule_removals)} rule(s) removed; "
            f"{self.original.size()} -> {self.program.size()} atoms "
            f"({self.containment_tests} containment tests){suffix}"
        )


def minimize_rule(
    rule: Rule,
    within: Program | None = None,
    engine: EngineName = "seminaive",
    atom_order: AtomOrder = natural_atom_order,
) -> Rule:
    """Fig. 1: remove all redundant atoms from one rule.

    Args:
        rule: the rule to minimize.
        within: the program context for the containment test.  ``None``
            (the single-rule case of Fig. 1) tests ``r̂ ⊑u r``;
            a program tests ``r̂ ⊑u P`` as in the first loop of Fig. 2.
            When a program is given it must contain *rule*; the test is
            against the program with the current (partially minimized)
            version of the rule, exactly as Fig. 2 specifies.
        engine: evaluation engine for the containment tests.
        atom_order: the order in which atoms are considered (the final
            result may legitimately depend on it; see Section VII).
    """
    context = within if within is not None else Program.of(rule)
    if rule not in context:
        raise ValueError("rule being minimized must be part of the given program context")
    minimized, _removals, _tests = _minimize_rule_within(
        context, rule, engine, atom_order
    )
    return minimized


def minimize_program(
    program: Program,
    engine: EngineName = "seminaive",
    atom_order: AtomOrder = natural_atom_order,
    rule_order: RuleOrder = natural_rule_order,
    governor=None,
) -> MinimizationResult:
    """Fig. 2: minimize a whole program under uniform equivalence.

    Phase 1 removes redundant atoms from every rule, testing against
    the *current whole program*; phase 2 removes redundant rules.  The
    output has neither redundant atoms nor redundant rules (Theorem 2)
    and is uniformly equivalent to the input.

    With a *governor*, a tripped limit ends minimization early: the
    result carries the removals verified so far (still an equivalent
    program -- just possibly non-minimal) plus the degradation report.
    """
    result = MinimizationResult(original=program, program=program)
    current = program

    with trace("minimize.program", rules=len(program.rules)) as root:
        try:
            if governor is not None:
                governor.note(engine="minimize")
            # Phase 1: atom deletions, each atom considered once, context = whole program.
            with trace("minimize.atom_phase"):
                for rule in rule_order(program):
                    if rule not in current:  # pragma: no cover - defensive; orders must yield program rules
                        continue
                    minimized, removals, tests = _minimize_rule_within(
                        current, rule, engine, atom_order, governor
                    )
                    result.containment_tests += tests
                    if removals:
                        result.atom_removals.extend(removals)
                        current = current.replace_rule(rule, minimized)

            # Phase 2: rule deletions, each rule considered once.
            with trace("minimize.rule_phase"):
                for rule in rule_order(current):
                    if rule not in current:
                        # The rule object from the order may predate phase-1 edits;
                        # phase 2 must consider the *minimized* rules, which
                        # rule_order(current) already yields for the default order.
                        continue
                    if governor is not None:
                        governor.tick()
                    candidate_program = current.without_rule(rule)
                    result.containment_tests += 1
                    if rule_uniformly_contained_in(
                        rule, candidate_program, engine, governor
                    ):
                        result.rule_removals.append(RuleRemoval(rule))
                        current = candidate_program
        except ResourceLimitExceeded as error:
            result.degradation = error.report
            metrics_registry().increment("minimize.degraded")

        if root:
            root.add("atom_removals", len(result.atom_removals))
            root.add("rule_removals", len(result.rule_removals))
            root.add("containment_tests", result.containment_tests)

    result.program = current
    return result


def _minimize_rule_within(
    program: Program,
    rule: Rule,
    engine: EngineName,
    atom_order: AtomOrder,
    governor=None,
) -> tuple[Rule, list[AtomRemoval], int]:
    """Minimize one rule's body against the evolving program."""
    removals: list[AtomRemoval] = []
    tests = 0
    current_rule = rule
    current_program = program
    pending = list(atom_order(rule))
    position_map = list(range(len(rule.body)))
    for original_index in pending:
        try:
            current_index = position_map.index(original_index)
        except ValueError:  # pragma: no cover
            continue
        if not current_rule.can_drop_body_literal(current_index):
            continue
        if governor is not None:
            governor.tick()
        candidate = current_rule.without_body_literal(current_index)
        tests += 1
        if rule_uniformly_contained_in(candidate, current_program, engine, governor):
            removals.append(
                AtomRemoval(
                    rule_before=current_rule,
                    atom=current_rule.body[current_index].atom,
                    rule_after=candidate,
                )
            )
            current_program = current_program.replace_rule(current_rule, candidate)
            current_rule = candidate
            del position_map[current_index]
    return current_rule, removals, tests


class ContainmentBudget:
    """A cap on the number of uniform-containment tests a scan may run.

    The Fig. 1/2 tests are each a full bottom-up evaluation, so callers
    that want *diagnostics* rather than a minimized program (the linter)
    bound them.  ``limit=None`` means unlimited.

    Every decision also feeds the process-wide metrics registry
    (``containment.budget_spent`` / ``containment.budget_skipped``),
    so lint runs show up in ``BENCH_*.json`` registry snapshots.
    """

    __slots__ = ("limit", "spent", "skipped")

    def __init__(self, limit: int | None = None):
        self.limit = limit
        self.spent = 0
        self.skipped = 0

    def take(self) -> bool:
        """Reserve one test; ``False`` (and counted as skipped) if exhausted."""
        if self.limit is not None and self.spent >= self.limit:
            self.skipped += 1
            metrics_registry().increment("containment.budget_skipped")
            return False
        self.spent += 1
        metrics_registry().increment("containment.budget_spent")
        return True

    @property
    def exhausted(self) -> bool:
        return self.skipped > 0


@dataclass(frozen=True)
class RedundantAtom:
    """A body atom whose single deletion preserves uniform equivalence."""

    rule: Rule
    body_index: int
    reduced: Rule

    @property
    def atom(self) -> Atom:
        return self.rule.body[self.body_index].atom


@dataclass
class RedundancyScan:
    """Read-only findings of the Fig. 1/2 tests over a whole program.

    Unlike :func:`minimize_program` this never rewrites the program:
    each finding is an independent single-deletion witness against the
    *original* program, which is exactly what a diagnostic needs (the
    reported rule text matches the source).
    """

    redundant_atoms: list[RedundantAtom] = field(default_factory=list)
    redundant_rules: list[Rule] = field(default_factory=list)
    containment_tests: int = 0
    tests_skipped: int = 0
    degradation: DegradationReport | None = None

    @property
    def budget_exhausted(self) -> bool:
        return self.tests_skipped > 0 or self.degradation is not None


def scan_redundancy(
    program: Program,
    engine: EngineName = "seminaive",
    max_checks: int | None = None,
    atoms: bool = True,
    rules: bool = True,
    budget: ContainmentBudget | None = None,
    governor=None,
) -> RedundancyScan:
    """Find redundant atoms (Fig. 1) and rules (Fig. 2) without mutating.

    An atom finding means ``r̂ ⊑u P`` where ``r̂`` drops one body atom;
    a rule finding means ``r ⊑u P - r``.  Both are sound deletion
    witnesses taken one at a time; applying several at once is *not*
    justified by this scan (use :func:`minimize_program` for that).
    ``max_checks`` caps the total number of containment tests; findings
    past the cap are silently skipped and counted in ``tests_skipped``.
    Callers sharing a cap across several scans pass a *budget* instead
    (then ``containment_tests``/``tests_skipped`` report the budget's
    running totals).
    """
    if budget is None:
        budget = ContainmentBudget(max_checks)
    scan = RedundancyScan()
    try:
        if atoms:
            for rule in program.rules:
                for index in range(len(rule.body)):
                    if not rule.can_drop_body_literal(index):
                        continue
                    if not budget.take():
                        continue
                    candidate = rule.without_body_literal(index)
                    if rule_uniformly_contained_in(candidate, program, engine, governor):
                        scan.redundant_atoms.append(RedundantAtom(rule, index, candidate))
        if rules:
            for rule in program.rules:
                if not budget.take():
                    continue
                if rule_uniformly_contained_in(
                    rule, program.without_rule(rule), engine, governor
                ):
                    scan.redundant_rules.append(rule)
    except ResourceLimitExceeded as error:
        # Findings so far are each individually verified; report the
        # trip so callers know the scan is incomplete, not clean.
        scan.degradation = error.report
    scan.containment_tests = budget.spent
    scan.tests_skipped = budget.skipped
    return scan


def is_minimal(program: Program, engine: EngineName = "seminaive") -> bool:
    """Whether no single atom or rule deletion preserves uniform equivalence.

    Used by tests and benchmarks to verify the guarantee of Theorem 2 on
    the output of :func:`minimize_program`.
    """
    for rule in program.rules:
        for index in range(len(rule.body)):
            if not rule.can_drop_body_literal(index):
                continue
            candidate = rule.without_body_literal(index)
            if rule_uniformly_contained_in(candidate, program, engine):
                return False
    for rule in program.rules:
        if rule_uniformly_contained_in(rule, program.without_rule(rule), engine):
            return False
    return True
