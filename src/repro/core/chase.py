"""The chase with a program and tgds: ``[P, T]`` (Section VIII, Theorem 1).

``[P, T](d)`` applies the rules of ``P`` and the tgds of ``T`` to a
database ``d`` until neither adds anything.  Theorem 1 turns this into a
proof procedure::

    hθ ∈ [P, T](bθ)   iff   SAT(T) ∩ M(P) ⊆ M(r)        (r = h :- b)

and hence, rule by rule, into a test of ``SAT(T) ∩ M(P1) ⊆ M(P2)`` --
the first of the three conditions in the Section X recipe for proving
plain containment under constraints.

With embedded tgds the chase may not terminate (repeated applications
keep inventing nulls), so the procedure is *semi-decidable*: the target
head, if derivable, appears in finite time, but a negative answer can
only be certified when the chase saturates.  All entry points therefore
take a :class:`ChaseBudget` and return three-valued
:class:`Verdict` outcomes instead of looping forever.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..data.database import Database
from ..engine.fixpoint import EngineName, evaluate
from ..errors import BudgetExceededError
from ..lang.atoms import Atom
from ..lang.freeze import freeze_rule
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.terms import NullFactory
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace
from .tgds import Tgd


class Verdict(enum.Enum):
    """Outcome of a semi-decidable test."""

    PROVED = "proved"
    DISPROVED = "disproved"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        """Truthy only when proved, so reports read naturally in ``if``."""
        return self is Verdict.PROVED


@dataclass(frozen=True)
class ChaseBudget:
    """Resource limits for one chase run.

    The defaults comfortably cover every example in the paper and the
    benchmark workloads; raise them for adversarial embedded-tgd sets.
    """

    max_rounds: int = 200
    max_nulls: int = 2_000
    max_atoms: int = 200_000

    def check(self, rounds: int, nulls: NullFactory, db: Database) -> None:
        if rounds > self.max_rounds:
            raise BudgetExceededError(f"chase exceeded {self.max_rounds} rounds")
        if nulls.issued > self.max_nulls:
            raise BudgetExceededError(f"chase created more than {self.max_nulls} nulls")
        if len(db) > self.max_atoms:
            raise BudgetExceededError(f"chase database exceeded {self.max_atoms} atoms")


DEFAULT_BUDGET = ChaseBudget()


@dataclass
class ChaseOutcome:
    """Result of running ``[P, T]`` on a database.

    ``saturated`` is ``True`` when a genuine fixpoint was reached;
    ``False`` means the budget ran out first (the database is then a
    sound under-approximation of ``[P, T](d)``).
    """

    database: Database
    saturated: bool
    rounds: int = 0
    nulls_created: int = 0
    target_found: bool | None = None


def chase(
    db: Database,
    program: Program | None = None,
    tgds: list[Tgd] | None = None,
    budget: ChaseBudget = DEFAULT_BUDGET,
    target: Atom | None = None,
    engine: EngineName = "seminaive",
    on_budget: str = "partial",
) -> ChaseOutcome:
    """Compute ``[P, T](db)`` (the input is not mutated).

    Alternates saturation by the program's rules (which always
    terminates) with one round of tgd applications, until neither adds
    atoms.  If *target* is given, the chase stops early as soon as the
    target atom appears -- the optimization the paper points out when
    testing uniform containment under constraints.

    Args:
        on_budget: ``"partial"`` (default) absorbs a blown budget into
            ``saturated=False`` (the database is still a sound
            under-approximation); ``"raise"`` re-raises the
            :class:`~repro.errors.BudgetExceededError` for callers that
            must distinguish exhaustion from a mere non-answer.
    """
    if on_budget not in ("partial", "raise"):
        raise ValueError(f"on_budget must be 'partial' or 'raise', got {on_budget!r}")
    program = program if program is not None else Program()
    tgds = tgds or []
    current = db.copy()
    nulls = NullFactory()
    rounds = 0
    saturated = False
    found = target is not None and target in current
    with trace("chase.run", tgds=len(tgds), rules=len(program)) as span:
        try:
            while not found:
                rounds += 1
                budget.check(rounds, nulls, current)
                before = len(current)
                with trace("chase.round", index=rounds):
                    if len(program):
                        result = evaluate(program, current, engine=engine)
                        current = result.database
                    if target is not None and target in current:
                        found = True
                        break
                    added = 0
                    for tgd in tgds:
                        added += tgd.apply_all_once(current, nulls)
                        if target is not None and target in current:
                            found = True
                            break
                if found:
                    break
                if len(current) == before and added == 0:
                    saturated = True
                    break
        except BudgetExceededError:
            saturated = False
            if on_budget == "raise":
                metrics_registry().increment("chase.budget_exhausted")
                raise
        if span:
            span.add("rounds", rounds)
            span.add("nulls_created", nulls.issued)
            span.add("atoms", len(current))
    registry = metrics_registry()
    registry.increment("chase.runs")
    registry.increment("chase.rounds", rounds)
    registry.increment("chase.nulls_created", nulls.issued)
    if not (saturated or found):
        registry.increment("chase.budget_exhausted")
    return ChaseOutcome(
        database=current,
        saturated=saturated or found,
        rounds=rounds,
        nulls_created=nulls.issued,
        target_found=found if target is not None else None,
    )


@dataclass(frozen=True)
class RuleChaseEvidence:
    """Per-rule transcript of the Theorem-1 test."""

    rule: Rule
    verdict: Verdict
    frozen_head: Atom
    chased_atoms: frozenset[Atom]
    rounds: int
    nulls_created: int


@dataclass
class ModelContainmentReport:
    """Outcome of testing ``SAT(T) ∩ M(P1) ⊆ M(P2)``.

    ``PROVED`` means every rule of ``P2`` passed; ``DISPROVED`` means
    some rule's chase saturated without deriving its frozen head (a
    finite countermodel exists); ``UNKNOWN`` means a budget ran out.
    """

    verdict: Verdict
    evidence: list[RuleChaseEvidence] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.verdict)

    @property
    def failing_rules(self) -> list[Rule]:
        return [e.rule for e in self.evidence if e.verdict is not Verdict.PROVED]


def rule_contained_under_constraints(
    rule: Rule,
    program: Program,
    tgds: list[Tgd],
    budget: ChaseBudget = DEFAULT_BUDGET,
    engine: EngineName = "seminaive",
) -> RuleChaseEvidence:
    """Theorem 1 for one rule: is ``hθ ∈ [program, T](bθ)``?"""
    frozen = freeze_rule(rule)
    canonical = Database(frozen.body)
    outcome = chase(
        canonical, program, tgds, budget=budget, target=frozen.head, engine=engine
    )
    if outcome.target_found:
        verdict = Verdict.PROVED
    elif outcome.saturated:
        verdict = Verdict.DISPROVED
    else:
        verdict = Verdict.UNKNOWN
    return RuleChaseEvidence(
        rule=rule,
        verdict=verdict,
        frozen_head=frozen.head,
        chased_atoms=outcome.database.as_atom_set(),
        rounds=outcome.rounds,
        nulls_created=outcome.nulls_created,
    )


def check_model_containment(
    p1: Program,
    tgds: list[Tgd],
    p2: Program,
    budget: ChaseBudget = DEFAULT_BUDGET,
    engine: EngineName = "seminaive",
) -> ModelContainmentReport:
    """Test ``SAT(T) ∩ M(p1) ⊆ M(p2)`` rule by rule (Section VIII).

    This is condition (1) of the Section X recipe.  Combined with
    "``p1`` preserves ``T``" it yields ``p2 ⊑u_SAT(T) p1`` by
    Corollary 1 of the appendix.
    """
    evidence = [
        rule_contained_under_constraints(rule, p1, tgds, budget, engine)
        for rule in p2.rules
    ]
    if all(e.verdict is Verdict.PROVED for e in evidence):
        verdict = Verdict.PROVED
    elif any(e.verdict is Verdict.DISPROVED for e in evidence):
        verdict = Verdict.DISPROVED
    else:
        verdict = Verdict.UNKNOWN
    return ModelContainmentReport(verdict=verdict, evidence=evidence)
