"""The chase with a program and tgds: ``[P, T]`` (Section VIII, Theorem 1).

``[P, T](d)`` applies the rules of ``P`` and the tgds of ``T`` to a
database ``d`` until neither adds anything.  Theorem 1 turns this into a
proof procedure::

    hθ ∈ [P, T](bθ)   iff   SAT(T) ∩ M(P) ⊆ M(r)        (r = h :- b)

and hence, rule by rule, into a test of ``SAT(T) ∩ M(P1) ⊆ M(P2)`` --
the first of the three conditions in the Section X recipe for proving
plain containment under constraints.

With embedded tgds the chase may not terminate (repeated applications
keep inventing nulls), so the procedure is *semi-decidable*: the target
head, if derivable, appears in finite time, but a negative answer can
only be certified when the chase saturates.  All entry points therefore
take a :class:`ChaseBudget` and return three-valued
:class:`Verdict` outcomes instead of looping forever.

When the static analysis in
:mod:`repro.analysis.absint.termination` certifies that every chase
sequence terminates (full-only, weakly acyclic, or jointly acyclic tgd
sets), :func:`certified_budget` widens the caller's budget to the
certificate's sound value bound, so the chase reaches genuine
saturation and a budget-induced ``UNKNOWN`` upgrades to ``DISPROVED``.
Sticky-only certificates guarantee decidable *answering*, not a finite
chase, so they never widen a budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..data.database import Database
from ..engine.fixpoint import EngineName, evaluate
from ..errors import BudgetExceededError
from ..lang.atoms import Atom
from ..lang.freeze import freeze_rule
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.terms import NullFactory, Variable
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace
from .tgds import Tgd


class Verdict(enum.Enum):
    """Outcome of a semi-decidable test."""

    PROVED = "proved"
    DISPROVED = "disproved"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        """Truthy only when proved, so reports read naturally in ``if``."""
        return self is Verdict.PROVED


@dataclass(frozen=True)
class ChaseBudget:
    """Resource limits for one chase run.

    The defaults comfortably cover every example in the paper and the
    benchmark workloads; raise them for adversarial embedded-tgd sets.
    """

    max_rounds: int = 200
    max_nulls: int = 2_000
    max_atoms: int = 200_000

    def check(self, rounds: int, nulls: NullFactory, db: Database) -> None:
        if rounds > self.max_rounds:
            raise BudgetExceededError(
                f"chase exceeded {self.max_rounds} rounds", limit="rounds"
            )
        if nulls.issued > self.max_nulls:
            raise BudgetExceededError(
                f"chase created more than {self.max_nulls} nulls", limit="nulls"
            )
        if len(db) > self.max_atoms:
            raise BudgetExceededError(
                f"chase database exceeded {self.max_atoms} atoms", limit="atoms"
            )


DEFAULT_BUDGET = ChaseBudget()

#: Absolute ceilings for certificate-widened budgets.  A termination
#: certificate is a mathematical guarantee, but its value bound can be
#: astronomically larger than anything worth materializing; capping
#: keeps a certified run bounded in wall-clock terms.  The cap is sound:
#: it can only leave a verdict at ``UNKNOWN``, never flip one.
CERTIFIED_MAX_ROUNDS = 10_000
CERTIFIED_MAX_NULLS = 100_000
CERTIFIED_MAX_ATOMS = 2_000_000


def certified_budget(
    base: ChaseBudget,
    certificate,
    db: Database | None = None,
    program: Program | None = None,
    tgds: list[Tgd] | None = None,
) -> ChaseBudget:
    """Widen *base* to the certificate's sound saturation bound.

    For a terminating certificate
    (:class:`~repro.analysis.absint.termination.TerminationCertificate`
    with ``guarantees_termination``), computes the bound on distinct
    values any chase sequence from *db* can create, converts it to
    null/atom/round limits, and returns the **max** of those and *base*
    (a certificate never shrinks a caller's budget).  Everything is
    clamped at the ``CERTIFIED_MAX_*`` ceilings.  Non-terminating
    certificates (sticky and below) return *base* unchanged: stickiness
    promises decidable answering, not a finite chase, and pretending
    otherwise would burn the budget without ever saturating.
    """
    if certificate is None or not certificate.guarantees_termination:
        return base
    tgds = tgds or []
    constants: set = set()
    if db is not None:
        for atom in db.as_atom_set():
            constants.update(atom.args)
    for tgd in tgds:
        for atom in tgd.lhs + tgd.rhs:
            constants.update(t for t in atom.args if not isinstance(t, Variable))
    if program is not None:
        for rule in program.rules:
            for atom in (rule.head, *rule.body_atoms()):
                constants.update(t for t in atom.args if not isinstance(t, Variable))
    initial_values = max(1, len(constants))
    values = certificate.value_bound(initial_values)
    if values is None:  # pragma: no cover - guarded by guarantees_termination
        return base
    arities: dict[str, int] = {}
    sources = [a for t in tgds for a in t.lhs + t.rhs]
    if program is not None:
        for rule in program.rules:
            sources.extend((rule.head, *rule.body_atoms()))
    if db is not None:
        sources.extend(db.as_atom_set())
    for atom in sources:
        arities[atom.predicate] = atom.arity
    atom_bound = 0
    for arity in arities.values():
        atom_bound += min(values**max(1, arity), CERTIFIED_MAX_ATOMS)
        if atom_bound >= CERTIFIED_MAX_ATOMS:
            atom_bound = CERTIFIED_MAX_ATOMS
            break
    # Each round that fails to saturate adds at least one atom, plus the
    # final confirming round and the program-saturation prologue.
    round_bound = min(atom_bound + len(tgds) + 2, CERTIFIED_MAX_ROUNDS)
    null_bound = min(values, CERTIFIED_MAX_NULLS)
    return ChaseBudget(
        max_rounds=max(base.max_rounds, round_bound),
        max_nulls=max(base.max_nulls, null_bound),
        max_atoms=max(base.max_atoms, atom_bound),
    )


@dataclass
class ChaseOutcome:
    """Result of running ``[P, T]`` on a database.

    ``saturated`` is ``True`` when a genuine fixpoint was reached;
    ``False`` means the budget ran out first (the database is then a
    sound under-approximation of ``[P, T](d)``), and ``exhausted``
    names the limit that tripped: ``"rounds"``, ``"nulls"``, or
    ``"atoms"``.
    """

    database: Database
    saturated: bool
    rounds: int = 0
    nulls_created: int = 0
    target_found: bool | None = None
    exhausted: str | None = None


def chase(
    db: Database,
    program: Program | None = None,
    tgds: list[Tgd] | None = None,
    budget: ChaseBudget = DEFAULT_BUDGET,
    target: Atom | None = None,
    engine: EngineName = "seminaive",
    on_budget: str = "partial",
    certificate=None,
) -> ChaseOutcome:
    """Compute ``[P, T](db)`` (the input is not mutated).

    Alternates saturation by the program's rules (which always
    terminates) with one round of tgd applications, until neither adds
    atoms.  If *target* is given, the chase stops early as soon as the
    target atom appears -- the optimization the paper points out when
    testing uniform containment under constraints.

    Args:
        on_budget: ``"partial"`` (default) absorbs a blown budget into
            ``saturated=False`` (the database is still a sound
            under-approximation); ``"raise"`` re-raises the
            :class:`~repro.errors.BudgetExceededError` for callers that
            must distinguish exhaustion from a mere non-answer.
        certificate: optional
            :class:`~repro.analysis.absint.termination.TerminationCertificate`
            for ``(program, tgds)``.  A terminating certificate widens
            *budget* via :func:`certified_budget` so saturation is
            reached instead of tripping; other certificates are
            ignored.
    """
    if on_budget not in ("partial", "raise"):
        raise ValueError(f"on_budget must be 'partial' or 'raise', got {on_budget!r}")
    program = program if program is not None else Program()
    tgds = tgds or []
    budget = certified_budget(budget, certificate, db, program, tgds)
    current = db.copy()
    nulls = NullFactory()
    rounds = 0
    saturated = False
    exhausted: str | None = None
    found = target is not None and target in current
    with trace("chase.run", tgds=len(tgds), rules=len(program)) as span:
        try:
            while not found:
                rounds += 1
                budget.check(rounds, nulls, current)
                before = len(current)
                with trace("chase.round", index=rounds):
                    if len(program):
                        result = evaluate(program, current, engine=engine)
                        current = result.database
                    if target is not None and target in current:
                        found = True
                        break
                    added = 0
                    for tgd in tgds:
                        added += tgd.apply_all_once(current, nulls)
                        if target is not None and target in current:
                            found = True
                            break
                if found:
                    break
                if len(current) == before and added == 0:
                    saturated = True
                    break
        except BudgetExceededError as exc:
            saturated = False
            exhausted = exc.limit
            if on_budget == "raise":
                registry = metrics_registry()
                registry.increment("chase.budget_exhausted")
                if exc.limit:
                    registry.increment(f"chase.budget_exhausted.{exc.limit}")
                raise
        if span:
            span.add("rounds", rounds)
            span.add("nulls_created", nulls.issued)
            span.add("atoms", len(current))
            if exhausted:
                span.add("exhausted", exhausted)
    registry = metrics_registry()
    registry.increment("chase.runs")
    registry.increment("chase.rounds", rounds)
    registry.increment("chase.nulls_created", nulls.issued)
    if not (saturated or found):
        registry.increment("chase.budget_exhausted")
        if exhausted:
            registry.increment(f"chase.budget_exhausted.{exhausted}")
    return ChaseOutcome(
        database=current,
        saturated=saturated or found,
        rounds=rounds,
        nulls_created=nulls.issued,
        target_found=found if target is not None else None,
        exhausted=None if (saturated or found) else exhausted,
    )


@dataclass(frozen=True)
class RuleChaseEvidence:
    """Per-rule transcript of the Theorem-1 test."""

    rule: Rule
    verdict: Verdict
    frozen_head: Atom
    chased_atoms: frozenset[Atom]
    rounds: int
    nulls_created: int
    #: Which budget limit tripped when the verdict is ``UNKNOWN``.
    exhausted: str | None = None


@dataclass
class ModelContainmentReport:
    """Outcome of testing ``SAT(T) ∩ M(P1) ⊆ M(P2)``.

    ``PROVED`` means every rule of ``P2`` passed; ``DISPROVED`` means
    some rule's chase saturated without deriving its frozen head (a
    finite countermodel exists); ``UNKNOWN`` means a budget ran out.
    """

    verdict: Verdict
    evidence: list[RuleChaseEvidence] = field(default_factory=list)
    #: The termination certificate used to widen budgets, when computed.
    certificate: object | None = None

    def __bool__(self) -> bool:
        return bool(self.verdict)

    @property
    def failing_rules(self) -> list[Rule]:
        return [e.rule for e in self.evidence if e.verdict is not Verdict.PROVED]

    @property
    def exhausted(self) -> str | None:
        """The first budget limit that tripped across the evidence."""
        for e in self.evidence:
            if e.exhausted:
                return e.exhausted
        return None


def termination_certificate(tgds: list[Tgd], program: Program | None = None):
    """The termination certificate for ``(program, tgds)``.

    Thin lazy-import wrapper around
    :func:`repro.analysis.absint.termination.classify_termination`
    (imported on demand: the analysis package imports widely and the
    core must stay import-light).
    """
    from ..analysis.absint.termination import classify_termination

    return classify_termination(tgds, program).certificate


def rule_contained_under_constraints(
    rule: Rule,
    program: Program,
    tgds: list[Tgd],
    budget: ChaseBudget = DEFAULT_BUDGET,
    engine: EngineName = "seminaive",
    certificate=None,
) -> RuleChaseEvidence:
    """Theorem 1 for one rule: is ``hθ ∈ [program, T](bθ)``?"""
    frozen = freeze_rule(rule)
    canonical = Database(frozen.body)
    outcome = chase(
        canonical,
        program,
        tgds,
        budget=budget,
        target=frozen.head,
        engine=engine,
        certificate=certificate,
    )
    if outcome.target_found:
        verdict = Verdict.PROVED
    elif outcome.saturated:
        verdict = Verdict.DISPROVED
    else:
        verdict = Verdict.UNKNOWN
    return RuleChaseEvidence(
        rule=rule,
        verdict=verdict,
        frozen_head=frozen.head,
        chased_atoms=outcome.database.as_atom_set(),
        rounds=outcome.rounds,
        nulls_created=outcome.nulls_created,
        exhausted=outcome.exhausted,
    )


def check_model_containment(
    p1: Program,
    tgds: list[Tgd],
    p2: Program,
    budget: ChaseBudget = DEFAULT_BUDGET,
    engine: EngineName = "seminaive",
    certificate=None,
    use_certificate: bool = True,
) -> ModelContainmentReport:
    """Test ``SAT(T) ∩ M(p1) ⊆ M(p2)`` rule by rule (Section VIII).

    This is condition (1) of the Section X recipe.  Combined with
    "``p1`` preserves ``T``" it yields ``p2 ⊑u_SAT(T) p1`` by
    Corollary 1 of the appendix.

    Unless *use_certificate* is disabled, the termination certificate
    for ``(p1, tgds)`` is computed once (or taken from *certificate*)
    and used to widen the per-rule chase budgets when it guarantees
    termination -- the static-to-dynamic handshake that turns
    budget-induced ``UNKNOWN`` verdicts into honest ``DISPROVED``.
    """
    if certificate is None and use_certificate and tgds:
        certificate = termination_certificate(tgds, p1)
    evidence = [
        rule_contained_under_constraints(
            rule, p1, tgds, budget, engine, certificate=certificate
        )
        for rule in p2.rules
    ]
    if all(e.verdict is Verdict.PROVED for e in evidence):
        verdict = Verdict.PROVED
    elif any(e.verdict is Verdict.DISPROVED for e in evidence):
        verdict = Verdict.DISPROVED
    else:
        verdict = Verdict.UNKNOWN
    return ModelContainmentReport(
        verdict=verdict, evidence=evidence, certificate=certificate
    )
