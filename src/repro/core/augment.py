"""Adding redundant atoms (the paper's Section I remark).

The introduction observes that the machinery for *removing* redundant
atoms "can also be used to determine when a redundant atom can be added
to the body of a rule", the optimization style of Chakravarthy et al.
and King: adding a conjunct can pay off when a small relation prunes a
join early (the paper's intersection-of-three-relations example).

Adding atom ``α`` to rule ``r`` (giving ``r′``) always satisfies
``r′ ⊑u r`` -- the enlarged body is harder to satisfy.  The program
stays *uniformly equivalent* iff the original rule is still uniformly
contained in the modified program, i.e. ``r ⊑u P[r := r′]``, which is
exactly the Section VI test run in the opposite direction from
minimization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.fixpoint import EngineName
from ..lang.atoms import Atom, Literal
from ..lang.programs import Program
from ..lang.rules import Rule
from .containment import rule_uniformly_contained_in


@dataclass(frozen=True)
class Augmentation:
    """A proven-safe atom addition."""

    rule_before: Rule
    rule_after: Rule
    added_atom: Atom
    program_after: Program

    def __str__(self) -> str:
        return f"added {self.added_atom} to '{self.rule_before}'"


def atom_is_addable(
    program: Program,
    rule: Rule,
    atom: Atom,
    engine: EngineName = "seminaive",
) -> bool:
    """Whether appending *atom* to *rule*'s body preserves ``≡u``.

    Requires *rule* to be a (positive) rule of *program*.  The test is
    ``rule ⊑u program[rule := rule+atom]``; the reverse direction is
    automatic by monotonicity.
    """
    if rule not in program:
        raise ValueError("rule must belong to the given program")
    enlarged = Rule(rule.head, [*rule.body, Literal(atom)])
    candidate = program.replace_rule(rule, enlarged)
    return rule_uniformly_contained_in(rule, candidate, engine)


def add_atom(
    program: Program,
    rule: Rule,
    atom: Atom,
    engine: EngineName = "seminaive",
) -> Augmentation:
    """Append *atom* to *rule* after proving the addition redundant.

    Raises ``ValueError`` if the addition would change the program's
    meaning (under uniform equivalence) -- callers decide *whether* the
    guard is profitable; this function guarantees it is *safe*.
    """
    if not atom_is_addable(program, rule, atom, engine):
        raise ValueError(
            f"adding {atom} to '{rule}' is not redundant: it would change the program"
        )
    enlarged = Rule(rule.head, [*rule.body, Literal(atom)])
    return Augmentation(
        rule_before=rule,
        rule_after=enlarged,
        added_atom=atom,
        program_after=program.replace_rule(rule, enlarged),
    )


def addable_guards(
    program: Program,
    rule: Rule,
    candidates: list[Atom],
    engine: EngineName = "seminaive",
) -> list[Atom]:
    """Filter *candidates* to the atoms that can be added safely.

    A convenience for cost-based optimizers: generate plausible guards
    (e.g. small relations sharing variables with the body), keep the
    provably redundant ones, then pick by estimated selectivity.
    """
    return [a for a in candidates if atom_is_addable(program, rule, a, engine)]
