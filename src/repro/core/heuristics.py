"""Heuristic discovery of candidate tgds (Section XI).

Optimization under plain equivalence needs a tgd that witnesses the
redundancy of some body atoms.  The paper observes that the tgd used in
Example 18 (``G(y, z) -> A(y, w)`` for the rule
``G(x, z) :- G(x, y), G(y, z), A(y, w)``) is built from atoms of the
rule's own body, and distills three syntactic properties for candidate
tgds:

1. the left-hand side has the same predicate as the head of the rule
   being optimized;
2. if the tgd has a variable ``w`` appearing only in its right-hand
   side, then *all* body atoms containing ``w`` are in the right-hand
   side;
3. all such right-hand-side-only variables do not occur in the rule's
   head.

:func:`candidate_tgds` enumerates the (bounded) space of body-atom
splits with these properties, most-specific first (larger right-hand
sides first, since the RHS atoms are the ones deleted if the proof
succeeds).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..lang.atoms import Atom, atoms_variables
from ..lang.rules import Rule
from .tgds import Tgd


@dataclass(frozen=True)
class TgdCandidate:
    """A candidate tgd plus the body positions it would delete."""

    tgd: Tgd
    rhs_body_positions: tuple[int, ...]

    def __str__(self) -> str:
        return f"{self.tgd}  (deletes body positions {list(self.rhs_body_positions)})"


def candidate_tgds(
    rule: Rule,
    max_lhs_atoms: int = 2,
    max_rhs_atoms: int = 3,
) -> Iterator[TgdCandidate]:
    """Enumerate candidate tgds for optimizing *rule* (Section XI).

    Only positive rules are supported (the paper's fragment).  Yields
    candidates with larger right-hand sides first; the caller tries each
    with :func:`repro.core.equivalence.prove_equivalence_with_constraints`.
    """
    body = rule.body_atoms()
    head_pred = rule.head.predicate
    head_vars = rule.head.variable_set()

    lhs_pool = [i for i, atom in enumerate(body) if atom.predicate == head_pred]
    if not lhs_pool:
        return

    #: var -> set of body positions containing it (for property 2).
    positions_of: dict = {}
    for i, atom in enumerate(body):
        for var in atom.variable_set():
            positions_of.setdefault(var, set()).add(i)

    seen: set[tuple[tuple[Atom, ...], tuple[Atom, ...]]] = set()
    candidates: list[TgdCandidate] = []
    for lhs_size in range(1, min(max_lhs_atoms, len(lhs_pool)) + 1):
        for lhs_positions in itertools.combinations(lhs_pool, lhs_size):
            lhs_atoms = tuple(body[i] for i in lhs_positions)
            lhs_vars = atoms_variables(lhs_atoms)
            rhs_pool = [i for i in range(len(body)) if i not in lhs_positions]
            max_rhs = min(max_rhs_atoms, len(rhs_pool))
            for rhs_size in range(1, max_rhs + 1):
                for rhs_positions in itertools.combinations(rhs_pool, rhs_size):
                    rhs_atoms = tuple(body[i] for i in rhs_positions)
                    if not _properties_hold(
                        lhs_vars, rhs_atoms, rhs_positions, positions_of, head_vars
                    ):
                        continue
                    key = (lhs_atoms, rhs_atoms)
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(
                        TgdCandidate(Tgd(lhs_atoms, rhs_atoms), tuple(rhs_positions))
                    )
    # Most atoms deleted first; deterministic tie-break on the rendering.
    candidates.sort(key=lambda c: (-len(c.rhs_body_positions), str(c.tgd)))
    yield from candidates


def _properties_hold(
    lhs_vars,
    rhs_atoms: tuple[Atom, ...],
    rhs_positions: tuple[int, ...],
    positions_of: dict,
    head_vars,
) -> bool:
    """Check properties 2 and 3 for one candidate split."""
    rhs_only_vars = atoms_variables(rhs_atoms) - lhs_vars
    rhs_set = set(rhs_positions)
    for var in rhs_only_vars:
        # Property 3: existential variables must not reach the head.
        if var in head_vars:
            return False
        # Property 2: every body atom containing the variable is in the RHS.
        if not positions_of[var] <= rhs_set:
            return False
    return True
