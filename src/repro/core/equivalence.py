"""Proving containment and equivalence under constraints (Section X).

Plain equivalence of recursive programs is undecidable, but Section X
gives a sound (incomplete) recipe for proving ``P2 ⊑ P1``:

1. ``SAT(T) ∩ M(P1) ⊆ M(P2)``          -- chase test, Section VIII;
2. ``P1`` preserves ``T``               -- non-recursive preservation, Fig. 3;
3′. the preliminary DB of ``P1`` satisfies ``T``.

(1) and (2) give ``P2 ⊑_SAT(T) P1`` (Corollary 1); monotonicity plus
(3′) then yields ``P2 ⊑ P1`` by the argument at the end of Section X,
which needs only ``P1``'s preliminary DB -- the original condition
(3) + (4) pair on both programs is subsumed.

To conclude *equivalence* ``P1 ≡ P2`` we additionally check
``P1 ⊑u P2`` (decidable, Section VI), which implies ``P1 ⊑ P2``.  In
the intended use -- ``P2`` is ``P1`` with body atoms deleted -- this
direction always holds syntactically, but it is verified, never
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang.programs import Program
from .chase import (
    ChaseBudget,
    DEFAULT_BUDGET,
    ModelContainmentReport,
    Verdict,
    check_model_containment,
)
from .containment import check_uniform_containment, UniformContainmentReport
from .preservation import (
    PreservationReport,
    preliminary_db_satisfies,
    preserves_nonrecursively,
)
from .tgds import Tgd


@dataclass
class ContainmentProof:
    """Evidence that ``p2 ⊑ p1`` via the Section X recipe.

    ``verdict`` is ``PROVED`` only when all three conditions are; a
    single ``DISPROVED`` condition does **not** refute ``p2 ⊑ p1``
    (the recipe is sound, not complete), so the combined verdict then
    is ``UNKNOWN`` unless the failure certifies nothing was shown.
    """

    p1: Program
    p2: Program
    tgds: tuple[Tgd, ...]
    model_containment: ModelContainmentReport
    preservation: Optional[PreservationReport]
    preliminary: Optional[PreservationReport]

    @property
    def certificate(self):
        """The termination certificate computed for condition (1)."""
        return self.model_containment.certificate

    @property
    def exhausted(self) -> Optional[str]:
        """Which chase budget limit tripped, when the verdict is open."""
        return self.model_containment.exhausted

    @property
    def verdict(self) -> Verdict:
        parts = [self.model_containment.verdict]
        if self.preservation is not None:
            parts.append(self.preservation.verdict)
        if self.preliminary is not None:
            parts.append(self.preliminary.verdict)
        if all(v is Verdict.PROVED for v in parts):
            return Verdict.PROVED
        # Any non-proved condition leaves the conclusion open: the
        # recipe only ever *proves* containment.
        return Verdict.UNKNOWN

    def __bool__(self) -> bool:
        return bool(self.verdict)

    def explain(self) -> str:
        lines = []
        if self.certificate is not None:
            lines.append(f"termination certificate: {self.certificate.describe()}")
        lines.append(
            f"(1) SAT(T) ∩ M(P1) ⊆ M(P2): {self.model_containment.verdict.value}"
            + (f" (budget exhausted: {self.exhausted})" if self.exhausted else "")
        )
        if self.preservation is not None:
            lines.append(f"(2) P1 preserves T non-recursively: {self.preservation.verdict.value}")
        if self.preliminary is not None:
            lines.append(f"(3') preliminary DB of P1 satisfies T: {self.preliminary.verdict.value}")
        lines.append(f"=> P2 ⊑ P1: {self.verdict.value}")
        return "\n".join(lines)


@dataclass
class EquivalenceProof:
    """Evidence that ``p1 ≡ p2`` (Section X applied in both directions)."""

    containment: ContainmentProof          # p2 ⊑ p1, via the recipe
    reverse_uniform: UniformContainmentReport  # p1 ⊑u p2, hence p1 ⊑ p2

    @property
    def certificate(self):
        return self.containment.certificate

    @property
    def exhausted(self) -> Optional[str]:
        return self.containment.exhausted

    @property
    def verdict(self) -> Verdict:
        if self.containment.verdict is Verdict.PROVED and self.reverse_uniform.holds:
            return Verdict.PROVED
        return Verdict.UNKNOWN

    def __bool__(self) -> bool:
        return bool(self.verdict)

    def explain(self) -> str:
        reverse = "holds" if self.reverse_uniform.holds else "NOT shown"
        return (
            self.containment.explain()
            + f"\nP1 ⊑u P2 (hence P1 ⊑ P2): {reverse}"
            + f"\n=> P1 ≡ P2: {self.verdict.value}"
        )


def prove_containment_with_constraints(
    p1: Program,
    p2: Program,
    tgds: Sequence[Tgd],
    budget: ChaseBudget = DEFAULT_BUDGET,
) -> ContainmentProof:
    """Attempt to prove ``p2 ⊑ p1`` using the tgds *tgds* (Section X).

    Conditions are checked cheapest-first and later ones are skipped
    once the proof cannot succeed, but all computed evidence is kept in
    the returned proof object.
    """
    tgds = tuple(tgds)
    model = check_model_containment(p1, list(tgds), p2, budget=budget)
    preservation = None
    preliminary = None
    if model.verdict is Verdict.PROVED:
        preservation = preserves_nonrecursively(
            p1, tgds, budget=budget, certificate=model.certificate
        )
        if preservation.verdict is Verdict.PROVED:
            preliminary = preliminary_db_satisfies(p1, tgds)
    return ContainmentProof(
        p1=p1,
        p2=p2,
        tgds=tgds,
        model_containment=model,
        preservation=preservation,
        preliminary=preliminary,
    )


def prove_equivalence_with_constraints(
    p1: Program,
    p2: Program,
    tgds: Sequence[Tgd],
    budget: ChaseBudget = DEFAULT_BUDGET,
) -> EquivalenceProof:
    """Attempt to prove ``p1 ≡ p2``.

    Forward direction ``p2 ⊑ p1`` via the tgd recipe; reverse direction
    ``p1 ⊑ p2`` via decidable uniform containment (``⊑u`` implies
    ``⊑``).  This matches Examples 18 and 19, where ``p2`` is obtained
    from ``p1`` by deleting atoms so ``p1 ⊑u p2`` holds trivially.
    """
    containment = prove_containment_with_constraints(p1, p2, tgds, budget=budget)
    reverse = check_uniform_containment(container=p2, contained=p1)
    return EquivalenceProof(containment=containment, reverse_uniform=reverse)
