"""Detecting (uniform) boundedness of recursive programs.

A Datalog program is *bounded* when its recursion is superfluous: some
fixed number of rule-application rounds suffices on every database, so
the program is equivalent to a non-recursive one.  Boundedness is
undecidable in general (like the equivalence problems the paper cites),
but the paper's uniform-containment machinery yields a clean sound
semi-decision procedure for the **uniform** variant:

    ``P`` is uniformly bounded at depth ``k`` iff ``P ⊑u unroll(P, k)``,

where ``unroll(P, k)`` is the non-recursive program whose rules are all
at-most-``k``-deep unfoldings of ``P``'s rules into initialization
rules.  ``unroll(P, k) ⊑u P`` always holds (each unrolled rule is a
composition of ``P``'s rules), so a positive test certifies
``P ≡u unroll(P, k)``: the program can be replaced outright by a
non-recursive one -- the strongest possible outcome of the paper's
style of optimization.

:func:`uniform_boundedness` searches depths ``1..max_depth`` and
returns a three-valued outcome; a ``PROVED`` result carries the
witnessing non-recursive program.

Scope note: the property decided is *uniform equivalence to a
non-recursive program* (complete recursion elimination).  This is
strictly stronger than "the fixpoint converges in a constant number of
rounds on every input": e.g. ``P(x, y) :- P(y, x)`` converges in two
rounds on every database, yet no non-recursive program is uniformly
equivalent to it (nothing else can read the initial ``P`` facts), so
the search correctly reports ``UNKNOWN`` there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine.fixpoint import EngineName
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.substitution import unify_atoms
from .chase import Verdict
from .containment import uniformly_contains


def _compose_once(base_rules: list[Rule], program: Program, idb: frozenset[str]) -> list[Rule]:
    """All single-step expansions of *base_rules*' first IDB atom.

    Each rule with an IDB body atom has that atom resolved against every
    rule of *program*; rules with EDB-only bodies pass through.
    """
    out: list[Rule] = []
    for serial, rule in enumerate(base_rules):
        target = None
        for position, literal in enumerate(rule.body):
            if literal.positive and literal.predicate in idb:
                target = position
                break
        if target is None:
            out.append(rule)
            continue
        literal = rule.body[target]
        for def_index, definition in enumerate(program.rules_for(literal.predicate)):
            renamed = definition.rename_variables(f"_b{serial}_{def_index}")
            while renamed.variables() & rule.variables():
                renamed = renamed.rename_variables("x")
            unifier = unify_atoms(literal.atom, renamed.head)
            if unifier is None:
                continue
            new_body = [
                *rule.body[:target],
                *renamed.body,
                *rule.body[target + 1:],
            ]
            out.append(
                Rule(
                    unifier.apply_atom(rule.head),
                    [lit.substitute(unifier) for lit in new_body],
                )
            )
    return out


def unroll(program: Program, depth: int, max_rules: int = 2_000) -> Program:
    """The non-recursive approximation of *program* at *depth*.

    Returns the program whose rules are the unfoldings of *program*'s
    rules in which every chain of IDB resolutions has length at most
    *depth* and bottoms out in extensional atoms.  Expansions that still
    contain IDB atoms after *depth* rounds are dropped (they correspond
    to deeper derivations, which a bounded program does not need).

    Raises ``ValueError`` if the expansion exceeds *max_rules* -- the
    construction is worst-case exponential in *depth*.
    """
    idb = program.idb_predicates
    current: list[Rule] = list(program.rules)
    for _ in range(depth):
        if all(
            not (set(r.body_predicates()) & idb) for r in current
        ):
            break
        current = _compose_once(current, program, idb)
        if len(current) > max_rules:
            raise ValueError(
                f"unrolling to depth {depth} exceeded {max_rules} rules"
            )
    finished = [r for r in current if not (r.body_predicates() & idb)]
    # Deduplicate syntactically; Program() collapses exact duplicates.
    return Program(finished)


@dataclass
class BoundednessReport:
    """Outcome of the bounded-depth search."""

    verdict: Verdict
    depth: Optional[int] = None
    nonrecursive: Optional[Program] = None

    def __bool__(self) -> bool:
        return bool(self.verdict)


def uniform_boundedness(
    program: Program,
    max_depth: int = 4,
    engine: EngineName = "seminaive",
    max_rules: int = 2_000,
    depths: Sequence[int] | None = None,
) -> BoundednessReport:
    """Search for a depth at which *program* is uniformly bounded.

    ``PROVED`` means ``program ≡u report.nonrecursive`` -- recursion can
    be eliminated entirely.  ``UNKNOWN`` means no tested depth
    certifies boundedness (the program may be unbounded, or bounded
    only at a greater depth; uniform boundedness of arbitrary programs
    is undecidable).  A non-recursive input is trivially ``PROVED`` at
    depth 0.

    The depths tested default to the recursion classification's
    :meth:`~repro.analysis.absint.recursion.RecursionAnalysis.candidate_depths`
    (``1..max_depth``, capped for nonlinear recursion whose unrollings
    explode); pass *depths* explicitly to override the schedule.
    """
    from ..analysis.absint.recursion import classify_recursion

    classification = classify_recursion(program)
    if not classification.recursive_sccs:
        return BoundednessReport(Verdict.PROVED, depth=0, nonrecursive=program)
    if depths is None:
        depths = classification.candidate_depths(max_depth)
    for depth in depths:
        try:
            candidate = unroll(program, depth, max_rules=max_rules)
        except ValueError:
            return BoundednessReport(Verdict.UNKNOWN)
        if not len(candidate):
            continue
        if uniformly_contains(container=candidate, contained=program, engine=engine):
            return BoundednessReport(Verdict.PROVED, depth=depth, nonrecursive=candidate)
    return BoundednessReport(Verdict.UNKNOWN)
