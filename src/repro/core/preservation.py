"""Non-recursive preservation of tgds (Section IX, Fig. 3).

``P`` *preserves* ``T`` if ``P(d) ∈ SAT(T)`` whenever ``d ∈ SAT(T)``.
The paper certifies this through the stronger *non-recursive*
preservation: ``⟨d, Pⁿ(d)⟩ ∈ SAT(T)`` for all ``d ∈ SAT(T)`` -- if one
bottom-up round preserves ``T``, induction gives preservation outright.

The procedure (a Klug--Price-style chase) attempts to build a
counterexample for each tgd ``τ``:

1. instantiate the LHS of ``τ`` with distinct fresh constants;
2. atoms of extensional predicates join the hypothetical database
   ``d``; each atom of an intensional predicate must have been produced
   by some rule, so it is unified with the head of a *chosen* rule --
   including the trivial rules ``Q(x̄) :- Q(x̄)`` standing for "the atom
   was already in d" -- and the chosen rule's instantiated body joins
   ``d``;
3. every combination of choices is examined; for each, ``d`` is chased
   with ``T`` (it must satisfy ``T``), ``Pⁿ(d)`` is recomputed, and the
   distinguished LHS instantiation is checked for a violation in
   ``⟨d, Pⁿ(d)⟩``.  The chase and the check are interleaved so the
   procedure stops as soon as the violation disappears, exactly as the
   paper prescribes for termination in the positive case.

A combination whose head unification is impossible (e.g. ground atom
``G(x0, y0)`` against head ``G(x, x)``) cannot occur and passes
vacuously.

Outcomes are three-valued: ``PROVED`` (preserves non-recursively),
``DISPROVED`` (a finite counterexample database was constructed),
``UNKNOWN`` (embedded tgds exhausted the budget while a violation
persisted).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..data.database import Database
from ..engine.fixpoint import apply_once
from ..lang.atoms import Atom
from ..lang.freeze import freeze_atoms
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.substitution import Substitution, match_atom
from ..lang.terms import FrozenConstant, NullFactory, Variable
from .chase import ChaseBudget, DEFAULT_BUDGET, Verdict, certified_budget
from .tgds import Tgd

#: Serial offset so freezing inside the procedure never collides with
#: the serial-0 constants used to instantiate the tgd's left-hand side.
_BODY_SERIAL_BASE = 1


@dataclass(frozen=True)
class UnificationChoice:
    """One way an intensional LHS atom may have been derived."""

    atom: Atom          # the instantiated (ground) LHS atom
    rule: Rule          # the chosen rule, variables renamed apart
    body_atoms: tuple[Atom, ...]  # the rule's instantiated body, to join d
    is_trivial: bool    # True when the choice is the trivial rule


@dataclass
class CombinationEvidence:
    """Transcript for one combination of unification choices."""

    tgd: Tgd
    choices: tuple[UnificationChoice, ...]
    verdict: Verdict
    rounds: int = 0
    counterexample: Optional[frozenset[Atom]] = None
    #: Which budget limit tripped when the verdict is ``UNKNOWN``.
    exhausted: Optional[str] = None


@dataclass
class PreservationReport:
    """Outcome of the Fig. 3 procedure over a whole tgd set."""

    verdict: Verdict
    evidence: list[CombinationEvidence] = field(default_factory=list)
    combinations_examined: int = 0

    def __bool__(self) -> bool:
        return bool(self.verdict)

    @property
    def exhausted(self) -> Optional[str]:
        """The first budget limit that tripped across the evidence."""
        for item in self.evidence:
            if item.exhausted:
                return item.exhausted
        return None

    @property
    def counterexample(self) -> Optional[frozenset[Atom]]:
        for item in self.evidence:
            if item.verdict is Verdict.DISPROVED:
                return item.counterexample
        return None


def _instantiate_choices(
    alpha: Atom,
    rules: Sequence[Rule],
    serial: int,
) -> Iterator[UnificationChoice]:
    """All rules whose head unifies with the ground atom *alpha*.

    The chosen rule's variables are renamed apart, its head is matched
    against *alpha*, and body variables not bound by the head are
    instantiated to fresh frozen constants (the paper's "the rest of the
    variables of r are instantiated to new distinct constants").
    """
    for rule_index, rule in enumerate(rules):
        renamed = rule.rename_variables(f"_r{serial}_{rule_index}")
        sigma = match_atom(renamed.head, alpha)
        if sigma is None:
            continue
        leftover = {
            var: FrozenConstant(var.name, serial)
            for var in renamed.variables()
            if var not in sigma
        }
        full = sigma.bind_many(leftover)
        body_atoms = tuple(full.apply_atom(a) for a in renamed.body_atoms())
        is_trivial = len(renamed.body) == 1 and renamed.body[0].atom == renamed.head
        yield UnificationChoice(alpha, renamed, body_atoms, is_trivial)


def _examine_combination(
    program: Program,
    tgds: Sequence[Tgd],
    tgd: Tgd,
    theta: Substitution,
    extensional_atoms: Sequence[Atom],
    combination: tuple[UnificationChoice, ...],
    budget: ChaseBudget,
) -> CombinationEvidence:
    """Run the interleaved chase-and-check loop for one combination."""
    d = Database(extensional_atoms)
    for choice in combination:
        d.add_all(choice.body_atoms)
    nulls = NullFactory()
    rounds = 0
    while True:
        pn = apply_once(program, d)
        combined = d.copy()
        combined.add_all(pn)
        if not tgd.exhibits_violation(combined, theta):
            return CombinationEvidence(tgd, combination, Verdict.PROVED, rounds)
        rounds += 1
        if rounds > budget.max_rounds:
            return CombinationEvidence(
                tgd, combination, Verdict.UNKNOWN, rounds, exhausted="rounds"
            )
        if nulls.issued > budget.max_nulls:
            return CombinationEvidence(
                tgd, combination, Verdict.UNKNOWN, rounds, exhausted="nulls"
            )
        if len(d) > budget.max_atoms:
            return CombinationEvidence(
                tgd, combination, Verdict.UNKNOWN, rounds, exhausted="atoms"
            )
        added = 0
        for dependency in tgds:
            added += dependency.apply_all_once(d, nulls)
        if added == 0:
            # d satisfies T, yet ⟨d, Pⁿ(d)⟩ still violates τ: a genuine
            # finite counterexample.
            return CombinationEvidence(
                tgd, combination, Verdict.DISPROVED, rounds, frozenset(combined.atoms())
            )


def preserves_nonrecursively(
    program: Program,
    tgds: Sequence[Tgd],
    budget: ChaseBudget = DEFAULT_BUDGET,
    stop_at_violation: bool = True,
    certificate=None,
) -> PreservationReport:
    """Fig. 3: does *program* preserve *tgds* non-recursively?

    ``PROVED`` implies the program preserves ``T`` outright (condition
    (2) of the Section X recipe).  Note the one-way implication the
    paper stresses: a program may preserve ``T`` without preserving it
    non-recursively, so ``DISPROVED`` here does not refute preservation
    itself.

    A terminating termination *certificate* widens *budget* (see
    :func:`~repro.core.chase.certified_budget`) so the per-combination
    chase saturates rather than answering ``UNKNOWN``.
    """
    tgds = list(tgds)
    budget = certified_budget(budget, certificate, None, program, tgds)
    idb = program.idb_predicates
    augmented_rules = program.with_trivial_rules().rules
    report = PreservationReport(verdict=Verdict.PROVED)

    for tgd in tgds:
        frozen_lhs, theta_full = freeze_atoms(tgd.lhs, serial=0)
        theta = theta_full.restrict(tgd.universal_variables)
        extensional = [a for a in frozen_lhs if a.predicate not in idb]
        intensional = [a for a in frozen_lhs if a.predicate in idb]

        per_atom_choices: list[list[UnificationChoice]] = []
        for serial, alpha in enumerate(intensional, start=_BODY_SERIAL_BASE):
            matching = [
                r for r in augmented_rules if r.head.predicate == alpha.predicate
            ]
            choices = list(_instantiate_choices(alpha, matching, serial))
            per_atom_choices.append(choices)

        for combination in itertools.product(*per_atom_choices):
            report.combinations_examined += 1
            evidence = _examine_combination(
                program, tgds, tgd, theta, extensional, combination, budget
            )
            report.evidence.append(evidence)
            if evidence.verdict is Verdict.DISPROVED:
                report.verdict = Verdict.DISPROVED
                if stop_at_violation:
                    return report
            elif evidence.verdict is Verdict.UNKNOWN and report.verdict is Verdict.PROVED:
                report.verdict = Verdict.UNKNOWN
    return report


def preliminary_db_satisfies(
    program: Program,
    tgds: Sequence[Tgd],
) -> PreservationReport:
    """Condition (3′) of Section X: the preliminary DB satisfies ``T``.

    The preliminary DB for an EDB ``d`` is ``⟨d, Pⁱ(d)⟩`` where ``Pⁱ``
    is the program's initialization rules.  The Fig. 3 procedure is
    modified exactly as the paper describes (Example 18):

    * ``d`` is an EDB, so intensional LHS atoms unify only with
      initialization-rule heads -- **no trivial rules**;
    * ``d`` is arbitrary, not assumed in ``SAT(T)``, so **no tgds are
      applied** to ``d``.

    Without tgd application the check is a single round per combination
    and always terminates: the verdict is never ``UNKNOWN``.  An
    intensional LHS atom that no initialization rule can produce makes
    the combination impossible (vacuously satisfied).
    """
    tgds = list(tgds)
    idb = program.idb_predicates
    init_program = program.initialization_program()
    report = PreservationReport(verdict=Verdict.PROVED)

    for tgd in tgds:
        frozen_lhs, theta_full = freeze_atoms(tgd.lhs, serial=0)
        theta = theta_full.restrict(tgd.universal_variables)
        extensional = [a for a in frozen_lhs if a.predicate not in idb]
        intensional = [a for a in frozen_lhs if a.predicate in idb]

        per_atom_choices: list[list[UnificationChoice]] = []
        impossible = False
        for serial, alpha in enumerate(intensional, start=_BODY_SERIAL_BASE):
            matching = [
                r for r in init_program.rules if r.head.predicate == alpha.predicate
            ]
            choices = list(_instantiate_choices(alpha, matching, serial))
            if not choices:
                impossible = True
                break
            per_atom_choices.append(choices)
        if impossible:
            continue

        for combination in itertools.product(*per_atom_choices):
            report.combinations_examined += 1
            d = Database(extensional)
            for choice in combination:
                d.add_all(choice.body_atoms)
            pn = apply_once(init_program, d)
            combined = d.copy()
            combined.add_all(pn)
            if tgd.exhibits_violation(combined, theta):
                evidence = CombinationEvidence(
                    tgd, combination, Verdict.DISPROVED, 0, frozenset(combined.atoms())
                )
                report.evidence.append(evidence)
                report.verdict = Verdict.DISPROVED
                return report
            report.evidence.append(CombinationEvidence(tgd, combination, Verdict.PROVED))
    return report
