"""Conjunctive-query baseline: Chandra--Merlin and Sagiv--Yannakakis.

Section V recalls that the non-recursive case was solved before the
paper: single-rule programs by Chandra--Merlin (1977) / Aho--Sagiv--
Ullman (1979), multi-rule non-recursive programs by Sagiv--Yannakakis
(1980) via unions of tableaux.  This module implements that classical
machinery both as the baseline the paper compares its contribution
against and as the subroutine Section X needs for condition (3):
equivalence of the initialization programs.

A conjunctive query (CQ) is represented by a single positive
:class:`~repro.lang.rules.Rule`.  The homomorphism theorem:
``Q1 ⊆ Q2`` iff there is a homomorphism from ``Q2`` to ``Q1`` --
equivalently (Section VI's observation) iff the frozen head of ``Q1``
is derivable by one application of ``Q2`` on ``Q1``'s frozen body,
which is exactly uniform containment restricted to single
non-recursive rules.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.database import Database
from ..engine.joins import match_body
from ..errors import ValidationError
from ..lang.atoms import Literal
from ..lang.freeze import freeze_rule
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.substitution import Substitution, match_atom
from .containment import uniformly_equivalent
from .minimize import minimize_rule


def find_homomorphism(source: Rule, target: Rule) -> Optional[Substitution]:
    """A homomorphism from *source* to *target* (witness of ``target ⊆ source``).

    Maps the source's variables so that its head becomes the target's
    head and every source body atom lands in the target's body.  The
    target is frozen first, so the returned substitution maps source
    variables to the target's frozen constants.
    """
    frozen = freeze_rule(target)
    base = match_atom(source.head, frozen.head)
    if base is None:
        return None
    db = Database(frozen.body)
    literals = [Literal(a) for a in source.body_atoms()]
    for bindings in match_body(db, literals, initial=dict(base)):
        return Substitution(bindings)
    return None


def cq_contained_in(q1: Rule, q2: Rule) -> bool:
    """Chandra--Merlin: is ``q1 ⊆ q2`` (as queries over the EDB)?

    Requires both rules to define the same head predicate with the same
    arity.  Containment holds iff ``q2`` maps homomorphically into
    ``q1``.
    """
    _require_comparable(q1, q2)
    return find_homomorphism(q2, q1) is not None


def cq_equivalent(q1: Rule, q2: Rule) -> bool:
    """Both containment directions."""
    return cq_contained_in(q1, q2) and cq_contained_in(q2, q1)


def minimize_cq(query: Rule) -> Rule:
    """The core of a conjunctive query (unique up to isomorphism).

    Delegates to the Fig. 1 algorithm, which for a single non-recursive
    rule coincides with classical tableau minimization; the paper notes
    the non-recursive minimum is unique, unlike the recursive case.
    """
    return minimize_rule(query)


def ucq_contained_in(qs1: Sequence[Rule], qs2: Sequence[Rule]) -> bool:
    """Sagiv--Yannakakis: union containment ``∪qs1 ⊆ ∪qs2``.

    For unions of conjunctive queries, containment holds iff every
    member of the left union is contained in *some* member of the right
    union.
    """
    if not qs1:
        return True
    if not qs2:
        return False
    return all(any(cq_contained_in(q1, q2) for q2 in qs2) for q1 in qs1)


def ucq_equivalent(qs1: Sequence[Rule], qs2: Sequence[Rule]) -> bool:
    """Union equivalence (both directions of :func:`ucq_contained_in`)."""
    return ucq_contained_in(qs1, qs2) and ucq_contained_in(qs2, qs1)


def initialization_programs_equivalent(p1: Program, p2: Program) -> bool:
    """Condition (3) of Section X: ``P1ⁱ ≡ P2ⁱ``.

    The initialization rules of each program are grouped per head
    predicate and compared as unions of conjunctive queries.  For
    initialization programs (bodies mention only extensional
    predicates) plain equivalence coincides with uniform equivalence,
    so this agrees with the Section VI test; the UCQ route exposes the
    classical machinery and per-predicate witnesses.
    """
    init1 = p1.initialization_program()
    init2 = p2.initialization_program()
    heads = {r.head.predicate for r in init1.rules} | {
        r.head.predicate for r in init2.rules
    }
    for pred in heads:
        if not ucq_equivalent(list(init1.rules_for(pred)), list(init2.rules_for(pred))):
            return False
    return True


def nonrecursive_equivalent(p1: Program, p2: Program) -> bool:
    """Equivalence of single-level non-recursive programs.

    Restricted to programs whose rule bodies mention only extensional
    predicates (initialization-style programs); for these, equivalence
    coincides with uniform equivalence, which is used as the oracle.
    Raises :class:`~repro.errors.ValidationError` on other programs,
    where the coincidence does not hold in general.
    """
    for program in (p1, p2):
        for rule in program.rules:
            if rule.body_predicates() & program.idb_predicates:
                raise ValidationError(
                    "nonrecursive_equivalent requires initialization-style programs "
                    f"(rule '{rule}' reads an intensional predicate); "
                    "use uniform equivalence or the Section X machinery instead"
                )
    return uniformly_equivalent(p1, p2)


def _require_comparable(q1: Rule, q2: Rule) -> None:
    if q1.head.predicate != q2.head.predicate or q1.head.arity != q2.head.arity:
        raise ValidationError(
            "conjunctive queries must define the same head predicate and arity: "
            f"{q1.head.predicate}/{q1.head.arity} vs {q2.head.predicate}/{q2.head.arity}"
        )
    for rule in (q1, q2):
        if not rule.is_positive:
            raise ValidationError(f"conjunctive query '{rule}' must be positive")
