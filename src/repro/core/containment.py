"""Uniform containment and uniform equivalence (Sections IV and VI).

The paper's key decidability result: although plain equivalence of
Datalog programs is undecidable (Shmueli), *uniform* containment is
decidable, and the test is a single bottom-up evaluation per rule
(Corollary 2)::

    P2 ⊑u P1   iff   for every rule  h :- b  of P2:  hθ ∈ P1(bθ)

where θ freezes the rule's variables to distinct fresh constants.  The
test is total: it always terminates because bottom-up evaluation of a
Datalog program over a finite database cannot invent new constants.

Naming convention used throughout this module: ``contained`` is the
smaller program (``P2``), ``container`` the larger (``P1``), and the
relation tested is ``contained ⊑u container``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.database import Database
from ..engine.fixpoint import EngineName, evaluate
from ..lang.freeze import freeze_rule
from ..lang.programs import Program
from ..lang.rules import Rule
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace


@dataclass(frozen=True)
class RuleContainmentWitness:
    """Evidence for one rule's uniform containment test.

    ``holds`` is ``True`` iff the frozen head was derived.  When the
    test fails, ``canonical_output`` is a *countermodel* seed: the
    database ``container(bθ)`` is a model of the container program that
    is not a model of the rule.
    """

    rule: Rule
    holds: bool
    frozen_head: object
    canonical_input: frozenset
    canonical_output: frozenset

    def __str__(self) -> str:
        verdict = "⊑u holds" if self.holds else "⊑u FAILS"
        return f"{verdict} for rule '{self.rule}'"


@dataclass
class UniformContainmentReport:
    """Outcome of ``contained ⊑u container`` with per-rule transcripts."""

    holds: bool
    witnesses: list[RuleContainmentWitness] = field(default_factory=list)

    @property
    def failing_rules(self) -> list[Rule]:
        return [w.rule for w in self.witnesses if not w.holds]

    def __bool__(self) -> bool:
        return self.holds


def rule_uniformly_contained_in(
    rule: Rule,
    container: Program,
    engine: EngineName = "seminaive",
    governor=None,
) -> bool:
    """Test ``{rule} ⊑u container`` (Section VI, single-rule case)."""
    return _test_rule(rule, container, engine, governor).holds


def check_rule_containment(
    rule: Rule,
    container: Program,
    engine: EngineName = "seminaive",
    governor=None,
) -> RuleContainmentWitness:
    """Like :func:`rule_uniformly_contained_in` but with full evidence."""
    return _test_rule(rule, container, engine, governor)


def _test_rule(
    rule: Rule, container: Program, engine: EngineName, governor=None
) -> RuleContainmentWitness:
    # A PARTIAL evaluation here would be *unsound*: the frozen head
    # might be derivable past the interruption point, and reporting
    # "not contained" on that basis would let minimization delete a
    # non-redundant atom.  A governed trip therefore always raises
    # (on_limit="raise"); callers degrade by stopping, never by guessing.
    with trace("containment.rule_test") as span:
        frozen = freeze_rule(rule)
        canonical = Database(frozen.body)
        result = evaluate(
            container, canonical, engine=engine, governor=governor, on_limit="raise"
        )
        holds = frozen.head in result.database
        if span:
            span.set(rule=str(rule), holds=holds)
    metrics_registry().increment("containment.rule_tests")
    return RuleContainmentWitness(
        rule=rule,
        holds=holds,
        frozen_head=frozen.head,
        canonical_input=frozenset(frozen.body),
        canonical_output=result.database.as_atom_set(),
    )


def uniformly_contains(
    container: Program,
    contained: Program,
    engine: EngineName = "seminaive",
    governor=None,
) -> bool:
    """Test ``contained ⊑u container``.

    By the model characterization, this holds iff every rule of
    *contained* is uniformly contained in *container* (Section VI).
    """
    return all(
        _test_rule(rule, container, engine, governor).holds
        for rule in contained.rules
    )


def check_uniform_containment(
    container: Program,
    contained: Program,
    engine: EngineName = "seminaive",
    governor=None,
) -> UniformContainmentReport:
    """``contained ⊑u container`` with a per-rule transcript.

    Unlike :func:`uniformly_contains` this does not short-circuit, so
    the report lists *every* failing rule.  A governed limit trip
    raises :class:`~repro.errors.ResourceLimitExceeded` (a partial
    answer set would mislabel undecided rules as failing).
    """
    witnesses = [
        _test_rule(rule, container, engine, governor) for rule in contained.rules
    ]
    return UniformContainmentReport(
        holds=all(w.holds for w in witnesses),
        witnesses=witnesses,
    )


def uniformly_equivalent(
    p1: Program,
    p2: Program,
    engine: EngineName = "seminaive",
    governor=None,
) -> bool:
    """Test ``p1 ≡u p2`` (both containment directions)."""
    return uniformly_contains(p1, p2, engine, governor) and uniformly_contains(
        p2, p1, engine, governor
    )


def canonical_database(rule: Rule) -> Database:
    """The frozen body ``bθ`` of a rule as a database (for inspection)."""
    return Database(freeze_rule(rule).body)
