"""Minimization for programs with stratified negation.

The paper's conclusion: "The results on uniform containment and
minimization can be extended to Datalog programs with stratified
negation, and in a forthcoming paper, we will describe how it is done."
This module implements the standard *sound* construction behind that
extension:

1. **Complement encoding** -- each negated literal ``not Q(t̄)`` is
   replaced by a positive literal over a fresh complement predicate
   ``Q__neg(t̄)``, yielding a positive program ``P⁺``.

2. **Positive minimization** -- Fig. 2 runs on ``P⁺``.  Uniform
   containment over *all* interpretations of ``Q__neg`` is stronger
   than containment over only the intended interpretations
   (``Q__neg = complement of Q``), so every deletion found on ``P⁺`` is
   valid for the stratified program: soundness is inherited, while some
   negation-specific redundancies may be missed (the procedure is
   conservative, matching the paper's spirit of sound-but-incomplete
   optimization beyond the decidable core).

3. **Decoding** -- complement predicates are translated back to negated
   literals in the minimized program.

The encoding refuses programs that are not stratifiable, since their
semantics is undefined for this engine anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.fixpoint import EngineName
from ..engine.stratified import stratify
from ..errors import UnsafeRuleError
from ..lang.atoms import Atom, Literal
from ..lang.programs import Program
from ..lang.rules import Rule
from .minimize import MinimizationResult, minimize_program

#: Reserved suffix for complement predicates during the encoding.
_NEG_SUFFIX = "__neg"


def _encode_literal(literal: Literal) -> Literal:
    if literal.positive:
        return literal
    atom = literal.atom
    return Literal(Atom(atom.predicate + _NEG_SUFFIX, atom.args))


def _decode_literal(literal: Literal) -> Literal:
    if literal.predicate.endswith(_NEG_SUFFIX):
        base = literal.predicate[: -len(_NEG_SUFFIX)]
        return Literal(Atom(base, literal.args), positive=False)
    return literal


def encode_negation(program: Program) -> Program:
    """Replace negated literals by positive complement-predicate literals."""
    for pred in program.predicates:
        if pred.endswith(_NEG_SUFFIX):
            raise UnsafeRuleError(
                f"predicate {pred!r} collides with the reserved complement suffix"
            )
    stratify(program)  # raises StratificationError when not stratifiable
    rules = [
        Rule(r.head, [_encode_literal(lit) for lit in r.body]) for r in program.rules
    ]
    return Program(rules)


def decode_negation(program: Program) -> Program:
    """Invert :func:`encode_negation`."""
    rules = [
        Rule(r.head, [_decode_literal(lit) for lit in r.body]) for r in program.rules
    ]
    return Program(rules)


@dataclass
class StratifiedMinimizationResult:
    """Outcome of stratified minimization, with the positive-side audit."""

    original: Program
    program: Program
    positive_result: MinimizationResult

    @property
    def changed(self) -> bool:
        return self.positive_result.changed

    def summary(self) -> str:
        return "stratified (complement-encoded) " + self.positive_result.summary()


def uniformly_contains_stratified(
    container: Program,
    contained: Program,
    engine: EngineName = "seminaive",
) -> bool:
    """Sound (conservative) uniform containment for stratified programs.

    Tests containment of the complement encodings: ``True`` certifies
    ``contained ⊑u container`` over every database (the encoded test
    quantifies over arbitrary complement relations, a superset of the
    intended ones).  ``False`` means *not shown* -- the containment may
    still hold through genuine negation reasoning, which this
    conservative extension does not attempt.
    """
    from .containment import uniformly_contains

    return uniformly_contains(
        encode_negation(container), encode_negation(contained), engine
    )


def minimize_stratified(
    program: Program,
    engine: EngineName = "seminaive",
) -> StratifiedMinimizationResult:
    """Minimize a stratified program, conservatively but soundly.

    Every deletion is justified by uniform containment of the
    complement-encoded positive program, which implies the stratified
    program's equivalence on all databases (the complement relations are
    a special case of the arbitrary relations quantified over).
    """
    encoded = encode_negation(program)
    result = minimize_program(encoded, engine=engine)
    return StratifiedMinimizationResult(
        original=program,
        program=decode_negation(result.program),
        positive_result=result,
    )
