"""Tuple-generating dependencies (Section VIII).

A tgd is a formula ``∀x̄ ∃ȳ [ψ1(x̄) → ψ2(x̄, ȳ)]`` written without
quantifiers, e.g. ``G(y, z) -> G(y, w) & C(w)``:

* **universally quantified** variables appear in the left-hand side
  (and possibly the right-hand side);
* **existentially quantified** variables appear only in the right-hand
  side;
* a tgd is **full** if it has no existential variables, otherwise
  **embedded**.

Applying a full tgd to a database is the same as applying one Datalog
rule per right-hand-side atom (Example 10).  Applying an embedded tgd
introduces fresh labelled nulls for the existential variables; the
paper's Example of ``G(x, y) -> A(x, w) ∧ G(w, y)``: from ``G(3, 2)``
add ``A(3, δ23)`` and ``G(δ23, 2)``.  Once added, nulls behave as
constants.

The tgds here are *untyped*, exactly as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..data.database import Database
from ..engine.joins import match_body
from ..errors import TgdError
from ..lang.atoms import Atom, Literal, atoms_variables
from ..lang.rules import Rule
from ..lang.substitution import Substitution
from ..lang.terms import NullFactory, Term, Variable


@dataclass(frozen=True)
class Tgd:
    """A tuple-generating dependency ``lhs -> rhs``."""

    lhs: tuple[Atom, ...]
    rhs: tuple[Atom, ...]
    _universal: frozenset[Variable] = field(init=False, repr=False, compare=False, hash=False)
    _existential: frozenset[Variable] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, lhs: tuple[Atom, ...] | list[Atom], rhs: tuple[Atom, ...] | list[Atom]):
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))
        if not self.lhs:
            raise TgdError("tgd has an empty left-hand side")
        if not self.rhs:
            raise TgdError("tgd has an empty right-hand side")
        universal = atoms_variables(self.lhs)
        existential = atoms_variables(self.rhs) - universal
        object.__setattr__(self, "_universal", universal)
        object.__setattr__(self, "_existential", existential)

    @classmethod
    def parse(cls, source: str) -> "Tgd":
        """Parse from text, e.g. ``Tgd.parse("G(x, z) -> A(x, w)")``."""
        from ..lang.parser import parse_tgd

        return parse_tgd(source)

    # -- structure ---------------------------------------------------------------
    @property
    def universal_variables(self) -> frozenset[Variable]:
        return self._universal

    @property
    def existential_variables(self) -> frozenset[Variable]:
        return self._existential

    @property
    def is_full(self) -> bool:
        """``True`` iff the tgd has no existentially quantified variables."""
        return not self._existential

    def predicates(self) -> frozenset[str]:
        return frozenset(a.predicate for a in self.lhs) | frozenset(
            a.predicate for a in self.rhs
        )

    def as_rules(self) -> tuple[Rule, ...]:
        """A full tgd as Datalog rules, one per RHS atom (Example 10).

        Raises :class:`TgdError` for an embedded tgd, whose application
        needs nulls and cannot be expressed as Datalog rules.
        """
        if not self.is_full:
            raise TgdError(f"embedded tgd '{self}' cannot be converted to Datalog rules")
        body = [Literal(a) for a in self.lhs]
        return tuple(Rule(head, body) for head in self.rhs)

    # -- semantics ----------------------------------------------------------------
    def violations(self, db: Database) -> Iterator[Substitution]:
        """Instantiations of the universal variables that violate the tgd.

        Yields each substitution θ such that ``lhs·θ ⊆ db`` but no
        extension of θ makes ``rhs`` a subset of ``db``.  θ is restricted
        to the universal variables.
        """
        lhs_literals = [Literal(a) for a in self.lhs]
        seen: set[tuple[tuple[Variable, Term], ...]] = set()
        for bindings in match_body(db, lhs_literals):
            theta = {v: bindings[v] for v in self._universal}
            key = tuple(sorted(theta.items(), key=lambda kv: kv[0].name))
            if key in seen:
                continue
            seen.add(key)
            if not self._rhs_matchable(db, theta):
                yield Substitution(theta)

    def _rhs_matchable(self, db: Database, theta: dict[Variable, Term]) -> bool:
        rhs_literals = [Literal(a) for a in self.rhs]
        for _ in match_body(db, rhs_literals, initial=theta):
            return True
        return False

    def is_satisfied_by(self, db: Database) -> bool:
        """Whether *db* satisfies the tgd (no violating instantiation)."""
        for _ in self.violations(db):
            return False
        return True

    def exhibits_violation(self, db: Database, theta: Substitution) -> bool:
        """Whether the specific instantiation θ exhibits a violation in *db*.

        Used by the Fig. 3 preservation procedure, which tracks one
        distinguished instantiation of the tgd's left-hand side.  θ must
        bind every universal variable to a ground term; the LHS under θ
        is assumed (not checked) to be in the relevant database.
        """
        return not self._rhs_matchable(db, dict(theta))

    def apply(self, db: Database, nulls: NullFactory, theta: Substitution) -> list[Atom]:
        """Apply the tgd for the violating instantiation θ, mutating *db*.

        Extends θ with a fresh null per existential variable, adds the
        instantiated RHS atoms, and returns the atoms that were new.
        """
        extension: dict[Variable, Term] = dict(theta)
        for var in sorted(self._existential, key=lambda v: v.name):
            extension[var] = nulls.fresh()
        added = []
        for atom in self.rhs:
            ground = atom.substitute(extension)
            if db.add(ground):
                added.append(ground)
        return added

    def apply_all_once(self, db: Database, nulls: NullFactory) -> int:
        """One chase round: fix every current violation; return atoms added.

        Violations are computed against the database state at the start
        of the round (their list is materialized first), matching the
        standard-chase convention that a round repairs the violations it
        can see.
        """
        pending = list(self.violations(db))
        added = 0
        for theta in pending:
            # Re-check: an earlier repair in this round may have
            # satisfied this instantiation already.
            if self._rhs_matchable(db, dict(theta)):
                continue
            added += len(self.apply(db, nulls, theta))
        return added

    # -- presentation ----------------------------------------------------------------
    def __str__(self) -> str:
        from ..lang.pretty import format_tgd

        return format_tgd(self)


def parse_tgds(source: str) -> list[Tgd]:
    """Parse several tgds from text (newline- or ``.``-separated)."""
    from ..lang.parser import parse_tgds as _parse

    return _parse(source)


def satisfies_all(db: Database, tgds: list[Tgd]) -> bool:
    """Whether *db* satisfies every tgd in *tgds* (``db ∈ SAT(T)``)."""
    return all(t.is_satisfied_by(db) for t in tgds)


def first_violation(db: Database, tgds: list[Tgd]) -> Optional[tuple[Tgd, Substitution]]:
    """The first violated tgd with a violating instantiation, if any."""
    for tgd in tgds:
        for theta in tgd.violations(db):
            return tgd, theta
    return None
