"""Synthetic workloads: EDB generators, program families, benchmark suites."""

from __future__ import annotations

from .graphs import (
    chain,
    complete,
    cycle,
    grid,
    layered_dag,
    merged,
    random_graph,
    random_tree,
    star,
    unary_marks,
)
from .programs import (
    ancestry,
    andersen,
    guarded_tc,
    random_positive_program,
    pointer_statements,
    same_generation,
    tc_linear,
    tc_nonlinear,
    tc_with_redundant_atoms,
    tc_with_redundant_rules,
    wide_rule,
)
from .suites import SUITES, Workload, load

__all__ = [
    "SUITES",
    "Workload",
    "ancestry",
    "andersen",
    "chain",
    "complete",
    "cycle",
    "grid",
    "guarded_tc",
    "layered_dag",
    "load",
    "merged",
    "pointer_statements",
    "random_graph",
    "random_positive_program",
    "random_tree",
    "same_generation",
    "star",
    "tc_linear",
    "tc_nonlinear",
    "tc_with_redundant_atoms",
    "tc_with_redundant_rules",
    "unary_marks",
    "wide_rule",
]
