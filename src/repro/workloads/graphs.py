"""Synthetic EDB generators.

The paper reports no machine experiments (it is a 1987 theory paper),
so the quantitative benchmarks need synthetic extensional databases.
All generators are deterministic given their arguments (random ones
take an explicit ``seed``), return a fresh
:class:`~repro.data.database.Database`, and store edges in a binary
predicate (default ``A``, the paper's edge relation).

Every generator accepts a ``backend`` keyword (``"rows"`` default,
``"columnar"``) and builds the database on that storage backend
directly -- a million-fact EDB is generated straight into interned-int
columns instead of being built row-wise and converted.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..data.database import Database


def chain(n: int, predicate: str = "A", offset: int = 0, backend: str = "rows") -> Database:
    """A path ``offset -> offset+1 -> ... -> offset+n`` (n edges)."""
    db = Database(backend=backend)
    for i in range(n):
        db.add_fact(predicate, offset + i, offset + i + 1)
    return db


def cycle(n: int, predicate: str = "A", backend: str = "rows") -> Database:
    """A directed cycle over ``n`` nodes (n edges)."""
    if n < 1:
        return Database(backend=backend)
    db = chain(n - 1, predicate, backend=backend)
    db.add_fact(predicate, n - 1, 0)
    return db


def star(n: int, predicate: str = "A", center: int = 0, backend: str = "rows") -> Database:
    """Edges from one center to ``n`` leaves."""
    db = Database(backend=backend)
    for i in range(1, n + 1):
        db.add_fact(predicate, center, center + i)
    return db


def complete(n: int, predicate: str = "A", backend: str = "rows") -> Database:
    """All ``n·(n-1)`` directed edges between distinct nodes."""
    db = Database(backend=backend)
    for i in range(n):
        for j in range(n):
            if i != j:
                db.add_fact(predicate, i, j)
    return db


def random_graph(
    n: int, m: int, seed: int, predicate: str = "A", backend: str = "rows"
) -> Database:
    """``m`` distinct random directed edges over ``n`` nodes (no loops)."""
    rng = random.Random(seed)
    limit = n * (n - 1)
    if m > limit:
        raise ValueError(f"cannot place {m} distinct edges on {n} nodes (max {limit})")
    db = Database(backend=backend)
    placed = 0
    seen: set[tuple[int, int]] = set()
    while placed < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        db.add_fact(predicate, u, v)
        placed += 1
    return db


def single_source(
    n: int,
    seed: int,
    predicate: str = "A",
    source_predicate: str = "S",
    backend: str = "rows",
) -> Database:
    """``n`` random edges over ``max(2, n // 10)`` nodes plus ``S(0)``.

    The single-source-reachability EDB: dense enough that most nodes
    are reachable from the marked source, sparse enough that generation
    stays linear in ``n``.  Self-loops and duplicates are allowed (the
    database deduplicates), which keeps generation a single pass even
    at millions of edges -- the million-fact storage workload
    (``reach/random``) is built through this generator.
    """
    rng = random.Random(seed)
    nodes = max(2, n // 10)
    db = Database(backend=backend)
    db.add_fact(source_predicate, 0)
    for _ in range(n):
        db.add_fact(predicate, rng.randrange(nodes), rng.randrange(nodes))
    return db


def random_tree(n: int, seed: int, predicate: str = "A", backend: str = "rows") -> Database:
    """A random parent->child tree over nodes ``0..n-1`` (root 0)."""
    rng = random.Random(seed)
    db = Database(backend=backend)
    for child in range(1, n):
        parent = rng.randrange(child)
        db.add_fact(predicate, parent, child)
    return db


def grid(width: int, height: int, predicate: str = "A", backend: str = "rows") -> Database:
    """Right/down edges over a ``width × height`` grid (node = y*width+x)."""
    db = Database(backend=backend)
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                db.add_fact(predicate, node, node + 1)
            if y + 1 < height:
                db.add_fact(predicate, node, node + width)
    return db


def layered_dag(
    layers: int, width: int, fanout: int, seed: int, predicate: str = "A",
    backend: str = "rows",
) -> Database:
    """A DAG of ``layers`` layers of ``width`` nodes, ``fanout`` edges each."""
    rng = random.Random(seed)
    db = Database(backend=backend)
    for layer in range(layers - 1):
        for position in range(width):
            node = layer * width + position
            targets = rng.sample(range(width), min(fanout, width))
            for t in targets:
                db.add_fact(predicate, node, (layer + 1) * width + t)
    return db


def unary_marks(nodes: Iterable[int], predicate: str = "C", backend: str = "rows") -> Database:
    """Unary facts ``C(n)`` for each node (Example 19's ``C`` relation)."""
    db = Database(backend=backend)
    for node in nodes:
        db.add_fact(predicate, node)
    return db


def merged(*dbs: Database) -> Database:
    """The union of several databases as a new database.

    The result lives on the first input's backend (same-backend inputs
    union raw rows; a mixed-backend union decodes at the boundary).
    """
    out = dbs[0].empty_like() if dbs else Database()
    for db in dbs:
        out.update(db)
    return out
