"""Synthetic program families, with and without planted redundancies.

Benchmarks need programs whose redundant parts are known by
construction.  Two planting mechanisms are used, mirroring the two
kinds of redundancy the paper removes:

* **redundant atoms** -- a *weakened copy* of an existing body atom
  (some arguments replaced by fresh variables that occur nowhere else)
  is always redundant under uniform equivalence: the identity map plus
  "fresh variable -> the argument it weakened" is a homomorphism back
  onto the original body.

* **redundant rules** -- a rule derivable from the remaining rules
  (e.g. ``G(x,z) :- A(x,y1), A(y1,y2), ..., A(yk,z)`` is uniformly
  contained in the transitive-closure program for every ``k``).

Random generators take explicit seeds and are deterministic.
"""

from __future__ import annotations

import random

from ..lang.atoms import Atom, Literal
from ..lang.parser import parse_program
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.terms import Variable


def tc_nonlinear() -> Program:
    """Example 1: transitive closure with the doubly-recursive rule."""
    return parse_program(
        """
        G(x, z) :- A(x, z).
        G(x, z) :- G(x, y), G(y, z).
        """
    )


def tc_linear() -> Program:
    """Example 4: right-linear transitive closure."""
    return parse_program(
        """
        G(x, z) :- A(x, z).
        G(x, z) :- A(x, y), G(y, z).
        """
    )


def reachability() -> Program:
    """Single-source reachability: unary closure of ``A`` from ``S``.

    The IDB stays linear in the number of reachable *nodes* (not node
    pairs), which is what lets the million-fact storage workload
    (``reach/random``) run to fixpoint -- the working set is dominated
    by the EDB, so the backends' byte-per-fact footprints are what a
    memory cap actually measures.
    """
    return parse_program(
        """
        R(x) :- S(x).
        R(y) :- R(x), A(x, y).
        """
    )


def same_generation() -> Program:
    """The classic same-generation program over ``Par`` (parent) edges."""
    return parse_program(
        """
        Sg(x, x) :- Per(x).
        Sg(x, y) :- Par(xp, x), Sg(xp, yp), Par(yp, y).
        """
    )


def ancestry() -> Program:
    """Ancestor program over ``Par`` edges."""
    return parse_program(
        """
        Anc(x, y) :- Par(x, y).
        Anc(x, y) :- Par(x, z), Anc(z, y).
        """
    )


def tc_with_redundant_atoms(k: int) -> Program:
    """Transitive closure whose recursive rule carries ``k`` planted
    redundant atoms ``G(x, s1), ..., G(x, sk)`` (weakened copies of
    ``G(x, y)``), all removable under uniform equivalence."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    body = [Literal(Atom("G", (x, y))), Literal(Atom("G", (y, z)))]
    for i in range(k):
        body.append(Literal(Atom("G", (x, Variable(f"s{i + 1}")))))
    recursive = Rule(Atom("G", (x, z)), body)
    init = Rule(Atom("G", (x, z)), [Literal(Atom("A", (x, z)))])
    return Program.of(init, recursive)


def tc_with_redundant_rules(k: int) -> Program:
    """Transitive closure plus ``k`` redundant path rules of lengths 2..k+1."""
    program = tc_nonlinear()
    for length in range(2, k + 2):
        variables = [Variable("x")] + [Variable(f"y{i}") for i in range(1, length)] + [Variable("z")]
        body = [
            Literal(Atom("A", (variables[i], variables[i + 1])))
            for i in range(length)
        ]
        program = program.with_rule(Rule(Atom("G", (Variable("x"), Variable("z"))), body))
    return program


def guarded_tc(k: int) -> Program:
    """Example 18's family: TC whose recursive rule has ``k`` guard atoms
    ``A(y, w1), ..., A(y, wk)``.  Guards beyond the first fold into each
    other under uniform equivalence (they are mutual weakened copies);
    the *last* guard is redundant only under plain *equivalence*, via
    the tgd ``G(x, z) -> A(x, w)`` -- Fig. 2 alone can never produce the
    plain transitive closure from this family."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    body = [Literal(Atom("G", (x, y))), Literal(Atom("G", (y, z)))]
    for i in range(k):
        body.append(Literal(Atom("A", (y, Variable(f"w{i + 1}")))))
    recursive = Rule(Atom("G", (x, z)), body)
    init = Rule(Atom("G", (x, z)), [Literal(Atom("A", (x, z)))])
    return Program.of(init, recursive)


def wide_rule(core_atoms: int, redundant_atoms: int, seed: int) -> Rule:
    """A single recursive rule with a random core and planted redundancy.

    The core is a connected chain ``G(x, v0), A(v0, v1), ..,
    A(v_{core_atoms-1}, z)`` with head ``G(x, z)``; each planted atom is
    a weakened copy of a random core atom (one argument position
    replaced by a fresh variable), hence redundant by construction.
    The *core* atoms, being a simple chain with all variables chained to
    the head, are pairwise non-redundant.
    """
    rng = random.Random(seed)
    x, z = Variable("x"), Variable("z")
    chain_vars = [Variable(f"v{i}") for i in range(core_atoms)]
    core: list[Atom] = [Atom("G", (x, chain_vars[0]))]
    for i in range(core_atoms - 1):
        core.append(Atom("A", (chain_vars[i], chain_vars[i + 1])))
    core.append(Atom("A", (chain_vars[-1], z)))
    body: list[Atom] = list(core)
    for i in range(redundant_atoms):
        template = rng.choice(core)
        position = rng.randrange(template.arity)
        args = list(template.args)
        args[position] = Variable(f"f{i}")
        body.append(Atom(template.predicate, tuple(args)))
    return Rule(Atom("G", (x, z)), [Literal(a) for a in body])


def andersen() -> Program:
    """Inclusion-based (Andersen) points-to analysis.

    EDB relations: ``Addr(p, a)`` for ``p = &a``, ``Copy(p, q)`` for
    ``p = q``, ``Load(p, q)`` for ``p = *q``, ``Store(p, q)`` for
    ``*p = q``.  The modern flagship Datalog workload (Doop, Soufflé).
    """
    return parse_program(
        """
        Pts(p, a) :- Addr(p, a).
        Pts(p, a) :- Copy(p, q), Pts(q, a).
        Pts(p, a) :- Load(p, q), Pts(q, v), Pts(v, a).
        Pts(v, a) :- Store(p, q), Pts(p, v), Pts(q, a).
        """
    )


def pointer_statements(statements: int, variables: int, seed: int, backend: str = "rows"):
    """A random straight-line pointer program as an EDB for :func:`andersen`."""
    from ..data.database import Database

    rng = random.Random(seed)
    db = Database(backend=backend)
    for _ in range(statements):
        kind = rng.random()
        p = f"v{rng.randrange(variables)}"
        q = f"v{rng.randrange(variables)}"
        if kind < 0.35:
            db.add_fact("Addr", p, f"obj{rng.randrange(variables)}")
        elif kind < 0.65:
            db.add_fact("Copy", p, q)
        elif kind < 0.85:
            db.add_fact("Load", p, q)
        else:
            db.add_fact("Store", p, q)
    return db


def random_positive_program(
    rules: int,
    max_body: int,
    predicates: int,
    variables_per_rule: int,
    seed: int,
) -> Program:
    """A random safe positive program (for property-based testing).

    Head predicates are drawn from ``G0..``; body predicates mix IDB and
    EDB (``E0..``).  Safety is enforced by construction: the head uses
    only variables that appear in the body.
    """
    rng = random.Random(seed)
    out: list[Rule] = []
    for _ in range(rules):
        body_size = rng.randint(1, max_body)
        variables = [Variable(f"v{i}") for i in range(variables_per_rule)]
        body: list[Literal] = []
        for _ in range(body_size):
            if rng.random() < 0.5:
                pred = f"E{rng.randrange(predicates)}"
            else:
                pred = f"G{rng.randrange(predicates)}"
            args = (rng.choice(variables), rng.choice(variables))
            body.append(Literal(Atom(pred, args)))
        body_vars = sorted(
            {v for lit in body for v in lit.atom.variables()}, key=lambda v: v.name
        )
        head_args = (rng.choice(body_vars), rng.choice(body_vars))
        head = Atom(f"G{rng.randrange(predicates)}", head_args)
        out.append(Rule(head, body))
    return Program(out)
