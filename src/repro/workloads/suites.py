"""Named workload suites for the benchmark harness.

Each suite packages a program (possibly with planted redundancies), a
matching EDB generator, and optional tgds/queries, so that the
benchmarks in ``benchmarks/`` stay declarative and EXPERIMENTS.md can
point at one identifier per measurement series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.tgds import Tgd
from ..data.database import Database
from ..lang.atoms import Atom
from ..lang.parser import parse_atom, parse_tgd
from ..lang.programs import Program
from . import graphs, programs


@dataclass(frozen=True)
class Workload:
    """A named (program, EDB generator) pairing for benchmarking.

    ``edb`` takes the size parameter plus a ``backend`` keyword and
    generates the extensional database directly on that storage
    backend.  ``engines`` restricts the bench matrix to the named
    engines (``None`` = every applicable engine); ``memory_cap_bytes``
    runs the bench under a governed memory cap, so a backend whose
    footprint exceeds the cap reports a honest ``PARTIAL`` instead of
    silently thrashing -- the million-fact storage workload uses both.
    """

    name: str
    program: Program
    edb: Callable[..., Database]
    description: str
    tgds: tuple[Tgd, ...] = ()
    query: Optional[Atom] = None
    expected_minimal: Optional[Program] = None
    engines: Optional[tuple[str, ...]] = None
    memory_cap_bytes: Optional[int] = None


def _tc_edb_chain(n: int, backend: str = "rows") -> Database:
    return graphs.chain(n, backend=backend)


def _tc_edb_random(n: int, backend: str = "rows") -> Database:
    # Edge count ~2n keeps the closure quadratic but tractable.
    return graphs.random_graph(n, 2 * n, seed=7, backend=backend)


def _ex19_edb(n: int, backend: str = "rows") -> Database:
    return graphs.merged(
        graphs.chain(n, backend=backend),
        graphs.unary_marks(range(n + 1), backend=backend),
    )


def tc_redundant_atoms(k: int, base: str = "chain") -> Workload:
    """Q2 series: TC with *k* planted redundant atoms in the recursive rule."""
    edb = _tc_edb_chain if base == "chain" else _tc_edb_random
    return Workload(
        name=f"tc+{k}atoms/{base}",
        program=programs.tc_with_redundant_atoms(k),
        edb=edb,
        description=f"transitive closure, recursive rule carries {k} redundant atoms",
        expected_minimal=programs.tc_nonlinear(),
    )


def tc_redundant_rules(k: int, base: str = "chain") -> Workload:
    """Q2 series: TC plus *k* redundant path rules."""
    edb = _tc_edb_chain if base == "chain" else _tc_edb_random
    return Workload(
        name=f"tc+{k}rules/{base}",
        program=programs.tc_with_redundant_rules(k),
        edb=edb,
        description=f"transitive closure plus {k} redundant path rules",
        expected_minimal=programs.tc_nonlinear(),
    )


def guarded_tc_workload(k: int) -> Workload:
    """Q8 series: Example-18 family, removable only under equivalence."""
    return Workload(
        name=f"guarded-tc+{k}",
        program=programs.guarded_tc(k),
        edb=_tc_edb_chain,
        description=f"TC with {k} guards redundant under equivalence only",
        tgds=(parse_tgd("G(x, z) -> A(x, w)"),),
        expected_minimal=programs.tc_nonlinear(),
    )


def de_copy_workload() -> Workload:
    """Data-exchange copy mapping (Grahne--Onet): full tgds only.

    The source edges are copied verbatim into the target relation, so
    the tgd set is full-only and the chase terminates on any input
    without inventing nulls.
    """
    return Workload(
        name="de-copy",
        program=programs.tc_nonlinear(),
        edb=_tc_edb_chain,
        description="data exchange: copy source edges into the target (full-only)",
        tgds=(parse_tgd("A(x, y) -> T(x, y)"),),
    )


def de_fusion_workload() -> Workload:
    """Data-exchange fusion mapping: one invented join value per edge.

    Each source edge is split through a fresh null (``F(x, w)``,
    ``F(w, y)``); the position graph has special edges but no cycle, so
    the set is weakly acyclic (rank 1) and the certified chase saturates.
    """
    return Workload(
        name="de-fusion",
        program=programs.tc_nonlinear(),
        edb=_tc_edb_chain,
        description="data exchange: fuse edges through invented values (weakly acyclic)",
        tgds=(parse_tgd("A(x, y) -> F(x, w) & F(w, y)"),),
    )


def de_chain_workload() -> Workload:
    """Data-exchange existential chain: nulls beget nulls, boundedly.

    Invented values cascade through three levels (``A -> H -> K -> L``)
    but never feed back, so the set is weakly acyclic with rank 3 --
    the deepest finite-rank shape in the suite.
    """
    return Workload(
        name="de-chain",
        program=programs.tc_nonlinear(),
        edb=_tc_edb_chain,
        description="data exchange: three-level existential chain (weakly acyclic, rank 3)",
        tgds=(
            parse_tgd("A(x, y) -> H(x, w)"),
            parse_tgd("H(x, y) -> K(y, v)"),
            parse_tgd("K(x, y) -> L(y, v)"),
        ),
    )


def tc_chain_workload() -> Workload:
    """Plain nonlinear transitive closure over a chain, no redundancy.

    The parallel-scaling workload: a chain of *n* edges closes to a
    quadratic IDB through ``O(n)`` semi-naive rounds with fat deltas,
    so per-round sharding has real work to split.  Restricted to the
    semi-naive engine -- the point is the worker sweep, not the engine
    matrix (``tc+2atoms/chain`` already covers that on this shape).
    """
    return Workload(
        name="tc/chain",
        program=programs.tc_nonlinear(),
        edb=_tc_edb_chain,
        description="plain nonlinear transitive closure over a chain",
        engines=("seminaive",),
    )


def magic_tc_workload() -> Workload:
    """Q6: single-source reachability query over linear TC."""
    return Workload(
        name="magic-tc",
        program=programs.tc_linear(),
        edb=_tc_edb_random,
        description="reachability from node 0, magic-sets friendly",
        query=parse_atom("G(0, x)"),
    )


def andersen_workload() -> Workload:
    """Domain workload: Andersen points-to over random pointer programs."""

    def edb(n: int, backend: str = "rows") -> Database:
        return programs.pointer_statements(
            statements=n, variables=max(4, n // 8), seed=23, backend=backend
        )

    return Workload(
        name="andersen",
        program=programs.andersen(),
        edb=edb,
        description="inclusion-based points-to analysis on random pointer code",
    )


def same_generation_workload() -> Workload:
    """Domain workload: same-generation over a random tree + person marks."""

    def edb(n: int, backend: str = "rows") -> Database:
        tree = graphs.random_tree(n, seed=11, predicate="Par", backend=backend)
        people = graphs.unary_marks(range(n), predicate="Per", backend=backend)
        return graphs.merged(tree, people)

    return Workload(
        name="same-generation",
        program=programs.same_generation(),
        edb=edb,
        description="same-generation over a random parent tree",
    )


def reach_workload() -> Workload:
    """The million-fact storage workload: single-source reachability.

    The IDB (reachable nodes) is tiny next to the EDB (random edges),
    so evaluation cost is storage cost: at a million edges the
    interned-int columnar backend fits comfortably under the 96 MB
    governed cap while the row backend's per-tuple Term overhead blows
    through it and degrades to ``PARTIAL``.  Restricted to the
    semi-naive engine -- the point is the storage comparison, not an
    engine matrix on a seven-figure EDB.
    """

    def edb(n: int, backend: str = "rows") -> Database:
        return graphs.single_source(n, seed=5, backend=backend)

    return Workload(
        name="reach/random",
        program=programs.reachability(),
        edb=edb,
        description="single-source reachability over a random million-edge EDB",
        engines=("seminaive",),
        memory_cap_bytes=96_000_000,
    )


#: The standard suite indexed by name (used by `repro.cli bench-list`).
SUITES: dict[str, Callable[[], Workload]] = {
    "tc/chain": tc_chain_workload,
    "tc+2atoms/chain": lambda: tc_redundant_atoms(2, "chain"),
    "tc+4atoms/chain": lambda: tc_redundant_atoms(4, "chain"),
    "tc+2atoms/random": lambda: tc_redundant_atoms(2, "random"),
    "tc+3rules/chain": lambda: tc_redundant_rules(3, "chain"),
    "tc+3rules/random": lambda: tc_redundant_rules(3, "random"),
    "guarded-tc+1": lambda: guarded_tc_workload(1),
    "guarded-tc+2": lambda: guarded_tc_workload(2),
    "de-copy": de_copy_workload,
    "de-fusion": de_fusion_workload,
    "de-chain": de_chain_workload,
    "magic-tc": magic_tc_workload,
    "same-generation": same_generation_workload,
    "andersen": andersen_workload,
    "reach/random": reach_workload,
}


def load(name: str) -> Workload:
    """Look up a named workload; raise ``KeyError`` with suggestions."""
    try:
        return SUITES[name]()
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
