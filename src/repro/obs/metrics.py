"""A process-wide metrics registry with a versioned JSON export.

Counters are monotone sums (``containment.tests``); observations are
value distributions summarized as count/total/min/max
(``evaluation.elapsed_s``).  Producers throughout the codebase feed the
shared registry:

* every :class:`~repro.engine.stats.EvaluationStats` publishes its
  totals when its run stops,
* the linter's :class:`~repro.core.minimize.ContainmentBudget` counts
  spent and skipped uniform-containment tests,
* the chase records rounds and nulls created.

The export schema is versioned (:data:`METRICS_SCHEMA`) so that
``BENCH_*.json`` trajectory files embedding a registry snapshot stay
machine-diffable across releases; :meth:`MetricsRegistry.from_export`
round-trips an export and refuses unknown versions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

#: Version marker embedded in every export.
METRICS_SCHEMA = "repro.metrics/1"


@dataclass
class ObservationSummary:
    """Running summary of an observed value series (no samples kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float | int | None]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObservationSummary":
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            minimum=data["min"],
            maximum=data["max"],
        )


class MetricsRegistry:
    """Named counters and observation summaries.

    Not thread-safe by design: the evaluator is single-threaded, and a
    lost increment in a hypothetical racy caller costs telemetry, not
    correctness.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._observations: dict[str, ObservationSummary] = {}

    # -- producers -------------------------------------------------------------
    def increment(self, name: str, value: int | float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        summary = self._observations.get(name)
        if summary is None:
            summary = self._observations[name] = ObservationSummary()
        summary.record(value)

    def record_evaluation(self, stats: Any, engine: str | None = None) -> None:
        """Publish one finished evaluation's counters.

        Called by :meth:`EvaluationStats.stop`; *stats* exposes the
        standard counter attributes.  With *engine* given, per-engine
        counters (``evaluation.<engine>.runs`` ...) are kept alongside
        the global ones.
        """
        prefixes = ["evaluation"]
        if engine:
            prefixes.append(f"evaluation.{engine}")
        for prefix in prefixes:
            self.increment(f"{prefix}.runs")
            self.increment(f"{prefix}.iterations", stats.iterations)
            self.increment(f"{prefix}.rule_firings", stats.rule_firings)
            self.increment(f"{prefix}.subgoal_attempts", stats.subgoal_attempts)
            self.increment(f"{prefix}.facts_derived", stats.facts_derived)
        avoided = getattr(stats, "duplicates_avoided", 0)
        if avoided:
            self.increment("delta.duplicate_derivations_avoided", avoided)
            if engine:
                self.increment(
                    f"delta.duplicate_derivations_avoided.{engine}", avoided
                )
        self.observe("evaluation.elapsed_s", stats.elapsed)

    def record_analysis(self, domain: str, iterations: int, widenings: int) -> None:
        """Publish one abstract-interpretation fixpoint run.

        Called by :func:`repro.analysis.absint.framework.analyze`;
        *domain* is the abstract domain's name (``sorts``,
        ``cardinality``, ...).  Per-domain counters sit alongside the
        ``analysis.*`` totals so registry snapshots show which lattices
        did the work.
        """
        self.increment("analysis.runs")
        self.increment(f"analysis.{domain}.runs")
        self.increment("analysis.fixpoint_iterations", iterations)
        self.increment(f"analysis.{domain}.fixpoint_iterations", iterations)
        if widenings:
            self.increment("analysis.widenings", widenings)
            self.increment(f"analysis.{domain}.widenings", widenings)

    # -- consumers -------------------------------------------------------------
    def counter(self, name: str) -> int | float:
        return self._counters.get(name, 0)

    def observation(self, name: str) -> ObservationSummary | None:
        return self._observations.get(name)

    def counters(self) -> dict[str, int | float]:
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()
        self._observations.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._observations)

    # -- export / import -------------------------------------------------------
    def export(self) -> dict[str, Any]:
        """A JSON-ready snapshot under the versioned schema."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(sorted(self._counters.items())),
            "observations": {
                name: summary.to_dict()
                for name, summary in sorted(self._observations.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    @classmethod
    def from_export(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`export` output (round-trip)."""
        schema = data.get("schema")
        if schema != METRICS_SCHEMA:
            raise ValueError(
                f"unsupported metrics schema {schema!r}; expected {METRICS_SCHEMA!r}"
            )
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry._counters[name] = value
        for name, summary in data.get("observations", {}).items():
            registry._observations[name] = ObservationSummary.from_dict(summary)
        return registry


_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry every producer feeds."""
    return _REGISTRY
