"""One-shot evaluation profiles: per-rule and per-span work breakdowns.

This is the library behind ``repro-datalog profile``.  A profile runs
one evaluation under tracing (:mod:`repro.obs.tracer`) and reduces the
span forest to

* the overall :class:`~repro.engine.stats.EvaluationStats` counters,
* the database access split (index probes vs full scans),
* a **per-rule breakdown** -- for bottom-up engines, how many subgoal
  attempts, firings and how much wall time each rule consumed, which is
  the paper's "number of joins" claim at rule granularity,
* the raw span tree (text or JSON) for drill-down.

:func:`profile_comparison` profiles a program and its Fig. 2
minimization side by side -- the quantitative form of Section I's
"removing redundant parts reduces the number of joins done during the
evaluation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..data.database import Database
from ..engine.fixpoint import engine_names, get_engine
from ..lang.atoms import Atom
from ..lang.programs import Program
from .tracer import Span, aggregate_spans, render_spans, tracing

#: Version marker of the profile JSON document.
PROFILE_SCHEMA = "repro.profile/1"

#: Engines the profiler can drive (from the shared registry; the
#: ``maintenance`` kind is driven through MaterializedView, not here).
#: Query engines need a query atom.
PROFILE_ENGINES = tuple(sorted(engine_names("fixpoint") + engine_names("query")))
_QUERY_ENGINES = engine_names("query")


@dataclass
class RuleProfile:
    """Aggregated work of one rule across all iterations."""

    index: int
    rule: str
    elapsed_s: float = 0.0
    activations: int = 0
    counters: dict[str, int | float] = field(default_factory=dict)

    @property
    def subgoal_attempts(self) -> int:
        return int(self.counters.get("subgoal_attempts", 0))

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "rule": self.rule,
            "elapsed_s": self.elapsed_s,
            "activations": self.activations,
            **{k: v for k, v in sorted(self.counters.items())},
        }


@dataclass
class ProfileReport:
    """The result of profiling one evaluation."""

    engine: str
    stats: dict[str, int | float]
    rules: list[RuleProfile]
    spans: list[Span]
    query: Optional[str] = None
    answers: Optional[int] = None
    #: For query engines: the evaluated (rewritten) program, whose rules
    #: the per-rule breakdown refers to; equals the input otherwise.
    evaluated_program: Optional[Program] = None

    @property
    def subgoal_attempts(self) -> int:
        return int(self.stats.get("subgoal_attempts", 0))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "engine": self.engine,
            "stats": dict(self.stats),
            "rules": [rule.to_dict() for rule in self.rules],
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.query is not None:
            out["query"] = self.query
            out["answers"] = self.answers
        return out


def profile_evaluation(
    program: Program,
    edb: Database,
    engine: str = "seminaive",
    query: Atom | None = None,
) -> ProfileReport:
    """Profile one evaluation of *program* on *edb*.

    Args:
        program: the program to run (not mutated).
        edb: the input database (not mutated).
        engine: one of :data:`PROFILE_ENGINES`.  ``magic`` and
            ``supplementary`` profile the *rewritten* program their
            transformation produces, so the per-rule breakdown names
            adorned/magic rules; ``topdown`` reports pass-level spans
            (tabling has no per-rule firing loop to attribute).
        query: goal atom; required by the query engines.
    """
    if engine not in PROFILE_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {PROFILE_ENGINES}"
        )
    if engine in _QUERY_ENGINES and query is None:
        raise ValueError(f"engine {engine!r} requires a query atom")

    evaluated = program
    answers: int | None = None
    with tracing() as spans:
        if get_engine(engine).kind == "fixpoint":
            from ..engine.fixpoint import evaluate

            result = evaluate(program, edb, engine=engine)
            stats = result.stats
        elif engine in ("magic", "supplementary"):
            from ..engine.fixpoint import evaluate

            if engine == "magic":
                from ..engine.magic import magic_transform as transform
            else:
                from ..engine.supplementary import (
                    supplementary_magic_transform as transform,
                )
            rewriting = transform(program, query)
            evaluated = rewriting.program
            seeded = edb.copy()
            seeded.add(rewriting.seed)
            result = evaluate(rewriting.program, seeded, engine="seminaive")
            stats = result.stats
            answers = len(rewriting.answers(result.database))
        else:  # topdown
            from ..engine.topdown import tabled_query

            tabled = tabled_query(program, edb, query)
            stats = tabled.stats
            answers = len(tabled.answers)

    rule_labels = [str(rule) for rule in evaluated.rules]
    per_rule = _collect_rule_profiles(spans, rule_labels)
    return ProfileReport(
        engine=engine,
        stats=stats.to_dict(),
        rules=per_rule,
        spans=spans,
        query=str(query) if query is not None else None,
        answers=answers,
        evaluated_program=evaluated,
    )


def _collect_rule_profiles(
    spans: list[Span], rule_labels: list[str]
) -> list[RuleProfile]:
    """Reduce ``*.rule`` spans to one :class:`RuleProfile` per rule index."""
    merged: dict[int, dict[str, int | float]] = {}
    for name in ("seminaive.rule", "naive.rule"):
        for index, bucket in aggregate_spans(spans, name, by="rule").items():
            target = merged.setdefault(int(index), {"count": 0, "elapsed_s": 0.0})
            for key, value in bucket.items():
                target[key] = target.get(key, 0) + value
    profiles = []
    for index in sorted(merged):
        bucket = merged[index]
        label = rule_labels[index] if 0 <= index < len(rule_labels) else f"rule #{index}"
        profiles.append(
            RuleProfile(
                index=index,
                rule=label,
                elapsed_s=float(bucket.pop("elapsed_s")),
                activations=int(bucket.pop("count")),
                counters=bucket,
            )
        )
    return profiles


def render_profile(report: ProfileReport, max_depth: int = 2) -> str:
    """Human-readable profile: totals, per-rule table, span tree."""
    lines = [f"engine: {report.engine}"]
    if report.query is not None:
        lines.append(f"query: {report.query} ({report.answers} answer(s))")
    stats = report.stats
    lines.append(
        "totals: "
        f"iterations={stats.get('iterations', 0)} "
        f"firings={stats.get('rule_firings', 0)} "
        f"subgoals={stats.get('subgoal_attempts', 0)} "
        f"derived={stats.get('facts_derived', 0)} "
        f"elapsed={stats.get('elapsed_s', 0.0) * 1000:.2f}ms"
    )
    if report.rules:
        lines.append("")
        lines.append("per-rule breakdown (by subgoal attempts):")
        header = f"  {'subgoals':>9} {'firings':>8} {'elapsed':>9}  rule"
        lines.append(header)
        for rule in sorted(
            report.rules, key=lambda r: r.subgoal_attempts, reverse=True
        ):
            lines.append(
                f"  {rule.subgoal_attempts:>9} "
                f"{int(rule.counters.get('rule_firings', 0)):>8} "
                f"{rule.elapsed_s * 1000:>7.2f}ms  {rule.rule}"
            )
    lines.append("")
    lines.append(f"span tree (depth <= {max_depth}):")
    lines.append(render_spans(report.spans, max_depth=max_depth))
    return "\n".join(lines)


@dataclass
class ProfileComparison:
    """Side-by-side profiles of a program and its minimization."""

    original: ProfileReport
    minimized: ProfileReport
    atom_removals: int
    rule_removals: int

    @property
    def subgoal_reduction(self) -> int:
        return self.original.subgoal_attempts - self.minimized.subgoal_attempts

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "comparison": {
                "atom_removals": self.atom_removals,
                "rule_removals": self.rule_removals,
                "subgoal_reduction": self.subgoal_reduction,
            },
            "original": self.original.to_dict(),
            "minimized": self.minimized.to_dict(),
        }


def profile_comparison(
    program: Program,
    edb: Database,
    engine: str = "seminaive",
    query: Atom | None = None,
) -> ProfileComparison:
    """Profile *program* and its Fig. 2 minimization on the same input."""
    from ..core.minimize import minimize_program

    minimization = minimize_program(program)
    original = profile_evaluation(program, edb, engine=engine, query=query)
    minimized = profile_evaluation(
        minimization.program, edb, engine=engine, query=query
    )
    return ProfileComparison(
        original=original,
        minimized=minimized,
        atom_removals=len(minimization.atom_removals),
        rule_removals=len(minimization.rule_removals),
    )


def render_comparison(comparison: ProfileComparison) -> str:
    """The fewer-joins claim with numbers: original vs minimized."""
    a, b = comparison.original, comparison.minimized
    lines = [
        f"minimization removed {comparison.atom_removals} atom(s) "
        f"and {comparison.rule_removals} rule(s)",
        "",
        f"{'':>12} {'original':>12} {'minimized':>12}",
    ]
    for key in ("iterations", "rule_firings", "subgoal_attempts", "facts_derived"):
        lines.append(
            f"{key:>20} {int(a.stats.get(key, 0)):>12} {int(b.stats.get(key, 0)):>12}"
        )
    lines.append(
        f"{'elapsed_ms':>20} {a.stats.get('elapsed_s', 0.0) * 1000:>12.2f} "
        f"{b.stats.get('elapsed_s', 0.0) * 1000:>12.2f}"
    )
    delta = b.subgoal_attempts - a.subgoal_attempts
    total = a.subgoal_attempts or 1
    lines.append("")
    lines.append(
        f"subgoal attempts: {a.subgoal_attempts} -> {b.subgoal_attempts} "
        f"({delta:+d}, {100.0 * delta / total:+.1f}%)"
    )
    return "\n".join(lines)
