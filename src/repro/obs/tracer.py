"""Structured tracing: nested spans with wall time and attached counters.

The paper's argument for minimization is quantitative -- removing
redundant parts "reduces the number of joins done during the
evaluation" (Section I).  This tracer makes that claim observable
end-to-end: the engines, the containment test, the chase, and the
minimizer all open *spans* around their phases, and each span carries

* a name (dotted, e.g. ``seminaive.iteration``),
* wall-clock ``elapsed`` seconds,
* free-form ``attributes`` (rule index, engine name, ...),
* ``counters`` -- integer work measures, either added explicitly with
  :meth:`Span.add` or harvested as deltas of an
  :class:`~repro.engine.stats.EvaluationStats` via :meth:`Span.watch`.

Design constraints, in order:

1. **~Zero overhead when disabled.**  Instrumentation sites call
   :func:`trace`, which returns the shared :data:`NULL_SPAN` singleton
   when tracing is off; entering/exiting it and calling its methods are
   no-ops.  ``NULL_SPAN`` is falsy, so sites guard any label
   computation with ``if span: span.set(...)``.
2. **No global mutation leaks.**  :func:`tracing` enables collection
   for a dynamic extent and restores the previous tracer state on
   exit, so nested/pre-existing traces are unaffected.
3. **Plain data out.**  Finished spans convert to dicts
   (:meth:`Span.to_dict`), render as a text tree
   (:func:`render_spans`), and aggregate by attribute
   (:func:`aggregate_spans`) -- the profiler builds its per-rule
   breakdown from the last of these.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

#: EvaluationStats fields harvested by :meth:`Span.watch` (elapsed is
#: the span's own measurement and deliberately not among them).
WATCHED_FIELDS = ("iterations", "rule_firings", "subgoal_attempts", "facts_derived")


class Span:
    """One traced region; collects time, attributes, counters, children."""

    __slots__ = (
        "name",
        "attributes",
        "counters",
        "children",
        "started_at",
        "elapsed",
        "_watched",
        "_tracer",
    )

    def __init__(self, name: str, attributes: dict[str, Any], tracer: "Tracer"):
        self.name = name
        self.attributes = attributes
        self.counters: dict[str, int | float] = {}
        self.children: list[Span] = []
        self.started_at = 0.0
        self.elapsed = 0.0
        self._watched: tuple[Any, dict[str, int]] | None = None
        self._tracer = tracer

    def __bool__(self) -> bool:
        return True

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (labels, indexes); returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def add(self, counter: str, value: int | float = 1) -> None:
        """Accumulate a named work counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def watch(self, stats: Any) -> "Span":
        """Snapshot *stats* now; attach the per-field deltas at span exit.

        *stats* is anything exposing the :data:`WATCHED_FIELDS` integer
        attributes (an :class:`~repro.engine.stats.EvaluationStats`).
        """
        self._watched = (
            stats,
            {f: getattr(stats, f) for f in WATCHED_FIELDS if hasattr(stats, f)},
        )
        return self

    def __enter__(self) -> "Span":
        self.started_at = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        self.elapsed = time.perf_counter() - self.started_at
        watched = self._watched
        if watched is not None:
            stats, before = watched
            for field_name, old in before.items():
                delta = getattr(stats, field_name) - old
                if delta:
                    self.add(field_name, delta)
            self._watched = None
        self._tracer._pop(self)
        return False

    # -- data access -----------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, counter: str) -> int | float:
        """Sum of *counter* over this span and all descendants."""
        return sum(span.counters.get(counter, 0) for span in self.walk())

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "elapsed_s": self.elapsed}
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} {self.elapsed * 1000:.2f}ms "
            f"attrs={self.attributes} counters={self.counters} "
            f"children={len(self.children)}>"
        )


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def add(self, counter: str, value: int | float = 1) -> None:
        return None

    def watch(self, stats: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: The singleton no-op span.  ``trace(...) is NULL_SPAN`` iff disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans while enabled.

    Instrumentation goes through the module-level :func:`trace`, which
    consults the process-wide tracer; tests may instantiate their own.
    """

    __slots__ = ("enabled", "roots", "_stack")

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any):
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attributes, self)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (a caller kept a span open across
        # an exception) instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)

    def reset(self) -> None:
        self.roots = []
        self._stack = []


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def trace(name: str, **attributes: Any):
    """Open a span on the process-wide tracer (``NULL_SPAN`` if disabled).

    Usage at an instrumentation site::

        with trace("seminaive.iteration") as span:
            span.watch(stats)          # no-op when disabled
            ...                        # the traced work
    """
    t = _TRACER
    if not t.enabled:
        return NULL_SPAN
    return Span(name, attributes, t)


@contextmanager
def tracing() -> Iterator[list[Span]]:
    """Enable span collection for a dynamic extent.

    Yields the list that receives the root spans; the previous tracer
    state (including any outer collection) is restored on exit::

        with tracing() as spans:
            evaluate(program, edb)
        print(render_spans(spans))
    """
    t = _TRACER
    previous = (t.enabled, t.roots, t._stack)
    t.enabled, t.roots, t._stack = True, [], []
    collected = t.roots
    try:
        yield collected
    finally:
        t.enabled, t.roots, t._stack = previous


def render_spans(
    spans: list[Span],
    max_depth: int | None = None,
    min_elapsed: float = 0.0,
) -> str:
    """Render a span forest as an indented text tree.

    Args:
        spans: root spans (e.g. the list yielded by :func:`tracing`).
        max_depth: prune the tree below this depth (``None`` = full).
        min_elapsed: skip spans faster than this many seconds (their
            counters are still reflected in the parents' totals).
    """
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        if span.elapsed < min_elapsed and depth > 0:
            return
        label = span.name
        attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
        counters = " ".join(f"{k}={v}" for k, v in sorted(span.counters.items()))
        parts = [f"{'  ' * depth}{label}", f"{span.elapsed * 1000:.2f}ms"]
        if attrs:
            parts.append(f"[{attrs}]")
        if counters:
            parts.append(counters)
        lines.append(" ".join(parts))
        for child in span.children:
            emit(child, depth + 1)

    for root in spans:
        emit(root, 0)
    return "\n".join(lines)


def aggregate_spans(
    spans: list[Span],
    name: str,
    by: str,
) -> dict[Any, dict[str, int | float]]:
    """Group spans named *name* by attribute *by*; sum counters + elapsed.

    Returns ``{attribute value: {"count": n, "elapsed_s": t, **summed
    counters}}``.  The profiler uses this with ``name="*.rule"``-style
    spans and ``by="rule"`` to produce per-rule work breakdowns.
    """
    out: dict[Any, dict[str, int | float]] = {}
    for root in spans:
        for span in root.walk():
            if span.name != name or by not in span.attributes:
                continue
            key = span.attributes[by]
            bucket = out.setdefault(key, {"count": 0, "elapsed_s": 0.0})
            bucket["count"] += 1
            bucket["elapsed_s"] += span.elapsed
            for counter, value in span.counters.items():
                bucket[counter] = bucket.get(counter, 0) + value
    return out
