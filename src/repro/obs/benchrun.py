"""The workload-suite bench runner behind ``repro-datalog bench``.

One bench run measures every named workload of
:mod:`repro.workloads.suites` under every applicable engine and emits a
``BENCH_<date>.json`` document (validated against
:mod:`repro.obs.schema` before writing).  Successive documents are the
repository's performance trajectory: any two can be diffed with
:func:`diff_bench_documents` (CLI: ``bench --compare``).

Engine applicability per workload:

* ``naive`` / ``seminaive`` -- always (plain bottom-up evaluation);
* ``magic`` / ``supplementary`` / ``topdown`` -- workloads that declare
  a query atom;
* ``incremental`` -- always: a maintenance scenario builds the
  materialized view on most of the EDB, inserts the held-out facts,
  then deletes them again (insert + DRed delete round-trip);
* ``chase`` -- workloads that carry tgds: runs ``[P, T]`` saturation
  under a termination-certificate-widened budget and reports chase
  counters (rounds, nulls, saturation).

``--quick`` shrinks the suite/size matrix to seconds for CI smoke use
while still covering all seven engines.
"""

from __future__ import annotations

import datetime as _datetime
import time
from typing import Any, Callable, Iterable, Optional

from ..data.database import Database
from ..engine.fixpoint import get_engine
from ..engine.incremental import MaterializedView
from ..workloads.suites import SUITES, Workload
from .metrics import metrics_registry
from .schema import ALL_ENGINES, BENCH_SCHEMA, validate_bench_document

#: The --quick matrix: small sizes, a suite subset that still exercises
#: all seven engines (magic-tc carries the query for the query engines,
#: de-fusion carries the tgds for the chase pseudo-engine).
QUICK_SUITES = ("tc+2atoms/chain", "magic-tc", "same-generation", "de-fusion")
QUICK_SIZES = (12,)

#: The full matrix (every named suite).
FULL_SIZES = (16, 32)

#: Hold out this many EDB facts for the incremental scenario.
_INCREMENTAL_HOLDOUT = 4

#: Relative growth in ``elapsed_s`` or ``rule_firings`` past which
#: :func:`regressions` flags a shared entry (the ``bench --compare``
#: CI gate exits non-zero on any flagged entry).
REGRESSION_THRESHOLD = 0.20


def _entry(
    workload: Workload,
    size: int,
    engine: str,
    stats: dict[str, float | int],
    backend: str = "rows",
    workers: int = 1,
    advised: bool = False,
) -> dict[str, Any]:
    entry = {
        "workload": workload.name,
        "size": size,
        "engine": engine,
        "backend": backend,
        "stats": stats,
    }
    if workers != 1:
        entry["workers"] = workers
    if advised:
        entry["advised"] = True
    return entry


def _run_advised(
    workload: Workload, edb: Database
) -> Optional[tuple[str, dict[str, float | int]]]:
    """One cell running the specialization advisor's recommended plan.

    The advisor runs *outside* the measured wall clock (its cost is the
    prepare-once step a certificate amortizes; it is reported separately
    as ``stats.advise_s``), then the recommended rewrite/engine answers
    the workload's query.  Returns the executed engine name plus the
    stats, or ``None`` when the recommendation's executed engine has no
    name in the bench schema's engine set.
    """
    from ..analysis.specialize import advise_form, execute_plan
    from ..analysis.specialize.rewrite import QueryForm
    from ..engine.magic import Adornment

    query = workload.query
    form = QueryForm(
        query.predicate, Adornment.for_atom(query, frozenset()), query
    )
    advise_started = time.perf_counter()
    plan = advise_form(workload.program, form)
    advise_elapsed = time.perf_counter() - advise_started
    rec = plan.recommendation
    executed = rec.method if rec.rewrite == "magic" else rec.engine
    if executed not in ALL_ENGINES:
        return None
    started = time.perf_counter()
    answers, result = execute_plan(workload.program, edb, query, plan)
    elapsed = time.perf_counter() - started
    stats = result.stats.to_dict()
    stats["elapsed_s"] = elapsed
    stats["advise_s"] = advise_elapsed
    stats["answers"] = len(answers)
    return executed, stats


def _run_incremental(workload: Workload, edb: Database) -> dict[str, float | int]:
    """Insert + delete maintenance round-trip; returns flat counters."""
    atoms = sorted(edb.atoms(), key=lambda a: a.sort_key())
    holdout = atoms[-_INCREMENTAL_HOLDOUT:] if len(atoms) > _INCREMENTAL_HOLDOUT else atoms[-1:]
    base = edb.empty_like()
    excluded = set(holdout)
    base.add_all(a for a in atoms if a not in excluded)
    started = time.perf_counter()
    view = MaterializedView(workload.program, base)
    built = time.perf_counter()
    insert_stats = view.insert_all(holdout)
    delete_stats = view.delete_all(holdout)
    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": elapsed,
        "build_s": built - started,
        "maintained_facts": len(view),
        "inserted": insert_stats.inserted,
        "deleted": delete_stats.deleted,
        "overdeleted": delete_stats.overdeleted,
        "rederived": delete_stats.rederived,
    }


def _run_chase(workload: Workload, edb: Database) -> dict[str, float | int]:
    """Chase the EDB with the workload's tgds; returns flat counters.

    The budget is widened through the workload's termination
    certificate, so certified sets (de-copy, de-fusion, de-chain, the
    guarded-tc family) bench genuine saturation rather than a budget
    artifact.  All values are numeric per the bench schema (booleans
    are reported as 0/1).
    """
    from ..core.chase import DEFAULT_BUDGET, chase, termination_certificate

    tgds = list(workload.tgds)
    certificate = termination_certificate(tgds, workload.program)
    started = time.perf_counter()
    outcome = chase(
        edb, workload.program, tgds, budget=DEFAULT_BUDGET, certificate=certificate
    )
    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": elapsed,
        "rounds": outcome.rounds,
        "nulls_created": outcome.nulls_created,
        "atoms": len(outcome.database),
        "saturated": int(outcome.saturated),
        "certified_terminating": int(
            certificate is not None and certificate.guarantees_termination
        ),
    }


def _checkpoint_path(
    checkpoint_dir: str, workload: Workload, size: int, engine: str, backend: str
) -> str:
    """One checkpoint file per bench cell (workload names may hold '/')."""
    import os

    slug = workload.name.replace("/", "_")
    return os.path.join(checkpoint_dir, f"{slug}-{size}-{engine}-{backend}.ckpt.json")


def run_workload(
    workload: Workload,
    size: int,
    engines: Iterable[str],
    backend: str = "rows",
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    workers: int = 1,
    advised: bool = False,
) -> list[dict[str, Any]]:
    """Measure one workload at one size under the applicable *engines*.

    Dispatch is driven by the engine registry
    (:func:`repro.engine.fixpoint.get_engine`), so every registered
    engine benches through the same seam the CLI and ``evaluate`` use
    -- an unknown name fails with the registry's truthful error.

    The EDB is generated directly on *backend*.  A workload that
    declares ``engines`` restricts the matrix to those; one that
    declares ``memory_cap_bytes`` runs its fixpoint engines under a
    memory-governed :class:`~repro.resilience.ResourceGovernor`, and a
    tripped cap is reported honestly as ``stats.partial = 1`` (the
    committed facts are a sound under-approximation).

    With *checkpoint_dir*, every fixpoint cell writes durable round
    checkpoints (one file per workload/size/engine/backend) through a
    :class:`~repro.resilience.CheckpointManager`; an interrupted bench
    can then be continued cell by cell with the ``resume`` verb, and
    ``stats.checkpoints`` records how many snapshots each cell wrote
    (checkpoint I/O is inside the measured wall clock, deliberately --
    the figure is the honest cost of running durably).

    With *workers* > 1, fixpoint cells evaluate on a worker pool of
    that size and the entries carry a ``workers`` field (keying the
    sweep in the v3 schema); the non-fixpoint engines have no parallel
    variant and are skipped, so a sweep never duplicates their
    single-process numbers under several worker counts.

    With *advised*, each query-carrying workload gets one extra cell
    executing the specialization advisor's recommended plan for the
    workload's query (entry field ``advised: true``, engine field set
    to the engine the advisor actually executed); advised cells bench
    only at ``workers == 1``.
    """
    from ..resilience.governor import EvaluationStatus, ResourceGovernor

    entries: list[dict[str, Any]] = []
    edb = workload.edb(size, backend=backend)
    for engine in engines:
        if workload.engines is not None and engine not in workload.engines:
            continue
        if engine == "chase":
            if workers != 1:
                continue
            # Pseudo-engine outside the fixpoint registry: benches
            # [P, T] saturation on tgd-carrying workloads only.
            if workload.tgds:
                entries.append(
                    _entry(workload, size, engine, _run_chase(workload, edb), backend)
                )
            continue
        spec = get_engine(engine)
        if workers != 1 and spec.kind != "fixpoint":
            continue
        if spec.kind == "fixpoint":
            governor = (
                ResourceGovernor(max_memory_bytes=workload.memory_cap_bytes)
                if workload.memory_cap_bytes is not None
                else None
            )
            manager = None
            if checkpoint_dir is not None:
                from ..resilience.checkpoint import CheckpointManager

                manager = CheckpointManager(
                    _checkpoint_path(checkpoint_dir, workload, size, engine, backend),
                    program=workload.program,
                    engine=engine,
                    every=checkpoint_every,
                )
                if governor is None:
                    governor = ResourceGovernor()
                governor.on_round = manager.on_round
            started = time.perf_counter()
            if workers > 1:
                from ..engine.parallel import parallel_evaluate

                result = parallel_evaluate(
                    workload.program, edb, engine=engine,
                    governor=governor, workers=workers,
                )
            else:
                result = spec.run(workload.program, edb, governor=governor)
            elapsed = time.perf_counter() - started
            stats = result.stats.to_dict()
            if governor is not None:
                # A governed run's own elapsed_s stops at the trip; the
                # wall clock of the whole attempt is the honest figure.
                stats["elapsed_s"] = elapsed
            if manager is not None:
                stats["checkpoints"] = manager.writes
            if result.status is EvaluationStatus.PARTIAL:
                stats["partial"] = 1
            entries.append(_entry(workload, size, engine, stats, backend, workers))
        elif spec.kind == "query":
            if workload.query is None:
                continue
            answers, result = spec.answer(workload.program, edb, workload.query)
            stats = result.stats.to_dict()
            stats["answers"] = len(answers)
            entries.append(_entry(workload, size, engine, stats, backend))
        elif spec.kind == "maintenance":
            entries.append(
                _entry(workload, size, engine, _run_incremental(workload, edb), backend)
            )
        else:  # pragma: no cover - registry kinds are closed
            raise ValueError(f"engine {engine!r} has unknown kind {spec.kind!r}")
    if advised and workload.query is not None and workers == 1:
        outcome = _run_advised(workload, edb)
        if outcome is not None:
            executed, stats = outcome
            entries.append(
                _entry(workload, size, executed, stats, backend, advised=True)
            )
    return entries


def run_bench(
    suites: Optional[Iterable[str]] = None,
    sizes: Optional[Iterable[int]] = None,
    quick: bool = False,
    date: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    backends: Iterable[str] = ("rows",),
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    workers: Iterable[int] = (1,),
    advised: bool = False,
) -> dict[str, Any]:
    """Run the bench matrix; return a schema-valid bench document.

    Args:
        suites: workload names (default: the full registry, or
            :data:`QUICK_SUITES` under *quick*).
        sizes: EDB sizes (default :data:`FULL_SIZES` / :data:`QUICK_SIZES`).
        quick: use the small CI matrix.
        date: ISO date stamped into the document (default: today).
        progress: optional callback receiving one line per measurement.
        backends: storage backends to measure (each (workload, size,
            engine) cell is repeated per backend and keyed by it).
        checkpoint_dir: when set, fixpoint cells write durable round
            checkpoints into this directory (see :func:`run_workload`).
        checkpoint_every: checkpoint cadence in rounds.
        workers: worker-process counts to sweep; fixpoint cells are
            repeated per count (entries carry a ``workers`` field for
            counts other than 1) while the engines without a parallel
            variant bench only at 1.
        advised: add one advisor-picked cell per query-carrying
            workload (entries carry ``advised: true``; the v4 schema
            keys them apart from the fixed-engine matrix).
    """
    suite_names = list(suites) if suites else list(QUICK_SUITES if quick else sorted(SUITES))
    size_list = [int(s) for s in (sizes if sizes else (QUICK_SIZES if quick else FULL_SIZES))]
    backend_list = list(backends)
    worker_list = [int(w) for w in workers] or [1]
    unknown = [name for name in suite_names if name not in SUITES]
    if unknown:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown workload(s) {unknown}; known: {known}")

    entries: list[dict[str, Any]] = []
    for name in suite_names:
        workload = SUITES[name]()
        for size in size_list:
            for backend in backend_list:
                for worker_count in worker_list:
                    if progress:
                        label = f"bench {name} size={size} backend={backend}"
                        if worker_count != 1:
                            label += f" workers={worker_count}"
                        progress(label)
                    entries.extend(
                        run_workload(
                            workload,
                            size,
                            ALL_ENGINES,
                            backend,
                            checkpoint_dir=checkpoint_dir,
                            checkpoint_every=checkpoint_every,
                            workers=worker_count,
                            advised=advised,
                        )
                    )

    document = {
        "schema": BENCH_SCHEMA,
        "generated": date or _datetime.date.today().isoformat(),
        "quick": quick,
        "engines": sorted({e["engine"] for e in entries}),
        "entries": entries,
        "metrics": metrics_registry().export(),
    }
    errors = validate_bench_document(document)
    if errors:  # pragma: no cover - the runner must emit valid documents
        raise ValueError("bench runner produced an invalid document:\n" + "\n".join(errors))
    return document


def diff_bench_documents(
    old: dict[str, Any], new: dict[str, Any]
) -> list[dict[str, Any]]:
    """Compare two documents on shared (workload, size, engine, backend,
    workers, advised) keys.

    Returns one record per shared key with the old/new elapsed seconds
    and subgoal attempts, plus the relative time change.  Keys present
    in only one document are reported with ``status`` ``"added"`` /
    ``"removed"``.  Schema-v1 entries carry no backend and default to
    ``"rows"``; pre-v3 entries carry no workers and default to 1;
    pre-v4 entries carry no advised flag and default to false, so old
    trajectory files diff cleanly against new ones.
    """

    def keyed(doc: dict[str, Any]) -> dict[tuple, dict[str, Any]]:
        return {
            (
                e["workload"],
                e["size"],
                e["engine"],
                e.get("backend", "rows"),
                e.get("workers", 1),
                e.get("advised", False),
            ): e
            for e in doc.get("entries", [])
        }

    old_entries, new_entries = keyed(old), keyed(new)
    records: list[dict[str, Any]] = []
    for key in sorted(set(old_entries) | set(new_entries), key=str):
        workload, size, engine, backend, worker_count, advised = key
        record: dict[str, Any] = {
            "workload": workload,
            "size": size,
            "engine": engine,
            "backend": backend,
            "workers": worker_count,
            "advised": advised,
        }
        if key not in old_entries:
            record["status"] = "added"
        elif key not in new_entries:
            record["status"] = "removed"
        else:
            record["status"] = "shared"
            o, n = old_entries[key]["stats"], new_entries[key]["stats"]
            record["elapsed_s_old"] = o.get("elapsed_s")
            record["elapsed_s_new"] = n.get("elapsed_s")
            if record["elapsed_s_old"]:
                record["elapsed_change"] = (
                    record["elapsed_s_new"] - record["elapsed_s_old"]
                ) / record["elapsed_s_old"]
            for counter in ("subgoal_attempts", "rule_firings"):
                if counter in o or counter in n:
                    record[f"{counter}_old"] = o.get(counter)
                    record[f"{counter}_new"] = n.get(counter)
        records.append(record)
    return records


def regressions(
    records: list[dict[str, Any]], threshold: float = REGRESSION_THRESHOLD
) -> list[str]:
    """Human-readable lines for shared entries that regressed.

    A shared entry regresses when ``elapsed_s`` or ``rule_firings``
    grew by more than *threshold* relative to the old document.
    Entries only present on one side never regress (they are visible in
    the rendered diff as added/removed).
    """
    flagged: list[str] = []
    for record in records:
        if record.get("status") != "shared":
            continue
        for metric in ("rule_firings", "elapsed_s"):
            old = record.get(f"{metric}_old")
            new = record.get(f"{metric}_new")
            if not old or new is None:
                continue
            change = (new - old) / old
            if change > threshold:
                workers_tag = (
                    f" workers={record['workers']}"
                    if record.get("workers", 1) != 1
                    else ""
                )
                advised_tag = " advised" if record.get("advised") else ""
                flagged.append(
                    f"{record['workload']} size={record['size']} "
                    f"{record['engine']}[{record.get('backend', 'rows')}]"
                    f"{workers_tag}{advised_tag}: "
                    f"{metric} {old} -> {new} "
                    f"({change * 100:+.1f}%)"
                )
    return flagged


def render_diff(records: list[dict[str, Any]]) -> str:
    """Text rendering of :func:`diff_bench_documents` output.

    Advisor-picked cells (``advised: true``) render their engine with a
    trailing ``*`` so they read apart from the fixed-engine matrix.
    """
    lines = [
        f"{'workload':<24} {'size':>8} {'engine':<14} {'backend':<9} {'wrk':>3} "
        f"{'elapsed old':>12} {'elapsed new':>12} {'change':>8}"
    ]
    for record in records:
        backend = record.get("backend", "rows")
        worker_count = record.get("workers", 1)
        engine = record["engine"] + ("*" if record.get("advised") else "")
        if record["status"] != "shared":
            lines.append(
                f"{record['workload']:<24} {record['size']:>8} "
                f"{engine:<14} {backend:<9} {worker_count:>3} "
                f"[{record['status']}]"
            )
            continue
        change = record.get("elapsed_change")
        change_text = f"{change * 100:+.1f}%" if change is not None else "n/a"
        lines.append(
            f"{record['workload']:<24} {record['size']:>8} {engine:<14} "
            f"{backend:<9} {worker_count:>3} "
            f"{record['elapsed_s_old'] * 1000:>10.2f}ms "
            f"{record['elapsed_s_new'] * 1000:>10.2f}ms {change_text:>8}"
        )
    return "\n".join(lines)
