"""The versioned schema of ``BENCH_*.json`` trajectory files.

``repro-datalog bench`` emits one document per run; successive files
(``BENCH_2026-08-05.json``, ``BENCH_2026-09-01.json``, ...) form the
repository's performance trajectory and must stay mutually diffable.
This module is the single source of truth for the document shape, and
:func:`validate_bench_document` is run by the bench command before
writing, by the CI smoke job on the emitted file, and by ``bench
--validate`` on any historical file -- so the format cannot silently
drift.

Document shape (version :data:`BENCH_SCHEMA`)::

    {
      "schema": "repro.bench/3",
      "generated": "2026-08-05",            # ISO date of the run
      "quick": false,                        # --quick subset?
      "engines": ["incremental", ...],       # distinct engines, sorted
      "entries": [
        {
          "workload": "tc+2atoms/chain",     # repro.workloads suite name
          "size": 32,                        # EDB generator parameter
          "engine": "seminaive",
          "backend": "columnar",             # storage backend (v2; optional)
          "workers": 4,                      # worker processes (v3; optional)
          "advised": true,                   # advisor-picked engine (v4; optional)
          "stats": {"elapsed_s": 0.0123, ...}   # numeric work counters
        }, ...
      ],
      "metrics": { "schema": "repro.metrics/1", ... }   # registry snapshot
    }

``stats`` keys vary by engine (bottom-up engines report the
EvaluationStats counters; ``incremental`` reports maintenance
counters); ``elapsed_s`` is mandatory everywhere so that any two files
can be compared time-wise on their shared (workload, size, engine,
backend, workers) keys.  A governed run that tripped its resource cap
reports ``stats.partial = 1`` (sound under-approximation; see the
resource governor).

Version history: ``repro.bench/1`` had no ``backend`` field;
``repro.bench/2`` added it; ``repro.bench/3`` added the optional
``workers`` field (worker-process count of a ``--workers`` sweep,
defaulting to 1) and keys entries by it; ``repro.bench/4`` added the
optional boolean ``advised`` field (``bench --advised``: the engine was
chosen by the specialization advisor rather than fixed by the matrix,
defaulting to false) and keys entries by it.  Older documents remain
valid (:func:`validate_bench_document` accepts all four) and diff
against v4 documents with backend defaulted to ``"rows"``, workers to
1, and advised to false.
"""

from __future__ import annotations

import re
from typing import Any

from .metrics import METRICS_SCHEMA

#: Version marker of the bench document format (what the runner emits).
BENCH_SCHEMA = "repro.bench/4"

#: Versions :func:`validate_bench_document` accepts (older documents in
#: the trajectory stay valid and diffable).
ACCEPTED_SCHEMAS = (
    "repro.bench/1",
    "repro.bench/2",
    "repro.bench/3",
    "repro.bench/4",
)

#: Storage backends a v2 entry may name.
KNOWN_BACKENDS = ("rows", "columnar")

#: The engines a full (non-filtered) bench run must cover.  ``chase``
#: is a pseudo-engine: it benches ``[P, T]`` saturation on workloads
#: that carry tgds (skipped for tgd-free workloads, like the query
#: engines are for query-free ones).
ALL_ENGINES = (
    "naive",
    "seminaive",
    "magic",
    "supplementary",
    "topdown",
    "incremental",
    "chase",
)

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


def validate_bench_document(doc: Any) -> list[str]:
    """Check *doc* against the bench schema; return the list of errors.

    An empty list means the document is valid.  Errors are path-prefixed
    human-readable strings, suitable for printing one per line.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document: expected a JSON object"]
    schema = doc.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        errors.append(f"schema: expected one of {ACCEPTED_SCHEMAS}, got {schema!r}")
    generated = doc.get("generated")
    if not isinstance(generated, str) or not _DATE_RE.match(generated):
        errors.append(f"generated: expected an ISO date string, got {generated!r}")
    if not isinstance(doc.get("quick"), bool):
        errors.append("quick: expected a boolean")

    entries = doc.get("entries")
    seen_engines: set[str] = set()
    seen_keys: set[tuple] = set()
    if not isinstance(entries, list) or not entries:
        errors.append("entries: expected a non-empty array")
    else:
        for i, entry in enumerate(entries):
            at = f"entries[{i}]"
            if not isinstance(entry, dict):
                errors.append(f"{at}: expected an object")
                continue
            workload = entry.get("workload")
            if not isinstance(workload, str) or not workload:
                errors.append(f"{at}.workload: expected a non-empty string")
            size = entry.get("size")
            if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
                errors.append(f"{at}.size: expected a positive integer")
            engine = entry.get("engine")
            if engine not in ALL_ENGINES:
                errors.append(
                    f"{at}.engine: {engine!r} is not one of {sorted(ALL_ENGINES)}"
                )
            else:
                seen_engines.add(engine)
            backend = entry.get("backend", "rows")
            if backend not in KNOWN_BACKENDS:
                errors.append(
                    f"{at}.backend: {backend!r} is not one of {sorted(KNOWN_BACKENDS)}"
                )
            workers = entry.get("workers", 1)
            if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
                errors.append(f"{at}.workers: expected a positive integer, got {workers!r}")
            advised = entry.get("advised", False)
            if not isinstance(advised, bool):
                errors.append(f"{at}.advised: expected a boolean, got {advised!r}")
            key = (workload, size, engine, backend, workers, advised)
            if key in seen_keys:
                errors.append(
                    f"{at}: duplicate (workload, size, engine, backend, "
                    f"workers, advised) key {key}"
                )
            seen_keys.add(key)
            stats = entry.get("stats")
            if not isinstance(stats, dict):
                errors.append(f"{at}.stats: expected an object")
                continue
            if "elapsed_s" not in stats:
                errors.append(f"{at}.stats: missing mandatory 'elapsed_s'")
            for name, value in stats.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(f"{at}.stats.{name}: expected a number, got {value!r}")

    engines = doc.get("engines")
    if not isinstance(engines, list) or any(not isinstance(e, str) for e in engines):
        errors.append("engines: expected an array of strings")
    elif entries and isinstance(entries, list) and seen_engines:
        if engines != sorted(seen_engines):
            errors.append(
                f"engines: must equal the sorted distinct entry engines "
                f"{sorted(seen_engines)}, got {engines}"
            )

    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            errors.append("metrics: expected an object")
        elif metrics.get("schema") != METRICS_SCHEMA:
            errors.append(
                f"metrics.schema: expected {METRICS_SCHEMA!r}, "
                f"got {metrics.get('schema')!r}"
            )
    return errors
