"""Observability: span tracing, process metrics, profiling, benchmarking.

This package is the measurement substrate the ROADMAP's performance
trajectory reports against.  Four pieces:

* :mod:`repro.obs.tracer` -- nested spans with wall time and work
  counters, wired into all engines and the paper's decision procedures;
  ~zero overhead while disabled.
* :mod:`repro.obs.metrics` -- a process-wide registry of counters and
  observation summaries with a versioned JSON export.
* :mod:`repro.obs.profiler` -- one-shot per-rule/per-span profiles of
  an evaluation (the ``repro-datalog profile`` verb).
* :mod:`repro.obs.benchrun` -- the workload-suite runner emitting
  schema-validated ``BENCH_<date>.json`` trajectory files (the
  ``repro-datalog bench`` verb); :mod:`repro.obs.schema` defines and
  validates the file format.

Import note: this ``__init__`` loads only the dependency-free tracer,
metrics, and schema modules, because low layers (``engine.stats``,
``core.minimize``) import them at module load.  The profiler and bench
runner -- which import the engines back -- load lazily via attribute
access (``repro.obs.profile_evaluation``) or explicit submodule import.
"""

from __future__ import annotations

from .metrics import METRICS_SCHEMA, MetricsRegistry, ObservationSummary, metrics_registry
from .schema import ALL_ENGINES, BENCH_SCHEMA, validate_bench_document
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    aggregate_spans,
    render_spans,
    trace,
    tracer,
    tracing,
)

__all__ = [
    "ALL_ENGINES",
    "BENCH_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObservationSummary",
    "Span",
    "Tracer",
    "aggregate_spans",
    "metrics_registry",
    "profile_evaluation",
    "render_spans",
    "run_bench",
    "trace",
    "tracer",
    "tracing",
    "validate_bench_document",
]

_LAZY = {
    "profile_evaluation": ("profiler", "profile_evaluation"),
    "ProfileReport": ("profiler", "ProfileReport"),
    "render_profile": ("profiler", "render_profile"),
    "run_bench": ("benchrun", "run_bench"),
    "diff_bench_documents": ("benchrun", "diff_bench_documents"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attribute)
